//! Edge-case integration tests across crates: things no benchmark
//! exercises but a real user of the library will hit.

use std::sync::Arc;

use parking_lot::Mutex;
use tnt_net::{connect, Addr, Net, TcpListener};
use tnt_os::{boot, boot_cluster, Errno, OpenFlags, Os};
use tnt_sim::Cycles;

#[test]
fn rusage_attributes_cpu_to_the_right_process() {
    let (sim, kernel) = boot(Os::Linux, 0);
    let usages = Arc::new(Mutex::new((Cycles::ZERO, Cycles::ZERO)));
    let u2 = usages.clone();
    kernel.spawn_user("parent", move |p| {
        let u3 = u2.clone();
        let child = p.fork("burner", move |c| {
            c.compute(Cycles(500_000));
            u3.lock().1 = c.rusage_self();
        });
        p.compute(Cycles(10_000));
        p.waitpid(child);
        u2.lock().0 = p.rusage_self();
    });
    sim.run().unwrap();
    let (parent, child) = *usages.lock();
    assert!(child.0 >= 500_000, "child burned its cycles: {child:?}");
    assert!(
        parent.0 >= 10_000 && parent.0 < 200_000,
        "parent did not inherit the child's burn: {parent:?}"
    );
}

#[test]
fn tcp_across_the_wire_pays_ethernet_time() {
    let (sim, kernels) = boot_cluster(&[Os::FreeBsd, Os::FreeBsd], 0);
    let net = Net::ethernet_10mbit();
    let h0 = net.register_host(&kernels[0]);
    let h1 = net.register_host(&kernels[1]);
    let listener = TcpListener::bind(&net, &kernels[1], h1, 80).unwrap();
    kernels[1].spawn_user("server", move |_| {
        let conn = listener.accept().unwrap();
        while conn.read(65536).unwrap() > 0 {}
    });
    let n2 = net.clone();
    let k0 = kernels[0].clone();
    let elapsed = Arc::new(Mutex::new(Cycles::ZERO));
    let e2 = elapsed.clone();
    kernels[0].spawn_user("client", move |p| {
        let conn = connect(&n2, &k0, h0, Addr { host: h1, port: 80 }).unwrap();
        let t0 = p.sim().now();
        let total: u64 = 256 * 1024;
        let mut sent = 0;
        while sent < total {
            sent += conn.write(65536.min(total - sent)).unwrap();
        }
        conn.close();
        *e2.lock() = p.sim().now() - t0;
        p.sim().stop();
    });
    sim.run().unwrap();
    // 256 KB over 10 Mb/s is >= ~210 ms of wire time alone.
    let ms = elapsed.lock().as_millis();
    assert!(ms > 200.0, "cross-host TCP is wire-bound: {ms:.0}ms");
}

#[test]
fn tcp_write_after_peer_close_is_epipe() {
    let (sim, kernel) = boot(Os::Linux, 0);
    let net = Net::ethernet_10mbit();
    let host = net.register_host(&kernel);
    let listener = TcpListener::bind(&net, &kernel, host, 81).unwrap();
    let (n2, k2) = (net.clone(), kernel.clone());
    kernel.spawn_user("main", move |p| {
        let child = p.fork("closer", move |_| {
            let conn = listener.accept().unwrap();
            conn.close();
        });
        let conn = connect(&n2, &k2, host, Addr { host, port: 81 }).unwrap();
        p.waitpid(child);
        // The peer's close half-closed their send side; OUR writes go to
        // the direction the peer marked fin.
        let r = conn.write(100);
        assert_eq!(r.err(), Some(Errno::EPIPE));
    });
    sim.run().unwrap();
}

#[test]
fn null_device_semantics() {
    // Processes start with no fds; pipe() allocates from 0.
    let (sim, kernel) = boot(Os::FreeBsd, 0);
    kernel.spawn_user("p", |p| {
        let (r, w) = p.pipe();
        assert_eq!((r, w), (0, 1), "lowest-first allocation");
        let d = p.dup(r).unwrap();
        assert_eq!(d, 2);
        p.close(r).unwrap();
        let (r2, _) = p.pipe();
        assert_eq!(r2, 0, "hole reused");
    });
    sim.run().unwrap();
}

#[test]
fn lseek_past_eof_reads_zero_and_write_extends() {
    let (sim, kernel) = boot(Os::Linux, 0);
    kernel.mount(tnt_fs::SimFs::fresh_for_os(Os::Linux));
    kernel.spawn_user("p", |p| {
        let fd = p.creat("/f").unwrap();
        p.write(fd, 1000).unwrap();
        p.close(fd).unwrap();
        let fd = p.open("/f", OpenFlags::rdwr()).unwrap();
        p.lseek(fd, 5_000).unwrap();
        assert_eq!(p.read(fd, 100).unwrap(), 0, "read past EOF");
        p.lseek(fd, 5_000).unwrap();
        p.write(fd, 100).unwrap();
        p.close(fd).unwrap();
        assert_eq!(p.stat("/f").unwrap().size, 5_100, "write extends the file");
    });
    sim.run().unwrap();
}

#[test]
fn mount_table_routes_longest_prefix() {
    let (sim, kernel) = boot(Os::Linux, 0);
    kernel.mount(tnt_fs::SimFs::fresh_for_os(Os::Linux));
    let tmp = tnt_fs::SimFs::fresh_for_os(Os::Linux);
    kernel.mount_at("/tmp", tmp);
    kernel.spawn_user("p", |p| {
        let fd = p.creat("/tmp/scratch").unwrap();
        p.write(fd, 10).unwrap();
        p.close(fd).unwrap();
        let fd = p.creat("/tmpfile").unwrap(); // NOT under /tmp
        p.close(fd).unwrap();
        // Root sees /tmpfile but not /tmp/scratch's entry.
        let names = p.readdir("/").unwrap();
        assert!(names.contains(&"tmpfile".to_string()));
        assert!(!names.contains(&"scratch".to_string()));
        assert_eq!(p.readdir("/tmp").unwrap(), vec!["scratch"]);
    });
    sim.run().unwrap();
}

#[test]
fn cross_mount_rename_is_rejected() {
    let (sim, kernel) = boot(Os::FreeBsd, 0);
    kernel.mount(tnt_fs::SimFs::fresh_for_os(Os::FreeBsd));
    kernel.mount_at("/tmp", tnt_fs::SimFs::fresh_for_os(Os::FreeBsd));
    kernel.spawn_user("p", |p| {
        let fd = p.creat("/file").unwrap();
        p.close(fd).unwrap();
        assert_eq!(p.rename("/file", "/tmp/file").err(), Some(Errno::EINVAL));
    });
    sim.run().unwrap();
}

#[test]
fn kernel_stats_count_what_happened() {
    let (sim, kernel) = boot(Os::Solaris, 0);
    let k2 = kernel.clone();
    kernel.spawn_user("p", move |p| {
        for _ in 0..10 {
            p.getpid();
        }
        let child = p.fork("c", |c| c.exec());
        p.waitpid(child);
        let stats = k2.stats();
        assert!(
            stats.syscalls >= 12,
            "10 getpids + fork + waitpid: {stats:?}"
        );
        assert_eq!(stats.forks, 1);
        assert_eq!(stats.execs, 1);
    });
    sim.run().unwrap();
}

#[test]
fn deep_nfs_paths_resolve_through_dnlc() {
    use tnt_nfs::{serve, NfsClient, NfsServerConfig};
    let (sim, kernels) = boot_cluster(&[Os::FreeBsd, Os::Linux], 0);
    let net = Net::ethernet_10mbit();
    let ch = net.register_host(&kernels[0]);
    let sh = net.register_host(&kernels[1]);
    let fs = tnt_fs::SimFs::fresh_for_os(Os::Linux);
    kernels[1].mount(fs.clone());
    let server = serve(
        &net,
        &kernels[1],
        sh,
        fs,
        NfsServerConfig::for_os(Os::Linux),
    )
    .unwrap();
    let mount = NfsClient::mount(&net, &kernels[0], ch, server.addr()).unwrap();
    kernels[0].mount(mount.clone());
    kernels[0].spawn_user("p", move |p| {
        p.mkdir("/a").unwrap();
        p.mkdir("/a/b").unwrap();
        p.mkdir("/a/b/c").unwrap();
        let fd = p.creat("/a/b/c/deep").unwrap();
        p.write(fd, 123).unwrap();
        p.close(fd).unwrap();
        let before = mount.rpc_total();
        // Second resolution of the same path: the dnlc absorbs lookups.
        assert_eq!(p.stat("/a/b/c/deep").unwrap().size, 123);
        let after = mount.rpc_total();
        assert!(
            after - before <= 2,
            "cached path costs at most a getattr: {} RPCs",
            after - before
        );
        p.sim().stop();
    });
    sim.run().unwrap();
}
