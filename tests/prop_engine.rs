//! Property tests of the simulation engine itself: arbitrary little
//! process ensembles must terminate, keep the clock monotone, conserve
//! CPU accounting, and replay identically per seed.

use proptest::prelude::*;
use std::sync::Arc;

use parking_lot::Mutex;
use tnt_sim::{Cycles, FifoPolicy, Sim, SimConfig};

/// One scripted step of a tiny process.
#[derive(Clone, Copy, Debug)]
enum Step {
    Compute(u16),
    Sleep(u16),
    Yield,
    /// Wake everyone on the shared queue, or wait (bounded) if empty.
    Signal,
    TimedWait(u16),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u16>().prop_map(Step::Compute),
        any::<u16>().prop_map(Step::Sleep),
        Just(Step::Yield),
        Just(Step::Signal),
        (1u16..5000).prop_map(Step::TimedWait),
    ]
}

fn scripts() -> impl Strategy<Value = Vec<Vec<Step>>> {
    prop::collection::vec(prop::collection::vec(step_strategy(), 0..12), 1..6)
}

/// Runs an ensemble; returns (final clock, per-proc cpu, trace length).
fn run_ensemble(scripts: &[Vec<Step>], seed: u64) -> (Cycles, Vec<Cycles>, usize) {
    let sim = Sim::new(Box::new(FifoPolicy::new()), SimConfig { seed, ..SimConfig::default() });
    let q = sim.new_queue();
    let trace = Arc::new(Mutex::new(Vec::new()));
    let mut tids = Vec::new();
    for (i, script) in scripts.iter().enumerate() {
        let script = script.clone();
        let trace = trace.clone();
        tids.push(sim.spawn(format!("p{i}"), move |s| {
            let mut last = s.now();
            for step in &script {
                match step {
                    Step::Compute(c) => s.advance(Cycles(*c as u64)),
                    Step::Sleep(c) => s.sleep(Cycles(*c as u64)),
                    Step::Yield => s.yield_now(),
                    Step::Signal => {
                        s.wakeup_all(q);
                    }
                    Step::TimedWait(c) => {
                        // Bounded, so nothing can deadlock.
                        let _ = s.wait_on_timeout(q, Cycles(*c as u64), "prop wait");
                    }
                }
                let now = s.now();
                assert!(now >= last, "clock went backwards");
                last = now;
                trace.lock().push((i, now.0));
            }
        }));
    }
    let end = sim.run().expect("ensemble must terminate");
    let cpu = tids.iter().map(|t| sim.proc_cpu(*t)).collect();
    let len = trace.lock().len();
    (end, cpu, len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn ensembles_terminate_with_consistent_accounting(scripts in scripts()) {
        let (end, cpu, _) = run_ensemble(&scripts, 1);
        // Total CPU charged never exceeds elapsed time (single CPU), and
        // equals the sum of each process's Compute steps.
        let total_cpu: u64 = cpu.iter().map(|c| c.0).sum();
        prop_assert!(total_cpu <= end.0, "CPU {total_cpu} > wall {}", end.0);
        for (i, script) in scripts.iter().enumerate() {
            let expect: u64 = script
                .iter()
                .map(|s| match s {
                    Step::Compute(c) => *c as u64,
                    _ => 0,
                })
                .sum();
            prop_assert_eq!(cpu[i].0, expect, "proc {} cpu accounting", i);
        }
    }

    #[test]
    fn replay_is_bit_identical(scripts in scripts(), seed in 0u64..100) {
        let a = run_ensemble(&scripts, seed);
        let b = run_ensemble(&scripts, seed);
        prop_assert_eq!(a.0, b.0, "final clock differs between replays");
        prop_assert_eq!(a.1, b.1, "cpu accounting differs between replays");
        prop_assert_eq!(a.2, b.2, "event counts differ between replays");
    }

    #[test]
    fn wall_clock_bounded_by_script_content(scripts in scripts()) {
        // An upper bound: everything serialised plus every sleep and
        // timeout expiring in sequence.
        let (end, _, _) = run_ensemble(&scripts, 2);
        let bound: u64 = scripts
            .iter()
            .flatten()
            .map(|s| match s {
                Step::Compute(c) | Step::Sleep(c) | Step::TimedWait(c) => *c as u64,
                _ => 0,
            })
            .sum();
        prop_assert!(end.0 <= bound, "clock {} beyond serial bound {}", end.0, bound);
    }
}
