//! Property tests of the filesystem personalities: whatever a program
//! does with files, sizes and namespaces must stay consistent on every
//! modelled OS, and simulated time must only move forward.

use proptest::prelude::*;
use tnt_core::run_with_fs;
use tnt_os::{Errno, OpenFlags, Os};

fn any_os() -> impl Strategy<Value = Os> {
    prop_oneof![Just(Os::Linux), Just(Os::FreeBsd), Just(Os::Solaris)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn create_write_read_roundtrip(os in any_os(), size in 0u64..200_000) {
        let got = run_with_fs(os, 1, move |p| {
            let fd = p.creat("/f").unwrap();
            if size > 0 {
                prop_assert_eq!(p.write(fd, size).unwrap(), size);
            }
            p.close(fd).unwrap();
            let fd = p.open("/f", OpenFlags::rdonly()).unwrap();
            let mut total = 0;
            loop {
                let n = p.read(fd, 4096).unwrap();
                if n == 0 { break; }
                total += n;
            }
            p.close(fd).unwrap();
            prop_assert_eq!(p.stat("/f").unwrap().size, size);
            Ok(total)
        }).unwrap();
        prop_assert_eq!(got, size);
    }

    #[test]
    fn chunked_writes_accumulate(os in any_os(), chunks in prop::collection::vec(1u64..20_000, 1..12)) {
        let expected: u64 = chunks.iter().sum();
        let got = run_with_fs(os, 1, move |p| {
            let fd = p.creat("/acc").unwrap();
            for c in &chunks {
                p.write(fd, *c).unwrap();
            }
            p.close(fd).unwrap();
            p.stat("/acc").unwrap().size
        });
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn reads_at_arbitrary_offsets_stay_in_bounds(
        os in any_os(),
        size in 1u64..100_000,
        offsets in prop::collection::vec(0u64..200_000, 1..8),
    ) {
        run_with_fs(os, 1, move |p| {
            let fd = p.creat("/ra").unwrap();
            p.write(fd, size).unwrap();
            p.close(fd).unwrap();
            let fd = p.open("/ra", OpenFlags::rdonly()).unwrap();
            for off in &offsets {
                p.lseek(fd, *off).unwrap();
                let n = p.read(fd, 8192).unwrap();
                let expect = size.saturating_sub(*off).min(8192);
                prop_assert_eq!(n, expect, "read at {} of {}-byte file", off, size);
            }
            p.close(fd).unwrap();
            Ok(())
        }).unwrap();
    }

    #[test]
    fn namespace_tree_roundtrip(os in any_os(), names in prop::collection::btree_set("[a-z]{1,8}", 1..10)) {
        let names: Vec<String> = names.into_iter().collect();
        let expect = names.clone();
        let listed = run_with_fs(os, 1, move |p| {
            p.mkdir("/d").unwrap();
            for n in &names {
                let fd = p.creat(&format!("/d/{n}")).unwrap();
                p.close(fd).unwrap();
            }
            p.readdir("/d").unwrap()
        });
        prop_assert_eq!(listed, expect, "sorted listing equals the created set");
    }

    #[test]
    fn delete_then_stat_is_enoent(os in any_os(), size in 0u64..50_000) {
        run_with_fs(os, 1, move |p| {
            let fd = p.creat("/gone").unwrap();
            if size > 0 { p.write(fd, size).unwrap(); }
            p.close(fd).unwrap();
            p.unlink("/gone").unwrap();
            prop_assert_eq!(p.stat("/gone").err(), Some(Errno::ENOENT));
            // Recreating starts from scratch.
            let fd = p.creat("/gone").unwrap();
            p.close(fd).unwrap();
            prop_assert_eq!(p.stat("/gone").unwrap().size, 0);
            Ok(())
        }).unwrap();
    }

    #[test]
    fn crtdel_time_is_monotone_in_size(os in any_os(), small in 512u64..4096, factor in 4u64..32) {
        let big = small * factor;
        let t_small = tnt_core::crtdel_ms(os, small, 2, 1);
        let t_big = tnt_core::crtdel_ms(os, big, 2, 1);
        prop_assert!(t_big >= t_small * 0.9,
            "{os:?}: {big}B took {t_big:.2}ms, {small}B took {t_small:.2}ms");
    }
}
