//! End-to-end assertions of every headline ordering the paper reports,
//! exercised through the full stack (engine → kernels → fs/net/nfs →
//! benchmark suite).

use tnt_core::{
    bonnie, crtdel_ms, ctx_us, mab_local, mab_over_nfs, mem_bandwidth, pipe_bandwidth_mbit,
    syscall_us, tcp_bandwidth_mbit, udp_bandwidth_mbit, CtxPattern, LibcVariant, MemRoutine,
};
use tnt_os::Os;

const SEED: u64 = 3;

#[test]
fn table2_syscall_ordering() {
    let l = syscall_us(Os::Linux, 5_000, SEED);
    let f = syscall_us(Os::FreeBsd, 5_000, SEED);
    let s = syscall_us(Os::Solaris, 5_000, SEED);
    assert!(l < f && f < s, "Table 2: {l:.2} < {f:.2} < {s:.2}");
    // The Norm. column: Solaris at ~0.66 of Linux.
    assert!((l / s - 0.66).abs() < 0.06);
}

#[test]
fn figure1_contextswitch_story() {
    let switches = 600;
    // Linux wins small, loses big; FreeBSD flat; Solaris always worst.
    let l2 = ctx_us(Os::Linux, 2, switches, CtxPattern::Ring, SEED);
    let f2 = ctx_us(Os::FreeBsd, 2, switches, CtxPattern::Ring, SEED);
    let s2 = ctx_us(Os::Solaris, 2, switches, CtxPattern::Ring, SEED);
    assert!(l2 < f2 && f2 < s2);
    let l48 = ctx_us(Os::Linux, 48, switches, CtxPattern::Ring, SEED);
    let f48 = ctx_us(Os::FreeBsd, 48, switches, CtxPattern::Ring, SEED);
    assert!(
        l48 > f48,
        "Linux linear growth crosses FreeBSD: {l48:.0} vs {f48:.0}"
    );
    let s24 = ctx_us(Os::Solaris, 24, switches, CtxPattern::Ring, SEED);
    let s48 = ctx_us(Os::Solaris, 48, switches, CtxPattern::Ring, SEED);
    assert!(s48 > s24 + 40.0, "Solaris jumps past 32 processes");
}

#[test]
fn section6_memory_story() {
    let total = 1 << 20;
    // No libc write routine reaches 50 MB/s...
    for v in LibcVariant::all() {
        for buf in [4096u64, 1 << 20] {
            assert!(mem_bandwidth(MemRoutine::LibcMemset(v), buf, total, SEED) < 50.0);
        }
    }
    // ...but prefetching writes reach ~6x that, and copies ~160 MB/s.
    assert!(mem_bandwidth(MemRoutine::CustomWritePrefetch, 4096, total, SEED) > 250.0);
    let copy_pf = mem_bandwidth(MemRoutine::CustomCopyPrefetch, 4096, total, SEED);
    assert!(copy_pf > 140.0 && copy_pf < 190.0);
}

#[test]
fn section7_filesystem_story() {
    // crtdel: Linux no disk; Solaris ~half of FreeBSD.
    let l = crtdel_ms(Os::Linux, 1024, 5, SEED);
    let f = crtdel_ms(Os::FreeBsd, 1024, 5, SEED);
    let s = crtdel_ms(Os::Solaris, 1024, 5, SEED);
    assert!(l * 8.0 < s && s < f, "Figure 12: {l:.1} << {s:.1} < {f:.1}");

    // bonnie in cache: FreeBSD reads fastest; Linux writes worst.
    let bl = bonnie(Os::Linux, 4, 30, SEED);
    let bf = bonnie(Os::FreeBsd, 4, 30, SEED);
    let bs = bonnie(Os::Solaris, 4, 30, SEED);
    assert!(bf.read_mb_s > bl.read_mb_s && bf.read_mb_s > bs.read_mb_s);
    assert!(bl.write_mb_s < bf.write_mb_s / 2.0);
    assert!(bl.seeks_per_s > bf.seeks_per_s && bs.seeks_per_s > bf.seeks_per_s);
}

#[test]
fn section9_network_story() {
    // Pipes: Linux > FreeBSD > Solaris (Table 4).
    let pl = pipe_bandwidth_mbit(Os::Linux, 2 << 20, 64 * 1024, SEED);
    let pf = pipe_bandwidth_mbit(Os::FreeBsd, 2 << 20, 64 * 1024, SEED);
    let ps = pipe_bandwidth_mbit(Os::Solaris, 2 << 20, 64 * 1024, SEED);
    assert!(pl > pf && pf > ps, "Table 4: {pl:.0} > {pf:.0} > {ps:.0}");

    // UDP: FreeBSD > Solaris > Linux (Figure 13), inverted from pipes.
    let ul = udp_bandwidth_mbit(Os::Linux, 8192, 1 << 20, SEED);
    let uf = udp_bandwidth_mbit(Os::FreeBsd, 8192, 1 << 20, SEED);
    let us = udp_bandwidth_mbit(Os::Solaris, 8192, 1 << 20, SEED);
    assert!(uf > us && us > ul, "Figure 13: {uf:.0} > {us:.0} > {ul:.0}");

    // TCP: Linux crippled by its one-packet window (Table 5).
    let tl = tcp_bandwidth_mbit(Os::Linux, 1 << 20, 48 * 1024, SEED);
    let tf = tcp_bandwidth_mbit(Os::FreeBsd, 1 << 20, 48 * 1024, SEED);
    assert!(
        tl < tf * 0.55,
        "Table 5: Linux {tl:.0} far below FreeBSD {tf:.0}"
    );
}

#[test]
fn table3_mab_ordering() {
    let l = mab_local(Os::Linux, SEED).total_s;
    let f = mab_local(Os::FreeBsd, SEED).total_s;
    let s = mab_local(Os::Solaris, SEED).total_s;
    assert!(l < f && f < s, "Table 3: {l:.1} < {f:.1} < {s:.1}");
    // Despite the microbenchmark spreads, the totals are "much closer":
    // the worst system is within ~1.4x of the best.
    assert!(s / l < 1.45, "overall MAB spread is modest: {:.2}x", s / l);
}

#[test]
fn tables6_7_nfs_orderings() {
    // Against the async Linux server.
    let f6 = mab_over_nfs(Os::FreeBsd, Os::Linux, SEED).total_s;
    let l6 = mab_over_nfs(Os::Linux, Os::Linux, SEED).total_s;
    let s6 = mab_over_nfs(Os::Solaris, Os::Linux, SEED).total_s;
    assert!(f6 < l6 && l6 < s6, "Table 6: {f6:.1} < {l6:.1} < {s6:.1}");
    // Against the sync SunOS server everything slows, and the order
    // changes: Solaris overtakes Linux.
    let f7 = mab_over_nfs(Os::FreeBsd, Os::SunOs, SEED).total_s;
    let s7 = mab_over_nfs(Os::Solaris, Os::SunOs, SEED).total_s;
    let l7 = mab_over_nfs(Os::Linux, Os::SunOs, SEED).total_s;
    assert!(f7 < s7 && s7 < l7, "Table 7: {f7:.1} < {s7:.1} < {l7:.1}");
    assert!(
        f7 > f6 && s7 > s6 && l7 > l6,
        "sync server slower for every client"
    );
    assert!(l7 / f7 > 1.4, "the Linux client collapse: {:.2}x", l7 / f7);
}

#[test]
fn no_system_dominates() {
    // The Section 12 conclusion: each system wins somewhere.
    let linux_wins = syscall_us(Os::Linux, 2_000, SEED) < syscall_us(Os::FreeBsd, 2_000, SEED);
    let freebsd_wins = tcp_bandwidth_mbit(Os::FreeBsd, 512 * 1024, 48 * 1024, SEED)
        > tcp_bandwidth_mbit(Os::Linux, 512 * 1024, 48 * 1024, SEED);
    let solaris_wins =
        bonnie(Os::Solaris, 40, 10, SEED).read_mb_s > bonnie(Os::FreeBsd, 40, 10, SEED).read_mb_s;
    assert!(linux_wins, "Linux wins system calls");
    assert!(freebsd_wins, "FreeBSD wins networking");
    assert!(solaris_wins, "Solaris wins cold large-file reads");
}
