//! Oracle equivalence: an arbitrary sequence of filesystem operations
//! must produce *identical observable results* (byte counts, attribute
//! sizes, directory listings, errnos) whether executed on a local
//! filesystem or through the full NFS stack — RPC encoding, UDP, the
//! Ethernet model, the server, and its disk included. Timing differs;
//! semantics must not.

use proptest::prelude::*;
use std::sync::Arc;

use parking_lot::Mutex;
use tnt_fs::SimFs;
use tnt_net::Net;
use tnt_nfs::{serve, NfsClient, NfsServerConfig};
use tnt_os::{boot_cluster, Errno, OpenFlags, Os, UProc};

/// A scripted filesystem operation over a tiny name universe.
#[derive(Clone, Debug)]
enum FsOp {
    Create(u8),
    Append(u8, u64),
    ReadAll(u8),
    Stat(u8),
    Unlink(u8),
    Mkdir(u8),
    Rmdir(u8),
    Rename(u8, u8),
    List,
}

fn name(i: u8) -> String {
    format!("/n{}", i % 5)
}

fn op_strategy() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        any::<u8>().prop_map(FsOp::Create),
        (any::<u8>(), 1u64..20_000).prop_map(|(n, sz)| FsOp::Append(n, sz)),
        any::<u8>().prop_map(FsOp::ReadAll),
        any::<u8>().prop_map(FsOp::Stat),
        any::<u8>().prop_map(FsOp::Unlink),
        any::<u8>().prop_map(FsOp::Mkdir),
        any::<u8>().prop_map(FsOp::Rmdir),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| FsOp::Rename(a, b)),
        Just(FsOp::List),
    ]
}

/// Observable outcome of one op, as a comparable string.
fn apply(p: &UProc, op: &FsOp) -> String {
    match op {
        FsOp::Create(n) => match p.creat(&name(*n)) {
            Ok(fd) => {
                p.close(fd).unwrap();
                "created".into()
            }
            Err(e) => format!("err:{e}"),
        },
        FsOp::Append(n, sz) => match p.open(&name(*n), OpenFlags::rdwr()) {
            Ok(fd) => {
                let size = p.fstat(fd).map(|a| a.size).unwrap_or(0);
                p.lseek(fd, size).unwrap();
                let wrote = p.write(fd, *sz);
                p.close(fd).unwrap();
                format!("wrote:{wrote:?}")
            }
            Err(e) => format!("err:{e}"),
        },
        FsOp::ReadAll(n) => match p.open(&name(*n), OpenFlags::rdonly()) {
            Ok(fd) => {
                let mut total = 0;
                loop {
                    match p.read(fd, 4096) {
                        Ok(0) => break,
                        Ok(n) => total += n,
                        Err(e) => {
                            p.close(fd).unwrap();
                            return format!("readerr:{e}");
                        }
                    }
                }
                p.close(fd).unwrap();
                format!("read:{total}")
            }
            Err(e) => format!("err:{e}"),
        },
        FsOp::Stat(n) => match p.stat(&name(*n)) {
            Ok(a) => format!("stat:{}:{}", a.size, a.is_dir),
            Err(e) => format!("err:{e}"),
        },
        FsOp::Unlink(n) => format!("{:?}", p.unlink(&name(*n)).err()),
        FsOp::Mkdir(n) => format!("{:?}", p.mkdir(&name(*n)).err()),
        FsOp::Rmdir(n) => format!("{:?}", p.rmdir(&name(*n)).err()),
        FsOp::Rename(a, b) => format!("{:?}", p.rename(&name(*a), &name(*b)).err()),
        FsOp::List => match p.readdir("/") {
            Ok(names) => format!("ls:{}", names.join(",")),
            Err(e) => format!("err:{e}"),
        },
    }
}

fn run_local(os: Os, ops: Vec<FsOp>) -> Vec<String> {
    tnt_core::run_with_fs(os, 1, move |p| ops.iter().map(|op| apply(p, op)).collect())
}

fn run_nfs(client_os: Os, server_os: Os, ops: Vec<FsOp>) -> Vec<String> {
    let (sim, kernels) = boot_cluster(&[client_os, server_os], 1);
    let net = Net::ethernet_10mbit();
    let ch = net.register_host(&kernels[0]);
    let sh = net.register_host(&kernels[1]);
    let server_fs = SimFs::fresh_for_os(server_os);
    kernels[1].mount(server_fs.clone());
    let server = serve(
        &net,
        &kernels[1],
        sh,
        server_fs,
        NfsServerConfig::for_os(server_os),
    )
    .unwrap();
    let mount = NfsClient::mount(&net, &kernels[0], ch, server.addr()).unwrap();
    kernels[0].mount(mount);
    let out = Arc::new(Mutex::new(Vec::new()));
    let o2 = out.clone();
    kernels[0].spawn_user("oracle", move |p| {
        for op in &ops {
            o2.lock().push(apply(&p, op));
        }
        p.sim().stop();
    });
    sim.run().unwrap();
    let result = out.lock().clone();
    result
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn nfs_observes_exactly_what_local_observes(
        ops in prop::collection::vec(op_strategy(), 1..25),
        client in prop_oneof![Just(Os::Linux), Just(Os::FreeBsd), Just(Os::Solaris)],
        server in prop_oneof![Just(Os::Linux), Just(Os::SunOs)],
    ) {
        let local = run_local(client, ops.clone());
        let remote = run_nfs(client, server, ops.clone());
        prop_assert_eq!(&local, &remote,
            "semantics diverge for {:?} via {:?} server on ops {:?}", client, server, ops);
    }
}

#[test]
fn oracle_smoke_mixed_sequence() {
    // A fixed regression sequence covering every op kind.
    let ops = vec![
        FsOp::Mkdir(0),
        FsOp::Create(1),
        FsOp::Append(1, 9000),
        FsOp::Stat(1),
        FsOp::ReadAll(1),
        FsOp::List,
        FsOp::Create(1), // truncates
        FsOp::Stat(1),
        FsOp::Unlink(1),
        FsOp::Stat(1),
        FsOp::Rmdir(0),
        FsOp::Rmdir(0), // already gone
        FsOp::Create(2),
        FsOp::Rename(2, 4),
        FsOp::Stat(4),
        FsOp::Stat(2),
    ];
    let local = run_local(Os::FreeBsd, ops.clone());
    let remote = run_nfs(Os::FreeBsd, Os::SunOs, ops);
    assert_eq!(local, remote);
    assert!(local.iter().any(|s| s.contains("err:ENOENT")));
}

#[test]
fn oracle_errnos_cross_the_wire() {
    let ops = vec![FsOp::ReadAll(3), FsOp::Rmdir(3), FsOp::Unlink(3)];
    let local = run_local(Os::Linux, ops.clone());
    let remote = run_nfs(Os::Linux, Os::Linux, ops);
    assert_eq!(local, remote);
    assert_eq!(local[0], format!("err:{}", Errno::ENOENT));
}
