//! Property tests of the machine models: cache invariants under
//! arbitrary access streams, disk timing monotonicity, memory-routine
//! sanity, and the statistics helpers.

use proptest::prelude::*;
use tnt_cpu::{measure, Cache, CacheConfig, MemRoutine, MemSystem};
use tnt_fs::{Disk, DiskParams};
use tnt_sim::{normalize_higher_better, normalize_lower_better, Cycles, Summary};

#[derive(Clone, Copy, Debug)]
enum Op {
    Read(u64),
    Write(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..1 << 20).prop_map(Op::Read),
            (0u64..1 << 20).prop_map(Op::Write),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn cache_capacity_never_exceeded(seq in ops()) {
        let mut c = Cache::new(CacheConfig { size: 2048, ways: 2, line: 32, write_allocate: false });
        for op in &seq {
            match op {
                Op::Read(a) => { c.read(*a); }
                Op::Write(a) => { c.write(*a); }
            }
        }
        prop_assert!(c.valid_lines() <= 64, "2 KB of 32-byte lines = 64 max");
    }

    #[test]
    fn read_then_probe_always_hits(addr in 0u64..1 << 30) {
        let mut c = Cache::new(CacheConfig::p54c_l1d());
        c.read(addr);
        prop_assert!(c.probe(addr));
        // The whole line is resident.
        prop_assert!(c.probe(addr / 32 * 32));
        prop_assert!(c.probe(addr / 32 * 32 + 31));
    }

    #[test]
    fn write_miss_never_allocates(addrs in prop::collection::vec(0u64..1 << 24, 1..100)) {
        let mut c = Cache::new(CacheConfig::p54c_l1d());
        for a in &addrs {
            c.write(*a);
        }
        prop_assert_eq!(c.valid_lines(), 0, "no write-allocate means nothing resident");
    }

    #[test]
    fn stats_accounting_is_consistent(seq in ops()) {
        let mut c = Cache::new(CacheConfig::plato_l2());
        for op in &seq {
            match op {
                Op::Read(a) => { c.read(*a); }
                Op::Write(a) => { c.write(*a); }
            }
        }
        let s = c.stats();
        let reads = seq.iter().filter(|o| matches!(o, Op::Read(_))).count() as u64;
        let writes = seq.len() as u64 - reads;
        prop_assert_eq!(s.read_hits + s.read_misses, reads);
        prop_assert_eq!(s.write_hits + s.write_misses, writes);
    }

    #[test]
    fn memsystem_cycles_are_monotone(seq in ops()) {
        let mut m = MemSystem::p54c();
        let mut last = 0;
        for op in &seq {
            match op {
                Op::Read(a) => { m.read_word(*a); }
                Op::Write(a) => { m.write_word(*a); }
            }
            prop_assert!(m.cycles() >= last);
            last = m.cycles();
        }
    }

    #[test]
    fn bandwidth_measurement_is_positive_and_covers_traffic(
        buf in 16u64..262_144,
        total_kb in 1u64..256,
    ) {
        let mut m = MemSystem::p54c();
        let p = measure(&mut m, MemRoutine::CustomRead, buf, total_kb * 1024);
        prop_assert!(p.mb_per_sec > 0.0);
        prop_assert!(p.bytes >= total_kb * 1024, "at least the requested traffic moved");
        prop_assert!(p.cycles > 0);
    }

    #[test]
    fn prefetch_never_loses_to_naive_writes(buf in 64u64..1 << 20) {
        let buf = buf / 32 * 32 + 32; // line-aligned size
        let mut m1 = MemSystem::p54c();
        let naive = measure(&mut m1, MemRoutine::CustomWriteNaive, buf, 1 << 20).mb_per_sec;
        let mut m2 = MemSystem::p54c();
        let pf = measure(&mut m2, MemRoutine::CustomWritePrefetch, buf, 1 << 20).mb_per_sec;
        prop_assert!(pf > naive * 0.95, "prefetch {pf:.1} vs naive {naive:.1} at {buf}");
    }

    #[test]
    fn disk_service_time_monotone_in_transfer(from in 0u64..2_000_000, addr in 0u64..2_000_000, blocks in 1u64..512) {
        let d = Disk::new(DiskParams::hp3725());
        let small = d.service_time(from, addr, blocks);
        let bigger = d.service_time(from, addr, blocks + 8);
        prop_assert!(bigger > small);
        prop_assert!(small > Cycles::ZERO);
    }

    #[test]
    fn disk_seek_monotone_in_distance(addr in 0u64..1_000_000, d1 in 0u64..500_000, d2 in 0u64..500_000) {
        let disk = Disk::new(DiskParams::hp3725());
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(disk.seek_time(near) <= disk.seek_time(far));
        let _ = addr;
    }

    #[test]
    fn summary_mean_bounded_by_extremes(samples in prop::collection::vec(0.0f64..1e6, 1..50)) {
        let s = Summary::of(&samples);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean >= min - 1e-9 && s.mean <= max + 1e-9);
        prop_assert!(s.sd >= 0.0);
    }

    #[test]
    fn normalization_bounds(values in prop::collection::vec(0.1f64..1e6, 1..10)) {
        for n in normalize_lower_better(&values) {
            prop_assert!(n > 0.0 && n <= 1.0 + 1e-9);
        }
        for n in normalize_higher_better(&values) {
            prop_assert!(n > 0.0 && n <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn cycles_unit_conversions_roundtrip(us in 0.0f64..1e7) {
        let c = Cycles::from_micros(us);
        prop_assert!((c.as_micros() - us).abs() <= 0.005, "{us} -> {c:?} -> {}", c.as_micros());
    }
}
