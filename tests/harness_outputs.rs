//! Integration test of the harness: every experiment id produces a
//! rendered table or figure and well-formed CSV series.

use tnt_harness::{all_ids, run_many, run_one, Scale};

#[test]
fn every_experiment_renders_at_smoke_scale() {
    let scale = Scale::smoke();
    let ids = all_ids();
    let outputs = run_many(&ids, &scale);
    // Each id appears exactly once.
    let mut seen: Vec<&str> = outputs.iter().map(|o| o.id).collect();
    seen.sort_unstable();
    let mut expected = ids.clone();
    expected.sort_unstable();
    assert_eq!(seen, expected);
    for out in &outputs {
        assert!(!out.text.trim().is_empty(), "{} rendered empty", out.id);
        assert!(
            out.text.contains("TABLE") || out.text.contains("FIGURE"),
            "{} is labelled:\n{}",
            out.id,
            out.text
        );
    }
}

#[test]
fn figure_csvs_are_rectangular() {
    let scale = Scale::smoke();
    for out in run_one("f12", &scale) {
        assert_eq!(out.csv.len(), 1);
        let csv = &out.csv[0].1;
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        assert!(header_cols >= 2);
        for line in lines {
            assert_eq!(line.split(',').count(), header_cols, "ragged CSV:\n{csv}");
        }
    }
}

#[test]
fn tables_cite_paper_values() {
    let scale = Scale::smoke();
    let t2 = &run_one("t2", &scale)[0];
    // The paper's numbers appear in the comparison column.
    for v in ["2.31", "2.62", "3.52"] {
        assert!(t2.text.contains(v), "paper value {v} missing:\n{}", t2.text);
    }
    let t5 = &run_one("t5", &scale)[0];
    for v in ["65.95", "60.11", "25.03"] {
        assert!(t5.text.contains(v), "paper value {v} missing:\n{}", t5.text);
    }
}

#[test]
fn figure_one_has_four_curves() {
    let scale = Scale::smoke();
    let f1 = &run_one("f1", &scale)[0];
    for label in ["Linux", "FreeBSD", "Solaris", "Solaris-LIFO"] {
        assert!(
            f1.text.contains(label),
            "curve {label} missing:\n{}",
            f1.text
        );
    }
}
