//! The simulation must be exactly reproducible: identical seeds give
//! identical results across the whole stack, and different seeds give a
//! small, non-zero spread (the paper's Std Dev columns).

use tnt_core::{
    crtdel_ms, ctx_us, mab_local, mab_over_nfs, pipe_bandwidth_mbit, syscall_us,
    tcp_bandwidth_mbit, CtxPattern,
};
use tnt_os::Os;
use tnt_sim::Summary;

#[test]
fn syscall_is_bit_identical_per_seed() {
    for os in Os::benchmarked() {
        let a = syscall_us(os, 3_000, 7);
        let b = syscall_us(os, 3_000, 7);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{os:?} differs between identical runs"
        );
    }
}

#[test]
fn ctx_is_bit_identical_per_seed() {
    let a = ctx_us(Os::Solaris, 40, 400, CtxPattern::Ring, 9);
    let b = ctx_us(Os::Solaris, 40, 400, CtxPattern::Ring, 9);
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn filesystem_benchmarks_are_bit_identical_per_seed() {
    let a = crtdel_ms(Os::FreeBsd, 4096, 4, 11);
    let b = crtdel_ms(Os::FreeBsd, 4096, 4, 11);
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn mab_is_bit_identical_per_seed() {
    let a = mab_local(Os::Linux, 5);
    let b = mab_local(Os::Linux, 5);
    assert_eq!(a.total_s.to_bits(), b.total_s.to_bits());
    for i in 0..5 {
        assert_eq!(a.phase_s[i].to_bits(), b.phase_s[i].to_bits(), "phase {i}");
    }
}

#[test]
fn nfs_is_bit_identical_per_seed() {
    let a = mab_over_nfs(Os::FreeBsd, Os::SunOs, 2).total_s;
    let b = mab_over_nfs(Os::FreeBsd, Os::SunOs, 2).total_s;
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn network_benchmarks_are_bit_identical_per_seed() {
    let a = tcp_bandwidth_mbit(Os::Linux, 256 * 1024, 48 * 1024, 13);
    let b = tcp_bandwidth_mbit(Os::Linux, 256 * 1024, 48 * 1024, 13);
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn seeds_produce_a_plausible_std_dev() {
    // Across seeds, the per-run jitter must show up — but stay small, as
    // the paper's single-user-mode Std Dev columns are (mostly < 5%).
    let samples: Vec<f64> = (1..=10).map(|s| syscall_us(Os::Linux, 2_000, s)).collect();
    let summary = Summary::of(&samples);
    assert!(summary.sd > 0.0, "different seeds must differ");
    assert!(
        summary.sd_pct() < 5.0,
        "jitter stays small: {:.2}%",
        summary.sd_pct()
    );
}

#[test]
fn solaris_is_noisier_than_linux() {
    // The paper's Std Dev columns consistently show Solaris with more
    // run-to-run variance than the free systems.
    let noise = |os| {
        let samples: Vec<f64> = (1..=12).map(|s| syscall_us(os, 2_000, s)).collect();
        Summary::of(&samples).sd_pct()
    };
    let linux = noise(Os::Linux);
    let solaris = noise(Os::Solaris);
    assert!(
        solaris > linux,
        "Solaris {solaris:.2}% vs Linux {linux:.2}%"
    );
}

#[test]
fn pipe_bandwidth_varies_mildly_across_seeds() {
    let samples: Vec<f64> = (1..=6)
        .map(|s| pipe_bandwidth_mbit(Os::FreeBsd, 1 << 20, 65_536, s))
        .collect();
    let summary = Summary::of(&samples);
    assert!(summary.sd > 0.0);
    assert!(summary.sd_pct() < 6.0);
}
