//! Property tests of the byte-moving paths: pipes, UDP, TCP and the XDR
//! codec. Whatever the chunking, every byte arrives intact and in order.

use proptest::prelude::*;
use std::sync::Arc;

use parking_lot::Mutex;
use tnt_net::{connect, Addr, Net, TcpListener, UdpSocket};
use tnt_nfs::{NfsCall, NfsReply, RpcReply, RpcRequest, WireAttr};
use tnt_os::{boot, Errno, Os};

fn any_os() -> impl Strategy<Value = Os> {
    prop_oneof![Just(Os::Linux), Just(Os::FreeBsd), Just(Os::Solaris)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn pipe_preserves_bytes_under_any_chunking(
        os in any_os(),
        data in prop::collection::vec(any::<u8>(), 1..6000),
        read_chunk in 1u64..512,
    ) {
        let expected = data.clone();
        let (sim, kernel) = boot(os, 1);
        let received = Arc::new(Mutex::new(Vec::new()));
        let r2 = received.clone();
        kernel.spawn_user("main", move |p| {
            let (rd, wr) = p.pipe();
            let child = p.fork("writer", move |c| {
                c.write_bytes(wr, &data).unwrap();
                c.close(wr).unwrap();
            });
            p.close(wr).unwrap();
            loop {
                let chunk = p.read_bytes(rd, read_chunk).unwrap();
                if chunk.is_empty() {
                    break;
                }
                r2.lock().extend(chunk);
            }
            p.waitpid(child);
        });
        sim.run().unwrap();
        prop_assert_eq!(&*received.lock(), &expected);
    }

    #[test]
    fn tcp_conserves_bytes_under_any_chunking(
        os in any_os(),
        total in 1u64..200_000,
        write_chunk in 1u64..70_000,
        read_chunk in 1u64..70_000,
    ) {
        let (sim, kernel) = boot(os, 1);
        let net = Net::ethernet_10mbit();
        let host = net.register_host(&kernel);
        let received = Arc::new(Mutex::new(0u64));
        let r2 = received.clone();
        let (n2, k2) = (net.clone(), kernel.clone());
        kernel.spawn_user("main", move |p| {
            let listener = TcpListener::bind(&n2, &k2, host, 80).unwrap();
            let child = p.fork("server", move |_| {
                let conn = listener.accept().unwrap();
                loop {
                    let n = conn.read(read_chunk).unwrap();
                    if n == 0 {
                        break;
                    }
                    *r2.lock() += n;
                }
            });
            let conn = connect(&n2, &k2, host, Addr { host, port: 80 }).unwrap();
            let mut sent = 0;
            while sent < total {
                sent += conn.write(write_chunk.min(total - sent)).unwrap();
            }
            conn.close();
            p.waitpid(child);
        });
        sim.run().unwrap();
        prop_assert_eq!(*received.lock(), total);
    }

    #[test]
    fn udp_messages_arrive_in_order(
        os in any_os(),
        messages in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..600), 1..12),
    ) {
        let expected = messages.clone();
        let (sim, kernel) = boot(os, 1);
        let net = Net::ethernet_10mbit();
        let host = net.register_host(&kernel);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        let (n2, k2) = (net.clone(), kernel.clone());
        kernel.spawn_user("main", move |p| {
            let tx = UdpSocket::bind(&n2, &k2, host, 10).unwrap();
            let rx = UdpSocket::bind(&n2, &k2, host, 20).unwrap();
            let count = messages.len();
            let rx2 = rx.clone();
            let child = p.fork("rx", move |_| {
                for _ in 0..count {
                    let pkt = rx2.recv().unwrap().unwrap();
                    g2.lock().push(pkt.data);
                }
            });
            for m in &messages {
                tx.send_to(Addr { host, port: 20 }, m.clone()).unwrap();
            }
            p.waitpid(child);
        });
        sim.run().unwrap();
        prop_assert_eq!(&*got.lock(), &expected);
    }

    #[test]
    fn xdr_rpc_requests_roundtrip(
        xid in any::<u32>(),
        fh in any::<u64>(),
        off in any::<u64>(),
        len in any::<u64>(),
        name in "[a-zA-Z0-9_.]{0,32}",
        excl in any::<bool>(),
    ) {
        let calls = vec![
            NfsCall::Getattr { fh },
            NfsCall::Lookup { dir: fh, name: name.clone() },
            NfsCall::Read { fh, off, len },
            NfsCall::Write { fh, off, len },
            NfsCall::Create { dir: fh, name: name.clone(), exclusive: excl },
            NfsCall::Remove { dir: fh, name: name.clone() },
        ];
        for call in calls {
            let req = RpcRequest { xid, call };
            let decoded = RpcRequest::decode(&req.encode()).unwrap();
            prop_assert_eq!(decoded, req);
        }
    }

    #[test]
    fn xdr_rpc_replies_roundtrip(
        xid in any::<u32>(),
        size in any::<u64>(),
        nlink in any::<u32>(),
        is_dir in any::<bool>(),
        names in prop::collection::vec("[a-z]{0,16}", 0..20),
    ) {
        let attr = WireAttr { size, is_dir, nlink };
        let replies = vec![
            NfsReply::Attr(attr),
            NfsReply::Handle { fh: size, attr },
            NfsReply::Data { len: size },
            NfsReply::Names(names),
            NfsReply::Error(Errno::ENOSPC),
            NfsReply::Ok,
        ];
        for reply in replies {
            let r = RpcReply { xid, reply };
            let decoded = RpcReply::decode(&r.encode()).unwrap();
            prop_assert_eq!(decoded, r);
        }
    }

    #[test]
    fn xdr_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary bytes must fail cleanly, never panic.
        let _ = RpcRequest::decode(&bytes);
        let _ = RpcReply::decode(&bytes);
    }
}
