//! The two-level Pentium memory system and its cycle costs.
//!
//! The model is deliberately coarse: constant per-event costs for line
//! fills, write-buffer drains and writebacks, calibrated so that the
//! steady-state bandwidths match the plateaus of the paper's Figures 2-8
//! (~300 MB/s from L1, ~110 MB/s from L2, ~75 MB/s from DRAM for reads;
//! <50 MB/s for non-allocating writes).

use crate::cache::{Access, Cache, CacheConfig};
use crate::tlb::Tlb;

/// Cycle costs of the memory system events.
#[derive(Clone, Copy, Debug)]
pub struct MemTiming {
    /// Filling a 32-byte line into L1 from a hitting L2.
    pub l2_fill: u64,
    /// Filling a 32-byte line into L1+L2 from DRAM.
    pub dram_fill: u64,
    /// One word written through to a line that hits in L2 (L1 missed).
    pub l2_write_word: u64,
    /// One word drained through the write buffers to DRAM.
    pub dram_write_word: u64,
    /// Writing back a dirty L1 victim whose line is present in L2.
    pub writeback_l2: u64,
    /// Writing back a dirty victim all the way to DRAM.
    pub writeback_dram: u64,
}

impl MemTiming {
    /// Calibrated defaults for the 100 MHz P54C with the Plato L2.
    pub fn p54c() -> MemTiming {
        MemTiming {
            l2_fill: 18,
            dram_fill: 31,
            l2_write_word: 2,
            dram_write_word: 7,
            writeback_l2: 10,
            writeback_dram: 16,
        }
    }

    /// Returns a copy with every cost scaled by `factor` (used by the
    /// harness to model run-to-run DRAM/refresh jitter).
    pub fn scaled(&self, factor: f64) -> MemTiming {
        let s = |c: u64| ((c as f64) * factor).round().max(1.0) as u64;
        MemTiming {
            l2_fill: s(self.l2_fill),
            dram_fill: s(self.dram_fill),
            l2_write_word: s(self.l2_write_word),
            dram_write_word: s(self.dram_write_word),
            writeback_l2: s(self.writeback_l2),
            writeback_dram: s(self.writeback_dram),
        }
    }
}

/// The modelled CPU-side memory system: data TLB, L1 data cache,
/// unified L2, DRAM.
pub struct MemSystem {
    dtlb: Tlb,
    l1d: Cache,
    l2: Cache,
    timing: MemTiming,
    cycles: u64,
}

impl MemSystem {
    /// Builds the P54C/Plato memory system with calibrated timing.
    pub fn p54c() -> MemSystem {
        MemSystem::new(
            CacheConfig::p54c_l1d(),
            CacheConfig::plato_l2(),
            MemTiming::p54c(),
        )
    }

    /// Builds a memory system with explicit geometry and timing.
    pub fn new(l1d: CacheConfig, l2: CacheConfig, timing: MemTiming) -> MemSystem {
        MemSystem {
            dtlb: Tlb::p54c_dtlb(),
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            timing,
            cycles: 0,
        }
    }

    /// Cycles accumulated by memory-system events (excludes loop costs,
    /// which the routine models add themselves).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Charges extra cycles (used by routine models for loop overhead).
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Resets the cycle counter without touching cache state.
    pub fn reset_cycles(&mut self) {
        self.cycles = 0;
    }

    /// Appends an exact encoding of the memory system's observable state
    /// (TLB + both cache levels, LRU order normalised) to `out`. Two
    /// systems with equal encodings and equal timing charge identical
    /// cycles for any identical future access sequence.
    pub(crate) fn encode_state(&self, out: &mut Vec<u64>) {
        self.dtlb.encode_state(out);
        self.l1d.encode_state(out);
        self.l2.encode_state(out);
    }

    /// Accounts for `reps` repetitions of a pass whose per-pass deltas
    /// were already measured: cycle and counter totals advance exactly as
    /// if the passes had run, and — because the caller has proven the
    /// cache state to be a fixed point of the pass — the cache state is
    /// already the state those passes would leave behind.
    pub(crate) fn skip_steady_passes(&mut self, reps: u64, d: &PassDelta) {
        self.cycles += reps * d.cycles;
        self.l1d.add_stats(reps, d.l1);
        self.l2.add_stats(reps, d.l2);
        self.dtlb.add_stats(reps, d.tlb_hits, d.tlb_misses);
    }

    /// The address period after which the whole hierarchy's set mapping
    /// repeats: shifting every address by a multiple of this moves each
    /// line/translation to the same set with an exactly predictable tag.
    /// All three periods are powers of two, so the lcm is the max.
    pub(crate) fn stream_period_bytes(&self) -> u64 {
        self.dtlb
            .period_bytes()
            .max(self.l1d.period_bytes())
            .max(self.l2.period_bytes())
    }

    /// Appends the hierarchy's state to `out` with tags expressed
    /// relative to stream offset `off` (a multiple of
    /// [`MemSystem::stream_period_bytes`]).
    pub(crate) fn encode_stream_state(&self, out: &mut Vec<u64>, off: u64) {
        self.dtlb.encode_state_rel(out, off);
        self.l1d.encode_state_rel(out, off);
        self.l2.encode_state_rel(out, off);
    }

    /// Accounts for `reps` more stream segments of `seg` bytes whose
    /// per-segment deltas were already measured, translating the resident
    /// state forward so it is exactly the state full simulation would
    /// have reached at the skipped-to offset.
    pub(crate) fn skip_stream_segments(&mut self, reps: u64, d: &PassDelta, seg: u64) {
        self.cycles += reps * d.cycles;
        self.l1d.add_stats(reps, d.l1);
        self.l2.add_stats(reps, d.l2);
        self.dtlb.add_stats(reps, d.tlb_hits, d.tlb_misses);
        let off = reps * seg;
        self.dtlb.shift_tags(off);
        self.l1d.shift_tags(off);
        self.l2.shift_tags(off);
    }

    /// Snapshots the counters that [`PassDelta::since`] diffs.
    pub(crate) fn counters(&self) -> PassDelta {
        let (tlb_hits, tlb_misses) = self.dtlb.stats();
        PassDelta {
            cycles: self.cycles,
            l1: self.l1d.stats(),
            l2: self.l2.stats(),
            tlb_hits,
            tlb_misses,
        }
    }

    /// Invalidates both cache levels and the TLB (cold start).
    pub fn flush(&mut self) {
        self.dtlb.flush();
        self.l1d.flush();
        self.l2.flush();
    }

    /// The data TLB (for tests and reports).
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// The L1 data cache (for assertions in tests).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L2 cache (for assertions in tests).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Loads the word at `addr`, charging translation, fill and
    /// writeback costs. Returns the level that serviced the access.
    pub fn read_word(&mut self, addr: u64) -> Level {
        self.cycles += self.dtlb.access(addr);
        match self.l1d.read(addr) {
            Access::Hit => Level::L1,
            Access::Miss { evicted_dirty } => {
                if evicted_dirty {
                    // The victim's line is (almost always) still in L2 in
                    // this mostly-inclusive hierarchy.
                    self.cycles += self.timing.writeback_l2;
                }
                match self.l2.read(addr) {
                    Access::Hit => {
                        self.cycles += self.timing.l2_fill;
                        Level::L2
                    }
                    Access::Miss {
                        evicted_dirty: l2_dirty,
                    } => {
                        if l2_dirty {
                            self.cycles += self.timing.writeback_dram;
                        }
                        self.cycles += self.timing.dram_fill;
                        Level::Dram
                    }
                    Access::MissNoAllocate => unreachable!("reads always allocate"),
                }
            }
            Access::MissNoAllocate => unreachable!("reads always allocate"),
        }
    }

    /// Stores the word at `addr`; returns the level that absorbed it.
    ///
    /// A write that misses both levels does **not** allocate (the Pentium
    /// behaviour at the heart of Section 6) and pays the write-buffer
    /// drain cost to DRAM.
    pub fn write_word(&mut self, addr: u64) -> Level {
        self.cycles += self.dtlb.access(addr);
        match self.l1d.write(addr) {
            Access::Hit => Level::L1,
            Access::MissNoAllocate => match self.l2.write(addr) {
                Access::Hit => {
                    self.cycles += self.timing.l2_write_word;
                    Level::L2
                }
                Access::MissNoAllocate => {
                    self.cycles += self.timing.dram_write_word;
                    Level::Dram
                }
                Access::Miss { .. } => unreachable!("L2 does not write-allocate"),
            },
            Access::Miss { .. } => unreachable!("L1 does not write-allocate"),
        }
    }

    /// Loads `n` consecutive words that all lie within one cache line.
    /// Only the first can miss; the rest hit for free.
    pub fn read_words(&mut self, addr: u64, n: u32) -> Level {
        debug_assert!(same_line(
            addr,
            addr + (n.max(1) as u64 - 1) * 4,
            self.l1d.config().line
        ));
        self.read_word(addr)
    }

    /// Stores `n` consecutive words within one cache line, charging the
    /// per-word drain cost for every word when the line is not in L1.
    pub fn write_words(&mut self, addr: u64, n: u32) -> Level {
        debug_assert!(same_line(
            addr,
            addr + (n.max(1) as u64 - 1) * 4,
            self.l1d.config().line
        ));
        let level = self.write_word(addr);
        let extra = n.saturating_sub(1) as u64;
        match level {
            Level::L1 => {}
            Level::L2 => self.cycles += extra * self.timing.l2_write_word,
            Level::Dram => self.cycles += extra * self.timing.dram_write_word,
        }
        level
    }

    /// Software prefetch of the line containing `addr`: implemented by the
    /// paper's trick of loading one word of the destination line so later
    /// stores hit. Charges one extra cycle for the load instruction.
    pub fn prefetch_line(&mut self, addr: u64) {
        self.cycles += 1;
        self.read_word(addr);
    }
}

/// Per-pass counter totals (or deltas between two snapshots), used by the
/// steady-state extrapolation in `measure`.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PassDelta {
    pub(crate) cycles: u64,
    pub(crate) l1: crate::cache::CacheStats,
    pub(crate) l2: crate::cache::CacheStats,
    pub(crate) tlb_hits: u64,
    pub(crate) tlb_misses: u64,
}

impl PassDelta {
    /// The change in every counter since `before`.
    pub(crate) fn since(&self, before: &PassDelta) -> PassDelta {
        let d = |a: crate::cache::CacheStats, b: crate::cache::CacheStats| crate::cache::CacheStats {
            read_hits: a.read_hits - b.read_hits,
            read_misses: a.read_misses - b.read_misses,
            write_hits: a.write_hits - b.write_hits,
            write_misses: a.write_misses - b.write_misses,
            writebacks: a.writebacks - b.writebacks,
        };
        PassDelta {
            cycles: self.cycles - before.cycles,
            l1: d(self.l1, before.l1),
            l2: d(self.l2, before.l2),
            tlb_hits: self.tlb_hits - before.tlb_hits,
            tlb_misses: self.tlb_misses - before.tlb_misses,
        }
    }
}

/// Which level of the hierarchy serviced an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// L1 data cache.
    L1,
    /// Unified board-level L2.
    L2,
    /// Main memory (or the write buffers draining into it).
    Dram,
}

fn same_line(a: u64, b: u64, line: usize) -> bool {
    a / line as u64 == b / line as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_hit_is_free() {
        let mut m = MemSystem::p54c();
        m.read_word(0x1000);
        let after_fill = m.cycles();
        // First touch pays the TLB walk plus the DRAM line fill.
        assert_eq!(
            after_fill,
            MemTiming::p54c().dram_fill + crate::tlb::WALK_CY
        );
        m.read_word(0x1004);
        assert_eq!(m.cycles(), after_fill, "same line: free");
    }

    #[test]
    fn l2_fill_cheaper_than_dram() {
        let mut m = MemSystem::p54c();
        // Bring line into both levels, then force it out of L1 only by
        // touching two conflicting lines (L1 is 2-way, sets 128 * 32B).
        m.read_word(0x0);
        m.read_word(128 * 32); // same L1 set, way 2
        m.read_word(2 * 128 * 32); // evicts 0x0 from L1; L2 still has it
        m.reset_cycles();
        m.read_word(0x0);
        assert_eq!(m.cycles(), MemTiming::p54c().l2_fill);
    }

    #[test]
    fn write_miss_goes_to_dram_every_time() {
        let mut m = MemSystem::p54c();
        m.write_word(0x2000);
        m.write_word(0x2000);
        m.write_word(0x2004);
        // One TLB walk (all in one page), three write-buffer drains.
        assert_eq!(
            m.cycles(),
            3 * MemTiming::p54c().dram_write_word + crate::tlb::WALK_CY
        );
        assert!(!m.l1d().probe(0x2000), "no write-allocate");
    }

    #[test]
    fn prefetch_converts_writes_to_hits() {
        let mut m = MemSystem::p54c();
        m.prefetch_line(0x3000);
        m.reset_cycles();
        for w in 0..8 {
            m.write_word(0x3000 + w * 4);
        }
        assert_eq!(m.cycles(), 0, "all eight word stores hit the fetched line");
    }

    #[test]
    fn dirty_writeback_charged_on_eviction() {
        let mut m = MemSystem::p54c();
        m.read_word(0x0);
        m.write_word(0x0); // line now dirty in L1
        m.read_word(128 * 32);
        m.reset_cycles();
        m.read_word(2 * 128 * 32); // evicts dirty 0x0 (new page: walk)
        let t = MemTiming::p54c();
        assert_eq!(
            m.cycles(),
            t.writeback_l2 + t.dram_fill + crate::tlb::WALK_CY
        );
    }

    #[test]
    fn levels_reported() {
        let mut m = MemSystem::p54c();
        assert_eq!(m.read_word(0x0), Level::Dram);
        assert_eq!(m.read_word(0x0), Level::L1);
        m.read_word(128 * 32);
        m.read_word(2 * 128 * 32);
        assert_eq!(
            m.read_word(0x0),
            Level::L2,
            "evicted from L1 but present in L2"
        );
        assert_eq!(m.write_word(0x9000), Level::Dram);
    }

    #[test]
    fn write_words_charges_per_word_drain() {
        let mut m = MemSystem::p54c();
        let t = MemTiming::p54c();
        m.write_words(0x4000, 4);
        assert_eq!(m.cycles(), 4 * t.dram_write_word + crate::tlb::WALK_CY);
        m.reset_cycles();
        m.read_word(0x5000);
        m.reset_cycles();
        m.write_words(0x5000, 4);
        assert_eq!(m.cycles(), 0, "cached line absorbs all four stores");
    }

    #[test]
    fn read_words_single_fill() {
        let mut m = MemSystem::p54c();
        let t = MemTiming::p54c();
        m.read_words(0x6000, 4);
        assert_eq!(m.cycles(), t.dram_fill + crate::tlb::WALK_CY);
        m.read_words(0x6010, 4);
        assert_eq!(
            m.cycles(),
            t.dram_fill + crate::tlb::WALK_CY,
            "second half of the line is free"
        );
    }

    #[test]
    fn scaled_timing() {
        let t = MemTiming::p54c().scaled(2.0);
        assert_eq!(t.dram_fill, 62);
        assert_eq!(t.l2_write_word, 4);
        let tiny = MemTiming::p54c().scaled(0.0001);
        assert!(tiny.l2_write_word >= 1, "costs never collapse to zero");
    }
}
