//! The P54C data TLB: 64 entries, 4-way set associative, 4 KB pages.
//!
//! A TLB is a cache of page translations, so it reuses the cache model
//! with 4 KB "lines". Misses cost a hardware two-level page-table walk.
//! The effect on the Section 6 sweeps is small but real: buffers beyond
//! 256 KB (64 pages) miss once per page per pass, shaving a few MB/s off
//! the DRAM plateau exactly where the paper's curves flatten.

use crate::cache::{Cache, CacheConfig};

/// Size of an x86 page.
pub const PAGE_BYTES: usize = 4096;

/// Cycles for the hardware page-table walk on a TLB miss (two memory
/// references, usually hitting the caches).
pub const WALK_CY: u64 = 20;

/// The data TLB.
pub struct Tlb {
    entries: Cache,
    misses: u64,
    hits: u64,
}

impl Tlb {
    /// The P54C's 64-entry, 4-way data TLB.
    pub fn p54c_dtlb() -> Tlb {
        Tlb {
            entries: Cache::new(CacheConfig {
                size: 64 * PAGE_BYTES,
                ways: 4,
                line: PAGE_BYTES,
                write_allocate: true, // Translations load on any access.
            }),
            misses: 0,
            hits: 0,
        }
    }

    /// Translates the page containing `addr`; returns the cycle cost
    /// (zero on a hit, the walk on a miss).
    pub fn access(&mut self, addr: u64) -> u64 {
        if self.entries.read(addr).is_hit() {
            self.hits += 1;
            0
        } else {
            self.misses += 1;
            WALK_CY
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Bumps the counters as if `reps` more passes with per-pass deltas
    /// `(hits, misses)` had run (steady-state extrapolation).
    pub(crate) fn add_stats(&mut self, reps: u64, hits: u64, misses: u64) {
        self.hits += reps * hits;
        self.misses += reps * misses;
    }

    /// Appends the TLB's observable state to `out` (see
    /// [`Cache::encode_state`]).
    pub(crate) fn encode_state(&self, out: &mut Vec<u64>) {
        self.entries.encode_state(out);
    }

    /// Offset-relative state encoding (see [`Cache::encode_state_rel`]).
    pub(crate) fn encode_state_rel(&self, out: &mut Vec<u64>, off: u64) {
        self.entries.encode_state_rel(out, off);
    }

    /// The set-preserving address period (see [`Cache::period_bytes`]).
    pub(crate) fn period_bytes(&self) -> u64 {
        self.entries.period_bytes()
    }

    /// Translates the resident translations `off` bytes forward (see
    /// [`Cache::shift_tags`]).
    pub(crate) fn shift_tags(&mut self, off: u64) {
        self.entries.shift_tags(off);
    }

    /// Drops every translation (a context switch on the P54C flushes the
    /// TLB unless global pages are used — 1995 kernels rarely did).
    pub fn flush(&mut self) {
        self.entries.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_64_pages() {
        let mut tlb = Tlb::p54c_dtlb();
        // Touch 64 distinct pages: all miss once, then all hit.
        for p in 0..64u64 {
            assert_eq!(tlb.access(p * PAGE_BYTES as u64), WALK_CY);
        }
        for p in 0..64u64 {
            assert_eq!(tlb.access(p * PAGE_BYTES as u64), 0, "page {p} resident");
        }
        assert_eq!(tlb.stats(), (64, 64));
    }

    #[test]
    fn sixty_fifth_page_evicts() {
        let mut tlb = Tlb::p54c_dtlb();
        for p in 0..65u64 {
            tlb.access(p * PAGE_BYTES as u64);
        }
        // Page 0 shared a set with page 64 (16 sets, 4 ways): touching
        // 65 sequential pages evicts the LRU way of exactly one set.
        let (_, misses) = tlb.stats();
        assert_eq!(misses, 65);
        assert_eq!(
            tlb.access(64 * PAGE_BYTES as u64),
            0,
            "most recent page resident"
        );
    }

    #[test]
    fn same_page_accesses_are_free_after_first() {
        let mut tlb = Tlb::p54c_dtlb();
        assert_eq!(tlb.access(123), WALK_CY);
        assert_eq!(tlb.access(4000), 0, "same 4 KB page");
        assert_eq!(tlb.access(4096), WALK_CY, "next page walks");
    }

    #[test]
    fn flush_forgets_translations() {
        let mut tlb = Tlb::p54c_dtlb();
        tlb.access(0);
        tlb.flush();
        assert_eq!(tlb.access(0), WALK_CY);
    }
}
