//! Generic set-associative cache model with true LRU replacement.
//!
//! The Pentium P54C property that drives the paper's Section 6 results is
//! configured here per cache: **write-allocate off** means a write miss
//! does not bring the line into the cache, so subsequent writes to the
//! same line keep missing and drain through the write buffer at memory
//! speed.

/// Geometry and policy of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (1 = direct mapped).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Whether a write miss allocates the line (the Pentium's L1 does not).
    pub write_allocate: bool,
}

impl CacheConfig {
    /// The Pentium P54C 8 KB, 2-way, 32-byte-line L1 data cache.
    pub fn p54c_l1d() -> CacheConfig {
        CacheConfig {
            size: 8 * 1024,
            ways: 2,
            line: 32,
            write_allocate: false,
        }
    }

    /// The Pentium P54C 8 KB, 2-way, 32-byte-line L1 instruction cache.
    pub fn p54c_l1i() -> CacheConfig {
        CacheConfig {
            size: 8 * 1024,
            ways: 2,
            line: 32,
            write_allocate: false,
        }
    }

    /// The Intel Plato board's 256 KB direct-mapped pipeline-burst L2.
    pub fn plato_l2() -> CacheConfig {
        CacheConfig {
            size: 256 * 1024,
            ways: 1,
            line: 32,
            write_allocate: false,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size / (self.line * self.ways)
    }
}

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent and (for allocating accesses) has been brought
    /// in; `evicted_dirty` reports whether a dirty victim was written back.
    Miss {
        /// A dirty line was evicted to make room.
        evicted_dirty: bool,
    },
    /// The line was absent and, per the no-write-allocate policy, was NOT
    /// brought in; the data goes straight to the next level.
    MissNoAllocate,
}

impl Access {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, Access::Hit)
    }
}

#[derive(Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// Hit/miss counters for assertions and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read hits.
    pub read_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

/// One level of set-associative cache.
///
/// Lines are stored in one flat array (`set * ways + way`) so the per
/// access path — the hottest loop of the memory-bandwidth figures — is a
/// handful of shifts and a short linear scan with no pointer chasing.
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    ways: usize,
    set_mask: usize,
    tag_shift: u32,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// `ways * line`-byte sets, or line size not a power of two).
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(
            cfg.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways >= 1, "cache needs at least one way");
        assert_eq!(
            cfg.size % (cfg.line * cfg.ways),
            0,
            "size must divide into sets"
        );
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            cfg,
            lines: vec![Line::default(); sets * cfg.ways],
            ways: cfg.ways,
            set_mask: sets - 1,
            tag_shift: sets.trailing_zeros(),
            line_shift: cfg.line.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bumps the counters as if `reps` more passes with per-pass delta
    /// `d` had run (steady-state extrapolation in `measure`).
    pub(crate) fn add_stats(&mut self, reps: u64, d: CacheStats) {
        self.stats.read_hits += reps * d.read_hits;
        self.stats.read_misses += reps * d.read_misses;
        self.stats.write_hits += reps * d.write_hits;
        self.stats.write_misses += reps * d.write_misses;
        self.stats.writebacks += reps * d.writebacks;
    }

    /// Invalidates every line (e.g. a fresh run on a cold machine).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr as usize) & self.set_mask;
        let tag = line_addr >> self.tag_shift;
        (set * self.ways, tag)
    }

    /// Appends a normalisation of this cache's observable state to `out`:
    /// per set, the valid lines in most-to-least-recently-used order (the
    /// absolute LRU clock values and the physical way an invalid slot
    /// occupies cannot affect any future access, so they are omitted).
    /// Two caches with equal encodings behave identically forever under
    /// identical access sequences.
    pub(crate) fn encode_state(&self, out: &mut Vec<u64>) {
        self.encode_state_rel(out, 0);
    }

    /// Like [`Cache::encode_state`] but with every tag expressed relative
    /// to byte offset `off` (which must be a multiple of
    /// [`Cache::period_bytes`], so set indices are unaffected). Two
    /// relative encodings at different offsets are equal exactly when one
    /// state is the other translated by the offset difference — the
    /// invariant behind the streaming extrapolation in `routines`.
    pub(crate) fn encode_state_rel(&self, out: &mut Vec<u64>, off: u64) {
        debug_assert_eq!(off % self.period_bytes(), 0, "offset must preserve sets");
        let delta = off >> (self.line_shift + self.tag_shift);
        let mut set: Vec<(u64, u64)> = Vec::with_capacity(self.ways);
        for base in (0..self.lines.len()).step_by(self.ways) {
            set.clear();
            for l in &self.lines[base..base + self.ways] {
                if l.valid {
                    set.push((l.lru, (l.tag.wrapping_sub(delta) << 1) | l.dirty as u64));
                }
            }
            set.sort_unstable_by_key(|&(lru, _)| std::cmp::Reverse(lru));
            out.push(set.len() as u64);
            out.extend(set.iter().map(|&(_, packed)| packed));
        }
    }

    /// The address span of one full trip around the sets (`size / ways`).
    /// Shifting every address by a multiple of this leaves set indices
    /// unchanged and bumps every tag by the same exact amount.
    pub(crate) fn period_bytes(&self) -> u64 {
        1u64 << (self.line_shift + self.tag_shift)
    }

    /// Translates the whole resident state `off` bytes forward: every
    /// valid line's tag advances as if it had been filled from an address
    /// `off` higher. `off` must be a multiple of [`Cache::period_bytes`].
    pub(crate) fn shift_tags(&mut self, off: u64) {
        debug_assert_eq!(off % self.period_bytes(), 0, "offset must preserve sets");
        let delta = off >> (self.line_shift + self.tag_shift);
        for l in &mut self.lines {
            if l.valid {
                l.tag = l.tag.wrapping_add(delta);
            }
        }
    }

    #[inline]
    fn fill(&mut self, base: usize, tag: u64, dirty: bool) -> bool {
        // Prefer an invalid way, then least recently used.
        let mut way = 0;
        let mut best = u64::MAX;
        for (w, l) in self.lines[base..base + self.ways].iter().enumerate() {
            if !l.valid {
                way = w;
                break;
            }
            if l.lru < best {
                best = l.lru;
                way = w;
            }
        }
        let victim = &mut self.lines[base + way];
        let evicted_dirty = victim.valid && victim.dirty;
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        self.clock += 1;
        *victim = Line {
            tag,
            valid: true,
            dirty,
            lru: self.clock,
        };
        evicted_dirty
    }

    /// Performs a read of the line containing `addr`. A miss allocates.
    #[inline]
    pub fn read(&mut self, addr: u64) -> Access {
        let (base, tag) = self.index(addr);
        for l in &mut self.lines[base..base + self.ways] {
            if l.valid && l.tag == tag {
                self.clock += 1;
                l.lru = self.clock;
                self.stats.read_hits += 1;
                return Access::Hit;
            }
        }
        self.stats.read_misses += 1;
        let evicted_dirty = self.fill(base, tag, false);
        Access::Miss { evicted_dirty }
    }

    /// Performs a write to the line containing `addr`.
    ///
    /// On a hit the line is marked dirty. On a miss the behaviour depends
    /// on `write_allocate`: the Pentium-style configuration returns
    /// [`Access::MissNoAllocate`] and leaves the cache untouched.
    #[inline]
    pub fn write(&mut self, addr: u64) -> Access {
        let (base, tag) = self.index(addr);
        for l in &mut self.lines[base..base + self.ways] {
            if l.valid && l.tag == tag {
                self.clock += 1;
                l.lru = self.clock;
                l.dirty = true;
                self.stats.write_hits += 1;
                return Access::Hit;
            }
        }
        self.stats.write_misses += 1;
        if !self.cfg.write_allocate {
            return Access::MissNoAllocate;
        }
        let evicted_dirty = self.fill(base, tag, true);
        Access::Miss { evicted_dirty }
    }

    /// Whether the line containing `addr` is present (no LRU side effect).
    pub fn probe(&self, addr: u64) -> bool {
        let (base, tag) = self.index(addr);
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Number of valid lines currently held; never exceeds capacity.
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 32B lines = 256 bytes.
        Cache::new(CacheConfig {
            size: 256,
            ways: 2,
            line: 32,
            write_allocate: false,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::p54c_l1d().sets(), 128);
        assert_eq!(CacheConfig::plato_l2().sets(), 8192);
        assert_eq!(tiny().config().sets(), 4);
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(
            c.read(0x40),
            Access::Miss {
                evicted_dirty: false
            }
        );
        assert_eq!(c.read(0x40), Access::Hit);
        assert_eq!(c.read(0x5f), Access::Hit, "same 32-byte line");
        assert_eq!(
            c.read(0x60),
            Access::Miss {
                evicted_dirty: false
            },
            "next line"
        );
    }

    #[test]
    fn write_miss_does_not_allocate() {
        let mut c = tiny();
        assert_eq!(c.write(0x100), Access::MissNoAllocate);
        assert_eq!(c.write(0x100), Access::MissNoAllocate, "still not cached");
        assert!(!c.probe(0x100));
        // After a read brings the line in, writes hit.
        assert!(!c.read(0x100).is_hit());
        assert_eq!(c.write(0x100), Access::Hit);
    }

    #[test]
    fn write_allocate_variant_allocates() {
        let mut c = Cache::new(CacheConfig {
            size: 256,
            ways: 2,
            line: 32,
            write_allocate: true,
        });
        assert_eq!(
            c.write(0x100),
            Access::Miss {
                evicted_dirty: false
            }
        );
        assert_eq!(c.write(0x100), Access::Hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with addresses k * 4*32 (4 sets) -> 0x0, 0x80...
        c.read(0x000); // way A
        c.read(0x080); // way B (same set: 0x80/32 = 4, 4 % 4 = 0)
        c.read(0x000); // touch A
        c.read(0x100); // evicts B (LRU)
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.read(0x000);
        c.write(0x000); // dirty
        c.read(0x080);
        match c.read(0x100) {
            // 0x000 is LRU and dirty.
            Access::Miss { evicted_dirty } => assert!(evicted_dirty),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for i in 0..1000u64 {
            c.read(i * 32);
        }
        assert!(c.valid_lines() <= 8);
        assert_eq!(c.valid_lines(), 8, "a big scan fills the cache exactly");
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.read(0);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.probe(0));
    }

    #[test]
    fn stats_count() {
        let mut c = tiny();
        c.read(0);
        c.read(0);
        c.write(0);
        c.write(0x4000);
        let s = c.stats();
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.write_hits, 1);
        assert_eq!(s.write_misses, 1);
    }
}
