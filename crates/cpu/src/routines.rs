//! Models of the memory routines benchmarked in Section 6 of the paper.
//!
//! The paper's custom benchmarks share one structure: an inner loop that
//! handles 16 bytes per iteration, followed by a byte-at-a-time loop for
//! the remaining 0-15 bytes. The byte loop is far slower per byte, which
//! produces the bandwidth dips at small buffer sizes that Section 6.4
//! explains. The prefetching variants load one word of each destination
//! line before storing to it, converting the Pentium's non-allocating
//! write misses into cache hits.
//!
//! All loop-cost constants are in CPU cycles and are calibrated against
//! the plateaus of Figures 2-8 (see `DESIGN.md`).

use crate::memsys::MemSystem;
use tnt_sim::trace::{session, Counter};

/// Bytes handled per iteration of the paper's unrolled inner loop.
pub const CHUNK: u64 = 16;

/// Word size of the 32-bit Pentium.
pub const WORD: u64 = 4;

/// Cycles per 16-byte iteration of the custom read loop (four dual-issued
/// loads plus loop control: the paper measures four words every ~50 ns).
pub const READ_ITER_CY: u64 = 5;

/// Cycles per 16-byte iteration of the custom write loop.
pub const WRITE_ITER_CY: u64 = 5;

/// Cycles per 16-byte iteration of the custom copy loop (four loads and
/// four stores cannot pair as well as pure loads).
pub const COPY_ITER_CY: u64 = 9;

/// Cycles per byte of the remainder loop — the source of the dips.
pub const REMAINDER_BYTE_CY: u64 = 4;

/// Which system library supplied `memset`/`memcpy`. The three libcs of
/// 1995 differ only marginally here: none of them prefetch (the paper's
/// central finding), so they differ in call overhead and loop tightness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LibcVariant {
    /// Linux 1.2.8 + libc 5: slightly tighter hand-written assembly.
    Linux,
    /// FreeBSD 2.0.5R libc.
    FreeBsd,
    /// Solaris 2.4 libc.
    Solaris,
}

impl LibcVariant {
    /// Fixed per-call overhead in cycles.
    pub fn call_overhead_cy(self) -> u64 {
        match self {
            LibcVariant::Linux => 30,
            LibcVariant::FreeBsd => 40,
            LibcVariant::Solaris => 50,
        }
    }

    /// All three variants, in the paper's usual order.
    pub fn all() -> [LibcVariant; 3] {
        [
            LibcVariant::Linux,
            LibcVariant::FreeBsd,
            LibcVariant::Solaris,
        ]
    }
}

/// A memory routine under benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemRoutine {
    /// Figure 2: custom read loop.
    CustomRead,
    /// Figure 4: custom write loop without prefetch.
    CustomWriteNaive,
    /// Figure 5: custom write loop with software prefetch.
    CustomWritePrefetch,
    /// Figure 7: custom copy loop without prefetch.
    CustomCopyNaive,
    /// Figure 8: custom copy loop with software prefetch.
    CustomCopyPrefetch,
    /// Figure 3: the system library's `memset`.
    LibcMemset(LibcVariant),
    /// Figure 6: the system library's `memcpy`.
    LibcMemcpy(LibcVariant),
}

impl MemRoutine {
    /// Whether the routine moves two buffers (copy) or one.
    pub fn is_copy(self) -> bool {
        matches!(
            self,
            MemRoutine::CustomCopyNaive
                | MemRoutine::CustomCopyPrefetch
                | MemRoutine::LibcMemcpy(_)
        )
    }
}

/// One pass of the routine over a `len`-byte buffer at `src` (and, for
/// copies, a destination at `dst`). Buffers are 32-byte aligned, as the
/// benchmark's allocator guarantees.
pub fn run_pass(mem: &mut MemSystem, routine: MemRoutine, src: u64, dst: u64, len: u64) {
    debug_assert_eq!(src % 32, 0, "source must be line aligned");
    debug_assert_eq!(dst % 32, 0, "destination must be line aligned");
    match routine {
        MemRoutine::CustomRead => custom_read(mem, src, len),
        MemRoutine::CustomWriteNaive => custom_write(mem, src, len, false),
        MemRoutine::CustomWritePrefetch => custom_write(mem, src, len, true),
        MemRoutine::CustomCopyNaive => custom_copy(mem, src, dst, len, false),
        MemRoutine::CustomCopyPrefetch => custom_copy(mem, src, dst, len, true),
        MemRoutine::LibcMemset(v) => libc_memset(mem, src, len, v),
        MemRoutine::LibcMemcpy(v) => libc_memcpy(mem, src, dst, len, v),
    }
}

/// Runs `body(mem, off)` for every `off` in `0, CHUNK, .. < main`,
/// detecting when the streaming access pattern has become periodic and
/// accounting the remaining whole periods by multiplication.
///
/// While a routine streams a buffer far larger than the hierarchy, the
/// cache/TLB state is *shift-periodic*: after one full period (the lcm of
/// the set-mapping periods, a power of two for every level), the state is
/// the previous state with every resident tag advanced by one period.
/// The loop body is a pure function of `off` with uniform per-chunk
/// structure, so once the offset-relative state at a period boundary
/// matches the previous boundary, every further period must repeat the
/// same hits, misses and cycles. The skipped periods are accounted by
/// multiplying the measured per-period delta and advancing resident tags
/// with `shift_tags` — an exact shortcut, bit-identical to simulating
/// every chunk (same guarantee as the pass-level shortcut in `measure`).
fn stream_main(mem: &mut MemSystem, main: u64, mut body: impl FnMut(&mut MemSystem, u64)) {
    let seg = mem.stream_period_bytes();
    let mut off = 0u64;
    // Only engage once there is room for a warm-up segment, a measured
    // segment, and at least one segment to skip.
    if main >= 3 * seg {
        let mut sig_prev: Vec<u64> = Vec::new();
        let mut sig_cur: Vec<u64> = Vec::new();
        while off < seg {
            body(mem, off);
            off += CHUNK;
        }
        mem.encode_stream_state(&mut sig_prev, off);
        while main - off >= seg {
            let before = mem.counters();
            let end = off + seg;
            while off < end {
                body(mem, off);
                off += CHUNK;
            }
            sig_cur.clear();
            mem.encode_stream_state(&mut sig_cur, off);
            if sig_cur == sig_prev {
                let reps = (main - off) / seg;
                if reps > 0 {
                    let delta = mem.counters().since(&before);
                    mem.skip_stream_segments(reps, &delta, seg);
                    off += reps * seg;
                }
                break;
            }
            std::mem::swap(&mut sig_prev, &mut sig_cur);
        }
    }
    while off < main {
        body(mem, off);
        off += CHUNK;
    }
}

fn custom_read(mem: &mut MemSystem, base: u64, len: u64) {
    let main = len - len % CHUNK;
    stream_main(mem, main, |mem, off| {
        mem.charge(READ_ITER_CY);
        mem.read_words(base + off, 4);
    });
    remainder_read(mem, base + main, len - main);
}

fn custom_write(mem: &mut MemSystem, base: u64, len: u64, prefetch: bool) {
    let line = 32;
    let main = len - len % CHUNK;
    stream_main(mem, main, |mem, off| {
        mem.charge(WRITE_ITER_CY);
        let addr = base + off;
        if prefetch && addr.is_multiple_of(line) {
            mem.prefetch_line(addr);
        }
        mem.write_words(addr, 4);
    });
    remainder_write(mem, base + main, len - main);
}

fn custom_copy(mem: &mut MemSystem, src: u64, dst: u64, len: u64, prefetch: bool) {
    let line = 32;
    let main = len - len % CHUNK;
    stream_main(mem, main, |mem, off| {
        mem.charge(COPY_ITER_CY);
        if prefetch && (dst + off).is_multiple_of(line) {
            mem.prefetch_line(dst + off);
        }
        mem.read_words(src + off, 4);
        mem.write_words(dst + off, 4);
    });
    // Remainder: read a byte, write a byte.
    let rem_base = main;
    for b in 0..(len - main) {
        mem.charge(2 * REMAINDER_BYTE_CY);
        mem.read_words(src + rem_base + b, 1);
        mem.write_words(dst + rem_base + b, 1);
    }
}

fn libc_memset(mem: &mut MemSystem, base: u64, len: u64, variant: LibcVariant) {
    mem.charge(variant.call_overhead_cy());
    // `rep stosl`-style fill: slightly tighter than the custom loop, and
    // the tail is handled at word speed (no slow byte loop).
    let main = len - len % CHUNK;
    stream_main(mem, main, |mem, off| {
        mem.charge(4);
        mem.write_words(base + off, 4);
    });
    let rem = len - main;
    if rem > 0 {
        mem.charge(rem);
        mem.write_words(base + main, rem.div_ceil(WORD) as u32);
    }
}

fn libc_memcpy(mem: &mut MemSystem, src: u64, dst: u64, len: u64, variant: LibcVariant) {
    mem.charge(variant.call_overhead_cy());
    let main = len - len % CHUNK;
    stream_main(mem, main, |mem, off| {
        mem.charge(COPY_ITER_CY);
        mem.read_words(src + off, 4);
        mem.write_words(dst + off, 4);
    });
    let rem = len - main;
    if rem > 0 {
        mem.charge(2 * rem);
        mem.read_words(src + main, rem.div_ceil(WORD) as u32);
        mem.write_words(dst + main, rem.div_ceil(WORD) as u32);
    }
}

fn remainder_read(mem: &mut MemSystem, base: u64, rem: u64) {
    for b in 0..rem {
        mem.charge(REMAINDER_BYTE_CY);
        mem.read_words(base + b, 1);
    }
}

fn remainder_write(mem: &mut MemSystem, base: u64, rem: u64) {
    for b in 0..rem {
        mem.charge(REMAINDER_BYTE_CY);
        mem.write_words(base + b, 1);
    }
}

/// Result of one bandwidth measurement.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthPoint {
    /// Buffer size in bytes.
    pub buf_bytes: u64,
    /// Total bytes transferred (copies count each byte once, matching the
    /// paper: a 160 MB/s copy is "320 MB/s of total bandwidth").
    pub bytes: u64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Bandwidth in 2^20-byte megabytes per second.
    pub mb_per_sec: f64,
}

/// Where the benchmark's buffers live: contiguous, line-aligned, as the
/// original C benchmark's allocator produced.
fn buffer_layout(buf: u64) -> (u64, u64) {
    let src = 0x0010_0000;
    let dst = src + buf.next_multiple_of(32) + 8 * 32;
    (src, dst)
}

/// Measures the bandwidth of `routine` on a `buf`-byte buffer, reusing the
/// buffer until at least `total` bytes have been transferred — exactly the
/// methodology of Section 6 (8 MB of traffic per measurement).
pub fn measure(mem: &mut MemSystem, routine: MemRoutine, buf: u64, total: u64) -> BandwidthPoint {
    assert!(buf > 0, "buffer must be non-empty");
    mem.flush();
    mem.reset_cycles();
    let (l1_before, l2_before) = (mem.l1d().stats(), mem.l2().stats());
    let passes = total.div_ceil(buf).max(1);
    let (src, dst) = buffer_layout(buf);
    // Every pass runs the same access sequence, so the cache/TLB state
    // converges to a fixed point after a pass or two. Once the state at
    // the end of a pass exactly matches the state at the end of the
    // previous pass (LRU order normalised), every further pass must
    // repeat the same hits, misses and cycles — so the remaining passes
    // are accounted for by multiplication instead of simulation. This is
    // an exact shortcut, not an approximation: totals and final cache
    // state are bit-identical to running every pass.
    let mut sig_prev: Vec<u64> = Vec::new();
    let mut sig_cur: Vec<u64> = Vec::new();
    mem.encode_state(&mut sig_prev);
    let mut done = 0u64;
    while done < passes {
        let before = mem.counters();
        run_pass(mem, routine, src, dst, buf);
        done += 1;
        if done == passes {
            break;
        }
        sig_cur.clear();
        mem.encode_state(&mut sig_cur);
        if sig_cur == sig_prev {
            let delta = mem.counters().since(&before);
            mem.skip_steady_passes(passes - done, &delta);
            break;
        }
        std::mem::swap(&mut sig_prev, &mut sig_cur);
    }
    let bytes = passes * buf;
    let cycles = mem.cycles();
    // This crate has no Sim — the bandwidth loops run outside simulated
    // time — so a profiling session sees them only through the counter
    // bank: miss totals per level plus the cycles the memory system ate.
    if session::active() {
        let (l1, l2) = (mem.l1d().stats(), mem.l2().stats());
        let misses = |after: crate::CacheStats, before: crate::CacheStats| {
            (after.read_misses - before.read_misses) + (after.write_misses - before.write_misses)
        };
        session::add_counter(Counter::L1Misses, misses(l1, l1_before));
        session::add_counter(Counter::L2Misses, misses(l2, l2_before));
        session::add_counter(Counter::MemStallCycles, cycles);
    }
    let secs = cycles as f64 / crate::CPU_HZ as f64;
    BandwidthPoint {
        buf_bytes: buf,
        bytes,
        cycles,
        mb_per_sec: bytes as f64 / (1024.0 * 1024.0) / secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memsys::MemSystem;

    const TEST_TOTAL: u64 = 1 << 20; // 1 MB of traffic keeps tests fast.

    fn bw(routine: MemRoutine, buf: u64) -> f64 {
        let mut mem = MemSystem::p54c();
        measure(&mut mem, routine, buf, TEST_TOTAL).mb_per_sec
    }

    #[test]
    fn read_shows_three_plateaus() {
        let l1 = bw(MemRoutine::CustomRead, 4 * 1024);
        let l2 = bw(MemRoutine::CustomRead, 64 * 1024);
        let dram = bw(MemRoutine::CustomRead, 1 << 20);
        assert!(
            l1 > 280.0 && l1 < 340.0,
            "L1 read plateau ~300+ MB/s, got {l1}"
        );
        assert!(
            l2 > 95.0 && l2 < 125.0,
            "L2 read plateau ~110 MB/s, got {l2}"
        );
        assert!(
            dram > 65.0 && dram < 85.0,
            "DRAM read plateau ~75 MB/s, got {dram}"
        );
        assert!(l1 > l2 && l2 > dram);
    }

    #[test]
    fn memset_never_reaches_fifty() {
        for buf in [1024u64, 8 * 1024, 64 * 1024, 1 << 20] {
            for v in LibcVariant::all() {
                let b = bw(MemRoutine::LibcMemset(v), buf);
                assert!(b < 50.0, "memset({v:?}, {buf}) = {b} MB/s, paper says <50");
                assert!(b > 30.0, "memset should still be tens of MB/s, got {b}");
            }
        }
    }

    #[test]
    fn naive_write_resembles_memset() {
        let custom = bw(MemRoutine::CustomWriteNaive, 16 * 1024);
        let libc = bw(MemRoutine::LibcMemset(LibcVariant::Linux), 16 * 1024);
        assert!(
            (custom - libc).abs() / libc < 0.25,
            "custom {custom} vs libc {libc}"
        );
    }

    #[test]
    fn prefetch_write_peaks_near_310() {
        let peak = bw(MemRoutine::CustomWritePrefetch, 4 * 1024);
        assert!(
            peak > 260.0 && peak < 340.0,
            "prefetch write peak ~310, got {peak}"
        );
        let naive = bw(MemRoutine::CustomWriteNaive, 4 * 1024);
        assert!(peak > 5.0 * naive, "prefetch is a dramatic improvement");
    }

    #[test]
    fn prefetch_write_helps_beyond_cache_too() {
        let pf = bw(MemRoutine::CustomWritePrefetch, 1 << 20);
        let naive = bw(MemRoutine::CustomWriteNaive, 1 << 20);
        assert!(
            pf > naive,
            "prefetch {pf} should beat naive {naive} even in DRAM"
        );
    }

    #[test]
    fn copy_matches_paper_shape() {
        let naive = bw(MemRoutine::CustomCopyNaive, 4 * 1024);
        assert!(
            naive > 30.0 && naive < 55.0,
            "naive copy ~40 MB/s, got {naive}"
        );
        let pf = bw(MemRoutine::CustomCopyPrefetch, 4 * 1024);
        assert!(
            pf > 140.0 && pf < 190.0,
            "prefetch copy ~160 MB/s, got {pf}"
        );
        let libc = bw(MemRoutine::LibcMemcpy(LibcVariant::FreeBsd), 4 * 1024);
        assert!(
            (libc - naive).abs() / naive < 0.25,
            "memcpy {libc} resembles naive {naive}"
        );
    }

    #[test]
    fn remainder_loop_causes_dip() {
        // A 527-byte buffer leaves 15 bytes for the slow byte loop.
        let aligned = bw(MemRoutine::CustomRead, 512);
        let ragged = bw(MemRoutine::CustomRead, 527);
        assert!(
            ragged < aligned * 0.9,
            "15 remainder bytes should dip bandwidth: {ragged} vs {aligned}"
        );
        // The dip washes out for large buffers.
        let big_aligned = bw(MemRoutine::CustomRead, 65536);
        let big_ragged = bw(MemRoutine::CustomRead, 65536 + 15);
        assert!((big_ragged - big_aligned).abs() / big_aligned < 0.02);
    }

    #[test]
    fn libc_variants_rank_by_overhead() {
        // Small buffers magnify per-call overhead: Linux < FreeBSD < Solaris.
        let linux = bw(MemRoutine::LibcMemset(LibcVariant::Linux), 256);
        let freebsd = bw(MemRoutine::LibcMemset(LibcVariant::FreeBsd), 256);
        let solaris = bw(MemRoutine::LibcMemset(LibcVariant::Solaris), 256);
        assert!(linux > freebsd && freebsd > solaris);
    }

    #[test]
    fn measure_reports_consistent_fields() {
        let mut mem = MemSystem::p54c();
        let p = measure(&mut mem, MemRoutine::CustomRead, 1000, 10_000);
        assert_eq!(p.buf_bytes, 1000);
        assert_eq!(p.bytes, 10_000);
        assert!(p.cycles > 0);
        let recomputed = p.bytes as f64 / (1024.0 * 1024.0) / (p.cycles as f64 / 1e8);
        assert!((p.mb_per_sec - recomputed).abs() < 1e-9);
    }

    #[test]
    fn copy_buffers_do_not_overlap() {
        let (src, dst) = buffer_layout(4096);
        assert!(dst >= src + 4096);
        assert_eq!(src % 32, 0);
        assert_eq!(dst % 32, 0);
    }
}
