#![warn(missing_docs)]

//! Pentium P54C machine model: caches, memory timing, and the memory
//! routines of Section 6 of the paper.
//!
//! The benchmarking platform of *"A Performance Comparison of UNIX
//! Operating Systems on the Pentium"* was an Intel Pentium P54C at
//! 100 MHz with 8 KB 2-way L1 caches, a 256 KB board-level L2, and —
//! crucially — **no write-allocate** on write misses. This crate models
//! that memory system at line granularity and reproduces Figures 2-8:
//! the three read plateaus, the sub-50 MB/s `memset`/`memcpy` results,
//! and the dramatic effect of software prefetching.
//!
//! # Examples
//!
//! ```
//! use tnt_cpu::{measure, MemRoutine, MemSystem};
//!
//! let mut mem = MemSystem::p54c();
//! let p = measure(&mut mem, MemRoutine::CustomRead, 4 * 1024, 1 << 20);
//! assert!(p.mb_per_sec > 280.0, "L1-resident reads run at ~300+ MB/s");
//! ```

mod cache;
mod kcopy;
mod memsys;
mod routines;
mod tlb;

pub use cache::{Access, Cache, CacheConfig, CacheStats};
pub use kcopy::{
    cached_copy, checksum, copyin_out, uncached_copy, CACHED_COPY_CY_PER_BYTE,
    CHECKSUM_CY_PER_BYTE, UNCACHED_COPY_CY_PER_BYTE,
};
pub use memsys::{Level, MemSystem, MemTiming};
pub use routines::{
    measure, run_pass, BandwidthPoint, LibcVariant, MemRoutine, CHUNK, COPY_ITER_CY, READ_ITER_CY,
    REMAINDER_BYTE_CY, WORD, WRITE_ITER_CY,
};
pub use tlb::{Tlb, PAGE_BYTES, WALK_CY};

/// Clock frequency of the modelled CPU (re-exported from `tnt-sim`).
pub use tnt_sim::CPU_HZ;

/// Main-memory size of the benchmarking platform `tnt.stanford.edu`.
pub const MAIN_MEMORY_BYTES: u64 = 32 * 1024 * 1024;
