//! Closed-form kernel data-movement costs derived from the routine model.
//!
//! The kernels of 1995 moved data with exactly the non-prefetching copy
//! loops measured in Section 6, so the OS models charge data copies
//! (pipe transfers, buffer-cache-to-user reads, network buffer copies) at
//! the steady-state rates this module exposes rather than re-simulating
//! the caches access by access.

use tnt_sim::Cycles;

/// Steady-state cost of the non-prefetching copy loop when the destination
/// misses the cache: `COPY_ITER_CY + 4 * dram_write_word` cycles per 16
/// bytes = 37/16 cycles per byte (~41 MB/s at 100 MHz), matching the
/// paper's `memcpy` figure.
pub const UNCACHED_COPY_CY_PER_BYTE: f64 = 37.0 / 16.0;

/// Cost per byte when both source and destination are warm in the cache:
/// the bare loop, 9/16 cycles per byte (~170 MB/s).
pub const CACHED_COPY_CY_PER_BYTE: f64 = 9.0 / 16.0;

/// Cost per byte for a one's-complement checksum pass over a warm buffer
/// (load + add-with-carry, ~half the cached copy cost).
pub const CHECKSUM_CY_PER_BYTE: f64 = 0.55;

/// Cycles to copy `bytes` between a user buffer and a kernel buffer.
///
/// Kernel buffers are recycled fast enough to be partially warm; the model
/// blends one third cached with two thirds uncached traffic, which lands
/// at ~55 MB/s — consistent with the pipe bandwidths of Table 4 once the
/// per-chunk syscall costs are added.
#[must_use]
pub fn copyin_out(bytes: u64) -> Cycles {
    let per_byte = (2.0 * UNCACHED_COPY_CY_PER_BYTE + CACHED_COPY_CY_PER_BYTE) / 3.0;
    Cycles((bytes as f64 * per_byte).round() as u64)
}

/// Cycles for an entirely cache-warm copy of `bytes` (e.g. buffer-cache
/// hit feeding a small read).
#[must_use]
pub fn cached_copy(bytes: u64) -> Cycles {
    Cycles((bytes as f64 * CACHED_COPY_CY_PER_BYTE).round() as u64)
}

/// Cycles for an entirely cache-cold copy of `bytes`.
#[must_use]
pub fn uncached_copy(bytes: u64) -> Cycles {
    Cycles((bytes as f64 * UNCACHED_COPY_CY_PER_BYTE).round() as u64)
}

/// Cycles for an Internet checksum over `bytes`.
#[must_use]
pub fn checksum(bytes: u64) -> Cycles {
    Cycles((bytes as f64 * CHECKSUM_CY_PER_BYTE).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_rates_are_ordered() {
        let n = 64 * 1024;
        assert!(cached_copy(n) < copyin_out(n));
        assert!(copyin_out(n) < uncached_copy(n));
        assert!(checksum(n) < cached_copy(n) * 2);
    }

    #[test]
    fn uncached_rate_matches_memcpy_plateau() {
        // 1 MB at the uncached rate should take ~24 ms => ~41 MB/s.
        let t = uncached_copy(1 << 20);
        let mb_s = 1.0 / t.as_secs();
        assert!(mb_s > 38.0 && mb_s < 46.0, "got {mb_s} MB/s");
    }

    #[test]
    fn copyin_lands_mid_fifties() {
        let t = copyin_out(1 << 20);
        let mb_s = 1.0 / t.as_secs();
        assert!(mb_s > 48.0 && mb_s < 65.0, "got {mb_s} MB/s");
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        assert_eq!(copyin_out(0), Cycles::ZERO);
        assert_eq!(cached_copy(0), Cycles::ZERO);
        assert_eq!(checksum(0), Cycles::ZERO);
    }
}
