#![warn(missing_docs)]

//! Cooperative state-machine processes for crowd-scale simulation.
//!
//! The baton engine in `tnt-sim` gives every simulated process a real OS
//! thread — perfect fidelity for the paper's handful of benchmark
//! processes, but a hard wall at a few thousand. This crate provides the
//! second process model: a **lite process** is a resumable state machine
//! implementing [`LiteProc`], and a [`Core`] multiplexes thousands of
//! them through a single run queue with per-process CPU accounting.
//!
//! The crate is deliberately engine-agnostic: durations and instants are
//! raw cycle counts (`u64`) and wait-queue identities are opaque tokens,
//! so the core is unit-testable without a simulation. `tnt_sim::proc`
//! re-exports these types next to the glue (`LiteScheduler`) that runs a
//! `Core` inside one engine slot, sharing the engine's run policy, timer
//! queue, trace attribution and fault plane.
//!
//! A lite process never parks a host thread: blocking is expressed by
//! *returning* [`Step::Block`] from `poll`, and the scheduler resumes the
//! state machine when the wait is over. Between two `poll` returns a lite
//! process is atomic with respect to every other simulated process,
//! exactly like the threaded model's run-until-block discipline.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a lite process within one [`Core`] (a dense slot index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lid(pub u32);

/// Why a lite process is giving up the CPU until a wakeup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaitReason {
    /// Block for a relative duration in cycles (a device wait, not CPU).
    Sleep(u64),
    /// Block until an absolute simulated instant in cycles.
    Until(u64),
    /// Block on an engine wait queue until another process signals it.
    Queue {
        /// Raw wait-queue token (`WaitId::raw()` on the engine side).
        queue: u64,
        /// Shows up in deadlock diagnostics, like `Sim::wait_on`'s reason.
        reason: &'static str,
    },
    /// Block on up to two engine wait queues at once, with an optional
    /// absolute deadline — the lite analogue of `select(2)`. The process
    /// resumes on the first signal on any armed queue or when the
    /// deadline passes, whichever comes first; [`Core::wake_of`] says
    /// which. A lite client awaiting reply-or-timeout needs one slot for
    /// this, not a second watchdog process.
    Any {
        /// Raw wait-queue tokens to arm; `None` slots are skipped.
        queues: [Option<u64>; 2],
        /// Absolute instant (cycles) at which the wait times out.
        deadline: Option<u64>,
        /// Shows up in deadlock diagnostics, like `Sim::wait_on`'s reason.
        reason: &'static str,
    },
}

/// How the last blocking wait of a lite process ended. Read it via
/// [`Core::wake_of`] right after the process resumes to tell a queue
/// signal from a deadline on a [`WaitReason::Any`] wait.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Wake {
    /// The process has not completed a blocking wait yet.
    None,
    /// A signal arrived on the queue at this index of the wait's
    /// `queues` array (always 0 for single-queue waits).
    Queue(u8),
    /// The sleep instant or `Any` deadline passed with no signal.
    Timeout,
}

/// What a lite process asks its scheduler to do next.
///
/// `poll` is called repeatedly; `Charge` keeps the process on the CPU
/// (the scheduler charges the cycles and polls again immediately), the
/// other variants end the timeslice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// Burn CPU: charge this many cycles to the simulated clock and to
    /// this process, then poll again without a reschedule.
    Charge(u64),
    /// Stop running until the wait is satisfied.
    Block(WaitReason),
    /// Go to the back of the run queue (another process may run).
    Yield,
    /// The process has finished; its slot is retired and its state
    /// machine dropped.
    Done,
}

/// A cooperative lite process: a resumable state machine.
///
/// `C` is the context the scheduler threads through every poll (in
/// `tnt-sim` it is `ProcCtx`, carrying the `Sim` handle). Implementations
/// must be deterministic given the same sequence of polls.
pub trait LiteProc<C>: Send {
    /// Runs the process until it would block, yield, or finish.
    fn poll(&mut self, ctx: &mut C) -> Step;
}

/// Closures are lite processes: handy for tests and simple crowds.
impl<C, F: FnMut(&mut C) -> Step + Send> LiteProc<C> for F {
    fn poll(&mut self, ctx: &mut C) -> Step {
        self(ctx)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    Runnable,
    Running,
    Sleeping,
    Waiting(&'static str),
    Done,
}

struct Slot<C> {
    /// `None` once the process finished — the state machine is dropped
    /// eagerly so a crowd's memory stays flat as processes retire.
    machine: Option<Box<dyn LiteProc<C>>>,
    state: SlotState,
    /// Virtual pid used for trace attribution on the engine side.
    pid: u32,
    /// CPU cycles charged while this process ran.
    cpu: u64,
    /// Bumped on every blocking transition; deadline-heap entries carry
    /// the generation they were armed under, so a deadline left over
    /// from an earlier wait can never fire into a later one.
    gen: u32,
    /// How the most recent blocking wait ended.
    wake: Wake,
}

/// The lite-process scheduler core: slots, a FIFO run queue, and a sleep
/// heap. Engine-agnostic and fully deterministic — every structure
/// iterates in insertion or (instant, seq) order.
pub struct Core<C> {
    slots: Vec<Slot<C>>,
    run: VecDeque<Lid>,
    /// Min-heap of `(wake_at, seq, lid)`; `seq` makes ties FIFO.
    sleepers: BinaryHeap<Reverse<(u64, u64, Lid)>>,
    /// Min-heap of `Any`-wait deadlines `(at, seq, lid, gen)`; entries
    /// are validated against the slot's current generation when popped.
    timeouts: BinaryHeap<Reverse<(u64, u64, Lid, u32)>>,
    /// Lids whose `Any` deadline fired since the last drain.
    timed_out: Vec<Lid>,
    sleep_seq: u64,
    live: usize,
    polls: u64,
}

impl<C> Default for Core<C> {
    fn default() -> Core<C> {
        Core::new()
    }
}

impl<C> Core<C> {
    /// Creates an empty core.
    pub fn new() -> Core<C> {
        Core {
            slots: Vec::new(),
            run: VecDeque::new(),
            sleepers: BinaryHeap::new(),
            timeouts: BinaryHeap::new(),
            timed_out: Vec::new(),
            sleep_seq: 0,
            live: 0,
            polls: 0,
        }
    }

    /// Adds a lite process; it is immediately runnable. `pid` is the
    /// virtual process id used for attribution (allocate it from the
    /// engine so lite and threaded pids share one namespace).
    pub fn spawn(&mut self, pid: u32, machine: Box<dyn LiteProc<C>>) -> Lid {
        let lid = Lid(self.slots.len() as u32);
        self.slots.push(Slot {
            machine: Some(machine),
            state: SlotState::Runnable,
            pid,
            cpu: 0,
            gen: 0,
            wake: Wake::None,
        });
        self.live += 1;
        self.run.push_back(lid);
        lid
    }

    /// Pops the next runnable process and marks it running.
    pub fn next_runnable(&mut self) -> Option<Lid> {
        let lid = self.run.pop_front()?;
        self.slots[lid.0 as usize].state = SlotState::Running;
        self.polls += 1;
        Some(lid)
    }

    /// Polls the process (it must be the one just returned by
    /// [`Core::next_runnable`]).
    pub fn poll(&mut self, lid: Lid, ctx: &mut C) -> Step {
        self.slots[lid.0 as usize]
            .machine
            .as_mut()
            .expect("polled a finished lite process")
            .poll(ctx)
    }

    /// Requeues a running process at the back of the run queue.
    pub fn yield_to_back(&mut self, lid: Lid) {
        self.slots[lid.0 as usize].state = SlotState::Runnable;
        self.run.push_back(lid);
    }

    /// Puts a running process to sleep until the absolute instant `at`.
    pub fn sleep_until(&mut self, lid: Lid, at: u64) {
        let slot = &mut self.slots[lid.0 as usize];
        slot.state = SlotState::Sleeping;
        slot.gen = slot.gen.wrapping_add(1);
        let seq = self.sleep_seq;
        self.sleep_seq += 1;
        self.sleepers.push(Reverse((at, seq, lid)));
    }

    /// Marks a running process as blocked on an external wait queue;
    /// the owner must arrange the wakeup (see `Sim::lite_wait_enqueue`).
    pub fn wait(&mut self, lid: Lid, reason: &'static str) {
        let slot = &mut self.slots[lid.0 as usize];
        slot.state = SlotState::Waiting(reason);
        slot.gen = slot.gen.wrapping_add(1);
    }

    /// Marks a running process as blocked on a [`WaitReason::Any`] wait:
    /// one or more external queues (the owner arms those separately, see
    /// `Sim::lite_wait_enqueue`) plus an optional deadline entered into
    /// the timeout heap. The first of queue signal ([`Core::wake_queue`])
    /// and deadline wins; [`Core::wake_of`] reports which.
    pub fn wait_any(&mut self, lid: Lid, reason: &'static str, deadline: Option<u64>) {
        let slot = &mut self.slots[lid.0 as usize];
        slot.state = SlotState::Waiting(reason);
        slot.gen = slot.gen.wrapping_add(1);
        let gen = slot.gen;
        if let Some(at) = deadline {
            let seq = self.sleep_seq;
            self.sleep_seq += 1;
            self.timeouts.push(Reverse((at, seq, lid, gen)));
        }
    }

    /// Retires a finished process and drops its state machine.
    pub fn finish(&mut self, lid: Lid) {
        let slot = &mut self.slots[lid.0 as usize];
        slot.state = SlotState::Done;
        slot.machine = None;
        self.live -= 1;
    }

    /// Adds CPU cycles to a process's account.
    pub fn charge(&mut self, lid: Lid, cy: u64) {
        self.slots[lid.0 as usize].cpu += cy;
    }

    /// Wakes a blocked process (sleep or queue wait). Returns `false`
    /// for stale wakeups — the process already ran on, or finished.
    pub fn wake(&mut self, lid: Lid) -> bool {
        self.wake_queue(lid, 0)
    }

    /// Wakes a blocked process via the `idx`-th queue of its wait set,
    /// recording [`Wake::Queue`]`(idx)` for [`Core::wake_of`]. Returns
    /// `false` for stale wakeups.
    pub fn wake_queue(&mut self, lid: Lid, idx: u8) -> bool {
        let slot = match self.slots.get_mut(lid.0 as usize) {
            Some(s) => s,
            None => return false,
        };
        match slot.state {
            SlotState::Sleeping | SlotState::Waiting(_) => {
                slot.state = SlotState::Runnable;
                slot.wake = Wake::Queue(idx);
                self.run.push_back(lid);
                true
            }
            _ => false,
        }
    }

    /// How the most recent completed wait of `lid` ended — queue signal
    /// (with the index into its `Any` wait set) or timeout.
    pub fn wake_of(&self, lid: Lid) -> Wake {
        self.slots[lid.0 as usize].wake
    }

    /// Lids whose [`WaitReason::Any`] deadline fired since the last
    /// drain, in firing order. The owner uses this to cancel the queue
    /// parkings the wait armed (see `Sim::lite_wait_cancel`).
    pub fn drain_timed_out(&mut self) -> Vec<Lid> {
        std::mem::take(&mut self.timed_out)
    }

    /// Wakes every sleeper and every expired `Any` deadline whose
    /// instant is `<= now`, each heap in (instant, seq) order. Returns
    /// how many woke.
    pub fn fire_due(&mut self, now: u64) -> usize {
        let mut n = 0;
        while let Some(Reverse((at, _, _))) = self.sleepers.peek() {
            if *at > now {
                break;
            }
            let Reverse((_, _, lid)) = self.sleepers.pop().expect("peeked sleeper vanished");
            // Skip entries whose process was woken some other way.
            if self.slots[lid.0 as usize].state == SlotState::Sleeping {
                self.slots[lid.0 as usize].state = SlotState::Runnable;
                self.slots[lid.0 as usize].wake = Wake::Timeout;
                self.run.push_back(lid);
                n += 1;
            }
        }
        while let Some(Reverse((at, _, _, _))) = self.timeouts.peek() {
            if *at > now {
                break;
            }
            let Reverse((_, _, lid, gen)) = self.timeouts.pop().expect("peeked timeout vanished");
            // Valid only while the process is still in the wait that
            // armed this deadline: same generation, still waiting.
            let slot = &mut self.slots[lid.0 as usize];
            if matches!(slot.state, SlotState::Waiting(_)) && slot.gen == gen {
                slot.state = SlotState::Runnable;
                slot.wake = Wake::Timeout;
                self.run.push_back(lid);
                self.timed_out.push(lid);
                n += 1;
            }
        }
        n
    }

    /// The earliest pending sleep instant or `Any` deadline, pruning
    /// stale entries from both heaps.
    pub fn next_wake(&mut self) -> Option<u64> {
        let mut sleep_at = None;
        while let Some(Reverse((at, _, lid))) = self.sleepers.peek() {
            if self.slots[lid.0 as usize].state == SlotState::Sleeping {
                sleep_at = Some(*at);
                break;
            }
            self.sleepers.pop();
        }
        let mut timeout_at = None;
        while let Some(&Reverse((at, _, lid, gen))) = self.timeouts.peek() {
            let slot = &self.slots[lid.0 as usize];
            if matches!(slot.state, SlotState::Waiting(_)) && slot.gen == gen {
                timeout_at = Some(at);
                break;
            }
            self.timeouts.pop();
        }
        match (sleep_at, timeout_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of not-yet-finished processes.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Number of processes in the run queue right now.
    pub fn runnable(&self) -> usize {
        self.run.len()
    }

    /// Total `next_runnable` picks — the lite analogue of the engine's
    /// dispatch count.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// The virtual pid of a process.
    pub fn pid(&self, lid: Lid) -> u32 {
        self.slots[lid.0 as usize].pid
    }

    /// CPU cycles charged to a process so far.
    pub fn cpu(&self, lid: Lid) -> u64 {
        self.slots[lid.0 as usize].cpu
    }

    /// Per-process `(pid, cpu)` accounting in slot order — byte-stable
    /// across same-seed runs, so tests can checksum it.
    pub fn cpu_by_pid(&self) -> Vec<(u32, u64)> {
        self.slots.iter().map(|s| (s.pid, s.cpu)).collect()
    }

    /// Reasons of processes currently blocked on external queues, in
    /// slot order (deadlock diagnostics).
    pub fn waiting_reasons(&self) -> Vec<&'static str> {
        self.slots
            .iter()
            .filter_map(|s| match s.state {
                SlotState::Waiting(r) => Some(r),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that charges `burn` cycles then yields, `rounds` times.
    struct Burner {
        rounds: u32,
        burn: u64,
        charged: bool,
    }

    impl LiteProc<()> for Burner {
        fn poll(&mut self, _ctx: &mut ()) -> Step {
            if self.rounds == 0 {
                return Step::Done;
            }
            if !self.charged {
                self.charged = true;
                return Step::Charge(self.burn);
            }
            self.charged = false;
            self.rounds -= 1;
            Step::Yield
        }
    }

    fn burner(rounds: u32, burn: u64) -> Box<dyn LiteProc<()>> {
        Box::new(Burner {
            rounds,
            burn,
            charged: false,
        })
    }

    /// Drives a core to completion against a virtual clock, applying
    /// steps the way a scheduler would. Returns (clock, poll count).
    fn drive(core: &mut Core<()>) -> (u64, u64) {
        let mut now = 0u64;
        loop {
            core.fire_due(now);
            match core.next_runnable() {
                Some(lid) => loop {
                    match core.poll(lid, &mut ()) {
                        Step::Charge(cy) => {
                            now += cy;
                            core.charge(lid, cy);
                        }
                        Step::Yield => {
                            core.yield_to_back(lid);
                            break;
                        }
                        Step::Block(WaitReason::Sleep(d)) => {
                            core.sleep_until(lid, now + d);
                            break;
                        }
                        Step::Block(WaitReason::Until(at)) => {
                            core.sleep_until(lid, at);
                            break;
                        }
                        Step::Block(WaitReason::Queue { .. })
                        | Step::Block(WaitReason::Any { .. }) => {
                            panic!("no external queues in this harness")
                        }
                        Step::Done => {
                            core.finish(lid);
                            break;
                        }
                    }
                },
                None => {
                    if core.live() == 0 {
                        return (now, core.polls());
                    }
                    let at = core.next_wake().expect("deadlock in test harness");
                    now = now.max(at);
                }
            }
        }
    }

    #[test]
    fn burners_serialize_cpu() {
        let mut core = Core::new();
        for pid in 1..=3u32 {
            core.spawn(pid, burner(10, 7));
        }
        let (clock, _) = drive(&mut core);
        assert_eq!(clock, 3 * 10 * 7);
        assert_eq!(core.live(), 0);
        assert_eq!(
            core.cpu_by_pid(),
            vec![(1, 70), (2, 70), (3, 70)],
            "per-process accounting"
        );
    }

    #[test]
    fn run_queue_is_fifo() {
        let mut core: Core<()> = Core::new();
        let mut order = Vec::new();
        let a = core.spawn(1, burner(1, 1));
        let b = core.spawn(2, burner(1, 1));
        while let Some(lid) = core.next_runnable() {
            order.push(lid);
            core.finish(lid);
        }
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn sleepers_wake_in_instant_then_fifo_order() {
        let mut core: Core<()> = Core::new();
        let a = core.spawn(1, burner(1, 1));
        let b = core.spawn(2, burner(1, 1));
        let c = core.spawn(3, burner(1, 1));
        for lid in [a, b, c] {
            assert_eq!(core.next_runnable(), Some(lid));
        }
        core.sleep_until(b, 50);
        core.sleep_until(a, 100);
        core.sleep_until(c, 50); // ties broken by arming order
        assert_eq!(core.next_wake(), Some(50));
        assert_eq!(core.fire_due(60), 2);
        assert_eq!(core.next_runnable(), Some(b));
        assert_eq!(core.next_runnable(), Some(c));
        assert_eq!(core.next_runnable(), None);
        assert_eq!(core.fire_due(100), 1);
        assert_eq!(core.next_runnable(), Some(a));
    }

    #[test]
    fn stale_wakeups_are_ignored() {
        let mut core: Core<()> = Core::new();
        let a = core.spawn(1, burner(1, 1));
        assert!(!core.wake(a), "runnable proc is not wakeable");
        assert_eq!(core.next_runnable(), Some(a));
        core.wait(a, "token");
        assert!(core.wake(a));
        assert!(!core.wake(a), "second wake is stale");
        assert_eq!(core.next_runnable(), Some(a));
        core.finish(a);
        assert!(!core.wake(a), "finished proc is not wakeable");
        assert!(!core.wake(Lid(99)), "unknown lid is not wakeable");
    }

    #[test]
    fn any_deadline_fires_and_is_reported() {
        let mut core: Core<()> = Core::new();
        let a = core.spawn(1, burner(1, 1));
        assert_eq!(core.next_runnable(), Some(a));
        core.wait_any(a, "reply or timeout", Some(500));
        assert_eq!(core.next_wake(), Some(500));
        assert_eq!(core.fire_due(499), 0);
        assert_eq!(core.fire_due(500), 1);
        assert_eq!(core.wake_of(a), Wake::Timeout);
        assert_eq!(core.drain_timed_out(), vec![a]);
        assert!(core.drain_timed_out().is_empty(), "drain consumes");
        assert_eq!(core.next_runnable(), Some(a));
    }

    #[test]
    fn any_queue_signal_beats_the_deadline() {
        let mut core: Core<()> = Core::new();
        let a = core.spawn(1, burner(1, 1));
        assert_eq!(core.next_runnable(), Some(a));
        core.wait_any(a, "reply or timeout", Some(500));
        assert!(core.wake_queue(a, 1));
        assert_eq!(core.wake_of(a), Wake::Queue(1));
        // The armed deadline is now stale: it must neither wake the
        // process again nor hold the next-wake horizon down.
        assert_eq!(core.next_wake(), None);
        assert_eq!(core.fire_due(1_000), 0);
        assert!(core.drain_timed_out().is_empty());
    }

    #[test]
    fn stale_deadline_cannot_fire_into_a_later_wait() {
        let mut core: Core<()> = Core::new();
        let a = core.spawn(1, burner(1, 1));
        assert_eq!(core.next_runnable(), Some(a));
        // First wait: deadline at 500, but a queue signal wins at 100.
        core.wait_any(a, "first", Some(500));
        assert!(core.wake_queue(a, 0));
        assert_eq!(core.next_runnable(), Some(a));
        // Second wait (no deadline). The leftover entry at 500 carries
        // the old generation and must not wake it.
        core.wait_any(a, "second", None);
        assert_eq!(core.fire_due(600), 0);
        assert_eq!(core.next_wake(), None);
        assert!(core.drain_timed_out().is_empty());
        // A real signal still does.
        assert!(core.wake_queue(a, 0));
    }

    #[test]
    fn plain_waits_also_invalidate_older_deadlines() {
        let mut core: Core<()> = Core::new();
        let a = core.spawn(1, burner(1, 1));
        assert_eq!(core.next_runnable(), Some(a));
        core.wait_any(a, "first", Some(500));
        assert!(core.wake_queue(a, 0));
        assert_eq!(core.next_runnable(), Some(a));
        // A plain single-queue wait bumps the generation too, so the
        // stale 500 deadline cannot steal its wakeup.
        core.wait(a, "second");
        assert_eq!(core.fire_due(600), 0);
        assert!(core.drain_timed_out().is_empty());
        assert!(core.wake(a));
        assert_eq!(core.wake_of(a), Wake::Queue(0));
    }

    #[test]
    fn next_wake_mins_sleepers_and_deadlines() {
        let mut core: Core<()> = Core::new();
        let a = core.spawn(1, burner(1, 1));
        let b = core.spawn(2, burner(1, 1));
        assert_eq!(core.next_runnable(), Some(a));
        assert_eq!(core.next_runnable(), Some(b));
        core.sleep_until(a, 900);
        core.wait_any(b, "replies", Some(300));
        assert_eq!(core.next_wake(), Some(300));
        assert_eq!(core.fire_due(300), 1);
        assert_eq!(core.next_wake(), Some(900));
    }

    #[test]
    fn finish_drops_the_state_machine() {
        struct DropFlag(std::sync::Arc<std::sync::atomic::AtomicBool>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        impl LiteProc<()> for DropFlag {
            fn poll(&mut self, _: &mut ()) -> Step {
                Step::Done
            }
        }
        let dropped = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut core: Core<()> = Core::new();
        let lid = core.spawn(1, Box::new(DropFlag(dropped.clone())));
        core.next_runnable();
        core.finish(lid);
        assert!(
            dropped.load(std::sync::atomic::Ordering::SeqCst),
            "finish must free the machine so crowd memory stays flat"
        );
    }

    #[test]
    fn closures_are_lite_procs() {
        let mut left = 3u32;
        let mut core: Core<()> = Core::new();
        core.spawn(
            1,
            Box::new(move |_: &mut ()| {
                if left == 0 {
                    Step::Done
                } else {
                    left -= 1;
                    Step::Charge(5)
                }
            }),
        );
        let (clock, _) = drive(&mut core);
        assert_eq!(clock, 15);
    }

    #[test]
    fn mixed_sleep_and_yield_interleave_deterministically() {
        // Two identical cores must evolve identically.
        let build = || {
            let mut core = Core::new();
            for pid in 1..=5u32 {
                core.spawn(
                    pid,
                    Box::new(SleepyBurner {
                        rounds: 20,
                        phase: 0,
                    }),
                );
            }
            core
        };
        struct SleepyBurner {
            rounds: u32,
            phase: u8,
        }
        impl LiteProc<()> for SleepyBurner {
            fn poll(&mut self, _: &mut ()) -> Step {
                if self.rounds == 0 {
                    return Step::Done;
                }
                self.phase = (self.phase + 1) % 3;
                match self.phase {
                    1 => Step::Charge(11),
                    2 => Step::Block(WaitReason::Sleep(1_000)),
                    _ => {
                        self.rounds -= 1;
                        Step::Yield
                    }
                }
            }
        }
        let (mut a, mut b) = (build(), build());
        let ra = drive(&mut a);
        let rb = drive(&mut b);
        assert_eq!(ra, rb);
        assert_eq!(a.cpu_by_pid(), b.cpu_by_pid());
    }
}
