//! The farm itself: N client hosts driving one server host through a
//! switched topology, under an open-loop arrival process.
//!
//! One simulation = one OS personality at one offered rate. The crowd
//! of per-request clients runs as lite processes (one engine slot, so
//! 10k-request crowds stay cheap); the server is a pool of threaded
//! worker processes on the second cluster machine, sharing that
//! machine's scheduler personality — Linux's O(n) `schedule()`, the
//! Solaris dispatch table — and one disk.
//!
//! A request's life: sleep until its precomputed arrival instant, charge
//! the client-side send path, transmit through the [`Switch`], land in
//! the server's bounded accept backlog, get served (recv path + service
//! CPU + any synchronous metadata writes + reply path, with the
//! one-packet-window delayed-ack stall where the OS has one), ride the
//! switch back, charge the client-side receive path, record sojourn
//! time. Every loss — fault plane, drop-tail queue, backlog overflow —
//! is healed by the client's exponential-backoff retransmission, up to a
//! try budget; the sojourn clock keeps running from the *first* arrival,
//! which is what makes the tail tell the truth about overload.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use tnt_fs::FsParams;
use tnt_net::{Delivery, NetCosts, Switch};
use tnt_os::{boot_cluster, boot_cluster_with_faults, Kernel, Os, OsCosts, UProc};
use tnt_sim::fault::FaultProfile;
use tnt_sim::proc::{block_any, LiteProc, LiteScheduler, ProcCtx, Step, Wake, WaitReason};
use tnt_sim::{Cycles, Sim, WaitId, CPU_HZ};

use crate::hist::LatHist;
use crate::load::Arrivals;

/// One synchronous FFS metadata write: short seek plus rotation and the
/// transfer, on the server's single disk.
const SYNC_WRITE_CY: u64 = 400_000; // 4 ms at 100 MHz

/// Salt for the arrival-schedule RNG stream (distinct from every fault
/// plane salt, so composing them never correlates the draws).
const ARRIVAL_SALT: u64 = 0xFA12;

/// What the clients ask the server to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// TCP request/reply: small request, bulk reply — where Linux
    /// 1.2.8's one-packet send window stalls a delayed-ack round per
    /// window of reply.
    Tcp,
    /// NFS-style write RPC over UDP: bulk request, tiny reply, plus the
    /// OS's synchronous metadata writes serialising on the server disk —
    /// where FFS's sync creates invert the TCP ranking.
    Nfs,
}

impl Workload {
    /// Stable label for reports and CSV columns.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Tcp => "tcp",
            Workload::Nfs => "nfs",
        }
    }
}

/// Full description of one farm run.
#[derive(Clone, Debug)]
pub struct FarmConfig {
    /// OS personality of every machine in the farm (homogeneous rig,
    /// like the paper's).
    pub os: Os,
    /// Traffic type.
    pub workload: Workload,
    /// Arrival process driving the open-loop generator.
    pub arrivals: Arrivals,
    /// Total requests in the run.
    pub requests: usize,
    /// Client hosts sharing the offered load round-robin.
    pub client_hosts: usize,
    /// Server worker processes.
    pub workers: usize,
    /// Server accept-backlog bound; overflow drops the request (the
    /// client's RTO is the only signal).
    pub backlog: usize,
    /// Request payload bytes.
    pub req_bytes: u64,
    /// Reply payload bytes.
    pub reply_bytes: u64,
    /// Application service CPU per request, cycles.
    pub service_cy: u64,
    /// Access-link speed, bits/second (every host gets one).
    pub link_bps: f64,
    /// Drop-tail queue bound per link direction, frames.
    pub queue_frames: usize,
    /// Initial retransmission timeout, cycles (doubles per retry).
    pub rto_cy: u64,
    /// Total transmission attempts before the client gives up.
    pub max_tries: u32,
    /// Simulation seed.
    pub seed: u64,
}

impl FarmConfig {
    /// The TCP request/reply rig: 512-byte requests, 4 KB replies over
    /// switched 100 Mb/s links, 500 ms initial RTO.
    pub fn tcp(os: Os, rps: f64, requests: usize, seed: u64) -> FarmConfig {
        FarmConfig {
            os,
            workload: Workload::Tcp,
            arrivals: Arrivals::Poisson { rps },
            requests,
            client_hosts: 8,
            workers: 8,
            backlog: 64,
            req_bytes: 512,
            reply_bytes: 4096,
            service_cy: 30_000,
            link_bps: 100e6,
            queue_frames: 64,
            rto_cy: 50_000_000, // 500 ms
            max_tries: 4,
            seed,
        }
    }

    /// The NFS write-RPC rig: 8 KB writes, 128-byte replies, 700 ms
    /// initial RTO (the NFS client's), sync metadata per the OS's FFS.
    pub fn nfs(os: Os, rps: f64, requests: usize, seed: u64) -> FarmConfig {
        FarmConfig {
            workload: Workload::Nfs,
            req_bytes: 8192,
            reply_bytes: 128,
            service_cy: 20_000,
            rto_cy: 70_000_000, // 700 ms
            ..FarmConfig::tcp(os, rps, requests, seed)
        }
    }
}

/// What one farm run measured.
#[derive(Clone, Debug)]
pub struct FarmReport {
    /// Nominal offered rate, requests/second.
    pub offered_rps: f64,
    /// Requests that completed (reply fully received).
    pub completed: u64,
    /// Requests abandoned after the try budget.
    pub failed: u64,
    /// Retransmissions (excluding first attempts).
    pub retries: u64,
    /// Requests dropped at the server's accept backlog.
    pub backlog_drops: u64,
    /// Frames dropped by full switch queues.
    pub queue_drops: u64,
    /// Frames dropped by the fault plane.
    pub fault_drops: u64,
    /// Completions per second of simulated time, measured to the last
    /// completion — the capacity actually achieved at this offered rate.
    pub achieved_rps: f64,
    /// Sojourn-time distribution of completed requests, in cycles.
    pub hist: LatHist,
    /// Simulated duration of the whole run.
    pub elapsed: Cycles,
    /// Lite dispatches spent driving the client crowd.
    pub lite_polls: u64,
}

/// Per-request CPU/IO costs along the path, derived once per run from
/// the OS's calibrated tables.
#[derive(Clone, Copy)]
struct PathCosts {
    client_send: u64,
    client_recv: u64,
    server_recv: u64,
    server_send: u64,
    /// Delayed-ack stall per reply: idle worker time, not CPU.
    stall: u64,
    /// Synchronous metadata-write time per request on the server disk.
    disk: u64,
}

fn path_costs(cfg: &FarmConfig) -> PathCosts {
    let oc = OsCosts::for_os(cfg.os);
    let nc = NetCosts::for_os(cfg.os);
    let base = oc.trap_cy + oc.syscall_overhead_cy;
    match cfg.workload {
        Workload::Tcp => {
            let t = nc.tcp;
            let req_segs = cfg.req_bytes.div_ceil(t.mss).max(1);
            let reply_segs = cfg.reply_bytes.div_ceil(t.mss).max(1);
            // One ack round per window of reply: with Linux's window ==
            // mss that is one per segment; the big-window systems see
            // one per reply.
            let windows = cfg.reply_bytes.div_ceil(t.window).max(1);
            PathCosts {
                client_send: base
                    + req_segs * t.send_seg_cy
                    + (cfg.req_bytes as f64 * t.send_per_byte_cy) as u64,
                client_recv: base
                    + reply_segs * t.recv_seg_cy
                    + (cfg.reply_bytes as f64 * t.recv_per_byte_cy) as u64
                    + windows * t.ack_cy,
                server_recv: base
                    + req_segs * t.recv_seg_cy
                    + (cfg.req_bytes as f64 * t.recv_per_byte_cy) as u64,
                server_send: base
                    + reply_segs * t.send_seg_cy
                    + (cfg.reply_bytes as f64 * t.send_per_byte_cy) as u64
                    + windows * t.ack_cy,
                stall: (windows - 1) * t.ack_delay_cy,
                disk: 0,
            }
        }
        Workload::Nfs => {
            let u = nc.udp;
            let req_frags = cfg.req_bytes.div_ceil(u.mtu).max(1);
            let reply_frags = cfg.reply_bytes.div_ceil(u.mtu).max(1);
            let sync_writes = u64::from(FsParams::for_os(cfg.os).sync_create);
            PathCosts {
                client_send: base
                    + u.send_fixed_cy
                    + req_frags * u.per_frag_cy
                    + (cfg.req_bytes as f64 * u.send_per_byte_cy) as u64,
                client_recv: base
                    + u.recv_fixed_cy
                    + (cfg.reply_bytes as f64 * u.recv_per_byte_cy) as u64,
                server_recv: base
                    + u.recv_fixed_cy
                    + (cfg.req_bytes as f64 * u.recv_per_byte_cy) as u64,
                server_send: base
                    + u.send_fixed_cy
                    + reply_frags * u.per_frag_cy
                    + (cfg.reply_bytes as f64 * u.send_per_byte_cy) as u64,
                stall: 0,
                disk: sync_writes * SYNC_WRITE_CY,
            }
        }
    }
}

/// A request waiting in the server's accept backlog.
struct Req {
    host: u32,
    reply_q: WaitId,
}

/// Mutable farm state: one lock, only ever taken by the process holding
/// the baton, so acquisition order is simulated-time order.
struct ServerState {
    /// Accept backlog keyed by `(available_at, seq)` — workers serve in
    /// arrival order, ties broken by admission order.
    pending: BTreeMap<(u64, u64), Req>,
    seq: u64,
    done: bool,
    total: u64,
    completed: u64,
    failed: u64,
    retries: u64,
    backlog_drops: u64,
    /// Instant of the latest completion (for achieved throughput).
    last_done: u64,
    hist: LatHist,
}

struct Shared {
    work_q: WaitId,
    state: Mutex<ServerState>,
    /// Busy-until of the server's single disk: synchronous metadata
    /// writes from all workers serialise here.
    disk: Mutex<Cycles>,
}

/// Everything a client or worker needs, shared by `Arc`.
struct Env {
    switch: Switch,
    shared: Arc<Shared>,
    costs: PathCosts,
    server_host: u32,
    backlog: usize,
    req_bytes: u64,
    reply_bytes: u64,
    service_cy: u64,
    rto_cy: u64,
    max_tries: u32,
}

enum CState {
    Sleep,
    Send,
    Transmit,
    Await,
    Recv,
}

/// One request's client side, as a lite state machine.
struct Client {
    env: Arc<Env>,
    host: u32,
    arrival: u64,
    reply_q: WaitId,
    tries: u32,
    state: CState,
}

impl Client {
    fn retire(&self, ctx: &ProcCtx, sojourn: Option<u64>) {
        let sim = ctx.sim();
        let now = sim.now().0;
        let mut st = self.env.shared.state.lock();
        match sojourn {
            Some(s) => {
                st.completed += 1;
                st.hist.record(s.max(1));
                st.last_done = st.last_done.max(now);
            }
            None => st.failed += 1,
        }
        let all_done = st.completed + st.failed == st.total;
        if all_done {
            st.done = true;
        }
        drop(st);
        if all_done {
            sim.wakeup_all(self.env.shared.work_q);
        }
    }
}

impl LiteProc<ProcCtx> for Client {
    fn poll(&mut self, ctx: &mut ProcCtx) -> Step {
        loop {
            match self.state {
                CState::Sleep => {
                    // Open loop: the send instant is fixed by the
                    // arrival schedule, whatever the server is doing.
                    self.state = CState::Send;
                    return Step::Block(WaitReason::Until(self.arrival));
                }
                CState::Send => {
                    self.state = CState::Transmit;
                    return Step::Charge(self.env.costs.client_send);
                }
                CState::Transmit => {
                    let sim = ctx.sim();
                    let sent = self.env.switch.send(
                        sim,
                        self.host,
                        self.env.server_host,
                        self.env.req_bytes,
                    );
                    if let Delivery::Delivered(at) = sent {
                        let mut st = self.env.shared.state.lock();
                        if st.pending.len() >= self.env.backlog {
                            // Overloaded accept queue: silently dropped,
                            // like a SYN that missed the listen backlog.
                            st.backlog_drops += 1;
                        } else {
                            let seq = st.seq;
                            st.seq += 1;
                            st.pending.insert(
                                (at.0, seq),
                                Req {
                                    host: self.host,
                                    reply_q: self.reply_q,
                                },
                            );
                            drop(st);
                            sim.wakeup_one_at(self.env.shared.work_q, at);
                        }
                    }
                    // Whether or not the frame survived, the client can
                    // only wait: reply, or exponential-backoff RTO.
                    self.state = CState::Await;
                    let rto = Cycles(self.env.rto_cy << self.tries);
                    return block_any(ctx, &[self.reply_q], Some(rto), "farm: reply or rto");
                }
                CState::Await => match ctx.wake() {
                    Wake::Queue(_) => {
                        self.state = CState::Recv;
                        return Step::Charge(self.env.costs.client_recv);
                    }
                    _ => {
                        self.tries += 1;
                        if self.tries >= self.env.max_tries {
                            self.retire(ctx, None);
                            return Step::Done;
                        }
                        self.env.shared.state.lock().retries += 1;
                        self.state = CState::Send;
                    }
                },
                CState::Recv => {
                    let sojourn = ctx.sim().now().0.saturating_sub(self.arrival);
                    self.retire(ctx, Some(sojourn));
                    return Step::Done;
                }
            }
        }
    }
}

/// One server worker: threaded process on the server machine, so every
/// dispatch pays that machine's scheduler personality.
fn worker_loop(p: &UProc, env: &Arc<Env>) {
    let sim = p.sim();
    loop {
        enum Next {
            Serve(Req),
            Park,
            Exit,
        }
        let next = {
            let mut st = env.shared.state.lock();
            if st.done {
                Next::Exit
            } else {
                let now = sim.now().0;
                match st.pending.iter().next().map(|(&k, _)| k) {
                    Some((avail, seq)) if avail <= now => match st.pending.remove(&(avail, seq)) {
                        Some(req) => Next::Serve(req),
                        None => Next::Park,
                    },
                    // Nothing ripe: a `wakeup_one_at` timer is armed for
                    // every queued arrival, so parking is safe.
                    _ => Next::Park,
                }
            }
        };
        match next {
            Next::Exit => break,
            Next::Park => sim.wait_on(env.shared.work_q, "farm: worker idle"),
            Next::Serve(req) => {
                p.compute(Cycles(env.costs.server_recv));
                p.compute(Cycles(env.service_cy));
                if env.costs.disk > 0 {
                    // Synchronous metadata: reserve the single disk and
                    // block until our writes have settled.
                    let until = {
                        let mut d = env.shared.disk.lock();
                        let start = sim.now().max(*d);
                        *d = start + Cycles(env.costs.disk);
                        *d
                    };
                    sim.sleep_until(until);
                }
                p.compute(Cycles(env.costs.server_send));
                if env.costs.stall > 0 {
                    // One-packet window: the worker sits in the delayed
                    // ack wait; the CPU is free but the worker is not.
                    sim.sleep(Cycles(env.costs.stall));
                }
                match env
                    .switch
                    .send(sim, env.server_host, req.host, env.reply_bytes)
                {
                    Delivery::Delivered(at) => sim.wakeup_one_at(req.reply_q, at),
                    Delivery::Dropped => {} // client RTO heals it
                }
            }
        }
    }
}

/// Runs the farm under the ambient fault profile (whatever the harness
/// armed — `--faults off` draws nothing).
pub fn run_farm(cfg: &FarmConfig) -> FarmReport {
    let (sim, kernels) = boot_cluster(&[cfg.os, cfg.os], cfg.seed);
    run_on(cfg, sim, kernels)
}

/// Runs the farm under an explicit fault profile (degraded-mode
/// capacity curves).
pub fn run_farm_with_faults(cfg: &FarmConfig, profile: FaultProfile) -> FarmReport {
    let (sim, kernels) = boot_cluster_with_faults(&[cfg.os, cfg.os], cfg.seed, profile);
    run_on(cfg, sim, kernels)
}

fn run_on(cfg: &FarmConfig, sim: Sim, kernels: Vec<Kernel>) -> FarmReport {
    assert!(cfg.requests > 0 && cfg.client_hosts > 0 && cfg.workers > 0);
    assert!(cfg.max_tries > 0 && cfg.backlog > 0);
    let costs = path_costs(cfg);
    // Hosts 0..N are clients, host N is the server.
    let switch = Switch::new(cfg.client_hosts + 1, cfg.link_bps, cfg.queue_frames);
    let shared = Arc::new(Shared {
        work_q: sim.new_queue(),
        state: Mutex::new(ServerState {
            pending: BTreeMap::new(),
            seq: 0,
            done: false,
            total: cfg.requests as u64,
            completed: 0,
            failed: 0,
            retries: 0,
            backlog_drops: 0,
            last_done: 0,
            hist: LatHist::new(),
        }),
        disk: Mutex::new(Cycles::ZERO),
    });
    let env = Arc::new(Env {
        switch: switch.clone(),
        shared: shared.clone(),
        costs,
        server_host: cfg.client_hosts as u32,
        backlog: cfg.backlog,
        req_bytes: cfg.req_bytes,
        reply_bytes: cfg.reply_bytes,
        service_cy: cfg.service_cy,
        rto_cy: cfg.rto_cy,
        max_tries: cfg.max_tries,
    });

    // The client crowd: machine 0's lite scheduler, one state machine
    // per request, round-robin across the client hosts.
    let arrivals = cfg.arrivals.instants(cfg.requests, cfg.seed, ARRIVAL_SALT);
    let mut sched = LiteScheduler::new(&sim);
    for (i, at) in arrivals.iter().enumerate() {
        let reply_q = sim.new_queue();
        sched.spawn(
            &format!("rq{i}"),
            Box::new(Client {
                env: env.clone(),
                host: (i % cfg.client_hosts) as u32,
                arrival: *at,
                reply_q,
                tries: 0,
                state: CState::Sleep,
            }),
        );
    }
    let handle = sched.start("farm-clients");

    // The server pool: threaded procs on machine 1.
    for w in 0..cfg.workers {
        let env = env.clone();
        kernels[1].spawn_user(format!("worker{w}"), move |p| worker_loop(&p, &env));
    }

    let elapsed = match sim.run() {
        Ok(e) => e,
        Err(e) => panic!("farm simulation failed: {e}"),
    };
    let stats = handle.stats();
    let st = shared.state.lock();
    let achieved_rps = if st.completed > 0 && st.last_done > 0 {
        st.completed as f64 * CPU_HZ as f64 / st.last_done as f64
    } else {
        0.0
    };
    FarmReport {
        offered_rps: cfg.arrivals.nominal_rps(),
        completed: st.completed,
        failed: st.failed,
        retries: st.retries,
        backlog_drops: st.backlog_drops,
        queue_drops: switch.queue_drops(),
        fault_drops: switch.fault_drops(),
        achieved_rps,
        hist: st.hist.clone(),
        elapsed,
        lite_polls: stats.polls,
    }
}
