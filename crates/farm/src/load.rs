//! Open-loop arrival processes: deterministic, seed-salted request
//! schedules.
//!
//! The load generator is *open-loop* (wrk2-style): arrival instants are
//! computed up front from the process definition and a salted seed, so
//! they do not depend on server progress. A saturated server therefore
//! keeps receiving work at the offered rate — queues grow, tails
//! explode — instead of the closed-loop coordination that hides
//! saturation by slowing the clients down.

use tnt_sim::CPU_HZ;

/// A small deterministic generator (splitmix64) private to the load
/// plane: arrival schedules must not perturb the simulation RNG, and
/// the same (seed, salt) must give the same schedule on every host.
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A stream salted so different planes draw independently.
    pub fn new(seed: u64, salt: u64) -> Rng64 {
        Rng64 {
            state: seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// An arrival process: how request instants are laid out in time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrivals {
    /// Evenly spaced arrivals at `rps` requests/second.
    Fixed {
        /// Offered rate, requests per second.
        rps: f64,
    },
    /// Poisson arrivals (exponential gaps) at mean `rps`.
    Poisson {
        /// Mean offered rate, requests per second.
        rps: f64,
    },
    /// Rate ramping linearly from `from_rps` to `to_rps` across the run
    /// — sweeps the knee inside a single simulation.
    Ramp {
        /// Offered rate at the first request.
        from_rps: f64,
        /// Offered rate at the last request.
        to_rps: f64,
    },
}

impl Arrivals {
    /// The nominal offered rate (mean over the run), requests/second.
    pub fn nominal_rps(&self) -> f64 {
        match *self {
            Arrivals::Fixed { rps } | Arrivals::Poisson { rps } => rps,
            Arrivals::Ramp { from_rps, to_rps } => (from_rps + to_rps) / 2.0,
        }
    }

    /// The first `n` absolute arrival instants in cycles, sorted
    /// non-decreasing. Deterministic in `(self, n, seed, salt)` and
    /// independent of everything the simulation does with them.
    pub fn instants(&self, n: usize, seed: u64, salt: u64) -> Vec<u64> {
        let mut rng = Rng64::new(seed, salt);
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0f64;
        for i in 0..n {
            let rps = match *self {
                Arrivals::Fixed { rps } | Arrivals::Poisson { rps } => rps,
                Arrivals::Ramp { from_rps, to_rps } => {
                    let frac = if n > 1 { i as f64 / (n - 1) as f64 } else { 0.0 };
                    from_rps + (to_rps - from_rps) * frac
                }
            };
            assert!(rps > 0.0, "arrival rate must be positive");
            let gap_secs = match *self {
                Arrivals::Poisson { .. } => {
                    // Exponential inter-arrival; 1 - u is in (0, 1].
                    -(1.0 - rng.next_f64()).ln() / rps
                }
                _ => 1.0 / rps,
            };
            t += gap_secs;
            out.push((t * CPU_HZ as f64) as u64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_arrivals_are_evenly_spaced() {
        let a = Arrivals::Fixed { rps: 1_000.0 };
        let ts = a.instants(5, 42, 0);
        // 1000 rps at 100 MHz = one arrival per 100_000 cycles.
        assert_eq!(ts, vec![100_000, 200_000, 300_000, 400_000, 500_000]);
    }

    #[test]
    fn poisson_arrivals_are_seeded_and_salted() {
        let a = Arrivals::Poisson { rps: 500.0 };
        let x = a.instants(200, 7, 1);
        assert_eq!(x, a.instants(200, 7, 1), "same seed, same schedule");
        assert_ne!(x, a.instants(200, 8, 1), "seed matters");
        assert_ne!(x, a.instants(200, 7, 2), "salt matters");
        assert!(x.windows(2).all(|w| w[0] <= w[1]), "sorted");
        // Mean gap within 15% of nominal over 200 draws.
        let mean_gap = *x.last().unwrap() as f64 / x.len() as f64;
        let want = CPU_HZ as f64 / 500.0;
        assert!((mean_gap - want).abs() / want < 0.15, "mean gap {mean_gap}");
    }

    #[test]
    fn ramp_speeds_up_over_the_run() {
        let a = Arrivals::Ramp {
            from_rps: 100.0,
            to_rps: 1_000.0,
        };
        let ts = a.instants(100, 0, 0);
        let first_gap = ts[1] - ts[0];
        let last_gap = ts[99] - ts[98];
        assert!(
            first_gap > 5 * last_gap,
            "ramp must tighten gaps: {first_gap} vs {last_gap}"
        );
        assert!((a.nominal_rps() - 550.0).abs() < 1e-9);
    }
}
