//! tnt-farm: the internet-server load lab.
//!
//! The paper's microbenchmarks say *how fast each primitive is*; this
//! crate asks the question a 1996 webmaster or NFS admin would: **how
//! many clients can one Pentium server running each OS actually carry,
//! and what does the latency tail look like on the way down?**
//!
//! Three planes compose:
//!
//! * **Topology** ([`tnt_net::Switch`]): N client hosts and one server
//!   host on per-host access links through a store-and-forward switch —
//!   bandwidth serialisation and bounded drop-tail queues per link
//!   direction.
//! * **Load** ([`Arrivals`]): open-loop, wrk2-style. Arrival instants
//!   are precomputed from a salted seed, so clients keep offering work
//!   at the nominal rate no matter how saturated the server is —
//!   coordinated omission is impossible by construction.
//! * **Measurement** ([`LatHist`]): a dependency-free HDR-style
//!   log-bucket histogram of per-request sojourn times with exact count
//!   conservation under merge, reporting p50/p95/p99/p999.
//!
//! [`run_farm`] ties them together over the calibrated OS personalities:
//! the server machine pays its own scheduler dispatch costs, its TCP
//! stack's window/ack behaviour (Linux 1.2.8's one-packet window), its
//! UDP fragmentation path, and its filesystem's synchronous metadata
//! writes — so capacity and tail curves *diverge by OS* for the same
//! mechanical reasons the paper's Tables 5–6 do.

mod farm;
mod hist;
mod load;

pub use farm::{run_farm, run_farm_with_faults, FarmConfig, FarmReport, Workload};
pub use hist::LatHist;
pub use load::{Arrivals, Rng64};

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_os::Os;
    use tnt_sim::fault::FaultProfile;

    /// Compact fingerprint of everything a report says; equality of two
    /// fingerprints is equality of runs for determinism purposes.
    fn fingerprint(r: &FarmReport) -> Vec<u64> {
        vec![
            r.completed,
            r.failed,
            r.retries,
            r.backlog_drops,
            r.queue_drops,
            r.fault_drops,
            r.hist.p50(),
            r.hist.p95(),
            r.hist.p99(),
            r.hist.p999(),
            r.elapsed.0,
            r.achieved_rps.to_bits(),
        ]
    }

    #[test]
    fn below_the_knee_everyone_completes_quickly() {
        for os in [Os::Linux, Os::FreeBsd, Os::Solaris] {
            let r = run_farm(&FarmConfig::tcp(os, 200.0, 150, 11));
            assert_eq!(r.completed, 150, "{os:?}: all requests must finish");
            assert_eq!(r.failed, 0, "{os:?}");
            assert_eq!(r.retries, 0, "{os:?}: no overload, no retries");
            // Well under one RTO: a lightly loaded server answers in
            // single-digit milliseconds.
            assert!(
                r.hist.p99() < 5_000_000,
                "{os:?}: p99 {} cy too slow for 200 rps",
                r.hist.p99()
            );
            let ratio = r.achieved_rps / r.offered_rps;
            assert!(
                (0.5..=1.5).contains(&ratio),
                "{os:?}: achieved {} vs offered {}",
                r.achieved_rps,
                r.offered_rps
            );
        }
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let cfg = FarmConfig::tcp(Os::Linux, 900.0, 250, 42);
        let a = fingerprint(&run_farm(&cfg));
        let b = fingerprint(&run_farm(&cfg));
        assert_eq!(a, b, "same seed, same farm");
        let other = fingerprint(&run_farm(&FarmConfig::tcp(Os::Linux, 900.0, 250, 43)));
        assert_ne!(a, other, "the seed must actually matter");
    }

    #[test]
    fn linux_tail_diverges_past_the_knee() {
        // 900 rps is past Linux 1.2.8's knee (one-packet window burns a
        // delayed-ack round per reply segment and the O(n) scheduler
        // taxes every dispatch) but inside FreeBSD's capacity.
        let lin = run_farm(&FarmConfig::tcp(Os::Linux, 900.0, 300, 7));
        let bsd = run_farm(&FarmConfig::tcp(Os::FreeBsd, 900.0, 300, 7));
        assert!(
            bsd.retries == 0 && bsd.failed == 0,
            "FreeBSD must still be comfortable at 900 rps: {bsd:?}"
        );
        assert!(
            lin.hist.p99() > 3 * bsd.hist.p99(),
            "Linux p99 {} must blow past FreeBSD p99 {}",
            lin.hist.p99(),
            bsd.hist.p99()
        );
    }

    #[test]
    fn overload_saturates_below_the_offered_rate() {
        let r = run_farm(&FarmConfig::tcp(Os::Linux, 5_000.0, 400, 3));
        assert!(
            r.achieved_rps < r.offered_rps * 0.6,
            "achieved {} should saturate well below offered {}",
            r.achieved_rps,
            r.offered_rps
        );
        // The overload shows up as queueing: the median request waits an
        // order of magnitude longer than a lightly loaded one.
        let calm = run_farm(&FarmConfig::tcp(Os::Linux, 200.0, 150, 3));
        assert!(
            r.hist.p50() > 10 * calm.hist.p50(),
            "overload p50 {} vs calm p50 {}",
            r.hist.p50(),
            calm.hist.p50()
        );
    }

    #[test]
    fn a_tiny_backlog_forces_drops_and_retries() {
        // One worker and a 4-deep accept queue: inserts outrun the drain,
        // the backlog overflows, and the RTO/retry machinery earns its
        // keep. Every request is still accounted for.
        let cfg = FarmConfig {
            workers: 1,
            backlog: 4,
            ..FarmConfig::tcp(Os::Linux, 5_000.0, 300, 13)
        };
        let r = run_farm(&cfg);
        assert!(r.backlog_drops > 0, "the 4-deep backlog must overflow: {r:?}");
        assert!(r.retries > 0, "drops must trigger retransmissions: {r:?}");
        assert_eq!(r.completed + r.failed, 300, "every request is accounted for");
    }

    #[test]
    fn lossy_faults_degrade_capacity_monotonically() {
        let cfg = FarmConfig::tcp(Os::FreeBsd, 600.0, 250, 9);
        let mut last_p99 = 0u64;
        let mut last_rps = f64::INFINITY;
        for drop in [0.0, 0.05, 0.2] {
            let profile = FaultProfile {
                net_drop: drop,
                ..FaultProfile::off()
            };
            let r = run_farm_with_faults(&cfg, profile);
            assert!(
                r.hist.p99() >= last_p99,
                "p99 must not improve as loss rises: {} then {} at {drop}",
                last_p99,
                r.hist.p99()
            );
            assert!(
                r.achieved_rps <= last_rps * 1.001,
                "capacity must not rise with loss: {} then {} at {drop}",
                last_rps,
                r.achieved_rps
            );
            last_p99 = r.hist.p99();
            last_rps = r.achieved_rps;
        }
        assert!(last_p99 > 0, "the lossy runs must have completed work");
    }

    #[test]
    fn nfs_sync_metadata_inverts_the_tcp_ranking() {
        // Over NFS writes, FreeBSD's two synchronous metadata writes per
        // request bottleneck on the disk; Linux's async metadata keeps
        // the disk out of the path entirely. The TCP winner loses here,
        // exactly the paper's Table 6 inversion.
        let lin = run_farm(&FarmConfig::nfs(Os::Linux, 160.0, 200, 5));
        let bsd = run_farm(&FarmConfig::nfs(Os::FreeBsd, 160.0, 200, 5));
        let lin_hurt = lin.retries + lin.failed + lin.backlog_drops;
        let bsd_hurt = bsd.retries + bsd.failed + bsd.backlog_drops;
        assert!(
            bsd_hurt > lin_hurt || bsd.hist.p99() > 3 * lin.hist.p99(),
            "FreeBSD NFS must suffer where Linux NFS does not: \
             bsd(p99 {} hurt {bsd_hurt}) vs lin(p99 {} hurt {lin_hurt})",
            bsd.hist.p99(),
            lin.hist.p99()
        );
    }

    #[test]
    fn ramp_arrivals_drive_the_farm_through_the_knee() {
        let cfg = FarmConfig {
            arrivals: Arrivals::Ramp {
                from_rps: 100.0,
                to_rps: 2_000.0,
            },
            ..FarmConfig::tcp(Os::Linux, 0.0, 300, 21)
        };
        let r = run_farm(&cfg);
        assert_eq!(r.completed + r.failed, 300);
        // The top of the ramp outruns capacity: throughput pins below the
        // nominal rate and the tail stretches far past the median.
        assert!(
            r.achieved_rps < 0.7 * r.offered_rps,
            "the ramp top must saturate: {r:?}"
        );
        assert!(
            r.hist.p99() > 2 * r.hist.p50(),
            "queueing at the ramp top must stretch the tail: {r:?}"
        );
    }
}
