//! A dependency-free fixed-bucket log-scale latency histogram.
//!
//! The farm's output is a distribution, not a mean, so the measurement
//! plane must hold millions of samples without remembering any of them.
//! [`LatHist`] uses HDR-style buckets: values below 8 get exact buckets;
//! above that, each power-of-two octave is split into 8 linear
//! sub-buckets, bounding the relative quantile error at 12.5% while the
//! whole histogram stays a flat array of `u64` counters.
//!
//! Everything here is integer arithmetic on a fixed layout, so merging
//! per-worker histograms is element-wise addition (exact count
//! conservation, any merge order) and reports are byte-identical across
//! `--jobs` levels.

/// Sub-buckets per octave (2^3): the quantile resolution knob.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range: 8 exact small-value
/// buckets plus 8 sub-buckets for each octave `2^3 ..= 2^63`.
const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB;

/// Fixed-bucket log-scale histogram of `u64` samples (cycles, here).
#[derive(Clone)]
pub struct LatHist {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
}

/// The flat bucket index of a value. Zero-cost on the record path: a
/// leading-zeros instruction and two shifts.
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (msb - SUB_BITS + 1) as usize * SUB + sub
}

/// The largest value a bucket can hold — what quantile queries report,
/// so a reported quantile never understates the true one.
fn upper_of(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let msb = (idx / SUB) as u32 + SUB_BITS - 1;
    let sub = (idx % SUB) as u64;
    let width = 1u64 << (msb - SUB_BITS);
    (1u64 << msb) + (sub + 1) * width - 1
}

impl std::fmt::Debug for LatHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatHist")
            .field("count", &self.total)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("p999", &self.p999())
            .finish()
    }
}

impl Default for LatHist {
    fn default() -> LatHist {
        LatHist::new()
    }
}

impl LatHist {
    /// An empty histogram.
    pub fn new() -> LatHist {
        LatHist {
            counts: Box::new([0; BUCKETS]),
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
    }

    /// Total samples recorded (merges included).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Adds every sample of `other` into `self` — element-wise, so the
    /// result is independent of merge order and conserves counts
    /// exactly.
    pub fn merge(&mut self, other: &LatHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the rank-`ceil(q * count)` sample — at most 12.5% above
    /// the true order statistic, never below it.
    ///
    /// Every input has a defined result: an empty histogram reports 0
    /// for all quantiles; when the count is below `1/(1-q)` (e.g. p999
    /// of fewer than 1000 samples) the rank clamps to the last sample,
    /// so the result is the maximum recorded bucket — never an
    /// interpolation from data that is not there. Out-of-range or
    /// non-finite `q` clamps to the nearest defined quantile (NaN
    /// reports the maximum, the conservative end for a latency gate).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = if q.is_nan() { 1.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_of(idx);
            }
        }
        upper_of(BUCKETS - 1)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value stream for oracle tests (splitmix64).
    fn stream(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                // Latency-shaped: spread over ~6 decades.
                z % 10u64.pow(1 + (z % 6) as u32)
            })
            .collect()
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every value maps into a bucket whose upper bound is >= it, and
        // bucket upper bounds are strictly increasing.
        for idx in 1..BUCKETS {
            assert!(upper_of(idx) > upper_of(idx - 1), "idx {idx}");
        }
        for v in [0, 1, 7, 8, 9, 63, 64, 1000, u32::MAX as u64, u64::MAX / 2] {
            let idx = bucket_of(v);
            assert!(upper_of(idx) >= v, "v={v} idx={idx}");
            if idx > 0 {
                assert!(upper_of(idx - 1) < v, "v={v} idx={idx}");
            }
        }
    }

    #[test]
    fn quantiles_bound_the_sorted_vector_oracle() {
        for seed in [1u64, 7, 42, 1996] {
            let vals = stream(seed, 5_000);
            let mut h = LatHist::new();
            let mut sorted = vals.clone();
            for v in &vals {
                h.record(*v);
            }
            sorted.sort_unstable();
            for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let oracle = sorted[rank - 1];
                let got = h.quantile(q);
                assert!(got >= oracle, "seed {seed} q {q}: {got} < oracle {oracle}");
                let bound = oracle + oracle / 8 + 1;
                assert!(got <= bound, "seed {seed} q {q}: {got} > bound {bound}");
            }
        }
    }

    #[test]
    fn merge_conserves_counts_exactly_in_any_order() {
        let parts: Vec<Vec<u64>> = (0..5).map(|i| stream(i, 1_000 + 137 * i as usize)).collect();
        let mut forward = LatHist::new();
        let mut backward = LatHist::new();
        for p in &parts {
            let mut h = LatHist::new();
            for v in p {
                h.record(*v);
            }
            forward.merge(&h);
        }
        for p in parts.iter().rev() {
            let mut h = LatHist::new();
            for v in p {
                h.record(*v);
            }
            backward.merge(&h);
        }
        let want: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(forward.count(), want as u64);
        assert_eq!(backward.count(), want as u64);
        for q in [0.5, 0.95, 0.99, 0.999] {
            assert_eq!(forward.quantile(q), backward.quantile(q), "q {q}");
        }
        // And merging equals recording everything into one histogram.
        let mut flat = LatHist::new();
        for p in &parts {
            for v in p {
                flat.record(*v);
            }
        }
        assert_eq!(flat.quantile(0.99), forward.quantile(0.99));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn p999_with_fewer_than_1000_samples_is_the_maximum() {
        // Regression: a tail quantile finer than the sample count must
        // clamp to the last sample, not invent a value past it.
        for n in [1u64, 2, 10, 999] {
            let mut h = LatHist::new();
            for v in 1..=n {
                h.record(v * 100);
            }
            let max_bucket = upper_of(bucket_of(n * 100));
            assert_eq!(h.p999(), max_bucket, "n={n}");
            assert!(h.p999() >= n * 100, "never understates the max, n={n}");
        }
    }

    #[test]
    fn out_of_range_q_is_defined() {
        let mut h = LatHist::new();
        h.record(5);
        h.record(500);
        let max_bucket = upper_of(bucket_of(500));
        assert_eq!(h.quantile(1.5), max_bucket, "q>1 clamps to the max");
        assert_eq!(h.quantile(-0.3), 5, "q<0 clamps to the min");
        assert_eq!(h.quantile(f64::NAN), max_bucket, "NaN is the max");
        assert_eq!(h.quantile(f64::INFINITY), max_bucket);
        assert_eq!(h.quantile(f64::NEG_INFINITY), 5);
        assert_eq!(LatHist::new().quantile(f64::NAN), 0, "empty stays 0");
    }

    #[test]
    fn extreme_quantiles_hit_min_and_max_buckets() {
        let mut h = LatHist::new();
        h.record(3);
        h.record(1_000_000);
        assert_eq!(h.quantile(0.0), 3, "rank clamps to the first sample");
        assert!(h.quantile(1.0) >= 1_000_000);
    }
}
