//! The pipe models: one shared implementation whose costs are
//! parameterised per OS (Section 5's `ctx` and Table 4's `bw_pipe` both
//! run through this code).
//!
//! Linux pipes are a page-sized ring buffer; FreeBSD 2.0.5 pipes are
//! socketpairs moving mbuf clusters; Solaris pipes sit on STREAMS with
//! per-message block allocation. All of that is expressed through
//! [`PipeCosts`](crate::costs::PipeCosts): buffer capacity, per-operation
//! entry cost, per-segment handling cost and per-byte inefficiency.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::costs::PipeCosts;
use crate::errno::{Errno, SysResult};
use crate::vfs::KEnv;
use tnt_sim::trace::Class;
use tnt_sim::{Cycles, Sim, WaitId};

struct PipeState {
    buf: VecDeque<u8>,
    readers: u32,
    writers: u32,
}

/// A unidirectional byte pipe with per-OS cost behaviour.
pub struct Pipe {
    state: Mutex<PipeState>,
    costs: PipeCosts,
    rd_q: WaitId,
    wr_q: WaitId,
}

impl Pipe {
    /// Creates a pipe with one reader and one writer reference.
    pub fn new(sim: &Sim, costs: PipeCosts) -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                readers: 1,
                writers: 1,
            }),
            costs,
            rd_q: sim.new_queue(),
            wr_q: sim.new_queue(),
        })
    }

    fn seg_cost(&self, bytes: u64) -> Cycles {
        let frac = bytes as f64 / self.costs.seg_unit as f64;
        Cycles((self.costs.per_seg_cy as f64 * frac).round() as u64)
    }

    fn copy_cost(&self, bytes: u64) -> Cycles {
        tnt_cpu::copyin_out(bytes)
            + Cycles((self.costs.per_byte_extra * bytes as f64).round() as u64)
    }

    /// Writes all of `data`, blocking as the buffer fills and the reader
    /// drains it. Returns bytes written, or `EPIPE` once no reader exists.
    pub fn write(&self, env: &KEnv, data: &[u8]) -> SysResult<u64> {
        {
            let _s = env.sim.span(Class::ProtoCpu);
            env.sim.charge(Cycles(self.costs.write_op_cy));
        }
        let mut written = 0u64;
        while (written as usize) < data.len() {
            let moved = {
                let mut st = self.state.lock();
                if st.readers == 0 {
                    return Err(Errno::EPIPE);
                }
                let space = self.costs.capacity as usize - st.buf.len();
                if space == 0 {
                    drop(st);
                    let _w = env.sim.span(Class::PipeWait);
                    env.sim.wait_on(self.wr_q, "pipe full");
                    continue;
                }
                let n = space.min(data.len() - written as usize);
                st.buf.extend(&data[written as usize..written as usize + n]);
                n as u64
            };
            {
                let _s = env.sim.span(Class::DataCopy);
                env.sim.charge(self.copy_cost(moved));
            }
            {
                let _s = env.sim.span(Class::ProtoCpu);
                env.sim.charge(self.seg_cost(moved));
            }
            env.sim.wakeup_one(self.rd_q);
            written += moved;
        }
        Ok(written)
    }

    /// Reads up to `len` bytes, blocking while the pipe is empty and a
    /// writer remains; returns an empty vector at end of file.
    pub fn read(&self, env: &KEnv, len: u64) -> SysResult<Vec<u8>> {
        {
            let _s = env.sim.span(Class::ProtoCpu);
            env.sim.charge(Cycles(self.costs.read_op_cy));
        }
        if len == 0 {
            return Ok(Vec::new());
        }
        loop {
            let out = {
                let mut st = self.state.lock();
                if st.buf.is_empty() {
                    if st.writers == 0 {
                        return Ok(Vec::new()); // EOF
                    }
                    drop(st);
                    let _w = env.sim.span(Class::PipeWait);
                    env.sim.wait_on(self.rd_q, "pipe empty");
                    continue;
                }
                let n = (len as usize).min(st.buf.len());
                st.buf.drain(..n).collect::<Vec<u8>>()
            };
            {
                let _s = env.sim.span(Class::DataCopy);
                env.sim.charge(self.copy_cost(out.len() as u64));
            }
            {
                let _s = env.sim.span(Class::ProtoCpu);
                env.sim.charge(self.seg_cost(out.len() as u64));
            }
            env.sim.wakeup_one(self.wr_q);
            return Ok(out);
        }
    }

    /// Registers an extra reader reference (dup/fork of the read end).
    pub fn add_reader(&self) {
        self.state.lock().readers += 1;
    }

    /// Registers an extra writer reference.
    pub fn add_writer(&self) {
        self.state.lock().writers += 1;
    }

    /// Drops a reader reference; when the last reader goes, blocked
    /// writers are woken to observe `EPIPE`.
    pub fn close_reader(&self, sim: &Sim) {
        let none_left = {
            let mut st = self.state.lock();
            st.readers -= 1;
            st.readers == 0
        };
        if none_left {
            sim.wakeup_all(self.wr_q);
        }
    }

    /// Drops a writer reference; when the last writer goes, blocked
    /// readers are woken to observe end of file.
    pub fn close_writer(&self, sim: &Sim) {
        let none_left = {
            let mut st = self.state.lock();
            st.writers -= 1;
            st.writers == 0
        };
        if none_left {
            sim.wakeup_all(self.rd_q);
        }
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Whether a read would not block: data buffered, or EOF pending.
    pub fn poll_readable(&self) -> bool {
        let st = self.state.lock();
        !st.buf.is_empty() || st.writers == 0
    }

    /// The wait queue readers (and selectors) sleep on.
    pub fn read_queue(&self) -> WaitId {
        self.rd_q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{Os, OsCosts};
    use tnt_sim::{FifoPolicy, SimConfig};

    fn setup(os: Os) -> (Sim, KEnv) {
        let sim = Sim::new(Box::new(FifoPolicy::new()), SimConfig::default());
        let env = KEnv {
            sim: sim.clone(),
            costs: OsCosts::for_os(os),
        };
        (sim, env)
    }

    #[test]
    fn bytes_round_trip_in_order() {
        let (sim, env) = setup(Os::Linux);
        let pipe = Pipe::new(&sim, env.costs.pipe);
        let p2 = pipe.clone();
        let e2 = env.clone();
        sim.spawn("writer", move |_| {
            let data: Vec<u8> = (0..200u8).collect();
            assert_eq!(p2.write(&e2, &data).unwrap(), 200);
            p2.close_writer(&e2.sim);
        });
        let p3 = pipe.clone();
        sim.spawn("reader", move |_| {
            let mut got = Vec::new();
            loop {
                let chunk = p3.read(&env, 64).unwrap();
                if chunk.is_empty() {
                    break;
                }
                got.extend(chunk);
            }
            assert_eq!(got, (0..200u8).collect::<Vec<u8>>());
            p3.close_reader(&env.sim);
        });
        sim.run().unwrap();
    }

    #[test]
    fn writer_blocks_when_full() {
        let (sim, env) = setup(Os::Linux);
        let pipe = Pipe::new(&sim, env.costs.pipe);
        let cap = env.costs.pipe.capacity as usize;
        let p2 = pipe.clone();
        let e2 = env.clone();
        sim.spawn("writer", move |_| {
            // Write 3x the capacity; must block and resume as drained.
            let data = vec![7u8; 3 * cap];
            assert_eq!(p2.write(&e2, &data).unwrap() as usize, 3 * cap);
            p2.close_writer(&e2.sim);
        });
        let p3 = pipe.clone();
        sim.spawn("reader", move |_| {
            let mut total = 0;
            loop {
                let chunk = p3.read(&env, u64::MAX >> 1).unwrap();
                if chunk.is_empty() {
                    break;
                }
                assert!(chunk.len() <= cap, "never more than the buffer");
                total += chunk.len();
            }
            assert_eq!(total, 3 * cap);
        });
        sim.run().unwrap();
    }

    #[test]
    fn read_from_closed_pipe_is_eof() {
        let (sim, env) = setup(Os::FreeBsd);
        let pipe = Pipe::new(&sim, env.costs.pipe);
        let p2 = pipe.clone();
        sim.spawn("solo", move |_| {
            p2.write(&env, b"bye").unwrap();
            p2.close_writer(&env.sim);
            assert_eq!(p2.read(&env, 10).unwrap(), b"bye");
            assert!(
                p2.read(&env, 10).unwrap().is_empty(),
                "EOF after writer closed"
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn write_to_readerless_pipe_is_epipe() {
        let (sim, env) = setup(Os::Solaris);
        let pipe = Pipe::new(&sim, env.costs.pipe);
        let p2 = pipe.clone();
        sim.spawn("solo", move |_| {
            p2.close_reader(&env.sim);
            assert_eq!(p2.write(&env, b"x"), Err(Errno::EPIPE));
        });
        sim.run().unwrap();
    }

    #[test]
    fn epipe_wakes_blocked_writer() {
        let (sim, env) = setup(Os::Linux);
        let pipe = Pipe::new(&sim, env.costs.pipe);
        let cap = env.costs.pipe.capacity as usize;
        let p2 = pipe.clone();
        let e2 = env.clone();
        sim.spawn("writer", move |_| {
            let r = p2.write(&e2, &vec![0u8; 2 * cap]);
            assert_eq!(r, Err(Errno::EPIPE), "woken by reader close");
        });
        let p3 = pipe.clone();
        sim.spawn("closer", move |_| {
            p3.close_reader(&env.sim);
        });
        sim.run().unwrap();
    }

    #[test]
    fn solaris_one_byte_roundtrip_costs_80us() {
        // Section 5 calibration: write one byte, read it back, same
        // process, Solaris: ~80us of pipe overhead (excluding traps).
        let (sim, env) = setup(Os::Solaris);
        let pipe = Pipe::new(&sim, env.costs.pipe);
        let p2 = pipe.clone();
        sim.spawn("self", move |_| {
            p2.write(&env, &[1]).unwrap();
            p2.read(&env, 1).unwrap();
        });
        let elapsed = sim.run().unwrap();
        let us = elapsed.as_micros();
        assert!(
            us > 70.0 && us < 90.0,
            "Solaris 1-byte roundtrip ~80us, got {us}"
        );
    }

    #[test]
    fn linux_pipe_much_cheaper_than_solaris() {
        let cost = |os: Os| {
            let (sim, env) = setup(os);
            let pipe = Pipe::new(&sim, env.costs.pipe);
            let p2 = pipe.clone();
            sim.spawn("self", move |_| {
                p2.write(&env, &[1]).unwrap();
                p2.read(&env, 1).unwrap();
            });
            sim.run().unwrap()
        };
        let linux = cost(Os::Linux);
        let solaris = cost(Os::Solaris);
        assert!(
            solaris.0 > 5 * linux.0,
            "STREAMS pipes are several times dearer"
        );
    }
}
