//! UNIX error numbers used across the modelled kernels.

/// The subset of errno values the benchmarks can encounter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Errno {
    /// Bad file descriptor.
    EBADF,
    /// Broken pipe (no readers left).
    EPIPE,
    /// No such file or directory.
    ENOENT,
    /// File exists.
    EEXIST,
    /// Not a directory.
    ENOTDIR,
    /// Is a directory.
    EISDIR,
    /// Directory not empty.
    ENOTEMPTY,
    /// No space left on device.
    ENOSPC,
    /// Invalid argument.
    EINVAL,
    /// Operation not supported on this object.
    ENOSYS,
    /// Connection refused.
    ECONNREFUSED,
    /// Address already in use.
    EADDRINUSE,
    /// Not connected.
    ENOTCONN,
    /// Message too long for the protocol.
    EMSGSIZE,
    /// Resource temporarily unavailable.
    EAGAIN,
    /// I/O error.
    EIO,
    /// Operation timed out (e.g. an NFS hard-mount retry limit).
    ETIMEDOUT,
}

impl std::fmt::Display for Errno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for Errno {}

/// Shorthand result type for syscall-level operations.
pub type SysResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_name() {
        assert_eq!(Errno::ENOENT.to_string(), "ENOENT");
        assert_eq!(Errno::EPIPE.to_string(), "EPIPE");
    }
}
