#![warn(missing_docs)]

//! Kernel models of the three operating systems the paper compares.
//!
//! One [`Kernel`] is one machine running Linux 1.2.8, FreeBSD 2.0.5R,
//! Solaris 2.4, or (as an NFS server only) SunOS 4.1.4. The machine's
//! behaviour is the sum of:
//!
//! - a calibrated cost table ([`OsCosts`]) for traps, syscalls, fork/exec
//!   and pipes,
//! - its scheduler, installed as the simulation's run policy
//!   ([`sched`]: Linux's O(n) scan, FreeBSD's constant-time queues,
//!   Solaris's expensive dispatcher with the 32-entry table anomaly),
//! - a shared pipe implementation parameterised per OS, and
//! - whatever [`Filesystem`] the experiment mounts (see `tnt-fs`).
//!
//! Benchmarks are ordinary Rust closures run as simulated processes; they
//! receive a [`UProc`] whose methods are the system calls.
//!
//! # Examples
//!
//! ```
//! use tnt_os::{boot, Os};
//!
//! let (sim, kernel) = boot(Os::Linux, 0);
//! kernel.spawn_user("bench", |p| {
//!     for _ in 0..1000 {
//!         p.getpid();
//!     }
//! });
//! let elapsed = sim.run().unwrap();
//! // Table 2: a Linux getpid takes ~2.31 microseconds.
//! assert!((elapsed.as_micros() / 1000.0 - 2.31).abs() < 0.25);
//! ```

mod costs;
mod errno;
mod fdtable;
pub mod future;
mod kernel;
mod pipe;
pub mod sched;
mod vfs;

pub use costs::{DispatchCosts, Os, OsCosts, PipeCosts};
pub use errno::{Errno, SysResult};
pub use fdtable::{Fd, FdTable, File, FileObj};
pub use kernel::{
    boot, boot_cluster, boot_cluster_with_faults, boot_with, Kernel, KernelStats, Pid, UProc,
};
pub use pipe::Pipe;
pub use vfs::{FileAttr, Filesystem, KEnv, OpenFlags, VnodeId};
