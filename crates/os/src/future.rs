//! Section 13 of the paper: the releases that were about to ship.
//!
//! The authors preview three systems and quantify one: "the latest
//! development version of the Linux kernel (1.3.40) ... has very fast
//! context switching (10 microseconds for two active processes with very
//! little slowdown as the number of active processes increases)".
//! FreeBSD 2.1 "will offer ordered asynchronous metadata updates", and
//! Solaris 2.5 "will have faster context switching and better
//! performance in general".
//!
//! These cost tables model those claims so the harness can project the
//! Figure 1 / Figure 12 curves of the next releases (experiment `x4`).

use crate::costs::{DispatchCosts, Os, OsCosts, PipeCosts};

/// Linux 1.3.40 (development): the run-queue rewrite.
///
/// A 10 µs two-process `ctx` figure including pipe overhead implies both
/// leaner pipe syscalls and a near-constant dispatcher; the task-table
/// scan is gone.
pub fn linux_1_3_40() -> OsCosts {
    let base = OsCosts::for_os(Os::Linux);
    OsCosts {
        trap_cy: 170,
        syscall_overhead_cy: 60,
        dispatch: DispatchCosts {
            base_cy: 250,
            per_task_cy: 2, // "very little slowdown"
            table_slots: 0,
            table_miss_cy: 0,
        },
        pipe: PipeCosts {
            write_op_cy: 150,
            read_op_cy: 130,
            ..base.pipe
        },
        ..base
    }
}

/// Solaris 2.5: "faster context switching and better performance in
/// general" — a leaner dispatcher and cheaper traps, table anomaly
/// repaired.
pub fn solaris_2_5() -> OsCosts {
    let base = OsCosts::for_os(Os::Solaris);
    OsCosts {
        trap_cy: 290,
        syscall_overhead_cy: 220,
        dispatch: DispatchCosts {
            base_cy: 8_000,
            per_task_cy: 0,
            table_slots: 0, // The 32-entry cliff is gone.
            table_miss_cy: 0,
        },
        ..base
    }
}

/// FreeBSD 2.1 kernel costs are essentially 2.0.5's — its headline
/// change is the filesystem's ordered asynchronous metadata (see
/// `tnt-fs`'s `FsParams::ffs_freebsd_21`).
pub fn freebsd_2_1() -> OsCosts {
    OsCosts::for_os(Os::FreeBsd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_1340_ctx_budget_is_about_10us() {
        // One ctx pass = write + read + dispatch; Section 13 says ~10 µs
        // at two processes.
        let c = linux_1_3_40();
        let pass = 2 * c.trap_cy
            + 2 * c.syscall_overhead_cy
            + c.pipe.write_op_cy
            + c.pipe.read_op_cy
            + c.dispatch.base_cy
            + c.dispatch.per_task_cy * 2;
        let us = pass as f64 / 100.0;
        assert!(
            (us - 10.0).abs() < 2.0,
            "Linux 1.3.40 ctx ~10us, got {us:.1}"
        );
    }

    #[test]
    fn linux_1340_is_nearly_flat() {
        let c = linux_1_3_40();
        // Going from 2 to 96 processes adds well under a microsecond.
        assert!(c.dispatch.per_task_cy * 94 < 250);
    }

    #[test]
    fn solaris_25_loses_the_table_cliff() {
        let c = solaris_2_5();
        assert_eq!(c.dispatch.table_slots, 0);
        assert!(c.dispatch.base_cy < OsCosts::for_os(Os::Solaris).dispatch.base_cy);
    }
}
