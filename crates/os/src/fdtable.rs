//! Per-process file descriptor tables and open-file objects.
//!
//! As in UNIX, `dup` and `fork` share one open-file entry (and thus one
//! file offset); the entry is destroyed — closing pipe ends, etc. — when
//! its last descriptor reference goes away.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::errno::{Errno, SysResult};
use crate::pipe::Pipe;
use crate::vfs::{Filesystem, OpenFlags, VnodeId};

/// A file descriptor number.
pub type Fd = u32;

/// What an open file refers to.
pub enum FileObj {
    /// Read end of a pipe.
    PipeRead(Arc<Pipe>),
    /// Write end of a pipe.
    PipeWrite(Arc<Pipe>),
    /// A file on a mounted filesystem.
    Vnode {
        /// The filesystem it lives on.
        fs: Arc<dyn Filesystem>,
        /// The file's vnode.
        vnode: VnodeId,
        /// Flags it was opened with.
        flags: OpenFlags,
    },
    /// `/dev/null`: reads see EOF, writes vanish.
    Null,
}

/// An open-file table entry: the object plus the shared offset.
pub struct File {
    /// What this file refers to.
    pub obj: FileObj,
    offset: Mutex<u64>,
    refs: AtomicU32,
}

impl File {
    /// Wraps an object into a fresh entry with one reference.
    pub fn new(obj: FileObj) -> Arc<File> {
        Arc::new(File {
            obj,
            offset: Mutex::new(0),
            refs: AtomicU32::new(1),
        })
    }

    /// Current offset.
    pub fn offset(&self) -> u64 {
        *self.offset.lock()
    }

    /// Sets the offset (lseek).
    pub fn set_offset(&self, off: u64) {
        *self.offset.lock() = off;
    }

    /// Advances the offset by `n` and returns the pre-advance value.
    pub fn advance_offset(&self, n: u64) -> u64 {
        let mut o = self.offset.lock();
        let before = *o;
        *o += n;
        before
    }

    /// Adds a descriptor reference (dup/fork).
    pub fn add_ref(&self) {
        self.refs.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops a descriptor reference; returns true when it was the last.
    pub fn drop_ref(&self) -> bool {
        self.refs.fetch_sub(1, Ordering::Relaxed) == 1
    }
}

/// A process's descriptor table. Descriptors are allocated lowest-first,
/// as UNIX requires.
#[derive(Default)]
pub struct FdTable {
    slots: Vec<Option<Arc<File>>>,
}

impl FdTable {
    /// An empty table.
    pub fn new() -> FdTable {
        FdTable::default()
    }

    /// Installs a file at the lowest free descriptor.
    pub fn install(&mut self, file: Arc<File>) -> Fd {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(file);
                return i as Fd;
            }
        }
        self.slots.push(Some(file));
        (self.slots.len() - 1) as Fd
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: Fd) -> SysResult<Arc<File>> {
        self.slots
            .get(fd as usize)
            .and_then(|s| s.clone())
            .ok_or(Errno::EBADF)
    }

    /// Removes a descriptor, returning its file.
    pub fn remove(&mut self, fd: Fd) -> SysResult<Arc<File>> {
        let slot = self.slots.get_mut(fd as usize).ok_or(Errno::EBADF)?;
        slot.take().ok_or(Errno::EBADF)
    }

    /// Takes every open file (process exit).
    pub fn drain(&mut self) -> Vec<Arc<File>> {
        self.slots.drain(..).flatten().collect()
    }

    /// Clones the table for fork: entries are shared, references bumped.
    pub fn fork_clone(&self) -> FdTable {
        let slots = self.slots.clone();
        for file in slots.iter().flatten() {
            file.add_ref();
        }
        FdTable { slots }
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn null_file() -> Arc<File> {
        File::new(FileObj::Null)
    }

    #[test]
    fn lowest_fd_first() {
        let mut t = FdTable::new();
        assert_eq!(t.install(null_file()), 0);
        assert_eq!(t.install(null_file()), 1);
        assert_eq!(t.install(null_file()), 2);
        t.remove(1).unwrap();
        assert_eq!(t.install(null_file()), 1, "reuses the lowest hole");
        assert_eq!(t.install(null_file()), 3);
    }

    #[test]
    fn get_and_remove_errors() {
        let mut t = FdTable::new();
        assert_eq!(t.get(0).err(), Some(Errno::EBADF));
        assert_eq!(t.remove(5).err(), Some(Errno::EBADF));
        let fd = t.install(null_file());
        assert!(t.get(fd).is_ok());
        t.remove(fd).unwrap();
        assert_eq!(t.get(fd).err(), Some(Errno::EBADF));
    }

    #[test]
    fn fork_clone_shares_entries_and_offsets() {
        let mut t = FdTable::new();
        let fd = t.install(null_file());
        let child = t.fork_clone();
        let f1 = t.get(fd).unwrap();
        let f2 = child.get(fd).unwrap();
        f1.set_offset(42);
        assert_eq!(f2.offset(), 42, "offset is shared across fork");
        assert!(!f2.drop_ref(), "two references outstanding");
        assert!(f1.drop_ref(), "now the last one");
    }

    #[test]
    fn offset_advance() {
        let f = null_file();
        assert_eq!(f.advance_offset(10), 0);
        assert_eq!(f.advance_offset(5), 10);
        assert_eq!(f.offset(), 15);
    }

    #[test]
    fn drain_empties() {
        let mut t = FdTable::new();
        t.install(null_file());
        t.install(null_file());
        assert_eq!(t.drain().len(), 2);
        assert_eq!(t.open_count(), 0);
    }
}
