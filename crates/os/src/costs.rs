//! Per-operating-system cost tables.
//!
//! Every constant here is in CPU cycles of the 100 MHz Pentium (so 100
//! cycles = 1 µs) and is calibrated against a measurement the paper
//! reports directly:
//!
//! - `trap_cy` is the full `getpid()` time of Table 2 (2.31 / 2.62 /
//!   3.52 µs);
//! - the dispatch costs are solved from Figure 1 (ring context switch of
//!   55 / 80 / 220 µs at two processes, Linux slope crossing FreeBSD near
//!   20 processes, the Solaris jump at 32);
//! - the Solaris pipe costs reproduce the 80 µs one-byte self-roundtrip
//!   the authors measured in Section 5;
//! - pipe buffer sizes and per-segment costs land the Table 4 bandwidths.

use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use tnt_sim::RunPolicy;

use crate::sched::{FreeBsdSched, LinuxSched, SolarisSched};

/// The operating systems modelled by this reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Os {
    /// Linux 1.2.8 (Slackware).
    Linux,
    /// FreeBSD 2.0.5R.
    FreeBsd,
    /// Solaris 2.4 x86.
    Solaris,
    /// SunOS 4.1.4 — only used as the remote NFS server of Table 7.
    SunOs,
}

impl Os {
    /// The three systems compared throughout the paper, in its usual order.
    pub fn benchmarked() -> [Os; 3] {
        [Os::Linux, Os::FreeBsd, Os::Solaris]
    }

    /// Display label as the paper prints it.
    pub fn label(self) -> &'static str {
        match self {
            Os::Linux => "Linux",
            Os::FreeBsd => "FreeBSD",
            Os::Solaris => "Solaris 2.4",
            Os::SunOs => "SunOS 4.1.4",
        }
    }
}

/// Scheduler cost parameters (Figure 1).
#[derive(Clone, Copy, Debug)]
pub struct DispatchCosts {
    /// Fixed cost of one dispatch (run-queue pop, register reload, ...).
    pub base_cy: u64,
    /// Extra cost per live task: Linux 1.2's `schedule()` walks the task
    /// table; zero for the others.
    pub per_task_cy: u64,
    /// Size of the Solaris dispatch table (0 = no table modelled).
    pub table_slots: usize,
    /// Extra cost when the dispatched thread misses the dispatch table.
    pub table_miss_cy: u64,
}

/// Pipe implementation parameters (Figure 1, Table 4).
#[derive(Clone, Copy, Debug)]
pub struct PipeCosts {
    /// Pipe buffer capacity in bytes (4 KB page for Linux, the socket
    /// buffer for FreeBSD's socketpair-based pipes, the stream head high
    /// watermark for Solaris).
    pub capacity: u64,
    /// Cost of entering the pipe read/write path, on top of the trap
    /// (stream head traversal and `allocb` for Solaris).
    pub write_op_cy: u64,
    /// As `write_op_cy`, for the read side.
    pub read_op_cy: u64,
    /// Unit of internal data movement (a page for Linux, an mbuf cluster
    /// for FreeBSD, an mblk for Solaris STREAMS).
    pub seg_unit: u64,
    /// Cost per `seg_unit` bytes moved on each side (page handling / mblk
    /// management / sockbuf bookkeeping). Charged pro rata for partial
    /// segments, so one-byte `ctx` token passes are barely affected.
    pub per_seg_cy: u64,
    /// Extra per-byte cost on top of the generic kernel copy (FreeBSD's
    /// mbuf chains and Solaris STREAMS touch data less efficiently).
    pub per_byte_extra: f64,
}

/// The complete cost personality of one modelled kernel.
#[derive(Clone, Copy, Debug)]
pub struct OsCosts {
    /// Which system this is.
    pub os: Os,
    /// Trap in + dispatch + trivial handler + trap out: the `getpid` time.
    pub trap_cy: u64,
    /// Additional prologue for real syscalls (fd lookup, argument copyin).
    pub syscall_overhead_cy: u64,
    /// `fork()` cost: address-space setup and process-table work.
    pub fork_cy: u64,
    /// `exec()` cost: image load, a.out/ELF setup and (for Solaris 2.4,
    /// notoriously) dynamic linking — excluding file reads.
    pub exec_cy: u64,
    /// Scheduler parameters.
    pub dispatch: DispatchCosts,
    /// Pipe parameters.
    pub pipe: PipeCosts,
    /// Run-to-run jitter fraction (Solaris shows far more variance in the
    /// paper's Std Dev columns than the free systems).
    pub jitter: f64,
}

impl OsCosts {
    /// The calibrated cost table for `os`.
    pub fn for_os(os: Os) -> OsCosts {
        match os {
            Os::Linux => OsCosts {
                os,
                trap_cy: 231,
                syscall_overhead_cy: 160,
                fork_cy: 45_000,
                exec_cy: 2_200_000,
                dispatch: DispatchCosts {
                    base_cy: 3_500,
                    per_task_cy: 140,
                    table_slots: 0,
                    table_miss_cy: 0,
                },
                pipe: PipeCosts {
                    capacity: 4096,
                    write_op_cy: 450,
                    read_op_cy: 400,
                    seg_unit: 4096,
                    per_seg_cy: 2_500,
                    per_byte_extra: 0.0,
                },
                jitter: 0.012,
            },
            Os::FreeBsd => OsCosts {
                os,
                trap_cy: 262,
                syscall_overhead_cy: 180,
                fork_cy: 70_000,
                exec_cy: 2_500_000,
                dispatch: DispatchCosts {
                    base_cy: 6_100,
                    per_task_cy: 0,
                    table_slots: 0,
                    table_miss_cy: 0,
                },
                pipe: PipeCosts {
                    capacity: 16_384,
                    write_op_cy: 600,
                    read_op_cy: 550,
                    seg_unit: 4096,
                    per_seg_cy: 2_250,
                    per_byte_extra: 1.35,
                },
                jitter: 0.015,
            },
            Os::Solaris => OsCosts {
                os,
                trap_cy: 352,
                syscall_overhead_cy: 260,
                fork_cy: 130_000,
                exec_cy: 20_000_000,
                dispatch: DispatchCosts {
                    base_cy: 13_600,
                    per_task_cy: 0,
                    table_slots: 32,
                    table_miss_cy: 8_000,
                },
                pipe: PipeCosts {
                    capacity: 8192,
                    write_op_cy: 4_500,
                    read_op_cy: 3_500,
                    seg_unit: 4096,
                    per_seg_cy: 4_000,
                    per_byte_extra: 1.5,
                },
                jitter: 0.028,
            },
            // SunOS 4.1.4 on a SPARC server; it only serves NFS in our
            // experiments, so only rough costs matter.
            Os::SunOs => OsCosts {
                os,
                trap_cy: 300,
                syscall_overhead_cy: 200,
                fork_cy: 80_000,
                exec_cy: 3_500_000,
                dispatch: DispatchCosts {
                    base_cy: 7_000,
                    per_task_cy: 0,
                    table_slots: 0,
                    table_miss_cy: 0,
                },
                pipe: PipeCosts {
                    capacity: 4096,
                    write_op_cy: 700,
                    read_op_cy: 600,
                    seg_unit: 4096,
                    per_seg_cy: 3_000,
                    per_byte_extra: 0.5,
                },
                jitter: 0.015,
            },
        }
    }

    /// Builds this system's scheduler as a [`RunPolicy`]. `tasks` must be
    /// the kernel's live-process counter (Linux's O(n) scan walks it).
    pub fn make_policy(&self, tasks: Arc<AtomicUsize>) -> Box<dyn RunPolicy> {
        let d = self.dispatch;
        match self.os {
            Os::Linux => Box::new(LinuxSched::new(d.base_cy, d.per_task_cy, tasks)),
            Os::FreeBsd | Os::SunOs => Box::new(FreeBsdSched::new(d.base_cy)),
            Os::Solaris => Box::new(SolarisSched::new(d.base_cy, d.table_slots, d.table_miss_cy)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn getpid_times_match_table2() {
        assert_eq!(OsCosts::for_os(Os::Linux).trap_cy, 231);
        assert_eq!(OsCosts::for_os(Os::FreeBsd).trap_cy, 262);
        assert_eq!(OsCosts::for_os(Os::Solaris).trap_cy, 352);
    }

    #[test]
    fn solaris_pipe_self_roundtrip_is_80us() {
        // Section 5: one byte out and back through a Solaris pipe takes
        // 80 us. That is one write plus one read (no context switch).
        let c = OsCosts::for_os(Os::Solaris);
        let cy = 2 * c.trap_cy + 2 * c.syscall_overhead_cy + c.pipe.write_op_cy + c.pipe.read_op_cy;
        let us = cy as f64 / 100.0;
        assert!(
            (us - 80.0).abs() < 15.0,
            "Solaris pipe roundtrip ~80us, got {us}"
        );
    }

    #[test]
    fn ordering_of_trap_costs() {
        let [l, f, s] = Os::benchmarked().map(|o| OsCosts::for_os(o).trap_cy);
        assert!(l < f && f < s, "Linux < FreeBSD < Solaris on system calls");
    }

    #[test]
    fn labels() {
        assert_eq!(Os::Linux.label(), "Linux");
        assert_eq!(Os::Solaris.label(), "Solaris 2.4");
    }
}
