//! The VFS boundary between the kernel and a mounted filesystem model.
//!
//! `tnt-fs` implements [`Filesystem`] twice (the asynchronous-metadata
//! ext2 model and the synchronous-metadata FFS model); the kernel only
//! sees this trait. Paths are absolute, `/`-separated, and already
//! resolved relative to the mount point.

use crate::costs::OsCosts;
use crate::errno::SysResult;
use tnt_sim::Sim;

/// Kernel execution environment handed to filesystem and network models:
/// the simulation (for charging time and blocking) and the owning
/// machine's cost table.
#[derive(Clone)]
pub struct KEnv {
    /// The simulation engine.
    pub sim: Sim,
    /// Cost personality of the machine this code runs on.
    pub costs: OsCosts,
}

/// Identifier of a file or directory within one mounted filesystem.
pub type VnodeId = u64;

/// Attributes returned by `stat`-family calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileAttr {
    /// The vnode this describes.
    pub vnode: VnodeId,
    /// Size in bytes (0 for directories in this model).
    pub size: u64,
    /// Whether this is a directory.
    pub is_dir: bool,
    /// Link count.
    pub nlink: u32,
}

/// `open(2)` flags (the subset the benchmarks use).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create if absent.
    pub create: bool,
    /// Truncate to zero length.
    pub truncate: bool,
    /// Fail if `create` and the file exists.
    pub exclusive: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn rdonly() -> OpenFlags {
        OpenFlags {
            read: true,
            ..OpenFlags::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC` — the `creat(2)` combination.
    pub fn creat() -> OpenFlags {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..OpenFlags::default()
        }
    }

    /// `O_RDWR`.
    pub fn rdwr() -> OpenFlags {
        OpenFlags {
            read: true,
            write: true,
            ..OpenFlags::default()
        }
    }
}

/// A mounted filesystem as seen by the kernel.
///
/// Methods may block the calling simulated process (disk I/O) and must
/// charge their CPU and device time through `env`. Implementations model
/// file *sizes*, not contents — the benchmarks only move byte counts.
pub trait Filesystem: Send + Sync {
    /// Resolves a path to a vnode.
    fn lookup(&self, env: &KEnv, path: &str) -> SysResult<VnodeId>;

    /// Opens (optionally creating/truncating) a file; returns its vnode.
    fn open(&self, env: &KEnv, path: &str, flags: OpenFlags) -> SysResult<VnodeId>;

    /// Reads `len` bytes at `off`; returns bytes actually read (short at
    /// end of file).
    fn read(&self, env: &KEnv, vnode: VnodeId, off: u64, len: u64) -> SysResult<u64>;

    /// Writes `len` bytes at `off`; returns bytes written.
    fn write(&self, env: &KEnv, vnode: VnodeId, off: u64, len: u64) -> SysResult<u64>;

    /// Attributes of a vnode.
    fn getattr(&self, env: &KEnv, vnode: VnodeId) -> SysResult<FileAttr>;

    /// Removes a file (not a directory).
    fn unlink(&self, env: &KEnv, path: &str) -> SysResult<()>;

    /// Creates a directory.
    fn mkdir(&self, env: &KEnv, path: &str) -> SysResult<()>;

    /// Removes an empty directory.
    fn rmdir(&self, env: &KEnv, path: &str) -> SysResult<()>;

    /// Lists the names in a directory.
    fn readdir(&self, env: &KEnv, path: &str) -> SysResult<Vec<String>>;

    /// Flushes a file's dirty data and metadata to disk.
    fn fsync(&self, env: &KEnv, vnode: VnodeId) -> SysResult<()>;

    /// Flushes everything (called between benchmark phases, like the
    /// paper's fresh-filesystem discipline).
    fn sync(&self, env: &KEnv);

    /// Called when the last descriptor for `vnode` closes. Default: no
    /// work (the NFS client uses it for close-to-open consistency).
    fn release(&self, env: &KEnv, vnode: VnodeId) {
        let _ = (env, vnode);
    }

    /// Renames `from` to `to` (within this filesystem). An existing
    /// non-directory target is replaced, as POSIX requires.
    fn rename(&self, env: &KEnv, from: &str, to: &str) -> SysResult<()> {
        let _ = (env, from, to);
        Err(crate::errno::Errno::ENOSYS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_constructors() {
        let c = OpenFlags::creat();
        assert!(c.write && c.create && c.truncate && !c.read && !c.exclusive);
        assert!(OpenFlags::rdonly().read);
        let rw = OpenFlags::rdwr();
        assert!(rw.read && rw.write && !rw.create);
    }
}
