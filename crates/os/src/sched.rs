//! The three modelled schedulers, plus a cluster policy for multi-machine
//! simulations (NFS client + server).
//!
//! These reproduce Figure 1 of the paper:
//!
//! - **Linux 1.2**: `schedule()` recomputes goodness over the task table,
//!   so each dispatch costs `base + per_task * live_tasks` — the linear
//!   growth of the Linux curve;
//! - **FreeBSD 2.0.5**: fixed-priority run queues found through a bitmap,
//!   constant cost — the flat curve;
//! - **Solaris 2.4**: an expensive fully-preemptive MT dispatcher plus a
//!   32-entry dispatch-structure modelled as an LRU table. A ring of more
//!   than 32 processes misses on every switch (the sharp jump the paper
//!   observed); the LIFO chain pattern re-touches recently run processes
//!   and only degrades gradually past 32, steepening beyond 64 — matching
//!   the authors' Solaris-LIFO experiment.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use tnt_sim::{Cycles, DispatchEnv, Pick, RunPolicy, Tid};

/// Linux 1.2's O(number-of-tasks) scheduler.
pub struct LinuxSched {
    queue: VecDeque<Tid>,
    base_cy: u64,
    per_task_cy: u64,
    tasks: Arc<AtomicUsize>,
}

impl LinuxSched {
    /// `tasks` is the owning kernel's live-process counter.
    pub fn new(base_cy: u64, per_task_cy: u64, tasks: Arc<AtomicUsize>) -> LinuxSched {
        LinuxSched {
            queue: VecDeque::new(),
            base_cy,
            per_task_cy,
            tasks,
        }
    }
}

impl RunPolicy for LinuxSched {
    fn enqueue(&mut self, tid: Tid, _tag: u32) {
        self.queue.push_back(tid);
    }

    fn pick(&mut self, _env: &mut DispatchEnv<'_>) -> Option<Pick> {
        let tid = self.queue.pop_front()?;
        let ntasks = self.tasks.load(Ordering::Relaxed) as u64;
        Some(Pick {
            tid,
            cost: Cycles(self.base_cy + self.per_task_cy * ntasks),
        })
    }

    fn forget(&mut self, tid: Tid) {
        self.queue.retain(|t| *t != tid);
    }

    fn runnable(&self) -> usize {
        self.queue.len()
    }
}

/// FreeBSD's constant-time run-queue scheduler.
pub struct FreeBsdSched {
    queue: VecDeque<Tid>,
    base_cy: u64,
}

impl FreeBsdSched {
    /// Builds the scheduler with its fixed dispatch cost.
    pub fn new(base_cy: u64) -> FreeBsdSched {
        FreeBsdSched {
            queue: VecDeque::new(),
            base_cy,
        }
    }
}

impl RunPolicy for FreeBsdSched {
    fn enqueue(&mut self, tid: Tid, _tag: u32) {
        self.queue.push_back(tid);
    }

    fn pick(&mut self, _env: &mut DispatchEnv<'_>) -> Option<Pick> {
        self.queue.pop_front().map(|tid| Pick {
            tid,
            cost: Cycles(self.base_cy),
        })
    }

    fn forget(&mut self, tid: Tid) {
        self.queue.retain(|t| *t != tid);
    }

    fn runnable(&self) -> usize {
        self.queue.len()
    }
}

/// Solaris 2.4's dispatcher with the 32-entry table anomaly.
pub struct SolarisSched {
    queue: VecDeque<Tid>,
    base_cy: u64,
    /// LRU of recently dispatched threads; front = least recent.
    table: VecDeque<Tid>,
    slots: usize,
    miss_cy: u64,
    misses: u64,
    hits: u64,
}

impl SolarisSched {
    /// `slots` is the dispatch-table size (32 on x86 per the paper's
    /// observation); `miss_cy` the extra cost of a table miss.
    pub fn new(base_cy: u64, slots: usize, miss_cy: u64) -> SolarisSched {
        SolarisSched {
            queue: VecDeque::new(),
            base_cy,
            table: VecDeque::new(),
            slots,
            miss_cy,
            misses: 0,
            hits: 0,
        }
    }

    /// (hits, misses) of the dispatch table, for tests.
    pub fn table_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn table_access(&mut self, tid: Tid) -> bool {
        if self.slots == 0 {
            return true;
        }
        if let Some(pos) = self.table.iter().position(|t| *t == tid) {
            self.table.remove(pos);
            self.table.push_back(tid);
            self.hits += 1;
            true
        } else {
            if self.table.len() == self.slots {
                self.table.pop_front();
            }
            self.table.push_back(tid);
            self.misses += 1;
            false
        }
    }
}

impl RunPolicy for SolarisSched {
    fn enqueue(&mut self, tid: Tid, _tag: u32) {
        self.queue.push_back(tid);
    }

    fn pick(&mut self, _env: &mut DispatchEnv<'_>) -> Option<Pick> {
        let tid = self.queue.pop_front()?;
        let mut cost = self.base_cy;
        if !self.table_access(tid) {
            cost += self.miss_cy;
        }
        Some(Pick {
            tid,
            cost: Cycles(cost),
        })
    }

    fn forget(&mut self, tid: Tid) {
        self.queue.retain(|t| *t != tid);
        self.table.retain(|t| *t != tid);
    }

    fn runnable(&self) -> usize {
        self.queue.len()
    }
}

/// Routes processes to per-machine schedulers by their spawn tag; used
/// when one simulation hosts several machines (NFS client and server).
///
/// The engine has a single baton (one host CPU), so CPU time on different
/// machines serialises. That is exact for synchronous RPC interactions —
/// the client is blocked while the server computes — and a small
/// pessimism for background daemons.
pub struct ClusterPolicy {
    machines: Vec<Box<dyn RunPolicy>>,
    cursor: usize,
}

impl ClusterPolicy {
    /// Builds a cluster from one policy per machine; spawn tag = index.
    pub fn new(machines: Vec<Box<dyn RunPolicy>>) -> ClusterPolicy {
        assert!(!machines.is_empty(), "cluster needs at least one machine");
        ClusterPolicy {
            machines,
            cursor: 0,
        }
    }
}

impl RunPolicy for ClusterPolicy {
    fn enqueue(&mut self, tid: Tid, tag: u32) {
        let m = tag as usize;
        assert!(m < self.machines.len(), "spawn tag {tag} has no machine");
        self.machines[m].enqueue(tid, tag);
    }

    fn pick(&mut self, env: &mut DispatchEnv<'_>) -> Option<Pick> {
        let n = self.machines.len();
        for i in 0..n {
            let m = (self.cursor + i) % n;
            if let Some(pick) = self.machines[m].pick(env) {
                self.cursor = (m + 1) % n;
                return Some(pick);
            }
        }
        None
    }

    fn forget(&mut self, tid: Tid) {
        for m in &mut self.machines {
            m.forget(tid);
        }
    }

    fn runnable(&self) -> usize {
        self.machines.iter().map(|m| m.runnable()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env(rng: &mut StdRng) -> DispatchEnv<'_> {
        DispatchEnv {
            nlive: 0,
            now: Cycles::ZERO,
            rng,
        }
    }

    #[test]
    fn linux_cost_scales_with_tasks() {
        let tasks = Arc::new(AtomicUsize::new(2));
        let mut s = LinuxSched::new(3_500, 140, tasks.clone());
        let mut rng = StdRng::seed_from_u64(0);
        s.enqueue(Tid(1), 0);
        let c2 = s.pick(&mut env(&mut rng)).unwrap().cost;
        tasks.store(50, Ordering::Relaxed);
        s.enqueue(Tid(1), 0);
        let c50 = s.pick(&mut env(&mut rng)).unwrap().cost;
        assert_eq!(c2, Cycles(3_500 + 280));
        assert_eq!(c50, Cycles(3_500 + 7_000));
        assert_eq!((c50 - c2).0, 140 * 48, "exactly linear in task count");
    }

    #[test]
    fn freebsd_cost_is_flat() {
        let mut s = FreeBsdSched::new(6_100);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..100 {
            s.enqueue(Tid(i), 0);
        }
        let costs: Vec<_> = (0..100)
            .map(|_| s.pick(&mut env(&mut rng)).unwrap().cost)
            .collect();
        assert!(costs.iter().all(|c| *c == Cycles(6_100)));
    }

    #[test]
    fn solaris_ring_hits_below_32_misses_above() {
        let mut rng = StdRng::seed_from_u64(0);
        // Ring of 16: after warmup, every dispatch hits the table.
        let mut s = SolarisSched::new(13_600, 32, 8_000);
        for round in 0..10 {
            for i in 0..16u32 {
                s.enqueue(Tid(i), 0);
                let p = s.pick(&mut env(&mut rng)).unwrap();
                if round > 0 {
                    assert_eq!(p.cost, Cycles(13_600), "warm ring of 16 must hit");
                }
            }
        }
        // Ring of 40: LRU of 32 thrashes; every dispatch misses.
        let mut s = SolarisSched::new(13_600, 32, 8_000);
        for _ in 0..5 {
            for i in 0..40u32 {
                s.enqueue(Tid(i), 0);
                s.pick(&mut env(&mut rng)).unwrap();
            }
        }
        let (hits, misses) = s.table_stats();
        assert_eq!(
            hits, 0,
            "ring > 32 never hits ({hits} hits, {misses} misses)"
        );
    }

    #[test]
    fn solaris_lifo_pattern_degrades_gradually() {
        // The LIFO chain visits 0..N then N..0; the turnaround region
        // stays in the 32-entry LRU, so some accesses still hit for
        // 32 < N < 64 while the ring pattern misses on every access.
        let mut rng = StdRng::seed_from_u64(0);
        let n = 48u32;
        let mut s = SolarisSched::new(13_600, 32, 8_000);
        for _ in 0..10 {
            for i in (0..n).chain((0..n).rev()) {
                s.enqueue(Tid(i), 0);
                s.pick(&mut env(&mut rng)).unwrap();
            }
        }
        let (hits, misses) = s.table_stats();
        let hit_rate = hits as f64 / (hits + misses) as f64;
        assert!(
            hit_rate > 0.2,
            "LIFO at 48 procs keeps hitting some ({hit_rate})"
        );
        assert!(hit_rate < 0.9, "but misses grow ({hit_rate})");
    }

    #[test]
    fn cluster_routes_by_tag() {
        let mut cluster = ClusterPolicy::new(vec![
            Box::new(FreeBsdSched::new(100)),
            Box::new(FreeBsdSched::new(999)),
        ]);
        let mut rng = StdRng::seed_from_u64(0);
        cluster.enqueue(Tid(1), 0);
        cluster.enqueue(Tid(2), 1);
        assert_eq!(cluster.runnable(), 2);
        let picks: Vec<_> = (0..2)
            .map(|_| cluster.pick(&mut env(&mut rng)).unwrap())
            .collect();
        let mut costs: Vec<u64> = picks.iter().map(|p| p.cost.0).collect();
        costs.sort_unstable();
        assert_eq!(costs, vec![100, 999], "each machine charges its own cost");
        assert!(cluster.pick(&mut env(&mut rng)).is_none());
    }

    #[test]
    fn cluster_forget_reaches_all_machines() {
        let mut cluster = ClusterPolicy::new(vec![
            Box::new(FreeBsdSched::new(1)),
            Box::new(FreeBsdSched::new(2)),
        ]);
        cluster.enqueue(Tid(5), 1);
        cluster.forget(Tid(5));
        assert_eq!(cluster.runnable(), 0);
    }
}
