//! The kernel object and the user-process syscall layer.
//!
//! One [`Kernel`] is one machine: a cost personality, a scheduler (wired
//! into the shared simulation as its run policy), a process table, and a
//! mounted root filesystem. Simulated user programs receive a [`UProc`]
//! handle whose methods are the system calls; every call charges the trap
//! and handler costs of the machine's [`OsCosts`] table before doing the
//! modelled work.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use std::collections::BTreeMap;

use crate::costs::{Os, OsCosts};
use crate::errno::{Errno, SysResult};
use crate::fdtable::{Fd, FdTable, File, FileObj};
use crate::pipe::Pipe;
use crate::sched::ClusterPolicy;
use crate::vfs::{FileAttr, Filesystem, KEnv, OpenFlags};
use tnt_sim::trace::{Class, Counter, CounterSet};
use tnt_sim::{Cycles, Sim, SimConfig, Tid, WaitId};

/// Process identifier (same space as the engine's [`Tid`]).
pub type Pid = Tid;

struct ProcEntry {
    fds: FdTable,
    exited: bool,
    exit_q: WaitId,
}

/// Kernel event counters — the [Chen 95]-style accounting the paper's
/// Section 13 proposes as future work, available here because the kernel
/// is a simulation rather than a black box.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// System calls entered (including `getpid`).
    pub syscalls: u64,
    /// `fork` calls.
    pub forks: u64,
    /// `exec` calls.
    pub execs: u64,
}

struct KernelInner {
    env: KEnv,
    tag: u32,
    tasks: Arc<AtomicUsize>,
    procs: Mutex<BTreeMap<Pid, ProcEntry>>,
    /// Per-machine counter bank (the simulation's tracer aggregates the
    /// same counters machine-wide; this one keeps `stats()` per kernel).
    counters: CounterSet,
    /// Mount table: (prefix, filesystem), longest prefix wins.
    mounts: Mutex<Vec<(String, Arc<dyn Filesystem>)>>,
}

/// One simulated machine's kernel. Cheap to clone.
#[derive(Clone)]
pub struct Kernel {
    inner: Arc<KernelInner>,
}

/// Boots a single machine running `os` and returns the simulation plus
/// its kernel. `seed` selects the run (the paper runs everything twenty
/// times with different conditions).
pub fn boot(os: Os, seed: u64) -> (Sim, Kernel) {
    boot_with(OsCosts::for_os(os), seed)
}

/// Boots a machine with an explicit cost table — used for the Section 13
/// "next release" projections and for ablation experiments. The fault
/// profile comes from the process-wide ambient setting (`reproduce
/// --faults`), off by default.
pub fn boot_with(costs: OsCosts, seed: u64) -> (Sim, Kernel) {
    let tasks = Arc::new(AtomicUsize::new(0));
    let sim = Sim::new(
        costs.make_policy(tasks.clone()),
        SimConfig {
            seed,
            jitter: costs.jitter,
            faults: tnt_sim::fault::ambient(),
            record: tnt_sim::replay::ambient(),
        },
    );
    let kernel = Kernel::attach(&sim, costs, 0, tasks);
    (sim, kernel)
}

/// Boots several machines into one simulation (e.g. NFS client and
/// server). Machine `i` runs `oses[i]` and its processes must be spawned
/// through its own kernel. Jitter follows the first (client) machine.
/// Faults follow the ambient profile; use [`boot_cluster_with_faults`]
/// for an explicit one.
pub fn boot_cluster(oses: &[Os], seed: u64) -> (Sim, Vec<Kernel>) {
    boot_cluster_with_faults(oses, seed, tnt_sim::fault::ambient())
}

/// [`boot_cluster`] with an explicit fault profile, for degradation
/// sweeps that pin their own injection rates regardless of `--faults`.
pub fn boot_cluster_with_faults(
    oses: &[Os],
    seed: u64,
    faults: tnt_sim::fault::FaultProfile,
) -> (Sim, Vec<Kernel>) {
    assert!(!oses.is_empty());
    let costs: Vec<OsCosts> = oses.iter().map(|o| OsCosts::for_os(*o)).collect();
    let task_counters: Vec<Arc<AtomicUsize>> =
        oses.iter().map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let policies = costs
        .iter()
        .zip(&task_counters)
        .map(|(c, t)| c.make_policy(t.clone()))
        .collect();
    let sim = Sim::new(
        Box::new(ClusterPolicy::new(policies)),
        SimConfig {
            seed,
            jitter: costs[0].jitter,
            faults,
            record: tnt_sim::replay::ambient(),
        },
    );
    let kernels = costs
        .into_iter()
        .zip(task_counters)
        .enumerate()
        .map(|(i, (c, t))| Kernel::attach(&sim, c, i as u32, t))
        .collect();
    (sim, kernels)
}

impl Kernel {
    /// Attaches a kernel to an existing simulation. `tag` must match the
    /// machine's index in the simulation's (cluster) run policy.
    pub fn attach(sim: &Sim, costs: OsCosts, tag: u32, tasks: Arc<AtomicUsize>) -> Kernel {
        Kernel {
            inner: Arc::new(KernelInner {
                env: KEnv {
                    sim: sim.clone(),
                    costs,
                },
                tag,
                tasks,
                procs: Mutex::new(BTreeMap::new()),
                counters: CounterSet::new(),
                mounts: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The machine's cost table.
    pub fn costs(&self) -> &OsCosts {
        &self.inner.env.costs
    }

    /// The kernel execution environment (for filesystem/network models).
    pub fn env(&self) -> &KEnv {
        &self.inner.env
    }

    /// The simulation this kernel lives in.
    pub fn sim(&self) -> &Sim {
        &self.inner.env.sim
    }

    /// Mounts `fs` as the root filesystem (replacing any previous root).
    pub fn mount(&self, fs: Arc<dyn Filesystem>) {
        self.mount_at("/", fs);
    }

    /// Mounts `fs` at `prefix` (e.g. `"/tmp"`). The longest matching
    /// prefix wins at lookup, and the prefix is stripped from paths the
    /// filesystem sees.
    pub fn mount_at(&self, prefix: &str, fs: Arc<dyn Filesystem>) {
        let prefix = if prefix == "/" {
            String::new()
        } else {
            prefix.trim_end_matches('/').to_string()
        };
        let mut mounts = self.inner.mounts.lock();
        mounts.retain(|(p, _)| *p != prefix);
        mounts.push((prefix, fs));
        // Longest prefix first.
        mounts.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
    }

    /// The mounted root filesystem.
    pub fn root_fs(&self) -> SysResult<Arc<dyn Filesystem>> {
        let mounts = self.inner.mounts.lock();
        mounts
            .iter()
            .find(|(p, _)| p.is_empty())
            .map(|(_, fs)| fs.clone())
            .ok_or(Errno::ENOSYS)
    }

    /// Resolves `path` to its mounted filesystem and the path within it.
    pub fn fs_at(&self, path: &str) -> SysResult<(Arc<dyn Filesystem>, String)> {
        let mounts = self.inner.mounts.lock();
        for (prefix, fs) in mounts.iter() {
            if prefix.is_empty() {
                return Ok((fs.clone(), path.to_string()));
            }
            if let Some(rest) = path.strip_prefix(prefix.as_str()) {
                if rest.is_empty() {
                    return Ok((fs.clone(), "/".to_string()));
                }
                if rest.starts_with('/') {
                    return Ok((fs.clone(), rest.to_string()));
                }
            }
        }
        Err(Errno::ENOSYS)
    }

    /// Number of live processes on this machine.
    pub fn live_tasks(&self) -> usize {
        self.inner.tasks.load(Ordering::Relaxed)
    }

    /// Kernel event counters accumulated so far.
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            syscalls: self.inner.counters.get(Counter::Syscalls),
            forks: self.inner.counters.get(Counter::Forks),
            execs: self.inner.counters.get(Counter::Execs),
        }
    }

    /// This machine's full counter bank (Chen-style event counts).
    pub fn counters(&self) -> &CounterSet {
        &self.inner.counters
    }

    fn count(&self, c: Counter) {
        self.inner.counters.add(c, 1);
        self.sim().count(c, 1);
    }

    /// Spawns the first process of a program (no fork cost charged; think
    /// of it as already running when the benchmark starts).
    pub fn spawn_user<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(UProc) + Send + 'static,
    {
        self.spawn_internal(name.into(), f)
    }

    fn spawn_internal<F>(&self, name: String, f: F) -> Pid
    where
        F: FnOnce(UProc) + Send + 'static,
    {
        let kernel = self.clone();
        let sim = self.sim().clone();
        let exit_q = sim.new_queue();
        self.inner.tasks.fetch_add(1, Ordering::Relaxed);
        // The process entry must exist before the child can run; we create
        // it inside the closure guarded by the fact that the spawned
        // process cannot run until this (currently running) code blocks.
        let tid = sim.spawn_tagged(name, self.inner.tag, move |s| {
            let pid = s.current();
            let uproc = UProc {
                kernel: kernel.clone(),
                pid,
            };
            f(uproc);
            kernel.on_proc_exit(pid);
        });
        self.inner.procs.lock().insert(
            tid,
            ProcEntry {
                fds: FdTable::new(),
                exited: false,
                exit_q,
            },
        );
        tid
    }

    fn on_proc_exit(&self, pid: Pid) {
        let files = {
            let mut procs = self.inner.procs.lock();
            let entry = procs.get_mut(&pid).expect("exiting process has no entry");
            entry.exited = true;
            entry.fds.drain()
        };
        for file in files {
            self.release_file(file);
        }
        self.inner.tasks.fetch_sub(1, Ordering::Relaxed);
        let q = self.inner.procs.lock().get(&pid).map(|e| e.exit_q);
        if let Some(q) = q {
            self.sim().wakeup_all(q);
        }
    }

    fn release_file(&self, file: Arc<File>) {
        if !file.drop_ref() {
            return;
        }
        match &file.obj {
            FileObj::PipeRead(p) => p.close_reader(self.sim()),
            FileObj::PipeWrite(p) => p.close_writer(self.sim()),
            FileObj::Vnode { fs, vnode, .. } => fs.release(self.env(), *vnode),
            FileObj::Null => {}
        }
    }

    fn with_proc<T>(&self, pid: Pid, f: impl FnOnce(&mut ProcEntry) -> T) -> T {
        let mut procs = self.inner.procs.lock();
        f(procs.get_mut(&pid).expect("no process entry"))
    }
}

/// A user process: the syscall interface the benchmarks program against.
pub struct UProc {
    kernel: Kernel,
    pid: Pid,
}

impl UProc {
    /// The owning kernel (machine).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The simulation.
    pub fn sim(&self) -> &Sim {
        self.kernel.sim()
    }

    /// This process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    fn env(&self) -> &KEnv {
        self.kernel.env()
    }

    fn charge_trap(&self) {
        self.kernel.count(Counter::Syscalls);
        let c = self.kernel.costs();
        let _t = self.sim().span(Class::TrapEntry);
        self.sim().charge(Cycles(c.trap_cy));
    }

    fn charge_syscall(&self) {
        self.kernel.count(Counter::Syscalls);
        let c = self.kernel.costs();
        let _t = self.sim().span(Class::TrapEntry);
        self.sim().charge(Cycles(c.trap_cy + c.syscall_overhead_cy));
    }

    /// Burns user-level CPU (`cycles` of computation).
    pub fn compute(&self, cycles: Cycles) {
        self.sim().charge(cycles);
    }

    /// `getpid(2)` — the Table 2 microbenchmark operation.
    pub fn getpid(&self) -> u32 {
        self.charge_trap();
        self.pid.0
    }

    /// `getrusage(2)`-style self CPU time: cycles this process has been
    /// charged, including its share of kernel work done on its behalf.
    #[must_use]
    pub fn rusage_self(&self) -> Cycles {
        self.charge_syscall();
        self.sim().proc_cpu(self.pid)
    }

    /// `fork(2)`, spawn-style: the child runs `f` with its own [`UProc`].
    /// The child inherits (shares) the parent's descriptor table entries.
    pub fn fork<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(UProc) + Send + 'static,
    {
        self.kernel.count(Counter::Syscalls);
        self.kernel.count(Counter::Forks);
        let c = self.kernel.costs();
        {
            let _t = self.sim().span(Class::TrapEntry);
            self.sim().charge(Cycles(c.trap_cy + c.fork_cy));
        }
        let child_fds = self.kernel.with_proc(self.pid, |e| e.fds.fork_clone());
        let pid = self.kernel.spawn_internal(name.into(), f);
        self.kernel.with_proc(pid, |e| e.fds = child_fds);
        pid
    }

    /// `execve(2)` cost model: charges image setup; the caller then runs
    /// the new program's code itself.
    pub fn exec(&self) {
        self.kernel.count(Counter::Syscalls);
        self.kernel.count(Counter::Execs);
        let c = self.kernel.costs();
        let _t = self.sim().span(Class::TrapEntry);
        self.sim().charge(Cycles(c.trap_cy + c.exec_cy));
    }

    /// `waitpid(2)`: blocks until the child exits.
    pub fn waitpid(&self, child: Pid) {
        self.charge_syscall();
        loop {
            let (exited, q) = {
                let procs = self.kernel.inner.procs.lock();
                match procs.get(&child) {
                    None => return, // already reaped
                    Some(e) => (e.exited, e.exit_q),
                }
            };
            if exited {
                self.kernel.inner.procs.lock().remove(&child);
                return;
            }
            self.sim().wait_on(q, "waitpid");
        }
    }

    /// `pipe(2)`: returns (read fd, write fd).
    pub fn pipe(&self) -> (Fd, Fd) {
        self.charge_syscall();
        let pipe = Pipe::new(self.sim(), self.kernel.costs().pipe);
        let rd = File::new(FileObj::PipeRead(pipe.clone()));
        let wr = File::new(FileObj::PipeWrite(pipe));
        self.kernel.with_proc(self.pid, |e| {
            let rfd = e.fds.install(rd);
            let wfd = e.fds.install(wr);
            (rfd, wfd)
        })
    }

    /// `close(2)`.
    pub fn close(&self, fd: Fd) -> SysResult<()> {
        self.charge_syscall();
        let file = self.kernel.with_proc(self.pid, |e| e.fds.remove(fd))?;
        self.kernel.release_file(file);
        Ok(())
    }

    /// `dup(2)`.
    pub fn dup(&self, fd: Fd) -> SysResult<Fd> {
        self.charge_syscall();
        self.kernel.with_proc(self.pid, |e| {
            let file = e.fds.get(fd)?;
            file.add_ref();
            Ok(e.fds.install(file))
        })
    }

    fn file(&self, fd: Fd) -> SysResult<Arc<File>> {
        self.kernel.with_proc(self.pid, |e| e.fds.get(fd))
    }

    /// `write(2)` of `len` modelled bytes (content zeros).
    pub fn write(&self, fd: Fd, len: u64) -> SysResult<u64> {
        self.charge_syscall();
        let file = self.file(fd)?;
        match &file.obj {
            FileObj::PipeWrite(p) => p.write(self.env(), &vec![0u8; len as usize]),
            FileObj::Vnode { fs, vnode, flags } => {
                if !flags.write {
                    return Err(Errno::EBADF);
                }
                let off = file.offset();
                let n = fs.write(self.env(), *vnode, off, len)?;
                file.set_offset(off + n);
                Ok(n)
            }
            FileObj::Null => Ok(len),
            FileObj::PipeRead(_) => Err(Errno::EBADF),
        }
    }

    /// `write(2)` of real bytes (pipes preserve them for the reader).
    pub fn write_bytes(&self, fd: Fd, data: &[u8]) -> SysResult<u64> {
        self.charge_syscall();
        let file = self.file(fd)?;
        match &file.obj {
            FileObj::PipeWrite(p) => p.write(self.env(), data),
            FileObj::Vnode { .. } | FileObj::Null => self.write_common(&file, data.len() as u64),
            FileObj::PipeRead(_) => Err(Errno::EBADF),
        }
    }

    fn write_common(&self, file: &Arc<File>, len: u64) -> SysResult<u64> {
        match &file.obj {
            FileObj::Vnode { fs, vnode, flags } => {
                if !flags.write {
                    return Err(Errno::EBADF);
                }
                let off = file.offset();
                let n = fs.write(self.env(), *vnode, off, len)?;
                file.set_offset(off + n);
                Ok(n)
            }
            FileObj::Null => Ok(len),
            _ => Err(Errno::EBADF),
        }
    }

    /// `read(2)` of up to `len` bytes; returns the byte count.
    pub fn read(&self, fd: Fd, len: u64) -> SysResult<u64> {
        self.charge_syscall();
        let file = self.file(fd)?;
        match &file.obj {
            FileObj::PipeRead(p) => Ok(p.read(self.env(), len)?.len() as u64),
            FileObj::Vnode { fs, vnode, flags } => {
                if !flags.read {
                    return Err(Errno::EBADF);
                }
                let off = file.offset();
                let n = fs.read(self.env(), *vnode, off, len)?;
                file.set_offset(off + n);
                Ok(n)
            }
            FileObj::Null => Ok(0),
            FileObj::PipeWrite(_) => Err(Errno::EBADF),
        }
    }

    /// `read(2)` returning the actual bytes (pipes only carry real data).
    pub fn read_bytes(&self, fd: Fd, len: u64) -> SysResult<Vec<u8>> {
        self.charge_syscall();
        let file = self.file(fd)?;
        match &file.obj {
            FileObj::PipeRead(p) => p.read(self.env(), len),
            _ => Err(Errno::EBADF),
        }
    }

    /// `open(2)`.
    pub fn open(&self, path: &str, flags: OpenFlags) -> SysResult<Fd> {
        self.charge_syscall();
        let (fs, rel) = self.kernel.fs_at(path)?;
        let vnode = fs.open(self.env(), &rel, flags)?;
        let file = File::new(FileObj::Vnode { fs, vnode, flags });
        Ok(self.kernel.with_proc(self.pid, |e| e.fds.install(file)))
    }

    /// `creat(2)`.
    pub fn creat(&self, path: &str) -> SysResult<Fd> {
        self.open(path, OpenFlags::creat())
    }

    /// `unlink(2)`.
    pub fn unlink(&self, path: &str) -> SysResult<()> {
        self.charge_syscall();
        let (fs, rel) = self.kernel.fs_at(path)?;
        fs.unlink(self.env(), &rel)
    }

    /// `mkdir(2)`.
    pub fn mkdir(&self, path: &str) -> SysResult<()> {
        self.charge_syscall();
        let (fs, rel) = self.kernel.fs_at(path)?;
        fs.mkdir(self.env(), &rel)
    }

    /// `rmdir(2)`.
    pub fn rmdir(&self, path: &str) -> SysResult<()> {
        self.charge_syscall();
        let (fs, rel) = self.kernel.fs_at(path)?;
        fs.rmdir(self.env(), &rel)
    }

    /// `stat(2)`.
    pub fn stat(&self, path: &str) -> SysResult<FileAttr> {
        self.charge_syscall();
        let (fs, rel) = self.kernel.fs_at(path)?;
        let vnode = fs.lookup(self.env(), &rel)?;
        fs.getattr(self.env(), vnode)
    }

    /// `fstat(2)`.
    pub fn fstat(&self, fd: Fd) -> SysResult<FileAttr> {
        self.charge_syscall();
        let file = self.file(fd)?;
        match &file.obj {
            FileObj::Vnode { fs, vnode, .. } => fs.getattr(self.env(), *vnode),
            _ => Err(Errno::EINVAL),
        }
    }

    /// `lseek(2)` to an absolute position.
    pub fn lseek(&self, fd: Fd, pos: u64) -> SysResult<u64> {
        self.charge_syscall();
        let file = self.file(fd)?;
        match &file.obj {
            FileObj::Vnode { .. } | FileObj::Null => {
                file.set_offset(pos);
                Ok(pos)
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// `fsync(2)`.
    pub fn fsync(&self, fd: Fd) -> SysResult<()> {
        self.charge_syscall();
        let file = self.file(fd)?;
        match &file.obj {
            FileObj::Vnode { fs, vnode, .. } => fs.fsync(self.env(), *vnode),
            _ => Err(Errno::EINVAL),
        }
    }

    /// `select(2)` over pipe read ends: blocks until at least one of
    /// `fds` is readable (data buffered or EOF), then returns the ready
    /// subset. `timeout` of `None` blocks indefinitely; on timeout the
    /// result is empty. The single-process Internet servers of Section 5
    /// are built on exactly this call.
    pub fn select_read(&self, fds: &[Fd], timeout: Option<Cycles>) -> SysResult<Vec<Fd>> {
        self.charge_syscall();
        let mut pipes = Vec::with_capacity(fds.len());
        for &fd in fds {
            let file = self.file(fd)?;
            match &file.obj {
                FileObj::PipeRead(p) => pipes.push((fd, p.clone())),
                _ => return Err(Errno::EINVAL),
            }
        }
        // Poll cost scales with the fd set, as real select(2) does.
        let c = self.kernel.costs();
        self.sim()
            .charge(Cycles(c.syscall_overhead_cy / 4 * fds.len() as u64));
        let deadline = timeout.map(|t| self.sim().now() + t);
        loop {
            let ready: Vec<Fd> = pipes
                .iter()
                .filter(|(_, p)| p.poll_readable())
                .map(|(fd, _)| *fd)
                .collect();
            if !ready.is_empty() {
                return Ok(ready);
            }
            let queues: Vec<_> = pipes.iter().map(|(_, p)| p.read_queue()).collect();
            let left = match deadline {
                None => None,
                Some(d) => {
                    let left = d.saturating_sub(self.sim().now());
                    if left == Cycles::ZERO {
                        return Ok(Vec::new());
                    }
                    Some(left)
                }
            };
            if self.sim().wait_on_any(&queues, left, "select").is_none() && deadline.is_some() {
                return Ok(Vec::new());
            }
        }
    }

    /// `rename(2)`. Both paths must live on the same mount (EXDEV-style
    /// cross-mount renames are rejected as EINVAL, as `mv` would fall
    /// back to copying).
    pub fn rename(&self, from: &str, to: &str) -> SysResult<()> {
        self.charge_syscall();
        let (fs_from, rel_from) = self.kernel.fs_at(from)?;
        let (fs_to, rel_to) = self.kernel.fs_at(to)?;
        if !Arc::ptr_eq(&fs_from, &fs_to) {
            return Err(Errno::EINVAL);
        }
        fs_from.rename(self.env(), &rel_from, &rel_to)
    }

    /// Reads a directory's names.
    pub fn readdir(&self, path: &str) -> SysResult<Vec<String>> {
        self.charge_syscall();
        let (fs, rel) = self.kernel.fs_at(path)?;
        fs.readdir(self.env(), &rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn getpid_costs_match_table2() {
        for (os, expect_us) in [(Os::Linux, 2.31), (Os::FreeBsd, 2.62), (Os::Solaris, 3.52)] {
            let (sim, kernel) = boot(os, 0);
            kernel.spawn_user("getpid-bench", |p| {
                for _ in 0..1000 {
                    p.getpid();
                }
            });
            let elapsed = sim.run().unwrap();
            let per_call = elapsed.as_micros() / 1000.0;
            assert!(
                (per_call - expect_us).abs() / expect_us < 0.10,
                "{os:?}: expected ~{expect_us}us per getpid, got {per_call}"
            );
        }
    }

    #[test]
    fn pipe_through_fds() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let total = Arc::new(AtomicU64::new(0));
        let t = total.clone();
        kernel.spawn_user("parent", move |p| {
            let (rfd, wfd) = p.pipe();
            let child = p.fork("child", move |c| {
                c.close(rfd).unwrap();
                c.write_bytes(wfd, b"hello from the child").unwrap();
                c.close(wfd).unwrap();
            });
            p.close(wfd).unwrap();
            let mut got = Vec::new();
            loop {
                let chunk = p.read_bytes(rfd, 7).unwrap();
                if chunk.is_empty() {
                    break;
                }
                got.extend(chunk);
            }
            assert_eq!(got, b"hello from the child");
            p.waitpid(child);
            t.store(got.len() as u64, Ordering::SeqCst);
        });
        sim.run().unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn fork_shares_descriptors_eof_works() {
        // If fork didn't bump pipe references, the parent's close would
        // produce a premature EOF.
        let (sim, kernel) = boot(Os::FreeBsd, 0);
        kernel.spawn_user("parent", move |p| {
            let (rfd, wfd) = p.pipe();
            let child = p.fork("child", move |c| {
                // Child holds both ends; parent closes its write end first.
                c.compute(Cycles(10_000));
                c.write_bytes(wfd, b"late data").unwrap();
                c.close(wfd).unwrap();
                c.close(rfd).unwrap();
            });
            p.close(wfd).unwrap();
            let got = p.read_bytes(rfd, 100).unwrap();
            assert_eq!(got, b"late data", "child's write end kept the pipe alive");
            p.waitpid(child);
        });
        sim.run().unwrap();
    }

    #[test]
    fn exit_closes_fds() {
        let (sim, kernel) = boot(Os::Linux, 0);
        kernel.spawn_user("parent", move |p| {
            let (rfd, wfd) = p.pipe();
            p.fork("child", move |c| {
                c.close(rfd).unwrap();
                c.write_bytes(wfd, b"x").unwrap();
                // Exits without closing wfd: exit must close it.
            });
            p.close(wfd).unwrap();
            assert_eq!(p.read_bytes(rfd, 10).unwrap(), b"x");
            assert!(
                p.read_bytes(rfd, 10).unwrap().is_empty(),
                "EOF after child exit"
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn waitpid_blocks_until_child_exit() {
        let (sim, kernel) = boot(Os::Solaris, 0);
        let when = Arc::new(AtomicU64::new(0));
        let w = when.clone();
        kernel.spawn_user("parent", move |p| {
            let child = p.fork("worker", |c| {
                c.compute(Cycles(500_000));
            });
            p.waitpid(child);
            w.store(p.sim().now().0, Ordering::SeqCst);
        });
        sim.run().unwrap();
        assert!(
            when.load(Ordering::SeqCst) >= 500_000,
            "parent waited for child CPU time"
        );
    }

    #[test]
    fn bad_fd_errors() {
        let (sim, kernel) = boot(Os::Linux, 0);
        kernel.spawn_user("p", |p| {
            assert_eq!(p.read(42, 1).err(), Some(Errno::EBADF));
            assert_eq!(p.close(42).err(), Some(Errno::EBADF));
            let (rfd, wfd) = p.pipe();
            assert_eq!(
                p.write(rfd, 1).err(),
                Some(Errno::EBADF),
                "write to read end"
            );
            assert_eq!(
                p.read(wfd, 1).err(),
                Some(Errno::EBADF),
                "read from write end"
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn open_without_mount_is_enosys() {
        let (sim, kernel) = boot(Os::Linux, 0);
        kernel.spawn_user("p", |p| {
            assert_eq!(p.open("/x", OpenFlags::rdonly()).err(), Some(Errno::ENOSYS));
        });
        sim.run().unwrap();
    }

    #[test]
    fn dup_shares_offset() {
        let (sim, kernel) = boot(Os::Linux, 0);
        kernel.spawn_user("p", |p| {
            let (rfd, wfd) = p.pipe();
            let wfd2 = p.dup(wfd).unwrap();
            p.write_bytes(wfd2, b"via dup").unwrap();
            p.close(wfd).unwrap();
            // Pipe must still be writable via the dup.
            p.write_bytes(wfd2, b"!").unwrap();
            p.close(wfd2).unwrap();
            let mut all = Vec::new();
            loop {
                let c = p.read_bytes(rfd, 64).unwrap();
                if c.is_empty() {
                    break;
                }
                all.extend(c);
            }
            assert_eq!(all, b"via dup!");
        });
        sim.run().unwrap();
    }

    #[test]
    fn select_returns_the_ready_pipe() {
        let (sim, kernel) = boot(Os::FreeBsd, 0);
        kernel.spawn_user("selector", |p| {
            let (r1, w1) = p.pipe();
            let (r2, w2) = p.pipe();
            let child = p.fork("writer", move |c| {
                c.compute(Cycles(5_000));
                c.write_bytes(w2, b"ready").unwrap();
            });
            let ready = p.select_read(&[r1, r2], None).unwrap();
            assert_eq!(ready, vec![r2], "only pipe 2 has data");
            assert_eq!(p.read_bytes(r2, 16).unwrap(), b"ready");
            p.close(w1).unwrap();
            p.waitpid(child);
        });
        sim.run().unwrap();
    }

    #[test]
    fn select_times_out_empty() {
        let (sim, kernel) = boot(Os::Linux, 0);
        kernel.spawn_user("selector", |p| {
            let (r1, _w1) = p.pipe();
            let t0 = p.sim().now();
            let ready = p.select_read(&[r1], Some(Cycles(50_000))).unwrap();
            assert!(ready.is_empty());
            assert!((p.sim().now() - t0).0 >= 50_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn select_sees_eof_as_readable() {
        let (sim, kernel) = boot(Os::Solaris, 0);
        kernel.spawn_user("selector", |p| {
            let (rfd, wfd) = p.pipe();
            p.close(wfd).unwrap();
            let ready = p.select_read(&[rfd], None).unwrap();
            assert_eq!(ready, vec![rfd], "EOF counts as readable");
            assert_eq!(p.read(rfd, 8).unwrap(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn select_rejects_non_pipes() {
        let (sim, kernel) = boot(Os::Linux, 0);
        kernel.spawn_user("selector", |p| {
            let (_r, w) = p.pipe();
            assert_eq!(p.select_read(&[w], None).err(), Some(Errno::EINVAL));
        });
        sim.run().unwrap();
    }

    #[test]
    fn cluster_machines_have_independent_costs() {
        let (sim, kernels) = boot_cluster(&[Os::Linux, Os::Solaris], 0);
        let times = Arc::new(Mutex::new(Vec::new()));
        for (i, k) in kernels.iter().enumerate() {
            let t = times.clone();
            k.spawn_user(format!("m{i}"), move |p| {
                let t0 = p.sim().now();
                for _ in 0..100 {
                    p.getpid();
                }
                t.lock().push((p.sim().now() - t0).as_micros());
            });
        }
        sim.run().unwrap();
        let v = times.lock().clone();
        assert_eq!(v.len(), 2);
        // Machine 0 is Linux (2.31us/call), machine 1 Solaris (3.52).
        assert!(v[0] < v[1], "Linux getpid faster than Solaris: {v:?}");
    }
}
