//! Integration tests for the dynamic audit checkers (`audit` feature,
//! on by default): the SimMutex lock-order graph, the lost-wakeup
//! diagnosis, and the host-guard-across-handoff detector.
//!
//! Each deliberate violation surfaces as `SimError::ProcPanic` (the
//! checker panics inside the offending simulated process) or as an
//! augmented `SimError::Deadlock` message, so the tests assert on the
//! error text rather than on raw panics — except one `#[should_panic]`
//! case that re-raises to prove the failure is loud.

#![cfg(feature = "audit")]

use std::sync::Arc;

use tnt_sim::{Cycles, FifoPolicy, HostGuard, Sim, SimConfig, SimError, SimMutex};

fn sim() -> Sim {
    Sim::new(Box::new(FifoPolicy::new()), SimConfig::default())
}

#[test]
fn lock_order_cycle_detected_without_deadlocking() {
    // One process takes A then B; later another takes B then A. The
    // interleaving is serial — no deadlock occurs — but the reversed
    // order is a deadlock one interleaving away, and the graph sees it.
    let s = sim();
    let a = Arc::new(SimMutex::new(&s));
    let b = Arc::new(SimMutex::new(&s));
    let (a1, b1) = (a.clone(), b.clone());
    s.spawn("forward", move |s| {
        a1.lock(s);
        b1.lock(s);
        b1.unlock(s);
        a1.unlock(s);
    });
    let (a2, b2) = (a.clone(), b.clone());
    s.spawn("reversed", move |s| {
        s.advance(Cycles(10));
        b2.lock(s);
        a2.lock(s); // trips: order a -> b already established
        a2.unlock(s);
        b2.unlock(s);
    });
    match s.run() {
        Err(SimError::ProcPanic(msg)) => {
            assert!(msg.contains("lock-order violation"), "got: {msg}");
            assert!(msg.contains("reversed"), "names the process: {msg}");
        }
        other => panic!("expected lock-order panic, got {other:?}"),
    }
}

#[test]
fn ab_ba_interleaving_trips_before_the_deadlock() {
    // The classic: p1 holds A and wants B, p2 holds B and wants A.
    // The checker fires on p2's acquisition attempt — before the
    // engine would have to diagnose an opaque deadlock.
    let s = sim();
    let a = Arc::new(SimMutex::new(&s));
    let b = Arc::new(SimMutex::new(&s));
    let (a1, b1) = (a.clone(), b.clone());
    s.spawn("p1", move |s| {
        a1.lock(s);
        s.yield_now();
        b1.lock(s);
        b1.unlock(s);
        a1.unlock(s);
    });
    let (a2, b2) = (a.clone(), b.clone());
    s.spawn("p2", move |s| {
        b2.lock(s);
        s.yield_now();
        a2.lock(s);
        a2.unlock(s);
        b2.unlock(s);
    });
    match s.run() {
        Err(SimError::ProcPanic(msg)) => {
            assert!(msg.contains("lock-order violation"), "got: {msg}");
        }
        other => panic!("expected lock-order panic, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "lock-order violation")]
fn lock_order_violation_is_loud() {
    let s = sim();
    let a = Arc::new(SimMutex::new(&s));
    let b = Arc::new(SimMutex::new(&s));
    let (a1, b1) = (a.clone(), b.clone());
    s.spawn("fwd", move |s| {
        a1.lock(s);
        b1.lock(s);
        b1.unlock(s);
        a1.unlock(s);
    });
    s.spawn("rev", move |s| {
        s.advance(Cycles(1));
        b.lock(s);
        a.lock(s);
        a.unlock(s);
        b.unlock(s);
    });
    if let Err(e) = s.run() {
        panic!("{e}");
    }
}

#[test]
fn consistent_lock_order_is_fine() {
    // Many processes, same order, contention and blocking inside the
    // sections: the graph stays acyclic and the run completes.
    let s = sim();
    let a = Arc::new(SimMutex::new(&s));
    let b = Arc::new(SimMutex::new(&s));
    for i in 0..4 {
        let (a, b) = (a.clone(), b.clone());
        s.spawn(format!("p{i}"), move |s| {
            for _ in 0..3 {
                a.lock(s);
                b.lock(s);
                s.sleep(Cycles(100));
                b.unlock(s);
                a.unlock(s);
                s.yield_now();
            }
        });
    }
    s.run().expect("consistent order must not trip the checker");
}

#[test]
fn lost_wakeup_is_diagnosed_at_deadlock() {
    // Signal-before-wait: the waker signals an empty queue and exits;
    // the waiter blocks afterwards and waits forever. The deadlock
    // report must point at the into-the-void signal.
    let s = sim();
    let q = s.new_queue();
    s.spawn("waker", move |s| {
        s.advance(Cycles(5));
        let woke = s.wakeup_one(q); // nobody is waiting yet
        assert!(!woke);
    });
    s.spawn("waiter", move |s| {
        s.advance(Cycles(50));
        s.wait_on(q, "condition"); // too late: the signal is gone
    });
    match s.run() {
        Err(SimError::Deadlock(msg)) => {
            assert!(msg.contains("waiter"), "got: {msg}");
            assert!(msg.contains("possible lost wakeup"), "got: {msg}");
            assert!(msg.contains("t=5"), "names the signal time: {msg}");
        }
        other => panic!("expected deadlock with lost-wakeup hint, got {other:?}"),
    }
}

#[test]
fn delivered_signal_clears_the_lost_wakeup_record() {
    // An early empty signal followed by a later, delivered one must not
    // smear the diagnosis onto an unrelated deadlock.
    let s = sim();
    let q = s.new_queue();
    let dead = s.new_queue();
    s.spawn("waker", move |s| {
        s.wakeup_one(q); // empty signal at t=0
        s.sleep(Cycles(100));
        s.wakeup_one(q); // delivered: the waiter is blocked by now
    });
    s.spawn("waiter", move |s| {
        s.advance(Cycles(10));
        s.wait_on(q, "first wait"); // woken by the delivered signal
        s.wait_on(dead, "second wait"); // deadlocks, but q is not to blame
    });
    match s.run() {
        Err(SimError::Deadlock(msg)) => {
            assert!(
                !msg.contains("possible lost wakeup"),
                "stale hint survived: {msg}"
            );
        }
        other => panic!("expected plain deadlock, got {other:?}"),
    }
}

#[test]
fn host_guard_across_handoff_trips() {
    let s = sim();
    s.spawn("offender", |s| {
        let _g = HostGuard::new("test.state");
        s.yield_now(); // handoff with the guard alive
    });
    match s.run() {
        Err(SimError::ProcPanic(msg)) => {
            assert!(msg.contains("baton handoff"), "got: {msg}");
            assert!(msg.contains("test.state"), "names the guard: {msg}");
            assert!(msg.contains("offender"), "names the process: {msg}");
        }
        other => panic!("expected host-guard panic, got {other:?}"),
    }
}

#[test]
fn host_guard_released_before_handoff_is_fine() {
    let s = sim();
    s.spawn("disciplined", |s| {
        {
            let _g = HostGuard::new("test.state");
            s.advance(Cycles(10)); // advancing is not a handoff
        }
        s.yield_now();
        s.sleep(Cycles(100));
    });
    s.run().expect("released guard must not trip the checker");
}
