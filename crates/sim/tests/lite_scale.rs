//! Crowd-scale checks for the lite process model: 10,000 cooperative
//! processes in one engine slot, deterministic to the byte.

use std::sync::Arc;

use tnt_sim::proc::{block_on, LiteScheduler, ProcCtx, Step, WaitReason};
use tnt_sim::{Cycles, FifoPolicy, Sim, SimChannel, SimConfig};

/// One crowd member: think, sleep, occasionally talk to the server.
struct Client {
    id: u32,
    rounds: u32,
    phase: u8,
}

impl Client {
    fn machine(
        self,
        ch: Arc<SimChannel<u32>>,
        done: tnt_sim::WaitId,
    ) -> Box<dyn tnt_sim::proc::LiteProc<ProcCtx>> {
        let Client {
            id,
            mut rounds,
            mut phase,
        } = self;
        Box::new(move |ctx: &mut ProcCtx| {
            if rounds == 0 {
                return Step::Done;
            }
            phase = (phase + 1) % 4;
            match phase {
                1 => Step::Charge(50 + u64::from(id % 7)),
                2 => Step::Block(WaitReason::Sleep(1_000 + u64::from(id % 13) * 10)),
                3 if id % 32 == 0 => match ch.try_send(ctx.sim(), id) {
                    Ok(()) => block_on(done, "await reply"),
                    Err(_) => {
                        phase -= 1; // retry the send after space frees up
                        block_on(ch.write_queue(), "chan full")
                    }
                },
                _ => {
                    rounds -= 1;
                    Step::Yield
                }
            }
        })
    }
}

/// Runs the 10k crowd plus a threaded server; returns the observables a
/// byte-identity check needs: final time, engine dispatches, lite
/// polls, and the full per-pid CPU accounting.
fn run_crowd(n: u32, seed: u64) -> (Cycles, u64, u64, Vec<(u32, u64)>) {
    let sim = Sim::new(
        Box::new(FifoPolicy::new()),
        SimConfig {
            seed,
            jitter: 0.02,
            ..SimConfig::default()
        },
    );
    let ch = Arc::new(SimChannel::new(&sim, 64));
    let done = sim.new_queue();

    // A threaded server drains requests until every client is finished:
    // each id%32==0 member sends one request per round.
    let requests = (0..n).filter(|id| id % 32 == 0).count() * 3;
    let rx = ch.clone();
    sim.spawn("server", move |s| {
        for _ in 0..requests {
            let _req = rx.recv(s);
            s.advance(Cycles(200));
            s.wakeup_all(done);
        }
    });

    let mut sched = LiteScheduler::new(&sim);
    for id in 0..n {
        sched.spawn(
            &format!("client{id}"),
            Client {
                id,
                rounds: 3,
                phase: 0,
            }
            .machine(ch.clone(), done),
        );
    }
    let handle = sched.start("crowd");
    let elapsed = sim.run().expect("crowd run failed");
    let stats = handle.stats();
    (elapsed, sim.dispatch_count(), stats.polls, stats.cpu_by_pid)
}

#[test]
fn ten_thousand_lite_procs_run_and_are_deterministic() {
    let a = run_crowd(10_000, 42);
    let b = run_crowd(10_000, 42);
    assert_eq!(a.0, b.0, "final simulated time must be byte-identical");
    assert_eq!(a.1, b.1, "engine dispatch count must match");
    assert_eq!(a.2, b.2, "lite poll count must match");
    assert_eq!(a.3, b.3, "per-pid cpu accounting must match");
    assert!(a.2 >= 10_000 * 3, "every client must actually run: {}", a.2);
}

#[test]
fn different_seeds_share_the_structure_but_not_the_clock() {
    // The jitter factor scales charges, so a different seed moves the
    // clock; the structural observables (polls, per-proc relative
    // accounting length) stay fixed.
    let a = run_crowd(500, 1);
    let b = run_crowd(500, 2);
    assert_eq!(a.2, b.2, "poll count is structural");
    assert_eq!(a.3.len(), b.3.len());
    assert_ne!(a.0, b.0, "seed must move the clock via run_factor");
}
