//! Tracing guarantees at the engine level: determinism of the event
//! stream, zero cost on the simulated clock, and loud overflow.

use tnt_sim::trace::{Class, Counter};
use tnt_sim::{Cycles, FifoPolicy, Sim, SimConfig};

/// A small mixed workload: spans, jittered charges, sleeps, timed waits
/// and an idle period attributed through an open wait span.
fn workload(seed: u64, trace_capacity: Option<usize>) -> (Cycles, String, u64) {
    let sim = Sim::new(
        Box::new(FifoPolicy::new()),
        SimConfig { seed, jitter: 0.02, ..SimConfig::default() },
    );
    if let Some(cap) = trace_capacity {
        sim.enable_tracing(cap);
    }
    let q = sim.new_queue();
    sim.spawn("producer", move |s| {
        for _ in 0..5 {
            {
                let _sp = s.span(Class::ProtoCpu);
                s.charge(Cycles(1_000));
            }
            {
                let _sp = s.span(Class::DataCopy);
                s.charge(Cycles(250));
            }
            s.count(Counter::TcpSegments, 1);
            s.sleep(Cycles(500));
            s.wakeup_one(q);
        }
    });
    sim.spawn("consumer", move |s| {
        for _ in 0..5 {
            let _w = s.span(Class::NetRecvWait);
            s.wait_on_timeout(q, Cycles(50_000), "data");
        }
    });
    let end = sim.run().unwrap();
    let dropped = sim.tracer().dropped();
    (end, sim.tracer().dump(), dropped)
}

#[test]
fn same_seed_gives_byte_identical_event_stream() {
    let (t1, dump1, _) = workload(7, Some(4096));
    let (t2, dump2, _) = workload(7, Some(4096));
    assert_eq!(t1, t2);
    assert_eq!(dump1, dump2, "event streams must match byte for byte");
    // A different seed perturbs the jittered charges, which the stream
    // records faithfully.
    let (_, dump3, _) = workload(9, Some(4096));
    assert_ne!(dump1, dump3);
}

#[test]
fn disabled_tracing_leaves_the_clock_untouched() {
    let (traced, _, _) = workload(7, Some(4096));
    let (bare, _, _) = workload(7, None);
    assert_eq!(
        traced, bare,
        "recording must never move the simulated clock"
    );
}

#[test]
fn ring_overflow_is_counted_never_silent() {
    let (_, dump, dropped) = workload(7, Some(4));
    assert!(dropped > 0, "a 4-event ring must overflow this workload");
    assert!(
        dump.ends_with(&format!("dropped {dropped}\n")),
        "the dump itself reports the loss: {dump}"
    );
    // And attribution survives the drops: the overflow only truncates
    // the raw ring, not the online accounting.
    let sim = Sim::new(
        Box::new(FifoPolicy::new()),
        SimConfig { seed: 7, ..SimConfig::default() },
    );
    sim.enable_tracing(2);
    sim.spawn("p", |s| {
        for _ in 0..50 {
            let _sp = s.span(Class::FsCpu);
            s.charge(Cycles(10));
        }
    });
    let end = sim.run().unwrap();
    let profile = sim.tracer().profile();
    assert_eq!(profile.attributed, end.0);
    assert_eq!(profile.class_total(Class::FsCpu), end.0);
    assert_eq!(sim.tracer().counters().get(Counter::TraceDrops), sim.tracer().dropped());
}

#[test]
fn attribution_covers_the_whole_clock() {
    // Charges, dispatch costs and idle jumps are the only ways the clock
    // moves, and each records an event: attributed == elapsed, exactly.
    let sim = Sim::new(
        Box::new(FifoPolicy::new()),
        SimConfig { seed: 3, jitter: 0.02, ..SimConfig::default() },
    );
    sim.enable_tracing(1 << 16);
    let q = sim.new_queue();
    sim.spawn("worker", move |s| {
        {
            let _sp = s.span(Class::ProtoCpu);
            s.charge(Cycles(1_234));
        }
        s.sleep(Cycles(5_000)); // Clock jumps while nobody is runnable.
        let _w = s.span(Class::PipeWait);
        s.wait_on_timeout(q, Cycles(2_000), "never-woken");
    });
    let end = sim.run().unwrap();
    let profile = sim.tracer().profile();
    assert_eq!(
        profile.attributed, end.0,
        "every elapsed cycle must be attributed"
    );
    assert!(profile.class_total(Class::PipeWait) > 0);
}
