//! Memory flatness for the lite model: 10,000 lite processes must fit in
//! a bounded heap — the whole point of not giving each one a 512 KB
//! thread stack.
//!
//! This test has its own binary because it installs a counting global
//! allocator; the measured numbers would be polluted by unrelated tests
//! sharing the process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use tnt_sim::proc::{LiteScheduler, ProcCtx, Step, WaitReason};
use tnt_sim::{FifoPolicy, Sim, SimConfig};

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn ten_thousand_lite_procs_fit_in_a_bounded_heap() {
    let before = LIVE.load(Ordering::Relaxed);
    let sim = Sim::new(Box::new(FifoPolicy::new()), SimConfig::default());
    let mut sched = LiteScheduler::new(&sim);
    for id in 0..10_000u32 {
        let mut rounds = 5u32;
        sched.spawn(
            &format!("c{id}"),
            Box::new(move |_: &mut ProcCtx| {
                if rounds == 0 {
                    return Step::Done;
                }
                rounds -= 1;
                if rounds.is_multiple_of(2) {
                    Step::Charge(40)
                } else {
                    Step::Block(WaitReason::Sleep(500))
                }
            }),
        );
    }
    sched.start("crowd");
    sim.run().expect("crowd run failed");

    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(before);
    // 10k threaded processes would need ~5 GB of stacks alone
    // (512 KB each). The lite crowd must stay under 32 MB of heap —
    // roughly 3 KB per process, dominated by the slot vector, the boxed
    // closures, and the engine's Spawn trace bookkeeping.
    assert!(
        peak < 32 * 1024 * 1024,
        "10k lite procs peaked at {peak} bytes of heap; the crowd is supposed to be flat"
    );
}
