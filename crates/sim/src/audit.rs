//! Dynamic audit helpers: the host-guard registry.
//!
//! The engine's locking discipline (see `crates/sim/src/engine.rs` and
//! `SimMutex`) forbids holding a *host* mutex across a baton handoff:
//! the owning thread parks while the contending simulated process
//! blocks at the host level, invisible to the engine — a real deadlock
//! that no simulated-deadlock detector can see. The rule used to live
//! in a doc comment; [`HostGuard`] makes it checkable.
//!
//! Kernel models wrap their host-lock critical sections in a
//! [`HostGuard`] token. The registry is a plain thread-local — each
//! simulated process is its own thread, so "what does the current
//! process hold" is exactly "what did this thread register". With the
//! `audit` feature enabled (the default), the engine checks the
//! registry at every baton handoff and fails the simulation loudly if
//! anything is still held.
//!
//! ```
//! use tnt_sim::{FifoPolicy, HostGuard, Sim, SimConfig};
//!
//! let sim = Sim::new(Box::new(FifoPolicy::new()), SimConfig::default());
//! sim.spawn("ok", |s| {
//!     {
//!         let _g = HostGuard::new("demo.state");
//!         // ... mutate host-locked state; no blocking calls here ...
//!     } // guard dropped before the handoff below
//!     s.yield_now();
//! });
//! sim.run().unwrap();
//! ```

use std::cell::RefCell;

thread_local! {
    /// Names of the host-lock sections the current thread is inside.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII token registering "this thread is inside a host-lock critical
/// section named `name`".
///
/// Create it right after taking a host `Mutex` guard and let both drop
/// together at the end of the scope. The token is deliberately
/// independent of the guard type so it works with any host lock
/// (`parking_lot::Mutex`, `std::sync::Mutex`, ...).
#[must_use = "the guard registers the critical section only while alive"]
pub struct HostGuard {
    name: &'static str,
}

impl HostGuard {
    /// Registers a host-lock critical section.
    pub fn new(name: &'static str) -> HostGuard {
        HELD.with(|h| h.borrow_mut().push(name));
        HostGuard { name }
    }
}

impl Drop for HostGuard {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            // Drop order may diverge from push order; remove the last
            // occurrence of *this* name.
            if let Some(pos) = held.iter().rposition(|n| *n == self.name) {
                held.remove(pos);
            }
        });
    }
}

/// The host-lock sections registered by the calling thread, innermost
/// last. Used by the engine at baton handoffs.
#[cfg_attr(not(feature = "audit"), allow(dead_code))]
pub(crate) fn held_host_guards() -> Vec<&'static str> {
    HELD.with(|h| h.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_release() {
        assert!(held_host_guards().is_empty());
        let a = HostGuard::new("a");
        let b = HostGuard::new("b");
        assert_eq!(held_host_guards(), vec!["a", "b"]);
        drop(a); // out-of-order drop
        assert_eq!(held_host_guards(), vec!["b"]);
        drop(b);
        assert!(held_host_guards().is_empty());
    }
}
