//! Hierarchical timer wheel with a calendar-queue fallback.
//!
//! The engine's timer set used to be a `BinaryHeap` keyed on
//! `(deadline, seq)`; every arm and every fire paid `O(log n)` sifts
//! through a box-strewn heap. This wheel keeps the exact same *total
//! order* — timers pop strictly by `(deadline, seq)`, so the FIFO
//! tie-break among same-cycle timers is preserved bit-for-bit — while
//! making the common operations cheap:
//!
//! * **insert**: a shift/mask to pick the level and slot, `O(1)`;
//! * **pop**: a `u64` occupancy-bitmap scan per level (one
//!   `trailing_zeros` each), cascading a coarser slot into finer ones
//!   only when the cursor actually reaches it.
//!
//! Layout: [`LEVELS`] levels of 64 slots. Level 0 slots are one cycle
//! wide; each higher level is 64× coarser, so the wheel spans
//! `64^LEVELS` cycles (~32 simulated days at 100 MHz) ahead of the
//! cursor. Deadlines beyond the horizon go to the `far` calendar — an
//! ordered map keyed by `(deadline, seq)` — and are compared against
//! the wheel's minimum at pop time, so they fire in exactly the right
//! global position without ever being re-hashed into the wheel.
//! Deadlines at or before the cursor (`wakeup_one_at` in the past) go
//! to the sorted `overdue` bin and pop first.
//!
//! The cursor only moves forward, and only to the deadline of the
//! entry being popped (or the start of a slot every finer level has
//! already drained past) — the wheel never reorders, drops, or
//! invents a tick.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::time::Cycles;

/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels; the wheel spans `64^LEVELS` cycles past the cursor.
const LEVELS: usize = 8;

/// One pending timer.
struct Entry<T> {
    at: u64,
    seq: u64,
    payload: T,
}

/// The timer wheel. `T` is the timer's action payload; ordering is
/// entirely by `(at, seq)`, so `T` needs no comparison instances.
pub(crate) struct TimerWheel<T> {
    /// Every pending wheel entry has `at > cursor`; never decreases.
    cursor: u64,
    /// Flat `LEVELS × SLOTS` slot array (`level * SLOTS + slot`).
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level occupancy bitmaps: bit `s` set iff slot `s` non-empty.
    occupied: [u64; LEVELS],
    /// Entries armed at or before the cursor, sorted by `(at, seq)`.
    overdue: VecDeque<Entry<T>>,
    /// Calendar fallback for deadlines beyond the wheel horizon,
    /// ordered by `(at, seq)`.
    far: BTreeMap<(u64, u64), T>,
    len: usize,
}

impl<T> TimerWheel<T> {
    pub(crate) fn new() -> TimerWheel<T> {
        TimerWheel {
            cursor: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overdue: VecDeque::new(),
            far: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of pending timers.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arms a timer. `seq` values must be unique (the engine's arming
    /// counter); equal-deadline timers pop in `seq` (arm) order.
    pub(crate) fn insert(&mut self, at: Cycles, seq: u64, payload: T) {
        let at = at.0;
        self.len += 1;
        if at <= self.cursor {
            // Past or due-now deadline: sorted insert into the overdue
            // bin (rare — a `wakeup_*_at` aimed at the past).
            let pos = self
                .overdue
                .partition_point(|e| (e.at, e.seq) <= (at, seq));
            self.overdue.insert(pos, Entry { at, seq, payload });
            return;
        }
        match level_of(self.cursor, at) {
            Some(level) => {
                let slot = slot_of(at, level);
                self.slots[level * SLOTS + slot].push(Entry { at, seq, payload });
                self.occupied[level] |= 1 << slot;
            }
            None => {
                self.far.insert((at, seq), payload);
            }
        }
    }

    /// Deadline of the earliest pending timer, if any. May cascade
    /// coarse slots internally but never changes the pop order.
    pub(crate) fn peek_at(&mut self) -> Option<Cycles> {
        self.min_pos().map(|p| Cycles(p.0))
    }

    /// Pops the earliest pending timer (global `(at, seq)` minimum).
    pub(crate) fn pop_earliest(&mut self) -> Option<(Cycles, u64, T)> {
        let (at, seq, place) = self.min_pos()?;
        self.len -= 1;
        // Advance only to `at - 1`: same-deadline siblings still in the
        // wheel must stay strictly ahead of the cursor so the bitmap
        // scan (strictly-above masks) keeps finding them.
        self.cursor = self.cursor.max(at.saturating_sub(1));
        let payload = match place {
            Place::Overdue => {
                let e = self.overdue.pop_front().expect("overdue min vanished");
                debug_assert_eq!((e.at, e.seq), (at, seq));
                e.payload
            }
            Place::Far => {
                let ((_, _), payload) =
                    self.far.pop_first().expect("far min vanished");
                payload
            }
            Place::Slot(idx) => {
                let slot = &mut self.slots[idx];
                let i = slot
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| (e.at, e.seq))
                    .map(|(i, _)| i)
                    .expect("occupied slot is empty");
                let e = slot.remove(i);
                debug_assert_eq!((e.at, e.seq), (at, seq));
                if slot.is_empty() {
                    let level = idx / SLOTS;
                    self.occupied[level] &= !(1 << (idx % SLOTS));
                }
                e.payload
            }
        };
        Some((Cycles(at), seq, payload))
    }

    /// Pops the earliest timer if its deadline is at or before `target`.
    pub(crate) fn pop_due(&mut self, target: Cycles) -> Option<(Cycles, u64, T)> {
        match self.min_pos() {
            Some((at, _, _)) if at <= target.0 => self.pop_earliest(),
            _ => None,
        }
    }

    /// Locates the global `(at, seq)` minimum, cascading coarse slots
    /// down until the minimum lives in a directly poppable place: the
    /// overdue bin, a level-0 slot, or the far calendar.
    fn min_pos(&mut self) -> Option<(u64, u64, Place)> {
        loop {
            // The overdue bin holds deadlines <= cursor; every wheel
            // entry is > cursor, so only the far calendar can tie it.
            let over = self.overdue.front().map(|e| (e.at, e.seq));
            let far = self.far.first_key_value().map(|(&k, _)| k);
            if let Some((at, seq)) = over {
                return match far {
                    Some(f) if f < (at, seq) => Some((f.0, f.1, Place::Far)),
                    _ => Some((at, seq, Place::Overdue)),
                };
            }
            // Finest occupied level first: a level-l entry is always
            // earlier than any level-(l+1) entry (they agree with the
            // cursor on all coarser digits and differ on digit l).
            let Some((level, slot)) = self.first_occupied() else {
                return far.map(|(at, seq)| (at, seq, Place::Far));
            };
            if level == 0 {
                let idx = slot; // level 0: idx == slot
                let (at, seq) = self.slots[idx]
                    .iter()
                    .map(|e| (e.at, e.seq))
                    .min()
                    .expect("occupied slot is empty");
                return match far {
                    Some(f) if f < (at, seq) => Some((f.0, f.1, Place::Far)),
                    _ => Some((at, seq, Place::Slot(idx))),
                };
            }
            // A coarse slot holds the wheel minimum. Its range starts at
            // `start`; if the far calendar has something strictly
            // earlier, that wins outright (every entry in this slot is
            // >= start). Otherwise cascade the slot into finer levels
            // and look again.
            let start = slot_start(self.cursor, level, slot);
            if let Some(f) = far {
                if f.0 < start {
                    return Some((f.0, f.1, Place::Far));
                }
            }
            self.cascade(level, slot, start);
        }
    }

    /// Drains the coarse slot `(level, slot)` whose range starts at
    /// `start`, re-inserting its entries relative to the advanced
    /// cursor. Entries landing exactly on the new cursor go to the
    /// overdue bin (they are the next to pop).
    fn cascade(&mut self, level: usize, slot: usize, start: u64) {
        debug_assert!(level > 0);
        // Every finer slot and the overdue bin were empty, and every
        // other wheel/far entry is at or after `start`, so the cursor
        // can jump to the start of this slot's range.
        debug_assert!(start >= self.cursor);
        self.cursor = start;
        let idx = level * SLOTS + slot;
        let entries = std::mem::take(&mut self.slots[idx]);
        self.occupied[level] &= !(1 << slot);
        for e in entries {
            self.len -= 1; // re-counted by insert
            self.insert(Cycles(e.at), e.seq, e.payload);
        }
    }

    /// The finest `(level, slot)` holding a pending entry, scanning
    /// each level's occupancy bitmap above the cursor's own digit.
    /// Slots at or below the cursor digit cannot hold entries (every
    /// entry is > cursor and agrees with the cursor on coarser digits).
    fn first_occupied(&self) -> Option<(usize, usize)> {
        for level in 0..LEVELS {
            let digit = ((self.cursor >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as u32;
            // Level 0 may hold an entry in the cursor's own slot only
            // if at == cursor, which insert() routes to overdue; so
            // strictly-above masks are correct at every level.
            let mask = if digit == 63 { 0 } else { !0u64 << (digit + 1) };
            let bits = self.occupied[level] & mask;
            if bits != 0 {
                return Some((level, bits.trailing_zeros() as usize));
            }
        }
        None
    }
}

/// The level whose digit is the most significant one where `at` and
/// `cursor` differ; `None` when `at` is beyond the wheel horizon.
fn level_of(cursor: u64, at: u64) -> Option<usize> {
    debug_assert!(at > cursor);
    let level = ((63 - (cursor ^ at).leading_zeros()) / SLOT_BITS) as usize;
    (level < LEVELS).then_some(level)
}

/// The slot index of `at` within `level`.
fn slot_of(at: u64, level: usize) -> usize {
    ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

/// First instant covered by slot `slot` of `level`, given that the
/// slot agrees with the cursor on all digits above `level`.
fn slot_start(cursor: u64, level: usize, slot: usize) -> u64 {
    let shift = SLOT_BITS * level as u32;
    let above = cursor >> (shift + SLOT_BITS) << (shift + SLOT_BITS);
    above | (slot as u64) << shift
}

#[derive(Clone, Copy, Debug)]
enum Place {
    Overdue,
    Far,
    Slot(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Drains wheel and reference heap side by side, asserting the
    /// wheel reproduces the heap's exact `(at, seq)` pop order.
    fn assert_matches_heap(mut wheel: TimerWheel<u32>, mut heap: BinaryHeap<Reverse<(u64, u64, u32)>>) {
        while let Some(Reverse((at, seq, v))) = heap.pop() {
            let (wat, wseq, wv) = wheel.pop_earliest().expect("wheel ran dry early");
            assert_eq!((wat.0, wseq, wv), (at, seq, v), "pop order diverged");
        }
        assert!(wheel.pop_earliest().is_none(), "wheel has extra entries");
        assert_eq!(wheel.len(), 0);
    }

    type Oracle = BinaryHeap<Reverse<(u64, u64, u32)>>;

    fn build(entries: &[(u64, u64)]) -> (TimerWheel<u32>, Oracle) {
        let mut wheel = TimerWheel::new();
        let mut heap = BinaryHeap::new();
        for (i, &(at, seq)) in entries.iter().enumerate() {
            wheel.insert(Cycles(at), seq, i as u32);
            heap.push(Reverse((at, seq, i as u32)));
        }
        (wheel, heap)
    }

    #[test]
    fn empty_wheel_pops_nothing() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert!(w.pop_earliest().is_none());
        assert!(w.peek_at().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn same_cycle_timers_pop_in_seq_order() {
        let (w, h) = build(&[(100, 3), (100, 1), (100, 2), (100, 0)]);
        assert_matches_heap(w, h);
    }

    #[test]
    fn mixed_near_and_far_deadlines() {
        let horizon = 64u64.pow(8);
        let (w, h) = build(&[
            (5, 0),
            (horizon + 17, 1), // far calendar
            (63, 2),
            (64, 3),            // level 1 at insert time
            (4096, 4),          // level 2
            (horizon * 3, 5),   // far
            (6, 6),
            (5, 7),             // ties with seq 0 at t=5
        ]);
        assert_matches_heap(w, h);
    }

    #[test]
    fn interleaved_insert_and_pop() {
        let mut wheel = TimerWheel::new();
        let mut heap = BinaryHeap::new();
        // Deterministic pseudo-random walk: pops interleaved with
        // inserts whose deadlines sometimes precede the cursor.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for round in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let at = x % 300_000;
            // One arm per round, so the round number doubles as the
            // FIFO sequence.
            wheel.insert(Cycles(at), round, round as u32);
            heap.push(Reverse((at, round, round as u32)));
            if round % 3 == 0 {
                let got = wheel.pop_earliest();
                let want = heap.pop();
                match (got, want) {
                    (Some((a, s, v)), Some(Reverse((ha, hs, hv)))) => {
                        assert_eq!((a.0, s, v), (ha, hs, hv), "round {round}");
                    }
                    (None, None) => {}
                    other => panic!("round {round}: mismatch {other:?}"),
                }
            }
        }
        assert_matches_heap(wheel, heap);
    }

    #[test]
    fn pop_due_respects_target() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.insert(Cycles(10), 0, 0);
        w.insert(Cycles(20), 1, 1);
        assert!(w.pop_due(Cycles(5)).is_none());
        assert_eq!(w.pop_due(Cycles(10)).map(|(at, ..)| at), Some(Cycles(10)));
        assert!(w.pop_due(Cycles(15)).is_none());
        assert_eq!(w.pop_due(Cycles(25)).map(|(at, ..)| at), Some(Cycles(20)));
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadline_insert_pops_first_in_at_seq_order() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.insert(Cycles(500), 0, 0);
        let popped = w.pop_earliest().unwrap();
        assert_eq!(popped.0, Cycles(500)); // cursor now 500
        w.insert(Cycles(100), 1, 1); // aimed at the past
        w.insert(Cycles(500), 2, 2); // due exactly now
        w.insert(Cycles(600), 3, 3);
        assert_eq!(w.pop_earliest().map(|(at, s, _)| (at.0, s)), Some((100, 1)));
        assert_eq!(w.pop_earliest().map(|(at, s, _)| (at.0, s)), Some((500, 2)));
        assert_eq!(w.pop_earliest().map(|(at, s, _)| (at.0, s)), Some((600, 3)));
    }

    #[test]
    fn far_calendar_ties_break_by_seq_against_wheel() {
        // A far entry and a wheel entry can share a deadline when the
        // cursor advances between the two arms; seq decides.
        let horizon = 64u64.pow(8);
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.insert(Cycles(horizon + 1), 0, 0); // far at insert time
        w.insert(Cycles(horizon + 500), 1, 1); // far at insert time
        assert_eq!(w.pop_earliest().map(|(at, s, _)| (at.0, s)), Some((horizon + 1, 0)));
        // Cursor now shares the top digit with horizon + 500: the same
        // deadline armed again lands in the wheel proper.
        w.insert(Cycles(horizon + 500), 2, 2);
        assert_eq!(
            w.pop_earliest().map(|(at, s, _)| (at.0, s)),
            Some((horizon + 500, 1)),
            "far entry armed first pops first on the shared deadline"
        );
        assert_eq!(w.pop_earliest().map(|(at, s, _)| (at.0, s)), Some((horizon + 500, 2)));
    }

    #[test]
    fn dense_block_boundaries() {
        // Deadlines straddling every 64^k boundary near the cursor.
        let mut entries = Vec::new();
        let mut seq = 0u64;
        for k in 0..4u32 {
            let b = 64u64.pow(k + 1);
            for d in [b - 2, b - 1, b, b + 1, b + 2] {
                entries.push((d, seq));
                seq += 1;
            }
        }
        let (w, h) = build(&entries);
        assert_matches_heap(w, h);
    }
}
