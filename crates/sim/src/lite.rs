//! The lite-scheduler glue: runs a `tnt_proc::Core` inside one engine
//! slot.
//!
//! The baton engine gives every simulated process a host thread; a
//! [`LiteScheduler`] is one such process that multiplexes thousands of
//! cooperative [`LiteProc`] state machines through a single slot. The
//! two models share everything observable: the engine's clock and run
//! policy (the scheduler yields the baton whenever threaded processes
//! are runnable), its timer queue (lite sleeps become scheduler
//! timeouts), trace attribution (each lite process has its own pid from
//! the engine's tid namespace), and its wait queues (a lite process
//! blocking on a `WaitId` parks a mailbox token, never a host thread —
//! see `Waiter::Lite` in the engine).
//!
//! Determinism carries over unchanged: the core's run queue is FIFO, its
//! sleep heap breaks ties by arming order, and mailbox tokens are
//! delivered in wakeup order, so two same-seed runs are byte-identical.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use tnt_proc::{Core, Lid, LiteProc, Step, Wake, WaitReason};

use crate::engine::{LitePollGuard, Sim, WaitId, MUTANT_SKIP_ANY_CANCEL};
use crate::time::Cycles;
use crate::trace::Counter;

/// The context a [`LiteScheduler`] threads through every `poll`: the
/// engine handle plus the identity of the process being polled.
pub struct ProcCtx {
    sim: Sim,
    pid: u32,
    wake: Wake,
    spawns: Vec<(String, Box<dyn LiteProc<ProcCtx>>)>,
}

impl ProcCtx {
    /// The simulation engine. Non-blocking calls only — a lite process
    /// that calls a blocking primitive from inside `poll` fails the
    /// engine's host-park assertion; block by returning [`Step::Block`].
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The virtual pid of the process being polled (trace attribution
    /// uses it automatically for charges made during the poll).
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// How this process's most recent blocking wait ended — the
    /// `select(2)` return value of a [`block_any`] wait.
    /// [`Wake::Queue`]`(i)` names the index into the wait's queue slice,
    /// [`Wake::Timeout`] means the deadline (or a plain sleep) expired.
    pub fn wake(&self) -> Wake {
        self.wake
    }

    /// Spawns a sibling lite process into the same scheduler; it becomes
    /// runnable after the current poll returns.
    pub fn spawn(&mut self, name: impl Into<String>, machine: Box<dyn LiteProc<ProcCtx>>) {
        self.spawns.push((name.into(), machine));
    }
}

/// Builds the [`Step`] that blocks a lite process on an engine wait
/// queue — the lite analogue of [`Sim::wait_on`]. The next
/// `wakeup_one`/`wakeup_all` on `q` that reaches this process resumes
/// it, without waking any host thread.
pub fn block_on(q: WaitId, reason: &'static str) -> Step {
    Step::Block(WaitReason::Queue {
        queue: q.raw(),
        reason,
    })
}

/// Builds the [`Step`] that blocks a lite process on up to two engine
/// wait queues at once, with an optional relative timeout — the lite
/// analogue of [`Sim::wait_on_any`] plus `select(2)`'s timeout, in one
/// engine slot instead of a waiter-plus-watchdog pair. After resuming,
/// [`ProcCtx::wake`] reports whether a queue signal (and which queue) or
/// the timeout ended the wait; queues that did not fire are cancelled,
/// so a late signal on them is simply lost, like a `select` caller that
/// closed the other descriptor.
pub fn block_any(
    ctx: &ProcCtx,
    queues: &[WaitId],
    timeout: Option<Cycles>,
    reason: &'static str,
) -> Step {
    assert!(queues.len() <= 2, "lite Any waits support at most two queues");
    assert!(
        !queues.is_empty() || timeout.is_some(),
        "a lite Any wait with no queues and no timeout would never resume"
    );
    let mut qs = [None, None];
    for (i, q) in queues.iter().enumerate() {
        qs[i] = Some(q.raw());
    }
    Step::Block(WaitReason::Any {
        queues: qs,
        deadline: timeout.map(|t| ctx.sim().now().0 + t.0),
        reason,
    })
}

/// Final accounting of a finished [`LiteScheduler`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiteStats {
    /// Total lite dispatches (`Core::polls`) — the crowd analogue of the
    /// engine's dispatch count.
    pub polls: u64,
    /// Per-process `(pid, cpu)` in spawn order; byte-stable across
    /// same-seed runs, so tests can checksum it.
    pub cpu_by_pid: Vec<(u32, u64)>,
}

/// Handle to a running (or finished) lite scheduler.
pub struct LiteHandle {
    stats: Arc<Mutex<Option<LiteStats>>>,
}

impl LiteHandle {
    /// The scheduler's final accounting. Panics if called before the
    /// scheduler's drive loop has finished (i.e. before `Sim::run`
    /// returned).
    pub fn stats(&self) -> LiteStats {
        self.stats
            .lock()
            .clone()
            .expect("lite scheduler has not finished")
    }
}

/// A cooperative scheduler occupying one engine slot and running a crowd
/// of lite processes inside it.
///
/// Build it on the host, [`LiteScheduler::spawn`] the initial crowd,
/// then [`LiteScheduler::start`] it before `Sim::run`. Lite processes
/// spawned at runtime go through [`ProcCtx::spawn`].
pub struct LiteScheduler {
    sim: Sim,
    core: Core<ProcCtx>,
    switch_cost: Cycles,
}

impl LiteScheduler {
    /// Creates an empty scheduler for `sim`.
    pub fn new(sim: &Sim) -> LiteScheduler {
        LiteScheduler {
            sim: sim.clone(),
            core: Core::new(),
            switch_cost: Cycles::ZERO,
        }
    }

    /// Sets the simulated cost charged per lite dispatch (default zero,
    /// matching a zero-cost `RunPolicy`).
    pub fn switch_cost(mut self, cost: Cycles) -> LiteScheduler {
        self.switch_cost = cost;
        self
    }

    /// Adds a lite process to the initial crowd. Its pid comes from the
    /// engine's tid namespace, so traces distinguish every lite process
    /// from every threaded one.
    pub fn spawn(&mut self, name: &str, machine: Box<dyn LiteProc<ProcCtx>>) -> Lid {
        let pid = self.sim.alloc_lite_pid(name);
        self.core.spawn(pid, machine)
    }

    /// Spawns the scheduler's engine process (named `name`) and returns
    /// a handle for post-run statistics.
    pub fn start(self, name: impl Into<String>) -> LiteHandle {
        let LiteScheduler {
            sim,
            mut core,
            switch_cost,
        } = self;
        let stats = Arc::new(Mutex::new(None));
        let out = stats.clone();
        sim.spawn(name, move |s| {
            drive(s, &mut core, switch_cost);
            *out.lock() = Some(LiteStats {
                polls: core.polls(),
                cpu_by_pid: core.cpu_by_pid(),
            });
        });
        LiteHandle { stats }
    }
}

/// The scheduler's drive loop: runs inside the engine process.
fn drive(sim: &Sim, core: &mut Core<ProcCtx>, switch_cost: Cycles) {
    let doorbell = sim.new_queue();
    sim.register_lite_sched(doorbell);
    let mut ctx = ProcCtx {
        sim: sim.clone(),
        pid: 0,
        wake: Wake::None,
        spawns: Vec::new(),
    };
    // Engine tokens armed by each live `Any` wait, keyed by lid. An Any
    // token encodes the queue index in its high half so the mailbox can
    // report *which* queue fired; when one path wins, the sibling tokens
    // are cancelled here before the process can block again.
    let mut any_parked: BTreeMap<u32, [Option<u64>; 2]> = BTreeMap::new();
    // A process that yielded last timeslice requeues only *after* the
    // wakeups its own charges caused: in the threaded model a sleeper
    // whose deadline is crossed mid-charge enqueues before the running
    // process yields, and keeping that order is what makes a lite ring
    // byte-identical to its threaded twin.
    let mut yielded: Option<Lid> = None;
    loop {
        // Wakeups delivered by other processes since we last looked.
        for token in sim.lite_take_mailbox() {
            let lid = Lid((token & 0xffff_ffff) as u32);
            if let Some(armed) = any_parked.remove(&lid.0) {
                // An `Any` wait resolved through one of its queues:
                // cancel the siblings, record which index fired.
                for t in armed.into_iter().flatten() {
                    if t != token {
                        sim.lite_wait_cancel(t);
                    }
                }
                core.wake_queue(lid, (token >> 32) as u8);
            } else {
                core.wake(lid);
            }
        }
        core.fire_due(sim.now().0);
        // `Any` waits whose deadline won: disarm their queue tokens so a
        // later signal cannot wake the process out of its next wait.
        // Planted bug (`MUTANT_SKIP_ANY_CANCEL`): skip the disarm and
        // leave stale tokens parked on the queues.
        for lid in core.drain_timed_out() {
            if let Some(armed) = any_parked.remove(&lid.0) {
                if sim.mutant_enabled(MUTANT_SKIP_ANY_CANCEL) {
                    continue;
                }
                for t in armed.into_iter().flatten() {
                    sim.lite_wait_cancel(t);
                }
            }
        }
        if let Some(lid) = yielded.take() {
            core.yield_to_back(lid);
        }

        if let Some(lid) = core.next_runnable() {
            if switch_cost > Cycles::ZERO {
                sim.charge(switch_cost);
            }
            sim.count(Counter::LiteDispatches, 1);
            ctx.pid = core.pid(lid);
            ctx.wake = core.wake_of(lid);
            // While the guard lives, charges and spans from inside
            // `poll` are attributed to the lite process, and blocking
            // engine primitives are rejected.
            let guard = LitePollGuard::new(ctx.pid);
            loop {
                match core.poll(lid, &mut ctx) {
                    Step::Charge(cy) => {
                        // Record the *scaled* amount, matching what the
                        // engine accounts to a threaded process.
                        let scaled = sim.charge_scaled(Cycles(cy));
                        core.charge(lid, scaled.0);
                    }
                    Step::Yield => {
                        yielded = Some(lid);
                        break;
                    }
                    Step::Block(WaitReason::Sleep(d)) => {
                        core.sleep_until(lid, sim.now().0 + d);
                        break;
                    }
                    Step::Block(WaitReason::Until(at)) => {
                        core.sleep_until(lid, at);
                        break;
                    }
                    Step::Block(WaitReason::Queue { queue, reason }) => {
                        // Park on the engine queue *before* any chance
                        // of losing the baton: processes are atomic
                        // between blocking calls, so the check the lite
                        // process made inside this poll is still valid.
                        core.wait(lid, reason);
                        sim.lite_wait_enqueue(queue, u64::from(lid.0), reason);
                        break;
                    }
                    Step::Block(WaitReason::Any {
                        queues,
                        deadline,
                        reason,
                    }) => {
                        core.wait_any(lid, reason, deadline);
                        let mut armed = [None, None];
                        for (i, q) in queues.into_iter().enumerate() {
                            if let Some(q) = q {
                                let token = u64::from(lid.0) | ((i as u64) << 32);
                                sim.lite_wait_enqueue(q, token, reason);
                                armed[i] = Some(token);
                            }
                        }
                        if armed.iter().any(Option::is_some) {
                            any_parked.insert(lid.0, armed);
                        }
                        break;
                    }
                    Step::Done => {
                        core.finish(lid);
                        break;
                    }
                }
            }
            drop(guard);
            for (name, machine) in ctx.spawns.drain(..) {
                let pid = sim.alloc_lite_pid(&name);
                core.spawn(pid, machine);
            }
            // Fairness with the threaded world: if any engine process is
            // queued runnable, offer the baton. A pure-lite simulation
            // never pays this (the run queue stays empty).
            if sim.runnable_procs() > 0 {
                sim.yield_now();
            }
            continue;
        }

        if core.live() == 0 {
            break;
        }
        // Nothing runnable: park until the next lite sleeper is due or
        // the doorbell rings, whichever comes first. The mailbox was
        // drained above and we hold the baton, so no wakeup can slip in
        // between the check and the wait.
        match core.next_wake() {
            Some(at) => {
                let now = sim.now().0;
                if at > now {
                    sim.wait_on_timeout(doorbell, Cycles(at - now), "lite sleepers");
                }
            }
            None => sim.wait_on(doorbell, "lite procs waiting"),
        }
    }
    sim.unregister_lite_sched();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use crate::policy::FifoPolicy;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sim() -> Sim {
        Sim::new(Box::new(FifoPolicy::new()), SimConfig::default())
    }

    #[test]
    fn lite_crowd_runs_to_completion() {
        let s = sim();
        let mut sched = LiteScheduler::new(&s);
        for i in 0..100u32 {
            let mut rounds = 10;
            sched.spawn(&format!("c{i}"), Box::new(move |_: &mut ProcCtx| {
                if rounds == 0 {
                    return Step::Done;
                }
                rounds -= 1;
                Step::Charge(100)
            }));
        }
        let handle = sched.start("crowd");
        let elapsed = s.run().unwrap();
        assert_eq!(elapsed, Cycles(100 * 10 * 100));
        let stats = handle.stats();
        assert_eq!(stats.cpu_by_pid.len(), 100);
        assert!(stats.cpu_by_pid.iter().all(|(_, cpu)| *cpu == 1_000));
    }

    #[test]
    fn lite_sleeps_ride_the_engine_timer_queue() {
        let s = sim();
        let mut sched = LiteScheduler::new(&s);
        let mut phase = 0;
        sched.spawn("sleeper", Box::new(move |ctx: &mut ProcCtx| {
            phase += 1;
            match phase {
                1 => Step::Block(WaitReason::Sleep(5_000)),
                2 => {
                    assert_eq!(ctx.sim().now(), Cycles(5_000));
                    Step::Block(WaitReason::Until(12_000))
                }
                _ => {
                    assert_eq!(ctx.sim().now(), Cycles(12_000));
                    Step::Done
                }
            }
        }));
        sched.start("sched");
        assert_eq!(s.run().unwrap(), Cycles(12_000));
    }

    #[test]
    fn lite_queue_wait_is_woken_by_threaded_proc() {
        let s = sim();
        let q = s.new_queue();
        let woken_at = Arc::new(AtomicU64::new(0));
        let woken = woken_at.clone();
        let mut sched = LiteScheduler::new(&s);
        let mut waited = false;
        sched.spawn("waiter", Box::new(move |ctx: &mut ProcCtx| {
            if !waited {
                waited = true;
                return block_on(q, "test wait");
            }
            woken.store(ctx.sim().now().0, Ordering::Relaxed);
            Step::Done
        }));
        sched.start("sched");
        s.spawn("waker", move |s| {
            s.sleep(Cycles(7_000));
            s.wakeup_one(q);
        });
        s.run().unwrap();
        assert_eq!(woken_at.load(Ordering::Relaxed), 7_000);
    }

    #[test]
    fn runtime_spawns_join_the_crowd() {
        let s = sim();
        let mut sched = LiteScheduler::new(&s);
        let mut spawned = false;
        sched.spawn("parent", Box::new(move |ctx: &mut ProcCtx| {
            if !spawned {
                spawned = true;
                let mut rounds = 2;
                ctx.spawn("child", Box::new(move |_: &mut ProcCtx| {
                    if rounds == 0 {
                        return Step::Done;
                    }
                    rounds -= 1;
                    Step::Charge(10)
                }));
                return Step::Yield;
            }
            Step::Done
        }));
        let handle = sched.start("sched");
        assert_eq!(s.run().unwrap(), Cycles(20));
        assert_eq!(handle.stats().cpu_by_pid.len(), 2);
    }

    #[test]
    fn lite_and_threaded_procs_interleave_fairly() {
        // A threaded proc and a lite crowd must both make progress: the
        // scheduler yields the baton whenever the threaded proc is
        // runnable.
        let s = sim();
        let mut sched = LiteScheduler::new(&s);
        let mut rounds = 50;
        sched.spawn("lite", Box::new(move |_: &mut ProcCtx| {
            if rounds == 0 {
                return Step::Done;
            }
            rounds -= 1;
            Step::Charge(10)
        }));
        sched.start("sched");
        s.spawn("threaded", |s| {
            for _ in 0..50 {
                s.advance(Cycles(10));
                s.yield_now();
            }
        });
        assert_eq!(s.run().unwrap(), Cycles(1_000));
    }

    #[test]
    fn select_reply_beats_the_timeout() {
        // A lite client awaits reply-or-timeout in one slot; the reply
        // arrives first and the stale deadline never fires.
        let s = sim();
        let q = s.new_queue();
        let log = Arc::new(Mutex::new(Vec::new()));
        let out = log.clone();
        let mut sched = LiteScheduler::new(&s);
        let mut phase = 0;
        sched.spawn("client", Box::new(move |ctx: &mut ProcCtx| {
            phase += 1;
            match phase {
                1 => block_any(ctx, &[q], Some(Cycles(10_000)), "reply or rto"),
                2 => {
                    out.lock().push((ctx.sim().now().0, ctx.wake()));
                    // Block again past the original deadline: a stale
                    // timeout firing here would resume us early.
                    Step::Block(WaitReason::Until(25_000))
                }
                _ => {
                    out.lock().push((ctx.sim().now().0, ctx.wake()));
                    Step::Done
                }
            }
        }));
        sched.start("sched");
        s.spawn("server", move |s| {
            s.sleep(Cycles(4_000));
            s.wakeup_one(q);
        });
        s.run().unwrap();
        assert_eq!(
            log.lock().clone(),
            vec![(4_000, Wake::Queue(0)), (25_000, Wake::Timeout)]
        );
    }

    #[test]
    fn select_timeout_fires_without_a_signal() {
        let s = sim();
        let q = s.new_queue();
        let woke = Arc::new(Mutex::new((0u64, Wake::None)));
        let out = woke.clone();
        let mut sched = LiteScheduler::new(&s);
        let mut waited = false;
        sched.spawn("client", Box::new(move |ctx: &mut ProcCtx| {
            if !waited {
                waited = true;
                return block_any(ctx, &[q], Some(Cycles(9_000)), "reply or rto");
            }
            *out.lock() = (ctx.sim().now().0, ctx.wake());
            Step::Done
        }));
        sched.start("sched");
        s.run().unwrap();
        assert_eq!(*woke.lock(), (9_000, Wake::Timeout));
    }

    #[test]
    fn select_reports_which_queue_fired() {
        let s = sim();
        let qa = s.new_queue();
        let qb = s.new_queue();
        let woke = Arc::new(Mutex::new((0u64, Wake::None)));
        let out = woke.clone();
        let mut sched = LiteScheduler::new(&s);
        let mut waited = false;
        sched.spawn("client", Box::new(move |ctx: &mut ProcCtx| {
            if !waited {
                waited = true;
                return block_any(ctx, &[qa, qb], None, "either queue");
            }
            *out.lock() = (ctx.sim().now().0, ctx.wake());
            Step::Done
        }));
        sched.start("sched");
        s.spawn("signaller", move |s| {
            s.sleep(Cycles(3_000));
            s.wakeup_one(qb);
        });
        s.run().unwrap();
        assert_eq!(*woke.lock(), (3_000, Wake::Queue(1)));
    }

    #[test]
    fn select_cancels_the_losing_queue() {
        // After the timeout wins, a late signal on the armed queue must
        // not wake the client out of its *next* wait: the drive loop
        // disarms the token when the deadline fires.
        let s = sim();
        let q = s.new_queue();
        let log = Arc::new(Mutex::new(Vec::new()));
        let out = log.clone();
        let mut sched = LiteScheduler::new(&s);
        let mut phase = 0;
        sched.spawn("client", Box::new(move |ctx: &mut ProcCtx| {
            phase += 1;
            match phase {
                1 => block_any(ctx, &[q], Some(Cycles(5_000)), "reply or rto"),
                2 => {
                    out.lock().push((ctx.sim().now().0, ctx.wake()));
                    // Sleep across the late signal at 8_000.
                    Step::Block(WaitReason::Until(20_000))
                }
                _ => {
                    out.lock().push((ctx.sim().now().0, ctx.wake()));
                    Step::Done
                }
            }
        }));
        sched.start("sched");
        s.spawn("late-server", move |s| {
            s.sleep(Cycles(8_000));
            s.wakeup_one(q); // lands after the RTO: lost, as on a real wire
        });
        s.run().unwrap();
        assert_eq!(
            log.lock().clone(),
            vec![(5_000, Wake::Timeout), (20_000, Wake::Timeout)]
        );
    }

    #[test]
    fn select_runs_are_deterministic() {
        // Many clients racing replies against staggered deadlines: two
        // same-seed runs must agree on every outcome and instant.
        let run = || {
            let s = sim();
            let outcomes = Arc::new(Mutex::new(Vec::new()));
            let mut sched = LiteScheduler::new(&s);
            let mut queues = Vec::new();
            for i in 0..40u64 {
                let q = s.new_queue();
                queues.push(q);
                let out = outcomes.clone();
                let mut waited = false;
                sched.spawn(&format!("c{i}"), Box::new(move |ctx: &mut ProcCtx| {
                    if !waited {
                        waited = true;
                        return block_any(
                            ctx,
                            &[q],
                            Some(Cycles(2_000 + 137 * i)),
                            "reply or rto",
                        );
                    }
                    out.lock().push((i, ctx.sim().now().0, ctx.wake()));
                    Step::Done
                }));
            }
            sched.start("sched");
            s.spawn("server", move |s| {
                for (i, q) in queues.into_iter().enumerate() {
                    if i % 3 == 0 {
                        s.sleep(Cycles(200));
                        s.wakeup_one(q);
                    }
                }
            });
            s.run().unwrap();
            let got = outcomes.lock().clone();
            got
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert!(a.iter().any(|&(_, _, w)| w == Wake::Timeout));
        assert!(a.iter().any(|&(_, _, w)| matches!(w, Wake::Queue(0))));
    }

    #[test]
    fn deadlocked_lite_procs_are_diagnosed() {
        let s = sim();
        let q = s.new_queue();
        let mut sched = LiteScheduler::new(&s);
        sched.spawn("stuck", Box::new(move |_: &mut ProcCtx| {
            block_on(q, "never signalled")
        }));
        sched.start("sched");
        let err = s.run().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("never signalled"), "diagnostic: {msg}");
        assert!(msg.contains("1 lite proc(s) waiting"), "diagnostic: {msg}");
    }

    #[test]
    #[should_panic(expected = "blocking engine primitive")]
    fn blocking_inside_poll_is_rejected() {
        let s = sim();
        let q = s.new_queue();
        let mut sched = LiteScheduler::new(&s);
        sched.spawn("bad", Box::new(move |ctx: &mut ProcCtx| {
            ctx.sim().wait_on(q, "illegal");
            Step::Done
        }));
        sched.start("sched");
        if let Err(e) = s.run() {
            panic!("{e}");
        }
    }
}
