//! Statistics helpers matching the paper's reporting methodology.
//!
//! Every benchmark in the paper is run twenty times and reported as a mean
//! with a percentage standard deviation, plus a "Norm." column that shows
//! each system's speed normalised to the best system (higher is better).

/// Mean and standard deviation of a set of benchmark runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator), 0.0 for n < 2.
    pub sd: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarises a slice of samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty; every experiment produces at least one
    /// run.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarise zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Summary { mean, sd, n }
    }

    /// Standard deviation as a percentage of the mean, the paper's
    /// "Std Dev" column.
    ///
    /// Zero spread (including the `n == 1` case, where the sample sd is
    /// defined as 0.0) reports 0.0. A zero mean with *nonzero* spread is
    /// degenerate — the percentage is undefined — and reports
    /// `f64::INFINITY` rather than masquerading as "no variance", so the
    /// baseline gate can see the variance exists.
    pub fn sd_pct(&self) -> f64 {
        if self.sd == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            100.0 * self.sd / self.mean.abs()
        }
    }
}

/// Normalises lower-is-better values (times) to the paper's "Norm." column.
///
/// The best (smallest) value maps to 1.00 and every other value `v` maps to
/// `best / v`, so higher normalised numbers are better.
pub fn normalize_lower_better(values: &[f64]) -> Vec<f64> {
    let best = values.iter().cloned().fold(f64::INFINITY, f64::min);
    values
        .iter()
        .map(|v| if *v == 0.0 { 1.0 } else { best / v })
        .collect()
}

/// Normalises higher-is-better values (bandwidths) to the "Norm." column.
///
/// The best (largest) value maps to 1.00 and every other value `v` maps to
/// `v / best`.
pub fn normalize_higher_better(values: &[f64]) -> Vec<f64> {
    let best = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|v| if best == 0.0 { 1.0 } else { v / best })
        .collect()
}

/// One curve of a figure: a labelled sequence of (x, y) points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"Linux"` or `"Solaris-LIFO"`.
    pub label: String,
    /// Data points in ascending x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point; x values are expected to be non-decreasing.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x, if that exact x was recorded.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| *px == x)
            .map(|(_, py)| *py)
    }

    /// Maximum y value of the series; `None` if empty.
    pub fn y_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .fold(None, |m, y| Some(m.map_or(y, |m: f64| m.max(y))))
    }

    /// Minimum y value of the series; `None` if empty.
    pub fn y_min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .fold(None, |m, y| Some(m.map_or(y, |m: f64| m.min(y))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_sd() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample sd of this classic data set is ~2.138.
        assert!((s.sd - 2.1380899).abs() < 1e-6);
        assert!((s.sd_pct() - 42.7617987).abs() < 1e-5);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.sd_pct(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn summary_empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn sd_pct_zero_mean_nonzero_spread_is_not_silently_zero() {
        // Symmetric samples: mean 0, sd clearly nonzero. The old code
        // reported 0.0 here, hiding real variance from the baseline gate.
        let s = Summary::of(&[-1.0, 1.0]);
        assert_eq!(s.mean, 0.0);
        assert!(s.sd > 0.0);
        assert!(
            s.sd_pct().is_infinite(),
            "zero-mean nonzero-sd must report the degenerate case, got {}",
            s.sd_pct()
        );
    }

    #[test]
    fn sd_pct_zero_mean_zero_spread_is_zero() {
        let s = Summary::of(&[0.0, 0.0, 0.0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.sd_pct(), 0.0);
    }

    #[test]
    fn normalization_matches_paper_table2() {
        // Table 2 of the paper: 2.31, 2.62, 3.52 us -> 1.00, 0.88, 0.66.
        let norm = normalize_lower_better(&[2.31, 2.62, 3.52]);
        assert!((norm[0] - 1.00).abs() < 0.005);
        assert!((norm[1] - 0.88).abs() < 0.005);
        assert!((norm[2] - 0.66).abs() < 0.005);
    }

    #[test]
    fn normalization_higher_better() {
        // Table 4 of the paper: 119.36, 98.03, 65.38 -> 1.00, 0.82, 0.55.
        let norm = normalize_higher_better(&[119.36, 98.03, 65.38]);
        assert!((norm[0] - 1.00).abs() < 0.005);
        assert!((norm[1] - 0.82).abs() < 0.005);
        assert!((norm[2] - 0.55).abs() < 0.005);
    }

    #[test]
    fn series_accessors() {
        let mut s = Series::new("Linux");
        s.push(2.0, 55.0);
        s.push(4.0, 57.0);
        s.push(8.0, 61.0);
        assert_eq!(s.y_at(4.0), Some(57.0));
        assert_eq!(s.y_at(5.0), None);
        assert_eq!(s.y_max(), Some(61.0));
        assert_eq!(s.y_min(), Some(55.0));
        assert_eq!(Series::new("e").y_max(), None);
    }
}
