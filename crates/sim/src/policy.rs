//! Pluggable run-queue policy: which runnable process runs next and what
//! the dispatch costs.
//!
//! Each modelled operating system supplies its own [`RunPolicy`]; the
//! differences between them (Linux's O(n) task-table scan, FreeBSD's
//! constant-time queues, Solaris's dispatcher overhead) are what produce
//! Figure 1 of the paper.

use rand::rngs::StdRng;

use crate::time::Cycles;

/// Identifier of a simulated process within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tid(pub u32);

/// Context handed to the policy when it must pick the next process.
pub struct DispatchEnv<'a> {
    /// Number of live (not yet exited) processes in the system, including
    /// blocked ones. Linux 1.2's scheduler cost scales with this.
    pub nlive: usize,
    /// Current simulated time.
    pub now: Cycles,
    /// Deterministic per-run RNG for modelled scheduling jitter.
    pub rng: &'a mut StdRng,
}

/// The policy's choice: who runs next, and the CPU cost of deciding.
#[derive(Clone, Copy, Debug)]
pub struct Pick {
    /// The process to run.
    pub tid: Tid,
    /// Scheduler overhead charged to the simulated clock for this dispatch
    /// (run-queue search, dispatcher locks, register reload, ...).
    pub cost: Cycles,
}

/// A run-queue policy. Implementations must be deterministic given the
/// same sequence of calls and the same RNG stream.
pub trait RunPolicy: Send {
    /// Adds a process to the runnable set.
    ///
    /// Called when a process is spawned, woken, or yields. A tid is never
    /// enqueued twice without an intervening `pick` or `forget` of it.
    /// `tag` is the opaque label given at spawn time (the tnt kernels use
    /// it to route processes to the right machine's scheduler).
    fn enqueue(&mut self, tid: Tid, tag: u32);

    /// Removes and returns the next process to run, or `None` if the
    /// runnable set is empty.
    fn pick(&mut self, env: &mut DispatchEnv<'_>) -> Option<Pick>;

    /// Removes a process from the runnable set if present (process killed).
    fn forget(&mut self, tid: Tid);

    /// Number of runnable processes.
    fn runnable(&self) -> usize;
}

/// A trivial FIFO policy with zero dispatch cost; used by unit tests and
/// by pure device simulations that do not model scheduler overhead.
#[derive(Default)]
pub struct FifoPolicy {
    queue: std::collections::VecDeque<Tid>,
}

impl FifoPolicy {
    /// Creates an empty FIFO policy.
    pub fn new() -> FifoPolicy {
        FifoPolicy::default()
    }
}

impl RunPolicy for FifoPolicy {
    fn enqueue(&mut self, tid: Tid, _tag: u32) {
        debug_assert!(!self.queue.contains(&tid), "tid {tid:?} enqueued twice");
        self.queue.push_back(tid);
    }

    fn pick(&mut self, _env: &mut DispatchEnv<'_>) -> Option<Pick> {
        self.queue.pop_front().map(|tid| Pick {
            tid,
            cost: Cycles::ZERO,
        })
    }

    fn forget(&mut self, tid: Tid) {
        self.queue.retain(|t| *t != tid);
    }

    fn runnable(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fifo_order_and_forget() {
        let mut p = FifoPolicy::new();
        let mut rng = StdRng::seed_from_u64(0);
        p.enqueue(Tid(1), 0);
        p.enqueue(Tid(2), 0);
        p.enqueue(Tid(3), 0);
        assert_eq!(p.runnable(), 3);
        p.forget(Tid(2));
        let mut env = DispatchEnv {
            nlive: 3,
            now: Cycles::ZERO,
            rng: &mut rng,
        };
        assert_eq!(p.pick(&mut env).unwrap().tid, Tid(1));
        assert_eq!(p.pick(&mut env).unwrap().tid, Tid(3));
        assert!(p.pick(&mut env).is_none());
    }

    #[test]
    fn fifo_zero_cost() {
        let mut p = FifoPolicy::new();
        let mut rng = StdRng::seed_from_u64(0);
        p.enqueue(Tid(7), 0);
        let mut env = DispatchEnv {
            nlive: 1,
            now: Cycles(5),
            rng: &mut rng,
        };
        assert_eq!(p.pick(&mut env).unwrap().cost, Cycles::ZERO);
    }
}
