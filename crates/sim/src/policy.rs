//! Pluggable run-queue policy: which runnable process runs next and what
//! the dispatch costs.
//!
//! Each modelled operating system supplies its own [`RunPolicy`]; the
//! differences between them (Linux's O(n) task-table scan, FreeBSD's
//! constant-time queues, Solaris's dispatcher overhead) are what produce
//! Figure 1 of the paper.

use rand::rngs::StdRng;

use crate::time::Cycles;

/// Identifier of a simulated process within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tid(pub u32);

/// Context handed to the policy when it must pick the next process.
pub struct DispatchEnv<'a> {
    /// Number of live (not yet exited) processes in the system, including
    /// blocked ones. Linux 1.2's scheduler cost scales with this.
    pub nlive: usize,
    /// Current simulated time.
    pub now: Cycles,
    /// Deterministic per-run RNG for modelled scheduling jitter.
    pub rng: &'a mut StdRng,
}

/// The policy's choice: who runs next, and the CPU cost of deciding.
#[derive(Clone, Copy, Debug)]
pub struct Pick {
    /// The process to run.
    pub tid: Tid,
    /// Scheduler overhead charged to the simulated clock for this dispatch
    /// (run-queue search, dispatcher locks, register reload, ...).
    pub cost: Cycles,
}

/// A run-queue policy. Implementations must be deterministic given the
/// same sequence of calls and the same RNG stream.
pub trait RunPolicy: Send {
    /// Adds a process to the runnable set.
    ///
    /// Called when a process is spawned, woken, or yields. A tid is never
    /// enqueued twice without an intervening `pick` or `forget` of it.
    /// `tag` is the opaque label given at spawn time (the tnt kernels use
    /// it to route processes to the right machine's scheduler).
    fn enqueue(&mut self, tid: Tid, tag: u32);

    /// Removes and returns the next process to run, or `None` if the
    /// runnable set is empty.
    fn pick(&mut self, env: &mut DispatchEnv<'_>) -> Option<Pick>;

    /// Removes a process from the runnable set if present (process killed).
    fn forget(&mut self, tid: Tid);

    /// Number of runnable processes.
    fn runnable(&self) -> usize;
}

/// A trivial FIFO policy with zero dispatch cost; used by unit tests and
/// by pure device simulations that do not model scheduler overhead.
#[derive(Default)]
pub struct FifoPolicy {
    queue: std::collections::VecDeque<Tid>,
}

impl FifoPolicy {
    /// Creates an empty FIFO policy.
    pub fn new() -> FifoPolicy {
        FifoPolicy::default()
    }
}

impl RunPolicy for FifoPolicy {
    fn enqueue(&mut self, tid: Tid, _tag: u32) {
        debug_assert!(!self.queue.contains(&tid), "tid {tid:?} enqueued twice");
        self.queue.push_back(tid);
    }

    fn pick(&mut self, _env: &mut DispatchEnv<'_>) -> Option<Pick> {
        self.queue.pop_front().map(|tid| Pick {
            tid,
            cost: Cycles::ZERO,
        })
    }

    fn forget(&mut self, tid: Tid) {
        self.queue.retain(|t| *t != tid);
    }

    fn runnable(&self) -> usize {
        self.queue.len()
    }
}

/// Shared log of the scheduling choices a [`ScriptedPolicy`] made: one
/// [`tnt_race::Choice`] per dispatch at which more than one process was
/// runnable. The explorer reads it back after each run to learn the
/// branch points of that schedule.
#[cfg(feature = "audit")]
pub type ScheduleLog = std::sync::Arc<parking_lot::Mutex<Vec<tnt_race::Choice>>>;

/// The explorer's controlled scheduler: a zero-cost policy whose every
/// contended dispatch is decided by a replay *script* instead of queue
/// order.
///
/// At each pick with more than one runnable process the policy sorts
/// the candidates by tid, consults the next script entry (or takes
/// option 0 past the script's end — the canonical continuation), and
/// records a [`tnt_race::Choice`] carrying the candidate set and each
/// candidate's would-be slice number. Singleton picks are forced moves:
/// not recorded, not script-consuming. Deterministic and RNG-free by
/// construction.
#[cfg(feature = "audit")]
pub struct ScriptedPolicy {
    runnable: std::collections::BTreeSet<Tid>,
    script: Vec<usize>,
    depth: usize,
    /// Completed dispatches per tid; a candidate's next slice is this
    /// plus one, matching the detector's `slice_begin` numbering.
    picks: std::collections::BTreeMap<u32, u32>,
    log: ScheduleLog,
}

#[cfg(feature = "audit")]
impl ScriptedPolicy {
    /// Creates a policy replaying `script` and appending every branch
    /// point to `log`.
    pub fn new(script: Vec<usize>, log: ScheduleLog) -> ScriptedPolicy {
        ScriptedPolicy {
            runnable: std::collections::BTreeSet::new(),
            script,
            depth: 0,
            picks: std::collections::BTreeMap::new(),
            log,
        }
    }
}

#[cfg(feature = "audit")]
impl RunPolicy for ScriptedPolicy {
    fn enqueue(&mut self, tid: Tid, _tag: u32) {
        debug_assert!(!self.runnable.contains(&tid), "tid {tid:?} enqueued twice");
        self.runnable.insert(tid);
    }

    fn pick(&mut self, _env: &mut DispatchEnv<'_>) -> Option<Pick> {
        if self.runnable.is_empty() {
            return None;
        }
        let options: Vec<Tid> = self.runnable.iter().copied().collect();
        let tid = if options.len() == 1 {
            options[0]
        } else {
            let idx = self
                .script
                .get(self.depth)
                .copied()
                .unwrap_or(0)
                .min(options.len() - 1);
            self.depth += 1;
            self.log.lock().push(tnt_race::Choice {
                options: options.iter().map(|t| t.0).collect(),
                chosen: idx,
                slices: options
                    .iter()
                    .map(|t| self.picks.get(&t.0).copied().unwrap_or(0) + 1)
                    .collect(),
            });
            options[idx]
        };
        self.runnable.remove(&tid);
        *self.picks.entry(tid.0).or_insert(0) += 1;
        Some(Pick {
            tid,
            cost: Cycles::ZERO,
        })
    }

    fn forget(&mut self, tid: Tid) {
        self.runnable.remove(&tid);
    }

    fn runnable(&self) -> usize {
        self.runnable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fifo_order_and_forget() {
        let mut p = FifoPolicy::new();
        let mut rng = StdRng::seed_from_u64(0);
        p.enqueue(Tid(1), 0);
        p.enqueue(Tid(2), 0);
        p.enqueue(Tid(3), 0);
        assert_eq!(p.runnable(), 3);
        p.forget(Tid(2));
        let mut env = DispatchEnv {
            nlive: 3,
            now: Cycles::ZERO,
            rng: &mut rng,
        };
        assert_eq!(p.pick(&mut env).unwrap().tid, Tid(1));
        assert_eq!(p.pick(&mut env).unwrap().tid, Tid(3));
        assert!(p.pick(&mut env).is_none());
    }

    #[test]
    fn fifo_zero_cost() {
        let mut p = FifoPolicy::new();
        let mut rng = StdRng::seed_from_u64(0);
        p.enqueue(Tid(7), 0);
        let mut env = DispatchEnv {
            nlive: 1,
            now: Cycles(5),
            rng: &mut rng,
        };
        assert_eq!(p.pick(&mut env).unwrap().cost, Cycles::ZERO);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn scripted_policy_records_contended_picks_only() {
        let log: ScheduleLog = Default::default();
        let mut p = ScriptedPolicy::new(vec![1], log.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let mut env = DispatchEnv {
            nlive: 3,
            now: Cycles::ZERO,
            rng: &mut rng,
        };
        p.enqueue(Tid(5), 0);
        // Singleton: forced move, nothing logged, script untouched.
        assert_eq!(p.pick(&mut env).unwrap().tid, Tid(5));
        assert!(log.lock().is_empty());
        p.enqueue(Tid(5), 0);
        p.enqueue(Tid(3), 0);
        // Contended: script entry 1 picks the second-lowest tid.
        assert_eq!(p.pick(&mut env).unwrap().tid, Tid(5));
        let rec = log.lock().clone();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].options, vec![3, 5]);
        assert_eq!(rec[0].chosen, 1);
        // Tid 5 has run once already, so its next slice is 2; tid 3 has
        // never run, so its next slice is 1.
        assert_eq!(rec[0].slices, vec![1, 2]);
        // Past the script's end the canonical option 0 is taken.
        p.enqueue(Tid(5), 0);
        assert_eq!(p.pick(&mut env).unwrap().tid, Tid(3));
        assert_eq!(log.lock().len(), 2);
        assert_eq!(log.lock()[1].chosen, 0);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn scripted_policy_clamps_out_of_range_entries() {
        let log: ScheduleLog = Default::default();
        let mut p = ScriptedPolicy::new(vec![9], log.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let mut env = DispatchEnv {
            nlive: 2,
            now: Cycles::ZERO,
            rng: &mut rng,
        };
        p.enqueue(Tid(1), 0);
        p.enqueue(Tid(2), 0);
        assert_eq!(p.pick(&mut env).unwrap().tid, Tid(2));
    }
}
