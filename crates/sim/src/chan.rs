//! A bounded FIFO channel usable from both process models.
//!
//! Threaded processes use the blocking [`SimChannel::send`] /
//! [`SimChannel::recv`]; lite processes use the non-blocking
//! `try_`-variants and block by returning `Step::Block` on
//! [`SimChannel::read_queue`] / [`SimChannel::write_queue`] (see
//! [`crate::lite::block_on`]). Wakeups cross the model boundary
//! transparently: a lite client's `try_send` wakes a threaded server
//! blocked in `recv`, and a threaded server's `send` rings the lite
//! scheduler's doorbell.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::engine::{Sim, WaitId};

/// A bounded multi-producer multi-consumer FIFO of `T`.
pub struct SimChannel<T> {
    buf: Mutex<VecDeque<T>>,
    cap: usize,
    rd_q: WaitId,
    wr_q: WaitId,
}

impl<T> SimChannel<T> {
    /// Creates a channel holding at most `cap` items (`cap >= 1`).
    pub fn new(sim: &Sim, cap: usize) -> SimChannel<T> {
        assert!(cap >= 1, "channel capacity must be at least 1");
        SimChannel {
            buf: Mutex::new(VecDeque::new()),
            cap,
            rd_q: sim.new_queue(),
            wr_q: sim.new_queue(),
        }
    }

    /// Sends `v`, blocking the calling threaded process while the
    /// channel is full.
    pub fn send(&self, sim: &Sim, v: T) {
        loop {
            // Processes are atomic between blocking calls, so this
            // check-then-wait cannot lose a wakeup.
            if self.buf.lock().len() < self.cap {
                break;
            }
            sim.wait_on(self.wr_q, "chan send");
        }
        self.buf.lock().push_back(v);
        // One happens-before edge per successful op: the channel's own
        // buffer lock totally orders them, so the detector sees every
        // datum transfer (send -> recv) and every capacity handoff
        // (recv -> unblocked send).
        sim.race_channel_op(self.rd_q.raw());
        sim.wakeup_one(self.rd_q);
    }

    /// Receives the oldest item, blocking the calling threaded process
    /// while the channel is empty.
    pub fn recv(&self, sim: &Sim) -> T {
        loop {
            if let Some(v) = self.buf.lock().pop_front() {
                sim.race_channel_op(self.rd_q.raw());
                sim.wakeup_one(self.wr_q);
                return v;
            }
            sim.wait_on(self.rd_q, "chan recv");
        }
    }

    /// Non-blocking send: `Err(v)` gives the item back if the channel is
    /// full (block on [`SimChannel::write_queue`] and retry).
    pub fn try_send(&self, sim: &Sim, v: T) -> Result<(), T> {
        {
            let mut buf = self.buf.lock();
            if buf.len() >= self.cap {
                return Err(v);
            }
            buf.push_back(v);
        }
        sim.race_channel_op(self.rd_q.raw());
        sim.wakeup_one(self.rd_q);
        Ok(())
    }

    /// Non-blocking receive: `None` if the channel is empty (block on
    /// [`SimChannel::read_queue`] and retry).
    pub fn try_recv(&self, sim: &Sim) -> Option<T> {
        let v = self.buf.lock().pop_front();
        if v.is_some() {
            sim.race_channel_op(self.rd_q.raw());
            sim.wakeup_one(self.wr_q);
        }
        v
    }

    /// The queue signalled when an item arrives.
    pub fn read_queue(&self) -> WaitId {
        self.rd_q
    }

    /// The queue signalled when space frees up.
    pub fn write_queue(&self) -> WaitId {
        self.wr_q
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the channel is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use crate::lite::{block_on, LiteScheduler, ProcCtx};
    use crate::policy::FifoPolicy;
    use crate::time::Cycles;
    use std::sync::Arc;
    use tnt_proc::Step;

    fn sim() -> Sim {
        Sim::new(Box::new(FifoPolicy::new()), SimConfig::default())
    }

    #[test]
    fn threaded_send_recv_respects_capacity() {
        let s = sim();
        let ch = Arc::new(SimChannel::new(&s, 2));
        let tx = ch.clone();
        s.spawn("producer", move |s| {
            for i in 0..10u32 {
                tx.send(s, i);
                s.advance(Cycles(10));
            }
        });
        let rx = ch.clone();
        s.spawn("consumer", move |s| {
            for i in 0..10u32 {
                assert_eq!(rx.recv(s), i);
                s.advance(Cycles(25));
            }
        });
        s.run().unwrap();
        assert!(ch.is_empty());
    }

    #[test]
    fn lite_client_talks_to_threaded_server() {
        // A lite client sends requests through the channel to a
        // threaded server and waits for per-request completion — the
        // crowd-scale pattern used by the internet-server example.
        let s = sim();
        let ch = Arc::new(SimChannel::new(&s, 4));
        let done_q = s.new_queue();
        let served = Arc::new(Mutex::new(Vec::new()));

        let rx = ch.clone();
        let log = served.clone();
        s.spawn("server", move |s| {
            for _ in 0..3 {
                let req: u32 = rx.recv(s);
                s.advance(Cycles(100));
                log.lock().push(req);
                s.wakeup_all(done_q);
            }
        });

        let mut sched = LiteScheduler::new(&s);
        for i in 0..3u32 {
            let tx = ch.clone();
            let mut state = 0u8;
            sched.spawn(&format!("client{i}"), Box::new(move |ctx: &mut ProcCtx| {
                match state {
                    0 => match tx.try_send(ctx.sim(), i) {
                        Ok(()) => {
                            state = 1;
                            block_on(done_q, "await reply")
                        }
                        Err(_) => block_on(tx.write_queue(), "chan full"),
                    },
                    _ => Step::Done,
                }
            }));
        }
        sched.start("clients");
        s.run().unwrap();
        assert_eq!(&*served.lock(), &[0, 1, 2]);
    }
}
