//! Regression gate for the race tooling: planted engine bugs (the
//! `MUTANT_*` bits in `engine.rs`) that the happens-before checker or
//! the schedule explorer must catch, plus positive/negative checks for
//! the user-facing `race_read`/`race_write` hooks. Every mutant is a
//! real bug class the deterministic engine is designed out of: a lost
//! doorbell wakeup, a broken timer tie-break, an unlocked trace-ring
//! write, and a stale `WaitReason::Any` queue token.
#![cfg(feature = "audit")]

use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{
    Sim, SimConfig, SimError, MUTANT_DROP_DOORBELL, MUTANT_SKIP_ANY_CANCEL,
    MUTANT_TIMER_TIE_REORDER, MUTANT_UNLOCKED_RING_WRITE,
};
use crate::lite::{block_any, block_on, LiteScheduler, ProcCtx};
use crate::lock::SimMutex;
use crate::policy::FifoPolicy;
use crate::race::{explore, run_scripted, Collector, ExploreReport};
use crate::time::Cycles;
use tnt_proc::Step;

fn sim() -> Sim {
    Sim::new(Box::new(FifoPolicy::new()), SimConfig::default())
}

#[test]
fn detector_is_disarmed_by_default() {
    let s = sim();
    assert!(!s.race_armed());
    // The hooks are free no-ops when disarmed.
    s.race_write("anything", 7);
    s.race_read("anything", 7);
    s.spawn("w", |s| {
        s.race_write("anything", 7);
        s.advance(Cycles(10));
    });
    s.run().unwrap();
}

#[test]
fn unordered_user_writes_race() {
    let s = sim();
    assert!(s.arm_race_detector());
    for name in ["a", "b"] {
        s.spawn(name, |s| {
            s.advance(Cycles(10));
            s.race_write("shared-counter", 0);
        });
    }
    let err = s.run().unwrap_err();
    match err {
        SimError::ProcPanic(msg) => {
            assert!(msg.contains("data race"), "panic message: {msg}");
            assert!(msg.contains("shared-counter"), "panic message: {msg}");
        }
        other => panic!("expected a proc panic, got {other:?}"),
    }
}

#[test]
fn mutex_ordered_user_writes_do_not_race() {
    let s = sim();
    assert!(s.arm_race_detector());
    let m = Arc::new(SimMutex::new(&s));
    for name in ["a", "b"] {
        let m = m.clone();
        s.spawn(name, move |s| {
            s.advance(Cycles(10));
            m.lock(s);
            s.race_write("shared-counter", 0);
            m.unlock(s);
        });
    }
    s.run().unwrap();
}

#[test]
fn channel_ordered_user_writes_do_not_race() {
    let s = sim();
    assert!(s.arm_race_detector());
    let ch = Arc::new(crate::chan::SimChannel::new(&s, 1));
    let tx = ch.clone();
    s.spawn("producer", move |s| {
        s.race_write("handoff", 0);
        tx.send(s, 1u32);
    });
    let rx = ch.clone();
    s.spawn("consumer", move |s| {
        let _ = rx.recv(s);
        s.race_write("handoff", 0);
    });
    s.run().unwrap();
}

// ----------------------------------------------------------------------
// Planted mutants.
// ----------------------------------------------------------------------

/// Mutant 3: the charge path writes the trace ring without its lock
/// discipline. Two procs that never synchronize both charge; the
/// happens-before checker sees the raw write unordered with the other
/// proc's disciplined one and fails the run.
#[test]
fn mutant_unlocked_ring_write_is_caught_by_the_checker() {
    let run = |mutant: bool| {
        let s = sim();
        if mutant {
            s.set_mutant(MUTANT_UNLOCKED_RING_WRITE);
        }
        assert!(s.arm_race_detector());
        for name in ["a", "b"] {
            s.spawn(name, |s| {
                s.advance(Cycles(100));
            });
        }
        s.run()
    };
    run(false).expect("disciplined ring writes never race");
    let err = run(true).unwrap_err();
    match err {
        SimError::ProcPanic(msg) => {
            assert!(msg.contains("data race"), "panic message: {msg}");
            assert!(msg.contains("TraceRing"), "panic message: {msg}");
        }
        other => panic!("expected a proc panic, got {other:?}"),
    }
}

/// A lite waiter woken by a threaded waker: the scenario whose doorbell
/// ring mutant 1 drops.
fn lite_mix_scenario(mutant: bool) -> impl Fn(&Sim) -> Collector {
    move |s: &Sim| {
        if mutant {
            s.set_mutant(MUTANT_DROP_DOORBELL);
        }
        let q = s.new_queue();
        let woken_at = Arc::new(Mutex::new(0u64));
        let out = woken_at.clone();
        let mut sched = LiteScheduler::new(s);
        let mut waited = false;
        sched.spawn(
            "waiter",
            Box::new(move |ctx: &mut ProcCtx| {
                if !waited {
                    waited = true;
                    return block_on(q, "await signal");
                }
                *out.lock() = ctx.sim().now().0;
                Step::Done
            }),
        );
        sched.start("sched");
        s.spawn("waker", move |s| {
            s.sleep(Cycles(1_000));
            s.wakeup_one(q);
        });
        Box::new(move || vec![("woken_at".to_string(), *woken_at.lock())])
    }
}

/// Mutant 1: the wakeup token is delivered but the scheduler's doorbell
/// is never rung — a lost wakeup. Every schedule the explorer tries
/// deadlocks, and the report says so.
#[test]
fn mutant_dropped_doorbell_is_caught_by_the_explorer() {
    let clean = explore(
        |script| run_scripted(script, lite_mix_scenario(false)),
        256,
        None,
    );
    assert!(clean.passed(), "clean engine must pass: {:?}", clean.failures);
    let report = explore(
        |script| run_scripted(script, lite_mix_scenario(true)),
        256,
        None,
    );
    assert!(!report.passed());
    assert!(
        report.failures.iter().any(|f| f.contains("deadlock")),
        "failures: {:?}",
        report.failures
    );
}

/// Equal-instant timers: a host-armed queue wakeup (armed first) ties
/// with a proc's wait timeout. The FIFO tie-break delivers the wakeup;
/// the timeout then finds nobody waiting.
fn timer_tie_scenario(mutant: bool) -> impl Fn(&Sim) -> Collector {
    move |s: &Sim| {
        if mutant {
            s.set_mutant(MUTANT_TIMER_TIE_REORDER);
        }
        let q = s.new_queue();
        s.wakeup_one_at(q, Cycles(1_000));
        let woken = Arc::new(Mutex::new(0u64));
        let out = woken.clone();
        s.spawn("waiter", move |s| {
            let signalled = s.wait_on_timeout(q, Cycles(1_000), "tie wait");
            *out.lock() = u64::from(signalled);
        });
        Box::new(move || vec![("signalled".to_string(), *woken.lock())])
    }
}

/// Mutant 2: equal-instant timers fire in reverse arming order. Every
/// mutated schedule consistently reports the timeout instead of the
/// wakeup, so only the pinned clean-run outcome exposes the bug.
#[test]
fn mutant_timer_tie_reorder_is_caught_by_pinned_outcome() {
    let clean = explore(
        |script| run_scripted(script, timer_tie_scenario(false)),
        256,
        None,
    );
    assert!(clean.passed(), "clean engine must pass: {:?}", clean.failures);
    let expected = clean.outcome.clone().expect("clean run has an outcome");
    assert_eq!(expected.payload, vec![("signalled".to_string(), 1)]);
    let report = explore(
        |script| run_scripted(script, timer_tie_scenario(true)),
        256,
        Some(&expected),
    );
    assert!(!report.passed());
    assert!(
        report.failures.iter().any(|f| f.contains("pinned")),
        "failures: {:?}",
        report.failures
    );
}

/// A lite `Any` wait whose timeout wins, then a late signal on the
/// losing queue while the client sleeps: the disarm in the drive loop
/// is what keeps the late signal from waking the next wait.
fn stale_any_scenario(mutant: bool) -> impl Fn(&Sim) -> Collector {
    move |s: &Sim| {
        if mutant {
            s.set_mutant(MUTANT_SKIP_ANY_CANCEL);
        }
        let q = s.new_queue();
        let log = Arc::new(Mutex::new(Vec::new()));
        let out = log.clone();
        let mut sched = LiteScheduler::new(s);
        let mut phase = 0;
        sched.spawn(
            "client",
            Box::new(move |ctx: &mut ProcCtx| {
                phase += 1;
                match phase {
                    1 => block_any(ctx, &[q], Some(Cycles(5_000)), "reply or rto"),
                    2 => {
                        out.lock().push(ctx.sim().now().0);
                        Step::Block(tnt_proc::WaitReason::Until(20_000))
                    }
                    _ => {
                        out.lock().push(ctx.sim().now().0);
                        Step::Done
                    }
                }
            }),
        );
        sched.start("sched");
        s.spawn("late-server", move |s| {
            s.sleep(Cycles(8_000));
            s.wakeup_one(q);
        });
        let log = log.clone();
        Box::new(move || {
            log.lock()
                .iter()
                .enumerate()
                .map(|(i, t)| (format!("wake{i}"), *t))
                .collect()
        })
    }
}

/// Mutant 4: the timed-out `Any` wait's queue tokens stay armed, so the
/// late signal yanks the client out of its *next* wait at 8_000 instead
/// of letting it sleep to 20_000. Caught against the pinned outcome.
#[test]
fn mutant_stale_any_token_is_caught_by_pinned_outcome() {
    let clean = explore(
        |script| run_scripted(script, stale_any_scenario(false)),
        256,
        None,
    );
    assert!(clean.passed(), "clean engine must pass: {:?}", clean.failures);
    let expected = clean.outcome.clone().expect("clean run has an outcome");
    assert_eq!(
        expected.payload,
        vec![("wake0".to_string(), 5_000), ("wake1".to_string(), 20_000)]
    );
    let report = explore(
        |script| run_scripted(script, stale_any_scenario(true)),
        256,
        Some(&expected),
    );
    assert!(!report.passed(), "stale token must change the outcome");
}

/// The explorer on the clean engine: schedule-invariant scenarios pass,
/// and sleep-set pruning keeps the run count below the naive factorial.
#[test]
fn clean_scenarios_are_schedule_invariant() {
    let report: ExploreReport = explore(
        |script| run_scripted(script, timer_tie_scenario(false)),
        256,
        None,
    );
    assert!(report.passed(), "failures: {:?}", report.failures);
    assert_eq!(report.distinct_outcomes, 1);
    assert!(report.schedules >= 1);
}
