//! The deterministic baton-passing process engine.
//!
//! Simulated processes are real OS threads, but exactly one of them runs at
//! any moment: a thread gives up the baton only by calling one of the
//! blocking primitives (`yield_now`, `sleep_until`, `wait_on`, exit), at
//! which point the engine picks the next runnable process through the
//! configured [`RunPolicy`] and hands the baton over. Between two blocking
//! calls a process executes atomically with respect to all other simulated
//! processes, exactly like a non-preemptive uniprocessor kernel.
//!
//! Simulated time only advances through explicit [`Sim::advance`] charges
//! and through the timer queue, so the same seed always produces the same
//! clock readings: the simulation is fully deterministic.
//!
//! Locking discipline: engine state lives behind a single `parking_lot`
//! mutex that is never held across a baton handoff. Kernel models built on
//! top (tnt-os and friends) must follow the same rule for their own locks:
//! never hold a guard across a call that can block.

use std::cell::Cell;
// BTreeMap (not a hashed map) everywhere: engine state leaks into
// outputs — the deadlock diagnostic iterates `procs` — and iteration
// order must not depend on the hasher.
use std::collections::{BTreeMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tnt_fault::{FaultPlan, FaultProfile};
use tnt_trace::{Class, Counter, Event, EventKind, Tracer};

use crate::policy::{DispatchEnv, Pick, RunPolicy, Tid};
use crate::time::Cycles;
use crate::wheel::TimerWheel;

#[cfg(feature = "audit")]
use tnt_race::{AccessInfo, AccessKind, Detector, Loc, SyncId, WakeSrc};

// ----------------------------------------------------------------------
// Planted-bug mutants (the race tooling's regression gate, see
// `race_tests.rs`). The bits are only settable from this crate's unit
// tests; production builds compile the checks to constant `false`.
// ----------------------------------------------------------------------

/// Skip ringing the lite scheduler's doorbell on a delivered wakeup
/// token: the scheduler sleeps through the signal (a lost wakeup).
pub(crate) const MUTANT_DROP_DOORBELL: u8 = 1 << 0;
/// Fire equal-instant timers in reverse arming order, breaking the
/// `(at, seq)` FIFO tie-break the engine guarantees.
pub(crate) const MUTANT_TIMER_TIE_REORDER: u8 = 1 << 1;
/// Skip the trace-ring lock discipline on the charge path: the ring
/// write becomes a raw access the happens-before checker can see race.
/// (Only the audit-gated charge hook reads it; without the feature the
/// checker it defeats does not exist.)
#[cfg_attr(not(feature = "audit"), allow(dead_code))]
pub(crate) const MUTANT_UNLOCKED_RING_WRITE: u8 = 1 << 2;
/// Skip cancelling the armed queue tokens of a timed-out
/// `WaitReason::Any` lite wait: a late signal wakes the process out of
/// its *next*, unrelated wait (a stale-generation bug).
pub(crate) const MUTANT_SKIP_ANY_CANCEL: u8 = 1 << 3;

#[cfg(test)]
#[inline]
fn mutant_on(st: &State, bit: u8) -> bool {
    st.mutants & bit != 0
}

#[cfg(not(test))]
#[inline]
fn mutant_on(_st: &State, _bit: u8) -> bool {
    false
}

/// Identifier of a wait queue (sleep/wakeup channel).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WaitId(u64);

impl WaitId {
    /// The raw token lite processes use to name this queue in
    /// `WaitReason::Queue` (see `tnt_sim::proc`); meaningless outside
    /// the simulation that allocated it.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An entry on an engine wait queue: either a parked thread-backed
/// process, or a lite process's wakeup token routed to its scheduler.
/// One queue can hold both kinds, so every blocking primitive built on
/// wait queues (SimMutex, pipes, channels) is lite-aware for free.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Waiter {
    /// A threaded process; waking it unparks its thread.
    Thread(Tid),
    /// A lite process: waking it pushes `token` into the owning
    /// scheduler's mailbox and rings the scheduler's doorbell.
    Lite { sched: Tid, token: u64 },
}

/// Why a simulation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// No process is runnable, no timer is pending, but live processes
    /// remain. The string lists the blocked processes and their reasons.
    Deadlock(String),
    /// A simulated process panicked; the string holds the panic message.
    ProcPanic(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(s) => write!(f, "simulation deadlock: {s}"),
            SimError::ProcPanic(s) => write!(f, "simulated process panicked: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Configuration for a simulation instance.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the per-run RNG; vary it across the paper's twenty runs.
    pub seed: u64,
    /// Multiplicative jitter applied by [`Sim::charge`]: each charge is
    /// scaled by a uniform factor in `[1 - jitter, 1 + jitter]`. Models
    /// interrupt and cache noise so repeated runs have a non-zero standard
    /// deviation, as in the paper. Zero disables jitter.
    pub jitter: f64,
    /// Fault-injection profile; [`FaultProfile::off`] (the default)
    /// disables injection with zero RNG cost, leaving the run
    /// bit-identical to a faultless build.
    pub faults: FaultProfile,
    /// Arms the workload recorder ([`Sim::recorder`]) from birth, so
    /// the run's disk commands and file-layer events are captured as a
    /// `tnt_replay::Trace`. Off (the default) costs one relaxed atomic
    /// load per event site and the run is byte-identical to a build
    /// without the capture shim.
    pub record: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            seed: 0,
            jitter: 0.0,
            faults: FaultProfile::off(),
            record: false,
        }
    }
}

/// Sent to a parked thread to resume or destroy it.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Wake {
    Run,
    Kill,
}

/// Unwind payload used to destroy a simulated process; never observed by
/// user code.
struct SimKilled;

struct Parker {
    /// EMPTY / PARKED / RUN / KILL. The wake travels through this atomic;
    /// the mutex+condvar pair is only the sleeping slow path, so a wake
    /// that is already (or about to be) delivered costs no syscalls and
    /// `unpark` only notifies when the parker has announced it is asleep.
    flag: std::sync::atomic::AtomicU32,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Parker {
    const EMPTY: u32 = 0;
    /// The parker holds (or is acquiring) `lock` and will sleep on `cv`.
    const PARKED: u32 = 1;
    const RUN: u32 = 2;
    const KILL: u32 = 3;

    fn new() -> Arc<Parker> {
        Arc::new(Parker {
            flag: std::sync::atomic::AtomicU32::new(Self::EMPTY),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    /// Takes a delivered wake without touching the lock, if one is there.
    /// Only the parking thread calls this, so the flag cannot be PARKED.
    fn try_consume(&self) -> Option<Wake> {
        use std::sync::atomic::Ordering;
        match self.flag.swap(Self::EMPTY, Ordering::Acquire) {
            Self::RUN => Some(Wake::Run),
            Self::KILL => Some(Wake::Kill),
            _ => None,
        }
    }

    fn park(&self) -> Wake {
        use std::sync::atomic::Ordering;
        if let Some(w) = self.try_consume() {
            return w;
        }
        // Brief spin: on a multi-core host the matching unpark is often
        // already in flight, and a handful of pause instructions is far
        // cheaper than a futex round trip. On a single CPU the unparker
        // cannot be running concurrently, so spinning only delays the
        // kernel from scheduling it — skip straight to the sleep.
        static SPIN: std::sync::LazyLock<u32> = std::sync::LazyLock::new(|| {
            if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
                64
            } else {
                0
            }
        });
        for _ in 0..*SPIN {
            std::hint::spin_loop();
            if let Some(w) = self.try_consume() {
                return w;
            }
        }
        let mut guard = self.lock.lock();
        // Announce the sleep; if a wake raced in instead, the loop below
        // consumes it without waiting.
        let _ = self.flag.compare_exchange(
            Self::EMPTY,
            Self::PARKED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        loop {
            match self.flag.load(Ordering::Acquire) {
                Self::RUN => {
                    self.flag.store(Self::EMPTY, Ordering::Relaxed);
                    return Wake::Run;
                }
                Self::KILL => {
                    self.flag.store(Self::EMPTY, Ordering::Relaxed);
                    return Wake::Kill;
                }
                _ => self.cv.wait(&mut guard),
            }
        }
    }

    fn unpark(&self, wake: Wake) {
        use std::sync::atomic::Ordering;
        let target = if wake == Wake::Kill {
            Self::KILL
        } else {
            Self::RUN
        };
        let mut cur = self.flag.load(Ordering::Relaxed);
        let was_parked = loop {
            // A Kill must not be overwritten by a late Run, and vice
            // versa a Kill overrides a pending Run. In both no-op cases
            // the earlier unpark already did any notification needed.
            if cur == Self::KILL || (cur == Self::RUN && wake == Wake::Run) {
                break false;
            }
            match self
                .flag
                .compare_exchange_weak(cur, target, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(prev) => break prev == Self::PARKED,
                Err(now) => cur = now,
            }
        };
        if was_parked {
            // The parker is in (or entering) `cv.wait`: taking the lock
            // orders this notify after its flag check, so the wake cannot
            // fall between the check and the wait.
            drop(self.lock.lock());
            self.cv.notify_one();
        }
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Status {
    /// In the run queue (or about to be picked for the first time).
    Runnable,
    /// Holding the baton.
    Running,
    /// Waiting on a timer or wait queue; the str names the reason.
    Blocked(&'static str),
    /// Finished.
    Exited,
}

struct Proc {
    name: String,
    parker: Arc<Parker>,
    status: Status,
    tag: u32,
    /// CPU cycles charged while this process held the baton.
    cpu: Cycles,
    /// Incremented on every block; timed wakeups only fire on the
    /// generation they were armed for, so a stale timeout can never wake
    /// a later, unrelated block.
    block_gen: u64,
    /// Set when the wake came from a timed wait's timeout.
    timed_out: bool,
    /// The queue whose wakeup released the last block, for `wait_on_any`.
    woken_by: Option<u64>,
}

/// What a timer does when it fires (all are wakeups of some kind).
/// Ordering among pending timers is entirely the wheel's `(at, seq)`
/// key; the action itself is never compared.
enum TimerAction {
    Proc(Tid),
    /// Wake `tid` only if it is still in block generation `gen` (a timed
    /// wait's timeout); also removes it from queue `q`.
    ProcGen(Tid, u64, u64),
    QueueOne(u64),
    QueueAll(u64),
}

/// Engine-side registration of one lite scheduler (see `tnt_sim::proc`):
/// the thread-backed process that multiplexes a crowd of lite processes.
struct LiteSched {
    /// The wait queue the scheduler parks on when no lite process is
    /// runnable; delivered wakeup tokens ring it.
    doorbell: u64,
    /// Wakeup tokens delivered since the scheduler last drained them.
    mailbox: Vec<u64>,
    /// Tokens currently parked on engine queues, with their block
    /// reasons (surfaced by deadlock diagnostics).
    waiting: BTreeMap<u64, &'static str>,
}

struct State {
    now: Cycles,
    timer_seq: u64,
    timers: TimerWheel<TimerAction>,
    procs: BTreeMap<Tid, Proc>,
    policy: Box<dyn RunPolicy>,
    current: Option<Tid>,
    live: usize,
    queues: BTreeMap<u64, VecDeque<Waiter>>,
    /// Registered lite schedulers, keyed by their engine tid.
    lite: BTreeMap<Tid, LiteSched>,
    rng: StdRng,
    next_tid: u32,
    next_wait: u64,
    dispatches: u64,
    finished: bool,
    error: Option<SimError>,
    shutting_down: bool,
    #[cfg(feature = "audit")]
    audit: AuditState,
    /// The happens-before race detector, when armed (see
    /// [`Sim::arm_race_detector`]); every call happens under this state
    /// lock, so plain mutable state suffices.
    #[cfg(feature = "audit")]
    race: Option<Box<Detector>>,
    /// Planted-bug mutant bits (unit tests only).
    #[cfg(test)]
    mutants: u8,
}

/// State of the dynamic invariant checkers (`audit` feature).
#[cfg(feature = "audit")]
#[derive(Default)]
struct AuditState {
    /// SimMutex queue ids currently held, per process, in acquisition
    /// order.
    held_locks: BTreeMap<Tid, Vec<u64>>,
    /// Lock-order edges `a -> b` ("b was acquired while a was held"),
    /// with the name of the process that first established each edge.
    lock_edges: BTreeMap<u64, BTreeMap<u64, String>>,
    /// Wait queues whose *most recent* signal found zero waiters, and
    /// the simulated time of that signal. Cleared when a later signal
    /// on the queue wakes someone.
    empty_signals: BTreeMap<u64, Cycles>,
}

#[cfg(feature = "audit")]
impl AuditState {
    /// Is `to` reachable from `from` in the lock-order graph?
    fn reaches(&self, from: u64, to: u64) -> bool {
        let mut stack = vec![from];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(nexts) = self.lock_edges.get(&n) {
                stack.extend(nexts.keys().copied());
            }
        }
        false
    }

    /// One witness path `from -> ... -> to`, for the violation report.
    fn path(&self, from: u64, to: u64) -> Vec<u64> {
        let mut stack = vec![vec![from]];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(p) = stack.pop() {
            let n = *p.last().expect("paths are never empty");
            if n == to {
                return p;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(nexts) = self.lock_edges.get(&n) {
                for next in nexts.keys() {
                    let mut q = p.clone();
                    q.push(*next);
                    stack.push(q);
                }
            }
        }
        vec![from, to]
    }
}

struct Inner {
    state: Mutex<State>,
    /// Immutable copy of the run's jitter factor (fixed at `Sim::new`),
    /// so the charge fast path can scale without taking the state lock.
    run_factor: f64,
    /// Set once a planted-bug mutant is armed: batching would fold the
    /// per-charge behaviour the mutant tests pin down (unit tests only).
    #[cfg(test)]
    mutants_armed: std::sync::atomic::AtomicBool,
    done: Condvar,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Trace sink. Disabled by default (one relaxed load per emit site);
    /// auto-enabled when a `tnt_trace::session` is collecting.
    tracer: Tracer,
    /// Fault-injection plan: the configured profile plus its own seeded
    /// RNG stream, so fault rolls never perturb the jitter stream.
    faults: FaultPlan,
    /// Workload recorder (tnt-replay capture shim). Disabled by default
    /// (one relaxed load per emit site); armed by `SimConfig::record`
    /// or explicitly via [`Sim::recorder`].
    recorder: tnt_replay::Recorder,
}

thread_local! {
    static CURRENT: Cell<Option<Tid>> = const { Cell::new(None) };
    /// Cycles charged on this thread but not yet applied to the engine
    /// clock, tagged with the owning engine's `Inner` address (a thread
    /// only ever holds one simulation's baton, but the tag keeps a
    /// stale cell from ever leaking across engines). Flushed on every
    /// state-lock acquisition, so no engine state is observable while a
    /// balance is outstanding.
    static PENDING_CHARGE: Cell<(usize, u64)> = const { Cell::new((0, 0)) };
    /// Virtual pid of the lite process being polled on this thread, if
    /// any: trace events stamp it instead of the scheduler's tid.
    static LITE_PID: Cell<Option<u32>> = const { Cell::new(None) };
    /// Set while a lite process's `poll` runs; parking primitives check
    /// it so a lite process that blocks the host thread fails loudly.
    static IN_LITE_POLL: Cell<bool> = const { Cell::new(false) };
}

/// Scope guard marking "this thread is polling lite process `pid`".
/// While it lives, trace events carry the lite pid and any call into a
/// parking primitive (`wait_on`, `sleep`, `yield_now`, ...) panics —
/// lite processes block by *returning* `Step::Block` from `poll`.
pub(crate) struct LitePollGuard;

impl LitePollGuard {
    pub(crate) fn new(pid: u32) -> LitePollGuard {
        LITE_PID.with(|c| c.set(Some(pid)));
        IN_LITE_POLL.with(|c| c.set(true));
        LitePollGuard
    }
}

impl Drop for LitePollGuard {
    fn drop(&mut self) {
        LITE_PID.with(|c| c.set(None));
        IN_LITE_POLL.with(|c| c.set(false));
    }
}

/// Installs (once per program) a panic hook that silences the internal
/// kill-unwind while delegating every real panic to the previous hook.
fn install_quiet_kill_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<SimKilled>() {
                return;
            }
            prev(info);
        }));
    });
}

/// A handle to a simulation. Cheap to clone; all clones refer to the same
/// engine instance.
#[derive(Clone)]
pub struct Sim {
    inner: Arc<Inner>,
}

impl Sim {
    /// Creates a simulation with the given run-queue policy and config.
    pub fn new(policy: Box<dyn RunPolicy>, config: SimConfig) -> Sim {
        install_quiet_kill_hook();
        let mut rng = StdRng::seed_from_u64(config.seed);
        // One multiplicative factor per run: repeated runs with different
        // seeds then have a standard deviation of roughly `jitter`, the
        // way the paper's twenty runs do.
        let run_factor = if config.jitter == 0.0 {
            1.0
        } else {
            let j = config.jitter * 3f64.sqrt(); // uniform [-sqrt(3)j, +sqrt(3)j] has sd j
            1.0 + rng.gen_range(-j..=j)
        };
        let state = State {
            now: Cycles::ZERO,
            timer_seq: 0,
            timers: TimerWheel::new(),
            procs: BTreeMap::new(),
            policy,
            current: None,
            live: 0,
            queues: BTreeMap::new(),
            lite: BTreeMap::new(),
            rng,
            next_tid: 1,
            next_wait: 1,
            dispatches: 0,
            finished: false,
            error: None,
            shutting_down: false,
            #[cfg(feature = "audit")]
            audit: AuditState::default(),
            #[cfg(feature = "audit")]
            race: None,
            #[cfg(test)]
            mutants: 0,
        };
        let sim = Sim {
            inner: Arc::new(Inner {
                state: Mutex::new(state),
                run_factor,
                #[cfg(test)]
                mutants_armed: std::sync::atomic::AtomicBool::new(false),
                done: Condvar::new(),
                threads: Mutex::new(Vec::new()),
                tracer: Tracer::new(),
                faults: FaultPlan::new(config.faults, config.seed),
                recorder: tnt_replay::Recorder::new(),
            }),
        };
        if tnt_trace::session::active() {
            sim.inner.tracer.enable(tnt_trace::session::ring_capacity());
        }
        if config.record {
            sim.inner.recorder.enable();
        }
        // Mirrors `tnt_fault::set_ambient`: `reproduce --audit` arms the
        // happens-before checker for every simulation it builds.
        #[cfg(feature = "audit")]
        if tnt_race::ambient() {
            sim.arm_race_detector();
        }
        sim
    }

    /// The simulation's trace sink (always present, recording only while
    /// enabled; its counters run regardless).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// The simulation's fault-injection plan. Device models roll their
    /// fault probabilities here; with the default `off` profile every
    /// roll is a free `false`.
    pub fn faults(&self) -> &FaultPlan {
        &self.inner.faults
    }

    /// The simulation's workload recorder (always present, capturing
    /// only while enabled). Arm it with `SimConfig::record`, the
    /// ambient `tnt_replay::set_ambient` flag at boot, or directly via
    /// `sim.recorder().enable()`; harvest with `take()`.
    pub fn recorder(&self) -> &tnt_replay::Recorder {
        &self.inner.recorder
    }

    /// Records a block command issued to a disk (called by the disk
    /// model at its command boundary). Recording never moves the
    /// simulated clock; disabled cost is one relaxed atomic load.
    pub fn record_block(&self, write: bool, addr: u64, blocks: u64) {
        if self.inner.recorder.is_enabled() {
            let (t, pid) = self.stamp();
            self.inner.recorder.record_block(t, pid, write, addr, blocks);
        }
    }

    /// Records a file-layer event (called by the filesystem model after
    /// a successful `open`/`unlink`). Same cost contract as
    /// [`Sim::record_block`].
    pub fn record_path_event(&self, op: tnt_replay::Op, path: &str) {
        if self.inner.recorder.is_enabled() {
            let (t, pid) = self.stamp();
            self.inner.recorder.record_path_event(t, pid, op, path);
        }
    }

    /// Starts recording trace events into a fresh ring of `capacity`.
    pub fn enable_tracing(&self, capacity: usize) {
        self.inner.tracer.enable(capacity);
    }

    /// Bumps an always-on trace counter.
    pub fn count(&self, c: Counter, n: u64) {
        self.inner.tracer.count(c, n);
    }

    /// Opens an attribution span of `class` on the calling process (the
    /// host counts as pid 0); the span closes when the guard drops.
    /// Recording never moves the simulated clock, and with tracing
    /// disabled this is a single atomic load.
    pub fn span(&self, class: Class) -> TraceSpan<'_> {
        let armed = self.inner.tracer.is_enabled();
        if armed {
            let (t, pid) = self.stamp();
            self.inner.tracer.record(Event {
                t,
                pid,
                kind: EventKind::Enter(class),
            });
        }
        TraceSpan {
            sim: self,
            class,
            armed,
        }
    }

    /// Timestamp + pid for an event emitted by the calling thread. A
    /// lite process being polled overrides the scheduler's own tid, so
    /// attribution is per lite process, not per scheduler slot.
    fn stamp(&self) -> (u64, u32) {
        let now = self.lock_state().now.0;
        let pid = LITE_PID
            .with(|c| c.get())
            .or_else(|| CURRENT.with(|c| c.get()).map(|t| t.0))
            .unwrap_or(0);
        (now, pid)
    }

    /// Spawns a simulated process. It becomes runnable immediately but only
    /// executes once the engine dispatches it.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> Tid
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        self.spawn_tagged(name, 0, f)
    }

    /// Like [`Sim::spawn`] with an opaque `tag` that is passed to the
    /// [`RunPolicy`] on every enqueue of this process (used to route
    /// processes to per-machine schedulers).
    pub fn spawn_tagged<F>(&self, name: impl Into<String>, tag: u32, f: F) -> Tid
    where
        F: FnOnce(&Sim) + Send + 'static,
    {
        let name = name.into();
        let parker = Parker::new();
        let tid = {
            let mut st = self.lock_state();
            assert!(!st.finished, "spawn after simulation finished");
            let tid = Tid(st.next_tid);
            st.next_tid += 1;
            st.procs.insert(
                tid,
                Proc {
                    name: name.clone(),
                    parker: parker.clone(),
                    status: Status::Runnable,
                    tag,
                    cpu: Cycles::ZERO,
                    block_gen: 0,
                    timed_out: false,
                    woken_by: None,
                },
            );
            st.live += 1;
            st.policy.enqueue(tid, tag);
            #[cfg(feature = "audit")]
            if st.race.is_some() {
                let parent = race_task();
                if let Some(d) = st.race.as_mut() {
                    d.task_start(tid.0, parent);
                }
                self.race_protected(&mut st, Loc::RunQueue, AccessKind::Write, "spawn.enqueue");
            }
            if self.inner.tracer.is_enabled() {
                self.inner.tracer.record(Event {
                    t: st.now.0,
                    pid: tid.0,
                    kind: EventKind::Spawn(name.clone()),
                });
            }
            tid
        };
        let sim = self.clone();
        let thread_parker = parker;
        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .stack_size(512 * 1024)
            .spawn(move || {
                if thread_parker.park() == Wake::Kill {
                    return;
                }
                CURRENT.with(|c| c.set(Some(tid)));
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(&sim)));
                match result {
                    Ok(()) => sim.on_exit(tid),
                    Err(payload) if payload.is::<SimKilled>() => {}
                    Err(payload) => sim.on_panic(tid, panic_message(&*payload)),
                }
            })
            .expect("failed to spawn simulated process thread");
        self.inner.threads.lock().push(handle);
        tid
    }

    /// Runs the simulation until every process has exited, a process calls
    /// [`Sim::stop`], a deadlock is detected, or a process panics.
    ///
    /// Returns the final simulated time on success. Must be called from the
    /// host (non-simulated) thread that built the simulation.
    pub fn run(&self) -> Result<Cycles, SimError> {
        assert!(
            CURRENT.with(|c| c.get()).is_none(),
            "Sim::run called from a simulated process"
        );
        let (final_now, error) = {
            let mut st = self.lock_state();
            if !st.finished {
                if st.current.is_none() {
                    self.dispatch_locked(&mut st);
                }
                while !st.finished {
                    self.inner.done.wait(&mut st);
                }
            }
            // Join edges: everything every proc did happens-before the
            // host's post-run reads (`proc_cpu`, a follow-up `run`).
            #[cfg(feature = "audit")]
            if st.race.is_some() {
                let tids: Vec<u32> = st.procs.keys().map(|t| t.0).collect();
                if let Some(d) = st.race.as_mut() {
                    for t in tids {
                        d.task_join(t, 0);
                    }
                }
            }
            (st.now, st.error.clone())
        };
        self.shutdown();
        if self.inner.tracer.is_enabled() && tnt_trace::session::active() {
            tnt_trace::session::publish(&self.inner.tracer, final_now.0);
            // One publication per simulation even if run() is called again.
            self.inner.tracer.disable();
        }
        // Ambient captures (`reproduce replay --record`) flow to the
        // process-wide sink. Publish a snapshot rather than draining:
        // a workload that armed its own recorder explicitly (x11/x12's
        // capture machines) still harvests the same events with
        // `take()` after the run. Disabling stops a second `run` from
        // publishing the trace twice.
        if tnt_replay::ambient() && self.inner.recorder.is_enabled() && !self.inner.recorder.is_empty()
        {
            tnt_replay::publish(self.inner.recorder.snapshot());
            self.inner.recorder.disable();
        }
        match error {
            None => Ok(final_now),
            Some(e) => Err(e),
        }
    }

    /// Terminates the simulation from inside a simulated process, unwinding
    /// the caller. Remaining processes are destroyed. Never returns.
    pub fn stop(&self) -> ! {
        let tid = current_tid();
        {
            let mut st = self.lock_state();
            let proc = st.procs.get_mut(&tid).expect("current proc missing");
            proc.status = Status::Exited;
            st.live -= 1;
            st.current = None;
            st.finished = true;
            self.inner.done.notify_all();
        }
        panic::panic_any(SimKilled);
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.lock_state().now
    }

    /// Number of live (not exited) simulated processes.
    pub fn live(&self) -> usize {
        self.lock_state().live
    }

    /// Advances simulated time by exactly `c` cycles of CPU work, firing
    /// any timers that come due along the way. Does not yield the baton.
    pub fn advance(&self, c: Cycles) {
        let mut st = self.lock_state();
        self.advance_locked(&mut st, c);
    }

    /// Like [`Sim::advance`], but scales the charge by the configured
    /// jitter factor. Use for modelled CPU costs so that repeated runs with
    /// different seeds exhibit a realistic standard deviation.
    pub fn charge(&self, c: Cycles) {
        let _ = self.charge_scaled(c);
    }

    /// Like [`Sim::charge`] but returns the scaled amount actually
    /// advanced — the lite scheduler mirrors it into its per-process
    /// accounts so threaded and lite accounting stay byte-identical.
    #[must_use]
    pub(crate) fn charge_scaled(&self, c: Cycles) -> Cycles {
        // The hottest call in the engine — every modelled cost goes
        // through it. When nothing can observe individual charges (no
        // tracer, no recorder, no planted mutants) the scaled amount
        // just accumulates in a thread-local; the next state-lock
        // acquisition applies the whole batch in one `advance_locked`.
        // Scaling happens per charge (each amount rounds exactly as an
        // immediate charge would), so the batch conserves cycles
        // bit-for-bit and the returned value is byte-identical.
        let scaled = if self.inner.run_factor == 1.0 {
            c
        } else {
            c.scale(self.inner.run_factor)
        };
        if self.can_batch() {
            let key = Arc::as_ptr(&self.inner) as usize;
            let (tag, pending) = PENDING_CHARGE.get();
            debug_assert!(
                pending == 0 || tag == key,
                "pending charge balance crossed simulations"
            );
            PENDING_CHARGE.set((key, pending + scaled.0));
        } else {
            let mut st = self.lock_state();
            self.advance_locked(&mut st, scaled);
        }
        scaled
    }

    /// May this call defer its charge to the next engine call? Only the
    /// baton holder (a simulated process's thread) batches: charges are
    /// invisible until the charging thread itself re-enters the engine,
    /// and every engine entry point flushes. Tracing and recording want
    /// one event per charge, and the planted-bug mutants pin per-charge
    /// behaviour, so any of them forces the immediate path.
    #[inline]
    fn can_batch(&self) -> bool {
        #[cfg(test)]
        if self
            .inner
            .mutants_armed
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            return false;
        }
        CURRENT.with(|c| c.get()).is_some()
            && !self.inner.tracer.is_enabled()
            && !self.inner.recorder.is_enabled()
    }

    /// Acquires the engine state lock, first settling this thread's
    /// pending charge balance so the caller observes a fully advanced
    /// clock. Every lock acquisition in the engine goes through here.
    fn lock_state(&self) -> parking_lot::MutexGuard<'_, State> {
        let mut st = self.inner.state.lock();
        let (tag, pending) = PENDING_CHARGE.get();
        if pending != 0 && tag == Arc::as_ptr(&self.inner) as usize {
            PENDING_CHARGE.set((0, 0));
            self.advance_locked(&mut st, Cycles(pending));
        }
        st
    }

    /// The body of [`Sim::advance`], for callers already holding the
    /// state lock.
    fn advance_locked(&self, st: &mut State, c: Cycles) {
        // Attribute the CPU burn to the running process, if any (host
        // code may also advance the clock during setup).
        if let Some(cur) = st.current {
            if let Some(proc) = st.procs.get_mut(&cur) {
                proc.cpu += c;
            }
        }
        #[cfg(feature = "audit")]
        if c > Cycles::ZERO && st.race.is_some() {
            // The charge path touches the trace ring and the running
            // proc's account; both follow the engine's lock discipline
            // — except under the planted unlocked-ring-write mutant,
            // whose raw write the checker sees race.
            if mutant_on(st, MUTANT_UNLOCKED_RING_WRITE) {
                self.race_raw(st, Loc::TraceRing, AccessKind::Write, "charge.ring(unlocked)");
            } else {
                self.race_protected(st, Loc::TraceRing, AccessKind::Write, "charge.ring");
            }
            if let Some(cur) = st.current {
                self.race_protected(
                    st,
                    Loc::ProcAccount(cur.0),
                    AccessKind::Write,
                    "charge.account",
                );
            }
        }
        let target = st.now + c;
        while let Some((at, seq, action)) = st.timers.pop_due(target) {
            if at > st.now {
                st.now = at;
            }
            // Planted bug: fire an equal-instant pair in reverse arming
            // order, breaking the wheel's (at, seq) FIFO tie-break.
            if let Some((seq2, action2)) = self.mutant_steal_tie(st, at) {
                self.fire_locked(st, seq2, action2);
            }
            self.fire_locked(st, seq, action);
        }
        if target > st.now {
            st.now = target;
        }
        if c > Cycles::ZERO && self.inner.tracer.is_enabled() {
            let pid = LITE_PID
                .with(|cell| cell.get())
                .unwrap_or_else(|| st.current.map_or(0, |t| t.0));
            self.inner.tracer.record(Event {
                t: st.now.0,
                pid,
                kind: EventKind::Charge { cy: c.0 },
            });
        }
    }

    /// Draws from the simulation's deterministic RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut StdRng) -> T) -> T {
        f(&mut self.lock_state().rng)
    }

    /// Yields the baton: the caller re-enters the run queue and another
    /// runnable process (possibly the caller again) is dispatched.
    pub fn yield_now(&self) {
        let tid = current_tid();
        let mut st = self.lock_state();
        let tag = st.procs[&tid].tag;
        st.procs.get_mut(&tid).expect("current proc missing").status = Status::Runnable;
        st.policy.enqueue(tid, tag);
        #[cfg(feature = "audit")]
        self.race_protected(&mut st, Loc::RunQueue, AccessKind::Write, "yield.enqueue");
        self.block_current(st, tid);
    }

    /// Blocks the caller until the given simulated instant.
    pub fn sleep_until(&self, at: Cycles) {
        let tid = current_tid();
        let mut st = self.lock_state();
        if at <= st.now {
            return;
        }
        let seq = st.timer_seq;
        st.timer_seq += 1;
        st.timers.insert(at, seq, TimerAction::Proc(tid));
        st.procs.get_mut(&tid).expect("current proc missing").status = Status::Blocked("sleep");
        #[cfg(feature = "audit")]
        {
            self.race_protected(&mut st, Loc::TimerHeap, AccessKind::Write, "sleep.arm");
            if let Some(d) = st.race.as_deref_mut() {
                d.release(race_task(), SyncId::Timer(seq));
            }
        }
        self.block_current(st, tid);
    }

    /// Blocks the caller for the given simulated duration. Unlike
    /// [`Sim::advance`] this does not consume CPU: it models waiting for a
    /// device, not computing.
    pub fn sleep(&self, dur: Cycles) {
        let deadline = self.lock_state().now + dur;
        self.sleep_until(deadline);
    }

    /// Allocates a new wait queue.
    pub fn new_queue(&self) -> WaitId {
        let mut st = self.lock_state();
        let id = st.next_wait;
        st.next_wait += 1;
        st.queues.insert(id, VecDeque::new());
        WaitId(id)
    }

    /// Blocks the caller on a wait queue until another process wakes it.
    ///
    /// `reason` appears in deadlock diagnostics. Because processes run
    /// atomically between blocking calls, the classic lost-wakeup race
    /// cannot occur: check your condition, then call `wait_on`.
    pub fn wait_on(&self, q: WaitId, reason: &'static str) {
        let tid = current_tid();
        let mut st = self.lock_state();
        st.queues
            .get_mut(&q.0)
            .expect("wait queue does not exist")
            .push_back(Waiter::Thread(tid));
        st.procs.get_mut(&tid).expect("current proc missing").status = Status::Blocked(reason);
        #[cfg(feature = "audit")]
        self.race_protected(&mut st, Loc::WaitQueue(q.0), AccessKind::Write, "wait.enqueue");
        self.block_current(st, tid);
    }

    /// Like [`Sim::wait_on`] but gives up after `timeout`: returns `true`
    /// if woken by [`Sim::wakeup_one`]/[`Sim::wakeup_all`], `false` on
    /// timeout (in which case the caller is no longer on the queue).
    pub fn wait_on_timeout(&self, q: WaitId, timeout: Cycles, reason: &'static str) -> bool {
        let tid = current_tid();
        let mut st = self.lock_state();
        st.queues
            .get_mut(&q.0)
            .expect("wait queue does not exist")
            .push_back(Waiter::Thread(tid));
        let proc = st.procs.get_mut(&tid).expect("current proc missing");
        proc.status = Status::Blocked(reason);
        // The generation this block will run under (block_current bumps).
        let gen = proc.block_gen + 1;
        let at = st.now + timeout;
        let seq = st.timer_seq;
        st.timer_seq += 1;
        st.timers.insert(at, seq, TimerAction::ProcGen(tid, gen, q.0));
        #[cfg(feature = "audit")]
        {
            self.race_protected(&mut st, Loc::WaitQueue(q.0), AccessKind::Write, "wait.enqueue");
            self.race_protected(&mut st, Loc::TimerHeap, AccessKind::Write, "wait.arm-timeout");
            if let Some(d) = st.race.as_deref_mut() {
                d.release(race_task(), SyncId::Timer(seq));
            }
        }
        self.block_current(st, tid);
        // Back awake: the timer handler flags timeouts (and has already
        // removed us from the queue); a real wakeup popped us normally.
        let mut st = self.lock_state();
        let proc = st.procs.get_mut(&tid).expect("current proc missing");
        let timed_out = std::mem::take(&mut proc.timed_out);
        !timed_out
    }

    /// Blocks on *several* queues at once (the `select(2)` primitive):
    /// returns the index of the queue whose wakeup fired, or `None` on
    /// timeout. Entries left on the other queues are skipped lazily by
    /// later wakeups.
    pub fn wait_on_any(
        &self,
        qs: &[WaitId],
        timeout: Option<Cycles>,
        reason: &'static str,
    ) -> Option<usize> {
        assert!(!qs.is_empty(), "wait_on_any needs at least one queue");
        let tid = current_tid();
        let mut st = self.lock_state();
        for q in qs {
            st.queues
                .get_mut(&q.0)
                .expect("wait queue does not exist")
                .push_back(Waiter::Thread(tid));
        }
        let proc = st.procs.get_mut(&tid).expect("current proc missing");
        proc.status = Status::Blocked(reason);
        if let Some(t) = timeout {
            let gen = proc.block_gen + 1;
            let at = st.now + t;
            let seq = st.timer_seq;
            st.timer_seq += 1;
            // The timer removes us from the *first* queue; the lazy skip
            // handles the rest.
            st.timers.insert(at, seq, TimerAction::ProcGen(tid, gen, qs[0].0));
            #[cfg(feature = "audit")]
            {
                self.race_protected(&mut st, Loc::TimerHeap, AccessKind::Write, "select.arm");
                if let Some(d) = st.race.as_deref_mut() {
                    d.release(race_task(), SyncId::Timer(seq));
                }
            }
        }
        #[cfg(feature = "audit")]
        for q in qs {
            self.race_protected(&mut st, Loc::WaitQueue(q.0), AccessKind::Write, "select.enqueue");
        }
        self.block_current(st, tid);
        // The waker (or the timeout handler) recorded how we were woken;
        // clean our leftover entries off every queue.
        let mut st = self.lock_state();
        let (timed_out, woken_q) = {
            let proc = st.procs.get_mut(&tid).expect("current proc missing");
            (
                std::mem::take(&mut proc.timed_out),
                std::mem::take(&mut proc.woken_by),
            )
        };
        for q in qs {
            if let Some(queue) = st.queues.get_mut(&q.0) {
                queue.retain(|w| *w != Waiter::Thread(tid));
            }
            #[cfg(feature = "audit")]
            self.race_protected(&mut st, Loc::WaitQueue(q.0), AccessKind::Write, "select.cleanup");
        }
        if timed_out {
            None
        } else {
            qs.iter().position(|q| Some(q.0) == woken_q)
        }
    }

    /// Wakes the longest-waiting process on the queue, if any. Returns
    /// whether a process was woken. Does not yield the baton.
    pub fn wakeup_one(&self, q: WaitId) -> bool {
        let mut st = self.lock_state();
        let woke = self.wake_from_queue_locked(&mut st, q.0, WakeCause::Signal);
        #[cfg(feature = "audit")]
        if !woke {
            let now = st.now;
            st.audit.empty_signals.insert(q.0, now);
        }
        woke
    }

    /// Wakes every process on the queue. Returns how many were woken.
    pub fn wakeup_all(&self, q: WaitId) -> usize {
        let mut st = self.lock_state();
        let mut n = 0;
        while self.wake_from_queue_locked(&mut st, q.0, WakeCause::Signal) {
            n += 1;
        }
        #[cfg(feature = "audit")]
        if n == 0 {
            let now = st.now;
            st.audit.empty_signals.insert(q.0, now);
        }
        n
    }

    /// Schedules a wakeup of one waiter on `q` at simulated time `at`.
    pub fn wakeup_one_at(&self, q: WaitId, at: Cycles) {
        let mut st = self.lock_state();
        let seq = st.timer_seq;
        st.timer_seq += 1;
        st.timers.insert(at, seq, TimerAction::QueueOne(q.0));
        #[cfg(feature = "audit")]
        {
            self.race_protected(&mut st, Loc::TimerHeap, AccessKind::Write, "wakeup-at.arm");
            if let Some(d) = st.race.as_deref_mut() {
                d.release(race_task(), SyncId::Timer(seq));
            }
        }
    }

    /// Schedules a wakeup of every waiter on `q` at simulated time `at`.
    pub fn wakeup_all_at(&self, q: WaitId, at: Cycles) {
        let mut st = self.lock_state();
        let seq = st.timer_seq;
        st.timer_seq += 1;
        st.timers.insert(at, seq, TimerAction::QueueAll(q.0));
        #[cfg(feature = "audit")]
        {
            self.race_protected(&mut st, Loc::TimerHeap, AccessKind::Write, "wakeup-all-at.arm");
            if let Some(d) = st.race.as_deref_mut() {
                d.release(race_task(), SyncId::Timer(seq));
            }
        }
    }

    /// Number of processes currently blocked on the queue.
    pub fn waiters(&self, q: WaitId) -> usize {
        self.lock_state()
            .queues
            .get(&q.0)
            .map_or(0, |d| d.len())
    }

    /// The tid of the calling simulated process.
    ///
    /// # Panics
    ///
    /// Panics when called from a thread that is not a simulated process.
    pub fn current(&self) -> Tid {
        current_tid()
    }

    /// Total CPU cycles charged while `tid` held the baton (its rusage).
    /// Returns zero for unknown tids.
    #[must_use]
    pub fn proc_cpu(&self, tid: Tid) -> Cycles {
        self.lock_state()
            .procs
            .get(&tid)
            .map_or(Cycles::ZERO, |p| p.cpu)
    }

    /// Number of dispatches (context switches) the engine has performed —
    /// the event counting the paper's Section 13 wishes for.
    pub fn dispatch_count(&self) -> u64 {
        self.lock_state().dispatches
    }

    // ------------------------------------------------------------------
    // Lite-scheduler plumbing (see `crate::lite`). A lite scheduler is
    // an ordinary engine process that multiplexes thousands of
    // cooperative state machines; these hooks let engine wait queues
    // deliver wakeups to it as mailbox tokens instead of baton handoffs.
    // ------------------------------------------------------------------

    /// Registers the calling engine process as a lite scheduler whose
    /// host thread parks on `doorbell`.
    pub(crate) fn register_lite_sched(&self, doorbell: WaitId) {
        let tid = current_tid();
        let mut st = self.lock_state();
        let prev = st.lite.insert(
            tid,
            LiteSched {
                doorbell: doorbell.0,
                mailbox: Vec::new(),
                waiting: BTreeMap::new(),
            },
        );
        assert!(prev.is_none(), "process is already a lite scheduler");
    }

    /// Unregisters the calling lite scheduler (its drive loop returned).
    pub(crate) fn unregister_lite_sched(&self) {
        let tid = current_tid();
        self.lock_state().lite.remove(&tid);
    }

    /// Parks lite-process `token` of the calling scheduler on engine wait
    /// queue `q`. The next `wakeup_one`/`wakeup_all` on `q` that reaches
    /// this entry pushes `token` into the scheduler's mailbox and rings
    /// its doorbell — no host thread blocks.
    pub(crate) fn lite_wait_enqueue(&self, q: u64, token: u64, reason: &'static str) {
        let tid = current_tid();
        let mut st = self.lock_state();
        let ls = st
            .lite
            .get_mut(&tid)
            .expect("lite_wait_enqueue from a non-scheduler process");
        let prev = ls.waiting.insert(token, reason);
        assert!(prev.is_none(), "lite process is already parked on a queue");
        st.queues
            .get_mut(&q)
            .expect("wait queue does not exist")
            .push_back(Waiter::Lite { sched: tid, token });
    }

    /// Cancels a not-yet-delivered lite wait token of the calling
    /// scheduler — an `Any` waiter that was resumed through a sibling
    /// queue or its deadline no longer wants the other queues' signals.
    /// The queue entries themselves stay put; `wake_from_queue_locked`
    /// skips cancelled tokens lazily, exactly as it skips a threaded
    /// `wait_on_any` waiter already woken through another queue.
    /// Returns whether the token was still armed.
    pub(crate) fn lite_wait_cancel(&self, token: u64) -> bool {
        let tid = current_tid();
        let mut st = self.lock_state();
        st.lite
            .get_mut(&tid)
            .is_some_and(|ls| ls.waiting.remove(&token).is_some())
    }

    /// Drains the calling scheduler's mailbox: tokens whose wakeups have
    /// been delivered since the last drain, in delivery order.
    pub(crate) fn lite_take_mailbox(&self) -> Vec<u64> {
        let tid = current_tid();
        let mut st = self.lock_state();
        st.lite
            .get_mut(&tid)
            .map_or_else(Vec::new, |ls| std::mem::take(&mut ls.mailbox))
    }

    /// Allocates a fresh pid for a lite process and emits its Spawn
    /// event. Lite pids share the engine's tid namespace so traces stay
    /// unambiguous, but no `Proc` entry (and no host thread) backs them.
    pub(crate) fn alloc_lite_pid(&self, name: &str) -> u32 {
        let mut st = self.lock_state();
        let pid = st.next_tid;
        st.next_tid += 1;
        if self.inner.tracer.is_enabled() {
            self.inner.tracer.record(Event {
                t: st.now.0,
                pid,
                kind: EventKind::Spawn(name.to_string()),
            });
        }
        pid
    }

    /// Number of engine processes currently queued runnable (excludes
    /// the caller). Lite schedulers use this to decide whether yielding
    /// the baton between polls would actually let anyone else run.
    pub(crate) fn runnable_procs(&self) -> usize {
        self.lock_state().policy.runnable()
    }

    // ------------------------------------------------------------------
    // Dynamic audit hooks (SimMutex lock-order graph). No-ops without
    // the `audit` feature.
    // ------------------------------------------------------------------

    /// Records that the current process is about to acquire the
    /// SimMutex backed by wait queue `q`: every lock it already holds
    /// gains an edge `held -> q` in the lock-order graph, and the
    /// simulation fails loudly if the reverse order was ever observed —
    /// the deadlock exists even if this run's interleaving dodges it.
    pub(crate) fn audit_mutex_acquiring(&self, q: WaitId) {
        #[cfg(feature = "audit")]
        {
            let Some(tid) = CURRENT.with(|c| c.get()) else {
                return;
            };
            let mut st = self.lock_state();
            let name = st.procs[&tid].name.clone();
            let held = st.audit.held_locks.get(&tid).cloned().unwrap_or_default();
            for h in held {
                let known = h == q.0
                    || st
                        .audit
                        .lock_edges
                        .get(&h)
                        .is_some_and(|m| m.contains_key(&q.0));
                if known {
                    continue;
                }
                if st.audit.reaches(q.0, h) {
                    let path = st.audit.path(q.0, h);
                    let chain: Vec<String> =
                        path.iter().map(|id| format!("mutex#{id}")).collect();
                    drop(st);
                    panic!(
                        "audit: lock-order violation: process {name} acquires mutex#{} \
                         while holding mutex#{h}, but the order {} is already \
                         established; a deadlock is one interleaving away",
                        q.0,
                        chain.join(" -> "),
                    );
                }
                st.audit
                    .lock_edges
                    .entry(h)
                    .or_default()
                    .insert(q.0, name.clone());
            }
        }
        #[cfg(not(feature = "audit"))]
        let _ = q;
    }

    /// Records that the current process now holds the SimMutex backed
    /// by queue `q`.
    pub(crate) fn audit_mutex_acquired(&self, q: WaitId) {
        #[cfg(feature = "audit")]
        {
            let Some(tid) = CURRENT.with(|c| c.get()) else {
                return;
            };
            let mut st = self.lock_state();
            st.audit.held_locks.entry(tid).or_default().push(q.0);
            if let Some(d) = st.race.as_deref_mut() {
                d.acquire(tid.0, SyncId::Lock(q.0));
            }
        }
        #[cfg(not(feature = "audit"))]
        let _ = q;
    }

    /// Records that the current process released the SimMutex backed by
    /// queue `q`.
    pub(crate) fn audit_mutex_released(&self, q: WaitId) {
        #[cfg(feature = "audit")]
        {
            let Some(tid) = CURRENT.with(|c| c.get()) else {
                return;
            };
            let mut st = self.lock_state();
            if let Some(held) = st.audit.held_locks.get_mut(&tid) {
                if let Some(pos) = held.iter().rposition(|id| *id == q.0) {
                    held.remove(pos);
                }
            }
            if let Some(d) = st.race.as_deref_mut() {
                d.release(tid.0, SyncId::Lock(q.0));
            }
        }
        #[cfg(not(feature = "audit"))]
        let _ = q;
    }

    // ------------------------------------------------------------------
    // Happens-before race detection (`tnt_sim::race`). The detector
    // rides the `audit` feature: without it every entry point below is
    // a compiled-out no-op returning `false`/nothing.
    // ------------------------------------------------------------------

    /// Arms the happens-before race detector for this simulation.
    /// Returns whether a detector is now armed (`false` when the
    /// `audit` feature is compiled out). Arm before spawning; procs
    /// spawned earlier are conservatively ordered behind the host.
    /// Armed, every unordered same-location access pair panics the
    /// simulation with both accesses' stacks-of-record. Detection is
    /// pure metadata: it consumes no simulation RNG and never moves the
    /// simulated clock.
    #[cfg(feature = "audit")]
    pub fn arm_race_detector(&self) -> bool {
        let mut st = self.lock_state();
        if st.race.is_none() {
            let mut d = Box::new(Detector::new());
            let tids: Vec<u32> = st.procs.keys().map(|t| t.0).collect();
            for t in tids {
                d.task_start(t, 0);
            }
            st.race = Some(d);
        }
        true
    }

    /// Without the `audit` feature the detector does not exist; arming
    /// reports `false` and costs nothing.
    #[cfg(not(feature = "audit"))]
    pub fn arm_race_detector(&self) -> bool {
        false
    }

    /// Whether the happens-before detector is armed on this simulation.
    pub fn race_armed(&self) -> bool {
        #[cfg(feature = "audit")]
        {
            self.lock_state().race.is_some()
        }
        #[cfg(not(feature = "audit"))]
        false
    }

    /// Records a read of the named shared location on the calling
    /// task's behalf. No-op unless the detector is armed; panics if the
    /// read is unordered with another task's write of the location.
    /// Models built on the engine sprinkle these on state shared across
    /// simulated processes to prove their synchronization covers it.
    pub fn race_read(&self, name: &'static str, key: u64) {
        #[cfg(feature = "audit")]
        self.race_user_access(name, key, AccessKind::Read);
        #[cfg(not(feature = "audit"))]
        let _ = (name, key);
    }

    /// Records a write of the named shared location; see
    /// [`Sim::race_read`].
    pub fn race_write(&self, name: &'static str, key: u64) {
        #[cfg(feature = "audit")]
        self.race_user_access(name, key, AccessKind::Write);
        #[cfg(not(feature = "audit"))]
        let _ = (name, key);
    }

    #[cfg(feature = "audit")]
    fn race_user_access(&self, name: &'static str, key: u64, kind: AccessKind) {
        let mut st = self.lock_state();
        if st.race.is_none() {
            return;
        }
        let info = race_info(&st, name);
        if let Some(d) = st.race.as_mut() {
            if let Some(race) = d.access(Loc::Named(name, key), kind, info) {
                drop(st);
                panic!("audit: {race}");
            }
        }
    }

    /// Drains the per-slice footprints the armed detector has gathered
    /// — the schedule explorer's independence oracle. Empty when the
    /// detector is not armed.
    #[cfg(feature = "audit")]
    pub fn race_footprints(&self) -> Vec<((u32, u32), tnt_race::Footprint)> {
        self.lock_state()
            .race
            .as_mut()
            .map_or_else(Vec::new, |d| d.take_footprints())
    }

    /// A channel operation on the channel keyed by `id`: acquire then
    /// release of the channel's sync var, totally ordering all
    /// operations on one channel (the model of the host mutex guarding
    /// its buffer).
    #[cfg(feature = "audit")]
    pub(crate) fn race_channel_op(&self, id: u64) {
        let mut st = self.lock_state();
        if st.race.is_none() {
            return;
        }
        let task = race_task();
        if let Some(d) = st.race.as_mut() {
            d.acquire(task, SyncId::Channel(id));
            d.release(task, SyncId::Channel(id));
        }
    }

    #[cfg(not(feature = "audit"))]
    pub(crate) fn race_channel_op(&self, _id: u64) {}

    /// A disciplined access to an engine-internal structure: bracketed
    /// in the structure's internal sync var so by-design accesses never
    /// race. Panics on the races only a discipline-skipping mutant (or
    /// regression) can produce.
    #[cfg(feature = "audit")]
    fn race_protected(&self, st: &mut State, loc: Loc, kind: AccessKind, site: &'static str) {
        if st.race.is_none() {
            return;
        }
        let info = race_info(st, site);
        if let Some(d) = st.race.as_mut() {
            if let Some(race) = d.protected_access(loc, kind, info) {
                panic!("audit: {race}");
            }
        }
    }

    /// A raw, discipline-free access (the unlocked-ring-write mutant's
    /// code path).
    #[cfg(feature = "audit")]
    fn race_raw(&self, st: &mut State, loc: Loc, kind: AccessKind, site: &'static str) {
        if st.race.is_none() {
            return;
        }
        let info = race_info(st, site);
        if let Some(d) = st.race.as_mut() {
            if let Some(race) = d.access(loc, kind, info) {
                panic!("audit: {race}");
            }
        }
    }

    /// Enables a planted bug for this simulation (unit tests only).
    #[cfg(test)]
    pub(crate) fn set_mutant(&self, bit: u8) {
        self.inner
            .mutants_armed
            .store(true, std::sync::atomic::Ordering::Relaxed);
        self.lock_state().mutants |= bit;
    }

    /// Whether a planted bug is enabled; constant `false` outside unit
    /// tests, so mutant branches cost nothing in production.
    #[cfg(test)]
    pub(crate) fn mutant_enabled(&self, bit: u8) -> bool {
        self.lock_state().mutants & bit != 0
    }

    #[cfg(not(test))]
    #[inline]
    pub(crate) fn mutant_enabled(&self, _bit: u8) -> bool {
        false
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    /// Marks the caller blocked (status must already be set), dispatches
    /// the next process, releases the lock, and parks until woken.
    fn block_current(&self, mut st: parking_lot::MutexGuard<'_, State>, tid: Tid) {
        assert!(
            !IN_LITE_POLL.with(|c| c.get()),
            "a lite process called a blocking engine primitive from inside poll(); \
             lite processes block by returning Step::Block, never by parking the \
             host thread"
        );
        #[cfg(feature = "audit")]
        {
            let held = crate::audit::held_host_guards();
            if !held.is_empty() {
                let name = st.procs[&tid].name.clone();
                drop(st);
                panic!(
                    "audit: host lock guard(s) {held:?} held across a baton handoff by \
                     process {name}; host mutexes must be released before any blocking \
                     call (use SimMutex for cross-block mutual exclusion)"
                );
            }
        }
        st.procs
            .get_mut(&tid)
            .expect("current proc missing")
            .block_gen += 1;
        let parker = st.procs[&tid].parker.clone();
        st.current = None;
        self.dispatch_locked(&mut st);
        drop(st);
        match parker.park() {
            Wake::Run => {}
            Wake::Kill => panic::panic_any(SimKilled),
        }
    }

    /// Picks and unparks the next runnable process, advancing the clock
    /// through the timer queue while the system is idle. Detects
    /// termination and deadlock.
    fn dispatch_locked(&self, st: &mut State) {
        loop {
            if st.finished {
                return;
            }
            let pick = {
                let State {
                    policy,
                    rng,
                    live,
                    now,
                    ..
                } = st;
                let mut env = DispatchEnv {
                    nlive: *live,
                    now: *now,
                    rng,
                };
                policy.pick(&mut env)
            };
            if let Some(Pick { tid, cost }) = pick {
                st.dispatches += 1;
                st.now += cost;
                self.inner.tracer.count(Counter::Dispatches, 1);
                if self.inner.tracer.is_enabled() {
                    self.inner.tracer.record(Event {
                        t: st.now.0,
                        pid: tid.0,
                        kind: EventKind::Dispatch { cy: cost.0 },
                    });
                }
                let proc = st.procs.get_mut(&tid).expect("picked proc missing");
                debug_assert_eq!(proc.status, Status::Runnable, "picked a non-runnable proc");
                proc.status = Status::Running;
                st.current = Some(tid);
                #[cfg(feature = "audit")]
                {
                    self.race_protected(st, Loc::RunQueue, AccessKind::Write, "dispatch.pick");
                    if let Some(d) = st.race.as_deref_mut() {
                        d.slice_begin(tid.0);
                    }
                }
                let proc = st.procs.get_mut(&tid).expect("picked proc missing");
                proc.parker.unpark(Wake::Run);
                return;
            }
            if let Some((at, seq, action)) = st.timers.pop_earliest() {
                if at > st.now {
                    // The system is idle until the next timer: jump the
                    // clock and let the tracer attribute the gap to the
                    // best open wait span (disk phase, ack delay, ...).
                    let idle = at.0 - st.now.0;
                    st.now = at;
                    if self.inner.tracer.is_enabled() {
                        self.inner.tracer.record(Event {
                            t: st.now.0,
                            pid: 0,
                            kind: EventKind::Idle { cy: idle },
                        });
                    }
                }
                if let Some((seq2, action2)) = self.mutant_steal_tie(st, at) {
                    self.fire_locked(st, seq2, action2);
                }
                self.fire_locked(st, seq, action);
                continue;
            }
            st.finished = true;
            if st.live > 0 {
                // `procs` is a BTreeMap, so this diagnostic is stable
                // across runs (it used to vary with the hasher).
                let blocked: Vec<String> = st
                    .procs
                    .iter()
                    .filter_map(|(tid, p)| match p.status {
                        Status::Blocked(r) => Some(format!(
                            "{} ({r}){}{}",
                            p.name,
                            lite_wait_hint(st, *tid),
                            lost_wakeup_hint(st, *tid)
                        )),
                        _ => None,
                    })
                    .collect();
                st.error = Some(SimError::Deadlock(format!(
                    "{} live processes, none runnable: [{}]",
                    st.live,
                    blocked.join(", ")
                )));
            }
            self.inner.done.notify_all();
            return;
        }
    }

    /// Planted bug (`MUTANT_TIMER_TIE_REORDER`): when the next timer on
    /// the wheel is due at the same instant as the one just popped, steal
    /// it so it fires first — inverting the `(at, seq)` FIFO tie-break
    /// that makes equal-instant timers deterministic.
    fn mutant_steal_tie(&self, st: &mut State, at: Cycles) -> Option<(u64, TimerAction)> {
        if !mutant_on(st, MUTANT_TIMER_TIE_REORDER) {
            return None;
        }
        if st.timers.peek_at() == Some(at) {
            let (_, seq, action) = st.timers.pop_earliest().expect("peeked timer vanished");
            return Some((seq, action));
        }
        None
    }

    fn fire_locked(&self, st: &mut State, seq: u64, action: TimerAction) {
        #[cfg(not(feature = "audit"))]
        let _ = seq;
        #[cfg(feature = "audit")]
        self.race_protected(st, Loc::TimerHeap, AccessKind::Write, "timer.pop");
        match action {
            TimerAction::Proc(tid) => {
                if let Some(proc) = st.procs.get_mut(&tid) {
                    if matches!(proc.status, Status::Blocked(_)) {
                        proc.status = Status::Runnable;
                        let tag = proc.tag;
                        st.policy.enqueue(tid, tag);
                        #[cfg(feature = "audit")]
                        {
                            if let Some(d) = st.race.as_deref_mut() {
                                d.wake_edge(WakeSrc::Timer(seq), tid.0);
                            }
                            self.race_protected(
                                st,
                                Loc::RunQueue,
                                AccessKind::Write,
                                "timer.wake",
                            );
                        }
                    }
                }
            }
            TimerAction::ProcGen(tid, gen, q) => {
                let stale = match st.procs.get(&tid) {
                    Some(p) => p.block_gen != gen || !matches!(p.status, Status::Blocked(_)),
                    None => true,
                };
                if !stale {
                    if let Some(queue) = st.queues.get_mut(&q) {
                        queue.retain(|w| *w != Waiter::Thread(tid));
                    }
                    let proc = st.procs.get_mut(&tid).expect("checked above");
                    proc.status = Status::Runnable;
                    proc.timed_out = true;
                    let tag = proc.tag;
                    st.policy.enqueue(tid, tag);
                    #[cfg(feature = "audit")]
                    {
                        if let Some(d) = st.race.as_deref_mut() {
                            d.wake_edge(WakeSrc::Timer(seq), tid.0);
                        }
                        self.race_protected(
                            st,
                            Loc::WaitQueue(q),
                            AccessKind::Write,
                            "timeout.dequeue",
                        );
                        self.race_protected(st, Loc::RunQueue, AccessKind::Write, "timeout.wake");
                    }
                }
            }
            TimerAction::QueueOne(q) => {
                let woke = self.wake_from_queue_locked(st, q, WakeCause::Timer(seq));
                #[cfg(feature = "audit")]
                if !woke {
                    st.audit.empty_signals.insert(q, st.now);
                }
                let _ = woke;
            }
            TimerAction::QueueAll(q) => {
                let mut n = 0;
                while self.wake_from_queue_locked(st, q, WakeCause::Timer(seq)) {
                    n += 1;
                }
                #[cfg(feature = "audit")]
                if n == 0 {
                    st.audit.empty_signals.insert(q, st.now);
                }
                let _ = n;
            }
        }
    }

    fn wake_from_queue_locked(&self, st: &mut State, q: u64, cause: WakeCause) -> bool {
        #[cfg(not(feature = "audit"))]
        let _ = cause;
        loop {
            let waiter = match st.queues.get_mut(&q).and_then(|d| d.pop_front()) {
                Some(w) => w,
                None => return false,
            };
            #[cfg(feature = "audit")]
            self.race_protected(st, Loc::WaitQueue(q), AccessKind::Write, "wake.dequeue");
            match waiter {
                Waiter::Thread(tid) => {
                    let proc = st.procs.get_mut(&tid).expect("queued proc missing");
                    // Skip stale entries: a proc that waited on several
                    // queues (`wait_on_any`) was already woken through
                    // another of them.
                    if !matches!(proc.status, Status::Blocked(_)) {
                        continue;
                    }
                    proc.status = Status::Runnable;
                    proc.woken_by = Some(q);
                    let tag = proc.tag;
                    st.policy.enqueue(tid, tag);
                    #[cfg(feature = "audit")]
                    {
                        if let Some(d) = st.race.as_deref_mut() {
                            d.wake_edge(cause.src(), tid.0);
                        }
                        self.race_protected(st, Loc::RunQueue, AccessKind::Write, "wake.enqueue");
                    }
                    // A delivered signal supersedes any earlier
                    // into-the-void signal on this queue.
                    #[cfg(feature = "audit")]
                    st.audit.empty_signals.remove(&q);
                    return true;
                }
                Waiter::Lite { sched, token } => {
                    // Deliver the token to the scheduler's mailbox. A
                    // scheduler that unregistered, or a token already
                    // cancelled (lite proc woken via another path), is
                    // stale — keep popping.
                    let Some(ls) = st.lite.get_mut(&sched) else {
                        continue;
                    };
                    if ls.waiting.remove(&token).is_none() {
                        continue;
                    }
                    ls.mailbox.push(token);
                    let doorbell = ls.doorbell;
                    // The waker's clock reaches the *scheduler*: lite
                    // procs run sequentially inside its engine slot, so
                    // the scheduler's task is the unit of ordering.
                    #[cfg(feature = "audit")]
                    if let Some(d) = st.race.as_deref_mut() {
                        d.wake_edge(cause.src(), sched.0);
                    }
                    // Ring the scheduler's doorbell so its host thread
                    // (if parked) becomes runnable. The doorbell queue
                    // only ever holds Thread waiters, so this recursion
                    // is depth-1. Planted bug (`MUTANT_DROP_DOORBELL`):
                    // deliver the token but skip the ring — the mailbox
                    // fills while the scheduler sleeps forever.
                    if !mutant_on(st, MUTANT_DROP_DOORBELL) {
                        self.wake_from_queue_locked(st, doorbell, cause);
                    }
                    #[cfg(feature = "audit")]
                    st.audit.empty_signals.remove(&q);
                    return true;
                }
            }
        }
    }

    fn on_exit(&self, tid: Tid) {
        let mut st = self.lock_state();
        let proc = st.procs.get_mut(&tid).expect("exiting proc missing");
        proc.status = Status::Exited;
        st.live -= 1;
        st.current = None;
        st.policy.forget(tid);
        self.dispatch_locked(&mut st);
    }

    fn on_panic(&self, _tid: Tid, msg: String) {
        let mut st = self.lock_state();
        if st.error.is_none() {
            st.error = Some(SimError::ProcPanic(msg));
        }
        st.finished = true;
        self.inner.done.notify_all();
    }

    /// Destroys any remaining processes and joins all threads.
    fn shutdown(&self) {
        {
            let mut st = self.lock_state();
            st.shutting_down = true;
            for proc in st.procs.values() {
                if proc.status != Status::Exited {
                    proc.parker.unpark(Wake::Kill);
                }
            }
        }
        let threads = std::mem::take(&mut *self.inner.threads.lock());
        for handle in threads {
            let _ = handle.join();
        }
    }
}

/// For a blocked lite scheduler, summarises what its lite processes are
/// waiting for — a deadlock involving lite procs would otherwise show
/// only an opaque scheduler parked on its doorbell.
fn lite_wait_hint(st: &State, tid: Tid) -> String {
    let Some(ls) = st.lite.get(&tid) else {
        return String::new();
    };
    if ls.waiting.is_empty() {
        return String::new();
    }
    let mut by_reason: BTreeMap<&'static str, usize> = BTreeMap::new();
    for reason in ls.waiting.values() {
        *by_reason.entry(reason).or_insert(0) += 1;
    }
    let parts: Vec<String> = by_reason
        .iter()
        .map(|(r, n)| format!("{r} x{n}"))
        .collect();
    format!(
        " [{} lite proc(s) waiting: {}]",
        ls.waiting.len(),
        parts.join(", ")
    )
}

/// Builds the lost-wakeup diagnosis for a blocked process: names every
/// queue it waits on whose most recent signal found zero waiters — the
/// classic signal-before-wait race, surfaced at deadlock time.
#[cfg(feature = "audit")]
fn lost_wakeup_hint(st: &State, tid: Tid) -> String {
    let mut hints = Vec::new();
    for (q, waiters) in &st.queues {
        if waiters.iter().any(|w| *w == Waiter::Thread(tid)) {
            if let Some(at) = st.audit.empty_signals.get(q) {
                hints.push(format!(
                    " [possible lost wakeup: queue {q} was last signalled at t={} with no \
                     waiters]",
                    at.0
                ));
            }
        }
    }
    hints.concat()
}

#[cfg(not(feature = "audit"))]
fn lost_wakeup_hint(_st: &State, _tid: Tid) -> String {
    String::new()
}

fn current_tid() -> Tid {
    CURRENT
        .with(|c| c.get())
        .expect("this operation must be called from a simulated process")
}

/// The detector's task id for the calling thread: the engine tid, or 0
/// for the host. Lite processes attribute to their scheduler's slot —
/// they are sequential within it, so the attribution is exact.
#[cfg(feature = "audit")]
fn race_task() -> u32 {
    CURRENT.with(|c| c.get()).map_or(0, |t| t.0)
}

/// Why a waiter is being woken: a direct signal from the running
/// context, or a timer identified by its arming sequence number. The
/// detector turns this into the happens-before edge source — the waker's
/// clock for signals, the *armer's* clock for timers (the task driving
/// the simulated clock forward did not order the wakeup).
#[derive(Clone, Copy)]
#[cfg_attr(not(feature = "audit"), allow(dead_code))]
enum WakeCause {
    Signal,
    Timer(u64),
}

#[cfg(feature = "audit")]
impl WakeCause {
    fn src(self) -> WakeSrc {
        match self {
            WakeCause::Signal => WakeSrc::Task(race_task()),
            WakeCause::Timer(seq) => WakeSrc::Timer(seq),
        }
    }
}

/// The stack-of-record for an access by the calling thread: task, the
/// trace pid (a polled lite process overrides its scheduler's tid), the
/// dispatch index, and the code site.
#[cfg(feature = "audit")]
fn race_info(st: &State, site: &'static str) -> AccessInfo {
    AccessInfo {
        task: race_task(),
        pid: LITE_PID
            .with(|c| c.get())
            .or_else(|| CURRENT.with(|c| c.get()).map(|t| t.0))
            .unwrap_or(0),
        dispatch: st.dispatches,
        site,
    }
}

/// RAII guard for an open attribution span; see [`Sim::span`]. Dropping
/// records the matching exit event (when tracing was enabled at entry).
pub struct TraceSpan<'a> {
    sim: &'a Sim,
    class: Class,
    armed: bool,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        if self.armed {
            let (t, pid) = self.sim.stamp();
            self.sim.inner.tracer.record(Event {
                t,
                pid,
                kind: EventKind::Exit(self.class),
            });
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FifoPolicy;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fifo_sim(seed: u64) -> Sim {
        Sim::new(Box::new(FifoPolicy::new()), SimConfig { seed, ..SimConfig::default() })
    }

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let sim = fifo_sim(0);
        assert_eq!(sim.run().unwrap(), Cycles::ZERO);
    }

    #[test]
    fn single_process_advances_clock() {
        let sim = fifo_sim(0);
        sim.spawn("worker", |s| {
            s.advance(Cycles(100));
            s.advance(Cycles(23));
        });
        assert_eq!(sim.run().unwrap(), Cycles(123));
    }

    #[test]
    fn sleep_jumps_idle_clock() {
        let sim = fifo_sim(0);
        sim.spawn("sleeper", |s| {
            s.sleep(Cycles::from_millis(14.0));
            s.advance(Cycles(5));
        });
        assert_eq!(sim.run().unwrap(), Cycles(1_400_005));
    }

    #[test]
    fn batched_charges_conserve_cycles_exactly() {
        // Property: any interleaving of batched charges (`charge_scaled`),
        // immediate advances, and flush-forcing engine calls (`yield_now`,
        // process exit) conserves cycles bit-for-bit — the final clock is
        // the exact sum of every scaled amount the procs were told they
        // charged. Jitter is on so per-charge scaling/rounding is
        // exercised, not just the factor-1.0 fast path.
        for seed in [1u64, 7, 1996] {
            let sim = Sim::new(
                Box::new(FifoPolicy::new()),
                SimConfig {
                    seed,
                    jitter: 0.08,
                    ..SimConfig::default()
                },
            );
            let total = Arc::new(AtomicU64::new(0));
            for tag in 0..3u64 {
                let total = total.clone();
                sim.spawn(format!("p{tag}"), move |s| {
                    let mut lcg = seed ^ (tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let mut local = 0u64;
                    for _ in 0..200 {
                        lcg = lcg
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let amount = Cycles(lcg >> 56); // 0..=255
                        match (lcg >> 32) % 4 {
                            0 | 1 => local += s.charge_scaled(amount).0,
                            2 => {
                                s.advance(amount); // immediate, unscaled
                                local += amount.0;
                            }
                            _ => {
                                local += s.charge_scaled(amount).0;
                                s.yield_now(); // flush at the handoff
                            }
                        }
                    }
                    total.fetch_add(local, Ordering::Relaxed);
                });
            }
            let elapsed = sim.run().unwrap();
            assert_eq!(elapsed.0, total.load(Ordering::Relaxed), "seed {seed}");
        }
    }

    #[test]
    fn same_cycle_timers_fire_in_arm_order() {
        // Permanent regression test for the `(at, seq)` FIFO tie-break:
        // timers armed for the same deadline must fire in arm order, no
        // matter how the timer set is implemented (heap then, wheel now).
        // The x-timer-tie mutant exists to break exactly this.
        let sim = fifo_sim(0);
        let order = Arc::new(Mutex::new(Vec::new()));
        for name in ["first", "second", "third", "fourth"] {
            let order = order.clone();
            // Spawn order is arm order: each proc arms its wakeup for the
            // identical instant as soon as it first runs.
            sim.spawn(name, move |s| {
                s.sleep_until(Cycles(10_000));
                order.lock().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn two_processes_serialize_cpu() {
        let sim = fifo_sim(0);
        for name in ["a", "b"] {
            sim.spawn(name, |s| {
                for _ in 0..10 {
                    s.advance(Cycles(10));
                    s.yield_now();
                }
            });
        }
        // CPU time serialises: 2 procs x 10 iterations x 10 cycles.
        assert_eq!(sim.run().unwrap(), Cycles(200));
    }

    #[test]
    fn sleeping_overlaps_with_computing() {
        // One proc sleeps (device wait) while the other computes; the total
        // is max, not sum.
        let sim = fifo_sim(0);
        sim.spawn("sleeper", |s| s.sleep(Cycles(1_000)));
        sim.spawn("cruncher", |s| s.advance(Cycles(400)));
        assert_eq!(sim.run().unwrap(), Cycles(1_000));
    }

    #[test]
    fn wait_and_wakeup_round_trip() {
        let sim = fifo_sim(0);
        let q = sim.new_queue();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = order.clone();
        sim.spawn("waiter", move |s| {
            o1.lock().push("waiting");
            s.wait_on(q, "test");
            o1.lock().push("woken");
        });
        let o2 = order.clone();
        sim.spawn("waker", move |s| {
            s.advance(Cycles(50));
            o2.lock().push("waking");
            assert!(s.wakeup_one(q));
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["waiting", "waking", "woken"]);
    }

    #[test]
    fn wakeup_one_is_fifo() {
        let sim = fifo_sim(0);
        let q = sim.new_queue();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let o = order.clone();
            sim.spawn(format!("w{i}"), move |s| {
                s.wait_on(q, "fifo");
                o.lock().push(i);
            });
        }
        sim.spawn("waker", move |s| {
            for _ in 0..3 {
                s.wakeup_one(q);
                s.yield_now();
            }
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn deadlock_is_detected() {
        let sim = fifo_sim(0);
        let q = sim.new_queue();
        sim.spawn("stuck", move |s| s.wait_on(q, "never-woken"));
        let err = sim.run().unwrap_err();
        match err {
            SimError::Deadlock(msg) => {
                assert!(msg.contains("stuck") && msg.contains("never-woken"))
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn proc_panic_is_reported() {
        let sim = fifo_sim(0);
        sim.spawn("bad", |_| panic!("boom: {}", 42));
        match sim.run().unwrap_err() {
            SimError::ProcPanic(msg) => assert!(msg.contains("boom: 42")),
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn stop_kills_remaining_processes() {
        let sim = fifo_sim(0);
        let q = sim.new_queue();
        sim.spawn("forever", move |s| s.wait_on(q, "held"));
        sim.spawn("main", |s| {
            s.advance(Cycles(10));
            s.stop();
        });
        assert_eq!(sim.run().unwrap(), Cycles(10));
    }

    #[test]
    fn timers_fire_during_advance() {
        let sim = fifo_sim(0);
        let q = sim.new_queue();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        sim.spawn("waiter", move |s| {
            s.wait_on(q, "timer");
            h.store(s.now().0, Ordering::SeqCst);
        });
        sim.spawn("busy", move |s| {
            s.wakeup_one_at(q, Cycles(100));
            s.advance(Cycles(500)); // The timer fires inside this charge.
        });
        sim.run().unwrap();
        // The waiter was made runnable at t=100 and ran after busy's charge.
        assert_eq!(hits.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn determinism_same_seed_same_clock() {
        let run = |seed| {
            let sim = Sim::new(
                Box::new(FifoPolicy::new()),
                SimConfig { seed, jitter: 0.02, ..SimConfig::default() },
            );
            for i in 0..4 {
                sim.spawn(format!("p{i}"), |s| {
                    for _ in 0..100 {
                        s.charge(Cycles(37));
                        s.yield_now();
                    }
                });
            }
            sim.run().unwrap()
        };
        // Seeds chosen to land in different jitter quantization buckets of
        // the vendored RNG (37cy charges only round to 36/37/38).
        let a = run(7);
        let b = run(7);
        let c = run(9);
        assert_eq!(a, b, "same seed must give identical simulated time");
        assert_ne!(a, c, "different seed should perturb jittered charges");
    }

    #[test]
    fn jitter_zero_is_exact() {
        let sim = fifo_sim(3);
        sim.spawn("p", |s| s.charge(Cycles(1_000)));
        assert_eq!(sim.run().unwrap(), Cycles(1_000));
    }

    #[test]
    fn spawn_from_inside_process() {
        let sim = fifo_sim(0);
        sim.spawn("parent", |s| {
            let before = s.now();
            s.spawn("child", |s2| s2.advance(Cycles(77)));
            s.advance(Cycles(3));
            assert_eq!(s.now(), before + Cycles(3));
        });
        assert_eq!(sim.run().unwrap(), Cycles(80));
    }

    #[test]
    fn per_process_cpu_accounting() {
        let sim = fifo_sim(0);
        let busy = sim.spawn("busy", |s| {
            s.advance(Cycles(700));
            s.sleep(Cycles(10_000)); // Waiting is not CPU.
        });
        let lazy = sim.spawn("lazy", |s| s.advance(Cycles(42)));
        sim.run().unwrap();
        assert_eq!(sim.proc_cpu(busy), Cycles(700));
        assert_eq!(sim.proc_cpu(lazy), Cycles(42));
        assert_eq!(sim.proc_cpu(crate::Tid(999)), Cycles::ZERO);
    }

    #[test]
    fn wait_on_timeout_times_out() {
        let sim = fifo_sim(0);
        let q = sim.new_queue();
        sim.spawn("timed", move |s| {
            let t0 = s.now();
            let woken = s.wait_on_timeout(q, Cycles(5_000), "timed wait");
            assert!(!woken, "nobody woke us");
            assert_eq!(
                s.now() - t0,
                Cycles(5_000),
                "resumed exactly at the deadline"
            );
            assert_eq!(s.waiters(q), 0, "timeout removed us from the queue");
        });
        sim.run().unwrap();
    }

    #[test]
    fn wait_on_timeout_real_wakeup_wins() {
        let sim = fifo_sim(0);
        let q = sim.new_queue();
        sim.spawn("timed", move |s| {
            let woken = s.wait_on_timeout(q, Cycles(1_000_000), "timed wait");
            assert!(woken, "the waker got there first");
            assert!(s.now() < Cycles(1_000_000));
        });
        sim.spawn("waker", move |s| {
            s.advance(Cycles(100));
            s.wakeup_one(q);
        });
        sim.run().unwrap();
    }

    #[test]
    fn stale_timeout_never_wakes_a_later_block() {
        // A proc times out, then blocks again past the old deadline; the
        // expired timer for the first block must not disturb the second.
        let sim = fifo_sim(0);
        let q = sim.new_queue();
        let q2 = sim.new_queue();
        sim.spawn("timed", move |s| {
            assert!(!s.wait_on_timeout(q, Cycles(100), "first"));
            // Second, longer timed wait on another queue.
            let woken = s.wait_on_timeout(q2, Cycles(10_000), "second");
            assert!(!woken);
            assert_eq!(s.now(), Cycles(10_100), "full second timeout elapsed");
        });
        sim.run().unwrap();
    }

    #[test]
    fn wait_on_any_reports_the_waking_queue() {
        let sim = fifo_sim(0);
        let a = sim.new_queue();
        let b = sim.new_queue();
        sim.spawn("selector", move |s| {
            let which = s.wait_on_any(&[a, b], None, "select");
            assert_eq!(which, Some(1), "queue b fired");
            assert_eq!(s.waiters(a), 0, "stale entry cleaned up");
        });
        sim.spawn("waker", move |s| {
            s.advance(Cycles(10));
            s.wakeup_one(b);
        });
        sim.run().unwrap();
    }

    #[test]
    fn wait_on_any_times_out() {
        let sim = fifo_sim(0);
        let a = sim.new_queue();
        let b = sim.new_queue();
        sim.spawn("selector", move |s| {
            let which = s.wait_on_any(&[a, b], Some(Cycles(2_000)), "select");
            assert_eq!(which, None);
            assert_eq!(s.now(), Cycles(2_000));
            assert_eq!(s.waiters(a) + s.waiters(b), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn stale_select_entries_do_not_steal_wakeups() {
        // A selector woken via queue B leaves a stale entry on A; a later
        // wakeup_one(A) must reach the genuine waiter behind it.
        let sim = fifo_sim(0);
        let a = sim.new_queue();
        let b = sim.new_queue();
        let reached = Arc::new(AtomicU64::new(0));
        let r2 = reached.clone();
        sim.spawn("selector", move |s| {
            assert_eq!(s.wait_on_any(&[a, b], None, "select"), Some(1));
            // Keep running long enough that the stale entry on A is
            // still there when the waiter blocks.
            s.advance(Cycles(50));
        });
        sim.spawn("waiter", move |s| {
            s.wait_on(a, "genuine");
            r2.store(1, Ordering::SeqCst);
        });
        sim.spawn("waker", move |s| {
            s.advance(Cycles(10));
            s.wakeup_one(b); // Wake the selector.
            s.advance(Cycles(10));
            s.wakeup_one(a); // Must reach the genuine waiter.
        });
        sim.run().unwrap();
        assert_eq!(reached.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wakeup_all_wakes_everyone() {
        let sim = fifo_sim(0);
        let q = sim.new_queue();
        let count = Arc::new(AtomicU64::new(0));
        for i in 0..5 {
            let c = count.clone();
            sim.spawn(format!("w{i}"), move |s| {
                s.wait_on(q, "broadcast");
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        sim.spawn("waker", move |s| {
            s.yield_now(); // Let the waiters enqueue first (FIFO policy).
            assert_eq!(s.wakeup_all(q), 5);
        });
        sim.run().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 5);
    }
}
