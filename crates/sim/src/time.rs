//! Simulated time, measured in CPU clock cycles of the modelled machine.
//!
//! The benchmarking platform of the paper is an Intel Pentium P54C running
//! at 100 MHz, so one cycle is exactly 10 ns. All simulated durations are
//! kept as integer cycle counts; floating point only appears at the edges
//! when results are converted to microseconds or bandwidth figures.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Clock frequency of the simulated Pentium P54C, in Hz.
pub const CPU_HZ: u64 = 100_000_000;

/// One megabyte, as used by the paper's memory and file bandwidth figures.
pub const MEGABYTE: f64 = 1024.0 * 1024.0;

/// One megabit, as used by the paper's network bandwidth tables.
pub const MEGABIT: f64 = 1_000_000.0;

/// A duration (or instant, measured from simulation start) in CPU cycles.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);

    /// The maximum representable instant; used as an "infinite" timeout.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Converts a duration in microseconds to cycles, rounding to nearest.
    #[must_use]
    pub fn from_micros(us: f64) -> Cycles {
        Cycles((us * CPU_HZ as f64 / 1e6).round() as u64)
    }

    /// Converts a duration in milliseconds to cycles, rounding to nearest.
    #[must_use]
    pub fn from_millis(ms: f64) -> Cycles {
        Cycles::from_micros(ms * 1e3)
    }

    /// Converts a duration in seconds to cycles, rounding to nearest.
    #[must_use]
    pub fn from_secs(s: f64) -> Cycles {
        Cycles::from_micros(s * 1e6)
    }

    /// Converts a duration in nanoseconds to cycles, rounding to nearest.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Cycles {
        Cycles((ns * CPU_HZ as f64 / 1e9).round() as u64)
    }

    /// This duration expressed in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 * 1e6 / CPU_HZ as f64
    }

    /// This duration expressed in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.as_micros() / 1e3
    }

    /// This duration expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.as_micros() / 1e6
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition; clamps at `Cycles::MAX` instead of wrapping.
    #[must_use]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Scales this duration by a floating point factor, rounding to nearest.
    #[must_use]
    pub fn scale(self, factor: f64) -> Cycles {
        Cycles((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= CPU_HZ {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= CPU_HZ / 1_000 {
            write!(f, "{:.3}ms", self.as_millis())
        } else {
            write!(f, "{:.2}us", self.as_micros())
        }
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

/// Bandwidth in megabytes per second for `bytes` transferred in `elapsed`.
///
/// Uses 2^20-byte megabytes, matching the paper's memory and file system
/// figures. Returns 0.0 for a zero duration.
pub fn mb_per_sec(bytes: u64, elapsed: Cycles) -> f64 {
    if elapsed.0 == 0 {
        return 0.0;
    }
    bytes as f64 / MEGABYTE / elapsed.as_secs()
}

/// Bandwidth in megabits per second for `bytes` transferred in `elapsed`.
///
/// Uses 10^6-bit megabits, matching the paper's network tables.
pub fn mbit_per_sec(bytes: u64, elapsed: Cycles) -> f64 {
    if elapsed.0 == 0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / MEGABIT / elapsed.as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_round_trip() {
        let c = Cycles::from_micros(2.31);
        assert_eq!(c.0, 231);
        assert!((c.as_micros() - 2.31).abs() < 1e-9);
    }

    #[test]
    fn millis_and_secs() {
        assert_eq!(Cycles::from_millis(14.0).0, 1_400_000);
        assert_eq!(Cycles::from_secs(1.0).0, CPU_HZ);
        assert!((Cycles(1_400_000).as_millis() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn one_cycle_is_ten_nanoseconds() {
        assert_eq!(Cycles::from_nanos(10.0).0, 1);
        assert_eq!(Cycles::from_nanos(50.0).0, 5);
    }

    #[test]
    fn arithmetic() {
        let a = Cycles(100);
        let b = Cycles(40);
        assert_eq!(a + b, Cycles(140));
        assert_eq!(a - b, Cycles(60));
        assert_eq!(a * 3, Cycles(300));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        let total: Cycles = [a, b, Cycles(1)].into_iter().sum();
        assert_eq!(total, Cycles(141));
    }

    #[test]
    fn scale_rounds_and_clamps() {
        assert_eq!(Cycles(100).scale(1.5), Cycles(150));
        assert_eq!(Cycles(100).scale(0.004), Cycles(0));
        assert_eq!(Cycles(3).scale(0.5), Cycles(2)); // round-to-nearest-even is fine
    }

    #[test]
    fn bandwidth_conversions() {
        // 1 MB in 0.01 s = 100 MB/s.
        let t = Cycles::from_millis(10.0);
        assert!((mb_per_sec(1024 * 1024, t) - 100.0).abs() < 1e-9);
        // 1_000_000 bytes in 1 s = 8 Mb/s.
        assert!((mbit_per_sec(1_000_000, Cycles::from_secs(1.0)) - 8.0).abs() < 1e-9);
        assert_eq!(mb_per_sec(123, Cycles::ZERO), 0.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Cycles(231)), "2.31us");
        assert_eq!(format!("{}", Cycles(1_400_000)), "14.000ms");
        assert_eq!(format!("{}", Cycles(250_000_000)), "2.500s");
    }
}
