#![warn(missing_docs)]

//! Deterministic process-oriented discrete-event simulation core.
//!
//! This crate is the foundation of the `tnt` reproduction of *"A
//! Performance Comparison of UNIX Operating Systems on the Pentium"*
//! (Lai & Baker, USENIX 1996). It provides:
//!
//! - [`Cycles`]: simulated time in clock cycles of the modelled 100 MHz
//!   Pentium, with conversions to the paper's reporting units;
//! - [`Sim`]: a deterministic baton-passing engine in which simulated
//!   processes are real threads, exactly one of which runs at a time;
//! - [`RunPolicy`]: the pluggable run-queue policy through which the three
//!   modelled kernels express their scheduler designs;
//! - [`Summary`], [`Series`] and normalisation helpers matching the
//!   paper's tables (mean, percentage standard deviation, "Norm." column).
//!
//! # Examples
//!
//! ```
//! use tnt_sim::{Cycles, Sim, SimConfig, FifoPolicy};
//!
//! let sim = Sim::new(Box::new(FifoPolicy::new()), SimConfig::default());
//! sim.spawn("worker", |s| {
//!     s.advance(Cycles::from_micros(2.31)); // one getpid() on Linux
//! });
//! let elapsed = sim.run().unwrap();
//! assert_eq!(elapsed, Cycles(231));
//! ```

mod audit;
mod chan;
mod engine;
mod lite;
mod lock;
mod policy;
mod stats;
mod time;
mod wheel;

pub use audit::HostGuard;
pub use chan::SimChannel;
pub use engine::{Sim, SimConfig, SimError, TraceSpan, WaitId};
pub use lock::SimMutex;
pub use policy::{DispatchEnv, FifoPolicy, Pick, RunPolicy, Tid};
pub use stats::{normalize_higher_better, normalize_lower_better, Series, Summary};

/// The cooperative lite-process model: `tnt-proc`'s engine-agnostic
/// core re-exported next to the glue that runs it inside one engine
/// slot. See DESIGN.md, "Two process models".
pub mod proc {
    pub use crate::lite::{block_any, block_on, LiteHandle, LiteScheduler, LiteStats, ProcCtx};
    pub use tnt_proc::{Core, Lid, LiteProc, Step, Wake, WaitReason};
}

/// Race detection and schedule exploration (`tnt-race`), re-exported
/// next to the engine hooks that feed it: `Sim::arm_race_detector`,
/// `Sim::race_read`/`race_write`, `Sim::race_footprints`, and the
/// explorer's [`race::ScriptedPolicy`]. Only present with the
/// default-on `audit` feature. See DESIGN.md §14.
#[cfg(feature = "audit")]
pub mod race {
    pub use crate::policy::{ScheduleLog, ScriptedPolicy};
    pub use tnt_race::{
        explore, AccessInfo, AccessKind, Choice, Detector, ExploreReport, Footprint, Loc, Outcome,
        Race, RunResult, SyncId, VClock, WakeSrc,
    };
    pub use tnt_race::{ambient, set_ambient};

    use crate::engine::{Sim, SimConfig};

    /// The post-run half of an explorer scenario: extracts the
    /// observable payload (`(label, value)` pairs) once `Sim::run` has
    /// returned. Built by the scenario's setup closure, which typically
    /// moves clones of its `Arc`'d logs (and of the `Sim` itself, for
    /// `proc_cpu`) into it.
    pub type Collector = Box<dyn FnOnce() -> Vec<(String, u64)>>;

    /// Runs one scenario under a [`ScriptedPolicy`] replaying `script`,
    /// with the happens-before detector armed, and packages the outcome
    /// for [`fn@explore`]: the scenario's payload (empty on error — a
    /// failed run's partial observables are not comparable), the
    /// recorded branch points, and the per-slice footprints that feed
    /// sleep-set pruning.
    pub fn run_scripted(
        script: &[usize],
        scenario: impl FnOnce(&Sim) -> Collector,
    ) -> RunResult {
        let log: ScheduleLog = ScheduleLog::default();
        let sim = Sim::new(
            Box::new(ScriptedPolicy::new(script.to_vec(), log.clone())),
            SimConfig::default(),
        );
        sim.arm_race_detector();
        let collect = scenario(&sim);
        let (elapsed, error, payload) = match sim.run() {
            Ok(c) => (c.0, None, collect()),
            Err(e) => (sim.now().0, Some(e.to_string()), Vec::new()),
        };
        let choices = log.lock().clone();
        RunResult {
            outcome: Outcome {
                elapsed,
                cpu: Vec::new(),
                payload,
                error,
            },
            choices,
            footprints: sim.race_footprints(),
        }
    }
}

#[cfg(test)]
mod race_tests;

// The tracing subsystem this engine reports into, re-exported so kernel
// models and the harness share one set of attribution types.
pub use tnt_trace as trace;

// The fault-injection plane the engine hosts, re-exported so device
// models and the harness share one set of profile/plan types.
pub use tnt_fault as fault;

// The workload capture/replay plane the engine hosts (`.tntrace`
// format, per-sim recorder, ambient capture sink), re-exported so the
// disk/fs models and the harness share one set of trace types.
pub use tnt_replay as replay;
pub use time::{mb_per_sec, mbit_per_sec, Cycles, CPU_HZ, MEGABIT, MEGABYTE};
