//! A mutex for simulated processes.
//!
//! Host `Mutex`es must never be held across a baton handoff (the owning
//! thread would park while another thread blocks on the lock at the host
//! level, invisible to the engine — a real deadlock). When kernel code
//! needs mutual exclusion *across* blocking operations — e.g. one RPC in
//! flight at a time — it must use this lock instead: contenders block
//! through the engine's wait queues, so the scheduler keeps control.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::engine::{Sim, WaitId};

/// A simulation-aware mutual-exclusion lock (no data; guard the state it
/// protects by convention, as 1990s kernels did).
pub struct SimMutex {
    held: AtomicBool,
    waiters: WaitId,
}

impl SimMutex {
    /// Creates an unlocked mutex on `sim`.
    pub fn new(sim: &Sim) -> SimMutex {
        SimMutex {
            held: AtomicBool::new(false),
            waiters: sim.new_queue(),
        }
    }

    /// Acquires the lock, blocking the calling simulated process while
    /// another holds it.
    ///
    /// With the `audit` feature (default) the acquisition is recorded
    /// in the engine's lock-order graph; establishing both `A -> B` and
    /// `B -> A` orders across the run fails the simulation loudly even
    /// when this particular interleaving happens not to deadlock.
    pub fn lock(&self, sim: &Sim) {
        sim.audit_mutex_acquiring(self.waiters);
        // Processes run atomically between blocking calls, so this
        // check-then-set cannot race; the atomic is only for `Sync`.
        while self.held.load(Ordering::Relaxed) {
            sim.wait_on(self.waiters, "sim mutex");
        }
        self.held.store(true, Ordering::Relaxed);
        sim.audit_mutex_acquired(self.waiters);
    }

    /// Releases the lock and wakes one waiter.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held.
    pub fn unlock(&self, sim: &Sim) {
        assert!(
            self.held.swap(false, Ordering::Relaxed),
            "unlock of an unheld SimMutex"
        );
        sim.audit_mutex_released(self.waiters);
        sim.wakeup_one(self.waiters);
    }

    /// Attempts to acquire without blocking: the lite-process path.
    /// On `false`, block by returning `Step::Block` on
    /// [`SimMutex::wait_queue`] (see `tnt_sim::proc::block_on`) and
    /// retry on wakeup.
    pub fn try_lock(&self, sim: &Sim) -> bool {
        if self.held.load(Ordering::Relaxed) {
            return false;
        }
        sim.audit_mutex_acquiring(self.waiters);
        self.held.store(true, Ordering::Relaxed);
        sim.audit_mutex_acquired(self.waiters);
        true
    }

    /// The queue contenders park on; [`SimMutex::unlock`] signals it.
    pub fn wait_queue(&self) -> WaitId {
        self.waiters
    }

    /// Whether the lock is currently held.
    pub fn is_locked(&self) -> bool {
        self.held.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use crate::policy::FifoPolicy;
    use crate::time::Cycles;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn serializes_critical_sections() {
        let sim = Sim::new(Box::new(FifoPolicy::new()), SimConfig::default());
        let lock = Arc::new(SimMutex::new(&sim));
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let lock = lock.clone();
            let log = log.clone();
            sim.spawn(format!("p{i}"), move |s| {
                lock.lock(s);
                log.lock().push((i, "in"));
                s.sleep(Cycles(1_000)); // Blocking inside the section.
                s.advance(Cycles(10));
                log.lock().push((i, "out"));
                lock.unlock(s);
            });
        }
        sim.run().unwrap();
        let log = log.lock();
        assert_eq!(log.len(), 6);
        // Sections never interleave: every "in" is followed by its "out".
        for pair in log.chunks(2) {
            assert_eq!(pair[0].0, pair[1].0, "interleaved sections: {log:?}");
            assert_eq!((pair[0].1, pair[1].1), ("in", "out"));
        }
    }

    #[test]
    #[should_panic(expected = "unheld")]
    fn unlock_unheld_panics() {
        let sim = Sim::new(Box::new(FifoPolicy::new()), SimConfig::default());
        let lock = Arc::new(SimMutex::new(&sim));
        let l2 = lock.clone();
        sim.spawn("bad", move |s| l2.unlock(s));
        // The panic propagates through run() as an error; re-panic for
        // should_panic to observe.
        if let Err(e) = sim.run() {
            panic!("{e}");
        }
    }

    #[test]
    fn is_locked_reflects_state() {
        let sim = Sim::new(Box::new(FifoPolicy::new()), SimConfig::default());
        let lock = Arc::new(SimMutex::new(&sim));
        assert!(!lock.is_locked());
        let l2 = lock.clone();
        sim.spawn("p", move |s| {
            l2.lock(s);
            assert!(l2.is_locked());
            l2.unlock(s);
            assert!(!l2.is_locked());
        });
        sim.run().unwrap();
    }
}
