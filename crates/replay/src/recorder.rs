//! The capture shim: a per-simulation [`Recorder`], the process-wide
//! ambient arming flag, and the publish sink `reproduce replay
//! --record` drains.
//!
//! The recorder is wired into the engine (one per `Sim`) and into the
//! disk and filesystem models, which call `record_*` at their command
//! boundaries. Everything here is host-side bookkeeping: recording
//! never advances the simulated clock, takes no engine locks, and is
//! guarded by one relaxed atomic load when disabled — so a run with
//! recording off is byte-identical to one without the shim at all
//! (asserted by `record_off_is_byte_identical` in the harness tests).

use crate::format::{Op, Trace, TraceEvent};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Accumulates the events one simulation emits.
///
/// Created disabled; [`Recorder::enable`] arms it (explicitly, or via
/// the ambient flag at `Sim` construction). Paths are interned on
/// first use, in order of first appearance, which keeps the table —
/// and therefore the serialised trace — deterministic.
#[derive(Debug, Default)]
pub struct Recorder {
    enabled: AtomicBool,
    state: Mutex<RecState>,
}

#[derive(Debug, Default)]
struct RecState {
    paths: Vec<String>,
    interned: BTreeMap<String, u64>,
    events: Vec<TraceEvent>,
}

impl Recorder {
    /// A fresh, disabled recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Starts capturing events.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Stops capturing events (already-captured events are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Whether the recorder is capturing. The disabled fast path of
    /// every `record_*` call is exactly this one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Whether anything has been captured.
    pub fn is_empty(&self) -> bool {
        self.state.lock().events.is_empty()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.state.lock().events.len()
    }

    /// Records a block command issued to a disk. No-op when disabled.
    pub fn record_block(&self, t: u64, pid: u32, write: bool, addr: u64, blocks: u64) {
        if !self.is_enabled() {
            return;
        }
        let op = if write { Op::BlockWrite } else { Op::BlockRead };
        self.state.lock().events.push(TraceEvent {
            t,
            pid,
            op,
            arg: addr,
            size: blocks,
        });
    }

    /// Records a file-layer event (`op` must not be a block op),
    /// interning `path`. No-op when disabled.
    pub fn record_path_event(&self, t: u64, pid: u32, op: Op, path: &str) {
        if !self.is_enabled() {
            return;
        }
        debug_assert!(!op.is_block());
        let mut st = self.state.lock();
        let arg = match st.interned.get(path) {
            Some(&i) => i,
            None => {
                let i = st.paths.len() as u64;
                st.paths.push(path.to_string());
                st.interned.insert(path.to_string(), i);
                i
            }
        };
        st.events.push(TraceEvent {
            t,
            pid,
            op,
            arg,
            size: 0,
        });
    }

    /// Takes the recording, leaving the recorder empty (and still in
    /// its current enabled/disabled state).
    pub fn take(&self) -> Trace {
        let mut st = self.state.lock();
        st.interned.clear();
        Trace {
            paths: std::mem::take(&mut st.paths),
            events: std::mem::take(&mut st.events),
        }
    }

    /// A copy of the recording so far.
    pub fn snapshot(&self) -> Trace {
        let st = self.state.lock();
        Trace {
            paths: st.paths.clone(),
            events: st.events.clone(),
        }
    }
}

/// Ambient arming flag, mirroring `tnt_fault::set_ambient`: the
/// `reproduce` binary sets it once (for `replay --record <id>`) before
/// booting anything, every machine booted afterwards records itself,
/// and `Sim::run` publishes the finished recording to the sink below.
static AMBIENT: AtomicBool = AtomicBool::new(false);

/// Arms (or disarms) ambient capture for every simulation booted after
/// this call.
pub fn set_ambient(armed: bool) {
    AMBIENT.store(armed, Ordering::SeqCst);
}

/// Whether ambient capture is armed.
pub fn ambient() -> bool {
    AMBIENT.load(Ordering::SeqCst)
}

/// The process-wide sink ambient captures land in, completion order.
static SINK: Mutex<Vec<Trace>> = Mutex::new(Vec::new());

/// Appends a finished recording to the sink (called by `Sim::run` for
/// ambient captures; harmless to call directly).
pub fn publish(trace: Trace) {
    SINK.lock().push(trace);
}

/// Takes every recording published since the last drain.
pub fn drain() -> Vec<Trace> {
    std::mem::take(&mut *SINK.lock())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::new();
        r.record_block(1, 1, false, 0, 1);
        r.record_path_event(2, 1, Op::FileOpen, "/x");
        assert!(r.is_empty());
    }

    #[test]
    fn paths_intern_in_first_use_order() {
        let r = Recorder::new();
        r.enable();
        r.record_path_event(1, 1, Op::FileOpen, "/b");
        r.record_path_event(2, 1, Op::FileOpen, "/a");
        r.record_path_event(3, 1, Op::FileUnlink, "/b");
        r.record_block(4, 2, true, 8, 2);
        let t = r.take();
        assert_eq!(t.paths, vec!["/b".to_string(), "/a".to_string()]);
        assert_eq!(t.events[0].arg, 0);
        assert_eq!(t.events[1].arg, 1);
        assert_eq!(t.events[2].arg, 0);
        assert_eq!(t.events[3].op, Op::BlockWrite);
        // take() resets interning as well as events.
        r.record_path_event(5, 1, Op::FileOpen, "/a");
        assert_eq!(r.take().paths, vec!["/a".to_string()]);
    }

    #[test]
    fn sink_drains_in_publish_order() {
        // Serialised against itself by running in one test.
        drain();
        let mut a = Trace::default();
        a.paths.push("first".into());
        let mut b = Trace::default();
        b.paths.push("second".into());
        publish(a.clone());
        publish(b.clone());
        assert_eq!(drain(), vec![a, b]);
        assert!(drain().is_empty());
    }
}
