//! The `.tntrace` format, version 1.
//!
//! One trace, two interchangeable encodings — a compact little-endian
//! binary layout and a line-oriented text twin — plus [`Trace::load`],
//! which auto-detects either (falling back to the `blkparse` importer
//! for foreign text). The byte-level layout is specified normatively in
//! `docs/TRACE_FORMAT.md`; this module is the reference implementation.
//! Encoding is total (any [`Trace`] serialises); decoding is strict and
//! returns a [`TraceError`] for anything malformed — a corrupt trace
//! must never panic the harness.

use std::fmt;

/// The eight magic bytes opening every binary `.tntrace` file.
pub const MAGIC: [u8; 8] = *b"TNTRACE\0";

/// The format version this crate reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Size of the fixed binary header, in bytes.
const HEADER_LEN: usize = 32;

/// Size of one binary event record, in bytes.
const EVENT_LEN: usize = 32;

/// The kind of a recorded event.
///
/// Codes are part of the on-disk format and never reused: block-layer
/// ops live below 16, file-layer (syscall-boundary) ops at 16 and
/// above. Decoders reject unknown codes rather than skipping them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Op {
    /// A read command issued to the disk (`arg` = first 1 KB block,
    /// `size` = block count).
    BlockRead = 1,
    /// A write command issued to the disk (`arg` = first 1 KB block,
    /// `size` = block count).
    BlockWrite = 2,
    /// An `open(2)`/`creat(2)` that succeeded (`arg` = path-table
    /// index, `size` = 0).
    FileOpen = 16,
    /// An `unlink(2)` that succeeded (`arg` = path-table index,
    /// `size` = 0).
    FileUnlink = 17,
}

impl Op {
    /// The on-disk opcode.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes an opcode; `None` for codes this version does not know.
    pub fn from_code(code: u8) -> Option<Op> {
        match code {
            1 => Some(Op::BlockRead),
            2 => Some(Op::BlockWrite),
            16 => Some(Op::FileOpen),
            17 => Some(Op::FileUnlink),
            _ => None,
        }
    }

    /// The text-encoding mnemonic (`br`, `bw`, `open`, `unlink`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::BlockRead => "br",
            Op::BlockWrite => "bw",
            Op::FileOpen => "open",
            Op::FileUnlink => "unlink",
        }
    }

    /// Decodes a text mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Op> {
        match s {
            "br" => Some(Op::BlockRead),
            "bw" => Some(Op::BlockWrite),
            "open" => Some(Op::FileOpen),
            "unlink" => Some(Op::FileUnlink),
            _ => None,
        }
    }

    /// Whether this is a block-layer op (as opposed to a file-layer
    /// marker).
    pub fn is_block(self) -> bool {
        matches!(self, Op::BlockRead | Op::BlockWrite)
    }
}

/// One recorded event.
///
/// The meaning of `arg` and `size` depends on [`Op`]; see the opcode
/// docs. `t` is the simulated timestamp in cycles of the modelled
/// 100 MHz Pentium, `pid` the simulated process that issued the event
/// (used to group events into per-process streams on replay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated issue time, in cycles.
    pub t: u64,
    /// Simulated pid of the issuing process.
    pub pid: u32,
    /// What happened.
    pub op: Op,
    /// Block address (block ops) or path-table index (file ops).
    pub arg: u64,
    /// Block count (block ops); zero for file ops.
    pub size: u64,
}

/// A decoded trace: the interned path table plus the event sequence in
/// recorded order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Interned paths referenced by file-layer events, ordinal order.
    pub paths: Vec<String>,
    /// Events in the order they were recorded.
    pub events: Vec<TraceEvent>,
}

/// Why a trace failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The input ended before the structure it promised.
    Truncated {
        /// Bytes the header/layout called for.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The input is binary-sized but does not open with [`MAGIC`].
    BadMagic,
    /// A version this crate does not read.
    BadVersion(u16),
    /// Header flags bits are set; version 1 defines none.
    BadFlags(u16),
    /// The reserved header word is non-zero.
    BadReserved(u32),
    /// The file is larger than the header accounts for.
    TrailingBytes(usize),
    /// The path table is not a sequence of NUL-terminated UTF-8 strings.
    BadPathTable,
    /// An opcode (or its reserved high bits) this version does not know.
    BadOp {
        /// The raw 32-bit op field.
        code: u32,
        /// Zero-based index of the offending event record.
        at: usize,
    },
    /// A file-layer event referenced a path ordinal past the table.
    BadPathIndex {
        /// The out-of-range ordinal.
        index: u64,
        /// Number of paths the table holds.
        paths: usize,
    },
    /// A text-encoding line failed to parse.
    Text {
        /// One-based line number.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// The input is neither binary `.tntrace`, text `.tntrace`, nor
    /// recognisable `blkparse` output.
    Unrecognized,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated { need, have } => {
                write!(f, "truncated trace: need {need} bytes, have {have}")
            }
            TraceError::BadMagic => write!(f, "not a .tntrace file (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported .tntrace version {v}"),
            TraceError::BadFlags(x) => write!(f, "unknown header flags {x:#06x}"),
            TraceError::BadReserved(x) => write!(f, "reserved header word is {x:#010x}, not zero"),
            TraceError::TrailingBytes(n) => write!(f, "{n} trailing bytes after last event"),
            TraceError::BadPathTable => write!(f, "malformed path table"),
            TraceError::BadOp { code, at } => write!(f, "unknown op {code:#010x} at event {at}"),
            TraceError::BadPathIndex { index, paths } => {
                write!(f, "path index {index} out of range (table has {paths})")
            }
            TraceError::Text { line, msg } => write!(f, "line {line}: {msg}"),
            TraceError::Unrecognized => write!(f, "unrecognized trace encoding"),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The path a file-layer event refers to, if any.
    pub fn path_of(&self, ev: &TraceEvent) -> Option<&str> {
        if ev.op.is_block() {
            return None;
        }
        self.paths.get(ev.arg as usize).map(String::as_str)
    }

    /// The recorded span in cycles: latest minus earliest timestamp
    /// (zero for fewer than two events). Events need not be sorted.
    pub fn span(&self) -> u64 {
        let lo = self.events.iter().map(|e| e.t).min().unwrap_or(0);
        let hi = self.events.iter().map(|e| e.t).max().unwrap_or(0);
        hi - lo
    }

    /// Serialises to the version-1 binary encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let path_bytes: usize = self.paths.iter().map(|p| p.len() + 1).sum();
        let mut out = Vec::with_capacity(HEADER_LEN + path_bytes + self.events.len() * EVENT_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        out.extend_from_slice(&(path_bytes as u64).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        for p in &self.paths {
            out.extend_from_slice(p.as_bytes());
            out.push(0);
        }
        for ev in &self.events {
            out.extend_from_slice(&ev.t.to_le_bytes());
            out.extend_from_slice(&(ev.op.code() as u32).to_le_bytes());
            out.extend_from_slice(&ev.pid.to_le_bytes());
            out.extend_from_slice(&ev.arg.to_le_bytes());
            out.extend_from_slice(&ev.size.to_le_bytes());
        }
        out
    }

    /// Decodes the version-1 binary encoding.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        if bytes.len() < HEADER_LEN {
            return Err(TraceError::Truncated {
                need: HEADER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let u16le = |at: usize| u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap());
        let u32le = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let u64le = |b: &[u8], at: usize| u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
        let version = u16le(8);
        if version != FORMAT_VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let flags = u16le(10);
        if flags != 0 {
            return Err(TraceError::BadFlags(flags));
        }
        let count = u64le(bytes, 12) as usize;
        let path_bytes = u64le(bytes, 20) as usize;
        let reserved = u32le(28);
        if reserved != 0 {
            return Err(TraceError::BadReserved(reserved));
        }
        let need = HEADER_LEN
            .checked_add(path_bytes)
            .and_then(|n| count.checked_mul(EVENT_LEN).and_then(|e| n.checked_add(e)))
            .ok_or(TraceError::BadPathTable)?;
        if bytes.len() < need {
            return Err(TraceError::Truncated {
                need,
                have: bytes.len(),
            });
        }
        if bytes.len() > need {
            return Err(TraceError::TrailingBytes(bytes.len() - need));
        }
        let table = &bytes[HEADER_LEN..HEADER_LEN + path_bytes];
        let mut paths = Vec::new();
        if !table.is_empty() {
            if *table.last().unwrap() != 0 {
                return Err(TraceError::BadPathTable);
            }
            for raw in table[..table.len() - 1].split(|&b| b == 0) {
                let s = std::str::from_utf8(raw).map_err(|_| TraceError::BadPathTable)?;
                paths.push(s.to_string());
            }
        }
        let mut events = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_LEN + path_bytes + i * EVENT_LEN;
            let rec = &bytes[at..at + EVENT_LEN];
            let raw_op = u32::from_le_bytes(rec[8..12].try_into().unwrap());
            let op = if raw_op <= u8::MAX as u32 {
                Op::from_code(raw_op as u8)
            } else {
                None
            }
            .ok_or(TraceError::BadOp {
                code: raw_op,
                at: i,
            })?;
            let ev = TraceEvent {
                t: u64le(rec, 0),
                pid: u32::from_le_bytes(rec[12..16].try_into().unwrap()),
                op,
                arg: u64le(rec, 16),
                size: u64le(rec, 24),
            };
            if !op.is_block() && ev.arg >= paths.len() as u64 {
                return Err(TraceError::BadPathIndex {
                    index: ev.arg,
                    paths: paths.len(),
                });
            }
            events.push(ev);
        }
        Ok(Trace { paths, events })
    }

    /// Serialises to the version-1 text encoding.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("tntrace v1\n");
        for p in &self.paths {
            let _ = writeln!(out, "path {p}");
        }
        for ev in &self.events {
            let _ = writeln!(
                out,
                "ev {} {} {} {} {}",
                ev.t,
                ev.pid,
                ev.op.mnemonic(),
                ev.arg,
                ev.size
            );
        }
        out
    }

    /// Decodes the version-1 text encoding.
    pub fn from_text(text: &str) -> Result<Trace, TraceError> {
        let mut saw_header = false;
        let mut trace = Trace::default();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let s = raw.trim();
            if s.is_empty() || s.starts_with('#') {
                continue;
            }
            if !saw_header {
                if s == "tntrace v1" {
                    saw_header = true;
                    continue;
                }
                return Err(TraceError::Text {
                    line,
                    msg: format!("expected header \"tntrace v1\", got {s:?}"),
                });
            }
            if let Some(p) = s.strip_prefix("path ") {
                trace.paths.push(p.to_string());
                continue;
            }
            if let Some(rest) = s.strip_prefix("ev ") {
                let fields: Vec<&str> = rest.split_whitespace().collect();
                if fields.len() != 5 {
                    return Err(TraceError::Text {
                        line,
                        msg: format!("ev needs 5 fields (t pid op arg size), got {}", fields.len()),
                    });
                }
                let num = |f: &str, what: &str| {
                    f.parse::<u64>().map_err(|_| TraceError::Text {
                        line,
                        msg: format!("bad {what} {f:?}"),
                    })
                };
                let op = Op::from_mnemonic(fields[2]).ok_or_else(|| TraceError::Text {
                    line,
                    msg: format!("unknown op {:?}", fields[2]),
                })?;
                trace.events.push(TraceEvent {
                    t: num(fields[0], "timestamp")?,
                    pid: num(fields[1], "pid")? as u32,
                    op,
                    arg: num(fields[3], "arg")?,
                    size: num(fields[4], "size")?,
                });
                continue;
            }
            return Err(TraceError::Text {
                line,
                msg: format!("unknown directive {s:?}"),
            });
        }
        if !saw_header {
            return Err(TraceError::Text {
                line: 1,
                msg: "missing \"tntrace v1\" header".into(),
            });
        }
        for (i, ev) in trace.events.iter().enumerate() {
            if !ev.op.is_block() && ev.arg >= trace.paths.len() as u64 {
                return Err(TraceError::Text {
                    line: 0,
                    msg: format!(
                        "event {i}: path index {} out of range (table has {})",
                        ev.arg,
                        trace.paths.len()
                    ),
                });
            }
        }
        Ok(trace)
    }

    /// Decodes any supported encoding: binary `.tntrace` (by magic),
    /// text `.tntrace` (by header line), or `blkparse` text (fallback
    /// via [`crate::import::from_blkparse`]).
    pub fn load(bytes: &[u8]) -> Result<Trace, TraceError> {
        if bytes.starts_with(&MAGIC) {
            return Trace::from_bytes(bytes);
        }
        let text = std::str::from_utf8(bytes).map_err(|_| {
            // Binary-looking but without our magic: say so rather than
            // reporting a UTF-8 error about a file that was never text.
            if bytes.len() >= MAGIC.len() {
                TraceError::BadMagic
            } else {
                TraceError::Unrecognized
            }
        })?;
        let first = text
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'));
        match first {
            Some(l) if l.starts_with("tntrace") => Trace::from_text(text),
            Some(_) => crate::import::from_blkparse(text),
            None => Err(TraceError::Unrecognized),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            paths: vec!["/tmp/a".into(), "/var/db/pages".into()],
            events: vec![
                TraceEvent {
                    t: 100,
                    pid: 3,
                    op: Op::FileOpen,
                    arg: 0,
                    size: 0,
                },
                TraceEvent {
                    t: 250,
                    pid: 3,
                    op: Op::BlockWrite,
                    arg: 4096,
                    size: 8,
                },
                TraceEvent {
                    t: 900,
                    pid: 4,
                    op: Op::BlockRead,
                    arg: 12,
                    size: 1,
                },
                TraceEvent {
                    t: 1400,
                    pid: 3,
                    op: Op::FileUnlink,
                    arg: 1,
                    size: 0,
                },
            ],
        }
    }

    #[test]
    fn binary_round_trips() {
        let t = sample();
        assert_eq!(Trace::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn text_round_trips() {
        let t = sample();
        assert_eq!(Trace::from_text(&t.to_text()).unwrap(), t);
    }

    #[test]
    fn load_auto_detects_both_encodings() {
        let t = sample();
        assert_eq!(Trace::load(&t.to_bytes()).unwrap(), t);
        assert_eq!(Trace::load(t.to_text().as_bytes()).unwrap(), t);
    }

    #[test]
    fn empty_trace_is_legal() {
        let t = Trace::default();
        assert_eq!(Trace::from_bytes(&t.to_bytes()).unwrap(), t);
        assert_eq!(Trace::from_text(&t.to_text()).unwrap(), t);
        assert_eq!(t.span(), 0);
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let bytes = sample().to_bytes();
        for cut in [0, 7, 31, bytes.len() - 1] {
            match Trace::from_bytes(&bytes[..cut]) {
                Err(TraceError::Truncated { have, .. }) => assert_eq!(have, cut),
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let good = sample().to_bytes();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(Trace::from_bytes(&bad), Err(TraceError::BadMagic));
        let mut bad = good.clone();
        bad[8] = 9;
        assert_eq!(Trace::from_bytes(&bad), Err(TraceError::BadVersion(9)));
        let mut bad = good.clone();
        bad[10] = 1;
        assert_eq!(Trace::from_bytes(&bad), Err(TraceError::BadFlags(1)));
        let mut bad = good.clone();
        bad[28] = 0xff;
        assert_eq!(Trace::from_bytes(&bad), Err(TraceError::BadReserved(0xff)));
        let mut bad = good.clone();
        bad.push(0);
        assert_eq!(Trace::from_bytes(&bad), Err(TraceError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_ops_and_bad_path_indices_are_rejected() {
        let t = sample();
        let mut bytes = t.to_bytes();
        // First event's op field sits right after the path table.
        let table: usize = t.paths.iter().map(|p| p.len() + 1).sum();
        let op_at = 32 + table + 8;
        bytes[op_at] = 0x7f;
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::BadOp { code: 0x7f, at: 0 })
        );
        let mut t2 = t.clone();
        t2.events[0].arg = 99;
        assert_eq!(
            Trace::from_bytes(&t2.to_bytes()),
            Err(TraceError::BadPathIndex {
                index: 99,
                paths: 2
            })
        );
        assert!(matches!(
            Trace::from_text(&t2.to_text()),
            Err(TraceError::Text { .. })
        ));
    }

    #[test]
    fn text_errors_carry_line_numbers() {
        let err = Trace::from_text("tntrace v1\nev 1 2 zz 3 4\n").unwrap_err();
        assert_eq!(
            err,
            TraceError::Text {
                line: 2,
                msg: "unknown op \"zz\"".into()
            }
        );
        assert!(matches!(
            Trace::from_text("not a trace\n"),
            Err(TraceError::Text { line: 1, .. })
        ));
        assert!(matches!(
            Trace::from_text("# only comments\n"),
            Err(TraceError::Text { line: 1, .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# a recording\ntntrace v1\n\npath /x\n# mid-stream note\nev 5 1 open 0 0\n";
        let t = Trace::from_text(text).unwrap();
        assert_eq!(t.paths, vec!["/x".to_string()]);
        assert_eq!(t.len(), 1);
    }
}
