#![deny(missing_docs)]

//! Trace capture and replay for the tnt simulation.
//!
//! Any experiment in this workspace is a *program* that regenerates a
//! workload from scratch every run. This crate adds the complementary
//! representation: a *recording* of the I/O a run actually performed,
//! stored in a versioned on-disk format (`.tntrace`) that can be
//! replayed later — through the same disk model, under a fault profile
//! the original run never saw, or on an OS personality other than the
//! one that produced it. Three pieces:
//!
//! * [`Trace`] — the in-memory form of a recording plus codecs for the
//!   two interchangeable encodings of **`.tntrace` version 1**: a
//!   32-byte-header little-endian binary layout and a line-oriented
//!   text twin. Both are specified normatively in `docs/TRACE_FORMAT.md`;
//!   the codecs here are hand-rolled (no serde — the workspace builds
//!   offline against vendored shims only) and reject malformed input
//!   with a clean [`TraceError`] instead of panicking.
//! * [`Recorder`] — the capture shim the engine hosts. One per [`Sim`],
//!   disabled by default; disabled cost is a single relaxed atomic
//!   load per event site, and recording never advances the simulated
//!   clock, so a run with recording off is byte-identical to a build
//!   without this crate wired in at all.
//! * [`import::from_blkparse`] — an importer for `blkparse`-style text
//!   dumps of real Linux block traces, so measured workloads can be
//!   carried into the simulation.
//!
//! The ambient flag ([`set_ambient`]) mirrors `tnt_fault::set_ambient`:
//! the `reproduce` binary arms it for `reproduce replay --record <id>`,
//! every simulation booted afterwards records itself, and finished
//! recordings are published to the process-wide [`publish`]/[`drain`]
//! sink when `Sim::run` returns.
//!
//! [`Sim`]: ../tnt_sim/struct.Sim.html

pub mod format;
pub mod import;
pub mod recorder;

pub use format::{Op, Trace, TraceError, TraceEvent, FORMAT_VERSION, MAGIC};
pub use recorder::{ambient, drain, publish, set_ambient, Recorder};
