//! Importer for `blkparse`-style text, so measured Linux block traces
//! (blktrace → blkparse) can be replayed through the simulated disk.
//!
//! The standard single-device output line is
//!
//! ```text
//! 8,0    1       42     0.001302512  1234  D   R 2048 + 256 [cc1]
//! ```
//!
//! (device, cpu, sequence, seconds, pid, action, RWBS, start sector,
//! `+`, sector count, program). The importer keeps **D** (dispatch to
//! driver) rows whose RWBS carries `R` or `W` — those are the commands
//! the bus actually saw, matching what our own recorder captures at
//! [`Disk::io`] — and converts 512-byte sectors to the simulation's
//! 1 KB blocks and seconds to cycles of the modelled 100 MHz Pentium.
//! Dumps with no D rows (some tools emit only queue events) fall back
//! to **Q** rows. Every other line — other actions, per-CPU summary
//! blocks, anything unparseable — is skipped, as real `blkparse` output
//! is full of prose; an input yielding no events at all is rejected
//! with [`TraceError::Unrecognized`].
//!
//! [`Disk::io`]: ../../tnt_fs/struct.Disk.html#method.io

use crate::format::{Op, Trace, TraceError, TraceEvent};

/// Cycles per second of the modelled 100 MHz Pentium (kept local: the
/// format crate sits below `tnt-sim`, which owns the canonical
/// `CPU_HZ`; a unit test over there pins the two together).
const CYCLES_PER_SEC: f64 = 100_000_000.0;

/// Parses `blkparse` text into a [`Trace`] of block events.
pub fn from_blkparse(text: &str) -> Result<Trace, TraceError> {
    let mut dispatched = Vec::new();
    let mut queued = Vec::new();
    for line in text.lines() {
        let f: Vec<&str> = line.split_whitespace().collect();
        // dev cpu seq ts pid action rwbs sector + count [prog]
        if f.len() < 10 || !is_dev(f[0]) || f[8] != "+" {
            continue;
        }
        let (Ok(ts), Ok(pid), Ok(sector), Ok(sectors)) = (
            f[3].parse::<f64>(),
            f[4].parse::<u32>(),
            f[7].parse::<u64>(),
            f[9].parse::<u64>(),
        ) else {
            continue;
        };
        let op = if f[6].contains('R') {
            Op::BlockRead
        } else if f[6].contains('W') {
            Op::BlockWrite
        } else {
            continue;
        };
        if sectors == 0 || !ts.is_finite() || ts < 0.0 {
            continue;
        }
        let ev = TraceEvent {
            t: (ts * CYCLES_PER_SEC).round() as u64,
            pid,
            op,
            arg: sector / 2,
            size: sectors.div_ceil(2),
        };
        match f[5] {
            "D" => dispatched.push(ev),
            "Q" => queued.push(ev),
            _ => {}
        }
    }
    let events = if dispatched.is_empty() {
        queued
    } else {
        dispatched
    };
    if events.is_empty() {
        return Err(TraceError::Unrecognized);
    }
    Ok(Trace {
        paths: Vec::new(),
        events,
    })
}

/// Whether a token looks like blkparse's `maj,min` device field.
fn is_dev(tok: &str) -> bool {
    match tok.split_once(',') {
        Some((maj, min)) => {
            !maj.is_empty()
                && !min.is_empty()
                && maj.bytes().all(|b| b.is_ascii_digit())
                && min.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
8,0    1        1     0.000000000  101  D   R 2048 + 16 [reader]
8,0    1        2     0.000512000  101  Q   R 4096 + 16 [reader]
8,0    0        3     0.001000000  102  D  WS 9000 + 7 [writer]
8,0    0        4     0.002000000  102  C   W 9000 + 7 [writer]
CPU0 (8,0):
 Reads Queued:           2,       16KiB
";

    #[test]
    fn keeps_dispatch_rows_and_converts_units() {
        let t = from_blkparse(SAMPLE).unwrap();
        assert_eq!(t.len(), 2); // the Q and C rows and the summary are dropped
        assert_eq!(
            t.events[0],
            TraceEvent {
                t: 0,
                pid: 101,
                op: Op::BlockRead,
                arg: 1024, // sector 2048 -> 1 KB block 1024
                size: 8,   // 16 sectors -> 8 blocks
            }
        );
        assert_eq!(t.events[1].op, Op::BlockWrite);
        assert_eq!(t.events[1].t, 100_000); // 1 ms at 100 MHz
        assert_eq!(t.events[1].size, 4); // 7 sectors round up to 4 blocks
    }

    #[test]
    fn falls_back_to_queue_rows_when_no_dispatches() {
        let only_q = "8,0 1 1 0.5 7 Q R 100 + 2 [x]\n";
        let t = from_blkparse(only_q).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.events[0].t, 50_000_000);
        assert_eq!(t.events[0].arg, 50);
    }

    #[test]
    fn junk_is_unrecognized_not_a_panic() {
        assert_eq!(from_blkparse(""), Err(TraceError::Unrecognized));
        assert_eq!(
            from_blkparse("hello world this is not a trace\n"),
            Err(TraceError::Unrecognized)
        );
    }

    #[test]
    fn load_falls_back_to_blkparse() {
        let t = Trace::load(SAMPLE.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }
}
