//! Property tests for the `.tntrace` format: arbitrary traces survive a
//! binary and a text round trip byte-for-byte, every truncation is a
//! clean error (never a panic, never a silently short trace), and every
//! single-byte header corruption is rejected — all 32 header bytes are
//! load-bearing (docs/TRACE_FORMAT.md).

use proptest::prelude::*;
use tnt_replay::{Op, Trace, TraceEvent};

const OPS: [Op; 4] = [Op::BlockRead, Op::BlockWrite, Op::FileOpen, Op::FileUnlink];

/// Builds a valid trace from raw generator output: file-layer events
/// must reference an interned path, so their `arg` is reduced mod the
/// path count.
fn build(paths: Vec<String>, raw: Vec<(u32, u32, usize, u64, u64)>) -> Trace {
    let plen = paths.len() as u64;
    let events = raw
        .into_iter()
        .map(|(t, pid, opi, arg, size)| {
            let op = OPS[opi % OPS.len()];
            let arg = if op.is_block() { arg } else { arg % plen };
            TraceEvent {
                t: u64::from(t),
                pid,
                op,
                arg,
                size,
            }
        })
        .collect();
    Trace { paths, events }
}

fn sample() -> Trace {
    build(
        vec!["/etc/motd".into(), "/tmp/a".into()],
        vec![
            (0, 1, 0, 2_048, 8),
            (150, 1, 2, 0, 0),
            (300, 2, 1, 9_000, 16),
            (450, 2, 3, 1, 0),
        ],
    )
}

proptest! {
    #[test]
    fn both_encodings_round_trip(
        paths in prop::collection::vec("[a-z/.]{1,12}", 1..4usize),
        raw in prop::collection::vec(
            (any::<u32>(), 0u32..8, 0usize..4, any::<u64>(), 0u64..10_000),
            0..64usize,
        ),
    ) {
        let trace = build(paths, raw);
        let bytes = trace.to_bytes();
        prop_assert_eq!(&Trace::from_bytes(&bytes).unwrap(), &trace);
        prop_assert_eq!(&Trace::from_text(&trace.to_text()).unwrap(), &trace);
        // Re-encoding is byte-stable, so vendored fixtures are canonical.
        prop_assert_eq!(Trace::from_bytes(&bytes).unwrap().to_bytes(), bytes);
    }

    #[test]
    fn every_truncation_is_a_clean_error(frac in 0.0f64..1.0) {
        let bytes = sample().to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(Trace::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn every_header_byte_is_load_bearing(at in 0usize..32, flip in 1u8..=255) {
        let mut bytes = sample().to_bytes();
        bytes[at] ^= flip;
        prop_assert!(
            Trace::from_bytes(&bytes).is_err(),
            "header byte {} corrupted with {:#04x} was accepted", at, flip
        );
    }

    #[test]
    fn trailing_garbage_is_rejected(extra in 1usize..64) {
        let mut bytes = sample().to_bytes();
        bytes.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(Trace::from_bytes(&bytes).is_err());
    }
}
