//! Quick calibration readout (internal tool; the real harness is tnt-harness).
use tnt_core::*;
use tnt_os::Os;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "mab" || which == "all" {
        for os in Os::benchmarked() {
            let r = mab_local(os, 0);
            println!(
                "T3 {os:?}: total {:.2}s phases {:?}",
                r.total_s,
                r.phase_s.map(|p| (p * 100.0).round() / 100.0)
            );
        }
    }
    if which == "nfs" || which == "all" {
        for server in [Os::Linux, Os::SunOs] {
            for client in Os::benchmarked() {
                let r = mab_over_nfs(client, server, 0);
                println!(
                    "NFS server={server:?} client={client:?}: {:.2}s phases {:?}",
                    r.total_s,
                    r.phase_s.map(|p| (p * 100.0).round() / 100.0)
                );
            }
        }
    }
    if which == "bonnie" || which == "all" {
        for mb in [4u64, 40] {
            for os in Os::benchmarked() {
                let r = bonnie(os, mb, 60, 0);
                println!(
                    "bonnie {mb}MB {os:?}: w {:.2} r {:.2} MB/s, {:.0} seeks/s",
                    r.write_mb_s, r.read_mb_s, r.seeks_per_s
                );
            }
        }
    }
    if which == "crtdel" || which == "all" {
        for size in [1024u64, 1 << 20] {
            for os in Os::benchmarked() {
                println!("crtdel {size}B {os:?}: {:.1} ms", crtdel_ms(os, size, 6, 0));
            }
        }
    }
}
