#![warn(missing_docs)]

//! The paper's benchmark suite, assembled on top of the machine, kernel,
//! storage and network models.
//!
//! One function per experiment family, each returning the quantity the
//! paper plots or tabulates:
//!
//! | Paper result | Entry point |
//! |---|---|
//! | Table 2 (system call) | [`syscall_us`] |
//! | Figure 1 (context switch) | [`ctx_us`] |
//! | Figures 2-8 (memory) | [`mem_bandwidth`] |
//! | Figures 9-11 (bonnie) | [`bonnie`] |
//! | Figure 12 (crtdel) | [`crtdel_ms`] |
//! | Table 3 (MAB local) | [`mab_local`] |
//! | Table 4 (pipes) | [`pipe_bandwidth_mbit`] |
//! | Figure 13 (UDP) | [`udp_bandwidth_mbit`] |
//! | Table 5 (TCP) | [`tcp_bandwidth_mbit`] |
//! | Tables 6-7 (MAB over NFS) | [`mab_over_nfs`] |
//!
//! Every function takes a `seed`; the harness runs each experiment
//! twenty times with different seeds and reports mean, standard
//! deviation, and the paper's normalised column.
//!
//! # Examples
//!
//! ```
//! use tnt_os::Os;
//!
//! // Table 2: Linux getpid ~2.31 microseconds.
//! let us = tnt_core::syscall_us(Os::Linux, 1000, 0);
//! assert!((us - 2.31).abs() < 0.25);
//! ```

mod bonnie;
mod bwpipe;
mod bwtcp;
mod crtdel;
mod ctx;
mod getpid;
mod latency;
mod mab;
mod machine;
mod membench;
mod multiuser;
mod nfsmab;
mod procbench;
mod ttcp;

pub use bonnie::{bonnie, BonnieResult, BONNIE_BLOCK};
pub use bwpipe::{pipe_bandwidth_mbit, BW_PIPE_CHUNK, BW_PIPE_TOTAL};
pub use bwtcp::{tcp_bandwidth_mbit, tcp_bandwidth_with_window, BW_TCP_CHUNK, BW_TCP_TOTAL};
pub use crtdel::{crtdel_ms, crtdel_ms_with, crtdel_once};
pub use ctx::{ctx_us, ctx_us_with, CtxPattern};
pub use getpid::syscall_us;
pub use latency::{lat_pipe_us, lat_rpc_us, lat_tcp_us, lat_udp_us};
pub use mab::{mab_local, mab_setup, run_mab, MabFile, MabReport, MabSpec, COMPILE_CY_PER_BYTE};
pub use machine::{run_bare, run_bare_with, run_custom, run_with_fs, timed, ResultSlot};
pub use membench::{mem_bandwidth, standard_buffer_sizes, TOTAL_TRAFFIC};
pub use multiuser::{
    pipe_rtt_us_multiuser, pipe_rtt_us_singleuser, run_multiuser, syscall_us_multiuser,
};
pub use nfsmab::{mab_over_nfs, mab_over_nfs_faulty};
pub use procbench::{fork_exec_us, fork_exit_us};
pub use ttcp::{packet_sizes, udp_bandwidth_mbit, TTCP_TOTAL};

// Re-export the vocabulary types callers need.
pub use tnt_cpu::{LibcVariant, MemRoutine};
pub use tnt_os::Os;
