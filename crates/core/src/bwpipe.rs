//! lmbench's `bw_pipe` (Table 4): a parent and child move 50 MB through
//! a pipe in 64 KB chunks.

use crate::machine::{run_bare, timed};
use tnt_os::Os;
use tnt_sim::mbit_per_sec;

/// Total bytes moved, as in lmbench.
pub const BW_PIPE_TOTAL: u64 = 50 * 1024 * 1024;

/// Chunk size of each write, as in lmbench.
pub const BW_PIPE_CHUNK: u64 = 64 * 1024;

/// Pipe bandwidth in megabits per second for `total` bytes in `chunk`
/// sized writes.
pub fn pipe_bandwidth_mbit(os: Os, total: u64, chunk: u64, seed: u64) -> f64 {
    run_bare(os, seed, move |p| {
        let (rd, wr) = p.pipe();
        let child = p.fork("bw_pipe_writer", move |c| {
            c.close(rd).unwrap();
            let mut sent = 0;
            while sent < total {
                sent += c.write(wr, chunk.min(total - sent)).unwrap();
            }
            c.close(wr).unwrap();
        });
        p.close(wr).unwrap();
        let (received, d) = timed(p, || {
            let mut received = 0;
            loop {
                let n = p.read(rd, chunk).unwrap();
                if n == 0 {
                    break;
                }
                received += n;
            }
            received
        });
        assert_eq!(received, total, "every byte crossed the pipe");
        p.waitpid(child);
        mbit_per_sec(total, d)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = 4 * 1024 * 1024; // 4 MB keeps debug tests quick.

    #[test]
    fn table4_values() {
        let linux = pipe_bandwidth_mbit(Os::Linux, T, BW_PIPE_CHUNK, 0);
        let freebsd = pipe_bandwidth_mbit(Os::FreeBsd, T, BW_PIPE_CHUNK, 0);
        let solaris = pipe_bandwidth_mbit(Os::Solaris, T, BW_PIPE_CHUNK, 0);
        assert!(
            (linux - 119.36).abs() < 15.0,
            "Linux ~119 Mb/s, got {linux:.1}"
        );
        assert!(
            (freebsd - 98.03).abs() < 12.0,
            "FreeBSD ~98 Mb/s, got {freebsd:.1}"
        );
        assert!(
            (solaris - 65.38).abs() < 10.0,
            "Solaris ~65 Mb/s, got {solaris:.1}"
        );
        assert!(linux > freebsd && freebsd > solaris);
    }

    #[test]
    fn solaris_norm_is_about_055() {
        let linux = pipe_bandwidth_mbit(Os::Linux, T, BW_PIPE_CHUNK, 1);
        let solaris = pipe_bandwidth_mbit(Os::Solaris, T, BW_PIPE_CHUNK, 1);
        let norm = solaris / linux;
        assert!(
            (norm - 0.55).abs() < 0.12,
            "Table 4 Norm column ~0.55, got {norm:.2}"
        );
    }
}
