//! Round-trip latency microbenchmarks in the style of the lmbench suite
//! the paper draws from: one-byte ping-pong over each IPC/network path,
//! plus a null RPC against an NFS server. The paper reports bandwidths;
//! these latencies complete the picture (and pin down the per-operation
//! constants the bandwidth calibrations imply).

use std::sync::Arc;

use crate::machine::{run_bare, timed, ResultSlot};
use tnt_fs::SimFs;
use tnt_net::{connect, Addr, Net, Recv, TcpListener, UdpSocket};
use tnt_nfs::{serve, NfsCall, NfsReply, NfsServerConfig};
use tnt_os::{boot_cluster, Os, UProc};
use tnt_sim::Cycles;

/// lmbench `lat_pipe`: one byte bounced between two processes through a
/// pair of pipes. Returns µs per round trip.
pub fn lat_pipe_us(os: Os, round_trips: u32, seed: u64) -> f64 {
    run_bare(os, seed, move |p| {
        let (rd_a, wr_a) = p.pipe(); // parent -> child
        let (rd_b, wr_b) = p.pipe(); // child -> parent
        let child = p.fork("pong", move |c| {
            for _ in 0..round_trips {
                if c.read(rd_a, 1).unwrap() == 0 {
                    break;
                }
                c.write(wr_b, 1).unwrap();
            }
        });
        let (_, d) = timed(p, || {
            for _ in 0..round_trips {
                p.write(wr_a, 1).unwrap();
                p.read(rd_b, 1).unwrap();
            }
        });
        p.waitpid(child);
        d.as_micros() / round_trips as f64
    })
}

/// lmbench `lat_udp`: a one-byte datagram ping-pong over loopback.
pub fn lat_udp_us(os: Os, round_trips: u32, seed: u64) -> f64 {
    run_bare(os, seed, move |p| {
        let kernel = p.kernel().clone();
        let net = Net::ethernet_10mbit();
        let host = net.register_host(&kernel);
        let ping = UdpSocket::bind(&net, &kernel, host, 9000).unwrap();
        let pong = UdpSocket::bind(&net, &kernel, host, 9001).unwrap();
        let ping_addr = ping.addr();
        let pong_addr = pong.addr();
        let child = p.fork("pong", move |_| {
            for _ in 0..round_trips {
                match pong.recv().unwrap() {
                    Some(pkt) => {
                        pong.send_to(pkt.from, vec![1]).unwrap();
                    }
                    None => break,
                }
            }
        });
        let (_, d) = timed(p, || {
            for _ in 0..round_trips {
                ping.send_to(pong_addr, vec![0]).unwrap();
                ping.recv().unwrap().unwrap();
            }
        });
        p.waitpid(child);
        let _ = ping_addr;
        d.as_micros() / round_trips as f64
    })
}

/// lmbench `lat_tcp`: a one-byte ping-pong over a loopback connection.
pub fn lat_tcp_us(os: Os, round_trips: u32, seed: u64) -> f64 {
    run_bare(os, seed, move |p| {
        let kernel = p.kernel().clone();
        let net = Net::ethernet_10mbit();
        let host = net.register_host(&kernel);
        let listener = TcpListener::bind(&net, &kernel, host, 9002).unwrap();
        let child = p.fork("pong", move |_| {
            let conn = listener.accept().unwrap();
            loop {
                if conn.read(1).unwrap() == 0 {
                    break;
                }
                conn.write(1).unwrap();
            }
        });
        let conn = connect(&net, &kernel, host, Addr { host, port: 9002 }).unwrap();
        let (_, d) = timed(p, || {
            for _ in 0..round_trips {
                conn.write(1).unwrap();
                while conn.read(1).unwrap() == 0 {}
            }
        });
        conn.close();
        p.waitpid(child);
        d.as_micros() / round_trips as f64
    })
}

/// lmbench `lat_rpc`-style: NULL RPC round trips from `client_os` to an
/// NFS server over the 10 Mb/s Ethernet. Returns µs per call.
pub fn lat_rpc_us(client_os: Os, server_os: Os, round_trips: u32, seed: u64) -> f64 {
    let (sim, kernels) = boot_cluster(&[client_os, server_os], seed);
    let net = Net::ethernet_10mbit();
    let ch = net.register_host(&kernels[0]);
    let sh = net.register_host(&kernels[1]);
    let fs = SimFs::fresh_for_os(server_os);
    kernels[1].mount(fs.clone());
    let server = serve(
        &net,
        &kernels[1],
        sh,
        fs,
        NfsServerConfig::for_os(server_os),
    )
    .unwrap();
    let server_addr = server.addr();
    let slot: ResultSlot<f64> = ResultSlot::new();
    let s2 = slot.clone();
    let kernel = kernels[0].clone();
    kernels[0].spawn_user("lat_rpc", move |p: UProc| {
        let sock = Arc::new(UdpSocket::bind(&net, &kernel, ch, 901).unwrap());
        let (_, d) = timed(&p, || {
            for xid in 1..=round_trips {
                let req = tnt_nfs::RpcRequest {
                    xid,
                    call: NfsCall::Null,
                };
                sock.send_to(server_addr, req.encode()).unwrap();
                // A bare recv() would hang forever if the fault plane
                // eats the request or the reply; retransmit with the
                // same xid so the server's dup cache keeps it one call.
                let pkt = loop {
                    match sock.recv_timeout(Cycles::from_millis(700.0)).unwrap() {
                        Recv::Packet(pkt) => break pkt,
                        Recv::TimedOut => {
                            sock.send_to(server_addr, req.encode()).unwrap();
                        }
                        Recv::Closed => panic!("rpc socket closed mid-benchmark"),
                    }
                };
                let reply = tnt_nfs::RpcReply::decode(&pkt.data).unwrap();
                assert_eq!(reply.reply, NfsReply::Ok);
            }
        });
        s2.put(d.as_micros() / round_trips as f64);
        p.sim().stop();
    });
    sim.run().unwrap();
    slot.take().expect("latency measured")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_latency_orders_like_figure_1() {
        // A pipe round trip is two ctx passes, so the ordering follows.
        let l = lat_pipe_us(Os::Linux, 200, 0);
        let f = lat_pipe_us(Os::FreeBsd, 200, 0);
        let s = lat_pipe_us(Os::Solaris, 200, 0);
        assert!(l < f && f < s, "{l:.0} < {f:.0} < {s:.0}");
        assert!((l - 110.0).abs() < 20.0, "Linux ~2x its 55us ctx: {l:.0}");
        assert!(
            (s - 450.0).abs() < 80.0,
            "Solaris ~2x its 220us ctx: {s:.0}"
        );
    }

    #[test]
    fn udp_latency_differs_from_udp_bandwidth() {
        // Figure 13's bandwidth order is FreeBSD > Solaris > Linux, but
        // one-byte latency reorders the laggards: Solaris's heavyweight
        // dispatcher dominates tiny round trips, while Linux's per-byte
        // copy costs vanish. FreeBSD wins both games.
        let l = lat_udp_us(Os::Linux, 100, 0);
        let f = lat_udp_us(Os::FreeBsd, 100, 0);
        let s = lat_udp_us(Os::Solaris, 100, 0);
        assert!(f < l && f < s, "FreeBSD fastest: {f:.0} vs {l:.0}/{s:.0}");
        assert!(
            s > l,
            "Solaris dispatch costs dominate 1-byte RTTs: {s:.0} vs {l:.0}"
        );
    }

    #[test]
    fn tcp_latency_dominated_by_scheduling_not_window() {
        // One-byte ping-pong never fills any window, so even Linux's
        // one-packet window does not matter here.
        let l = lat_tcp_us(Os::Linux, 100, 0);
        let f = lat_tcp_us(Os::FreeBsd, 100, 0);
        assert!(
            l < 1_000.0 && f < 1_000.0,
            "sub-ms round trips: {l:.0}, {f:.0}"
        );
        assert!(f < l, "FreeBSD's stack is leaner: {f:.0} vs {l:.0}");
    }

    #[test]
    fn null_rpc_includes_the_wire() {
        let us = lat_rpc_us(Os::FreeBsd, Os::SunOs, 50, 0);
        // Two small frames on 10 Mb/s Ethernet alone are ~0.2 ms; with
        // both stacks, a null RPC lands in the low milliseconds.
        assert!(us > 300.0 && us < 5_000.0, "null RPC {us:.0}us");
    }

    #[test]
    fn rpc_latency_reflects_client_stack() {
        let linux = lat_rpc_us(Os::Linux, Os::Linux, 50, 0);
        let freebsd = lat_rpc_us(Os::FreeBsd, Os::Linux, 50, 0);
        assert!(
            freebsd < linux,
            "Linux's UDP path is dearer: {freebsd:.0} vs {linux:.0}"
        );
    }
}
