//! The Modified Andrew Benchmark (Table 3, and over NFS Tables 6-7).
//!
//! Five timed phases over a synthetic software tree, preceded by an
//! untimed setup that installs the pristine sources (the paper's tree
//! ships with the benchmark):
//!
//! 1. **MakeDir** — create the working directory tree;
//! 2. **Copy** — copy every source file into it;
//! 3. **ScanDir** — recursive directory listing with a stat of every
//!    entry (where FreeBSD's attribute cache shines);
//! 4. **ReadAll** — read every file;
//! 5. **Compile** — fork+exec a compiler per unit: read the source and
//!    the shared headers, burn CPU proportional to the bytes processed
//!    (the same "gcc" everywhere, as the paper arranged), write and
//!    reread an assembler temporary under `/tmp`, emit the object file;
//!    finally link.
//!
//! Compiler CPU is identical across systems; the cross-OS differences
//! come from fork/exec, filesystem metadata policy and caching — exactly
//! the knobs the paper credits.

use crate::machine::timed;
use tnt_os::{OpenFlags, Os, UProc};
use tnt_sim::Cycles;

/// CPU cycles the model compiler burns per byte of source + headers.
/// Calibrated so the phase-5 total matches Table 3's scale.
pub const COMPILE_CY_PER_BYTE: u64 = 1_950;

/// Bytes of object code emitted per source byte.
pub const OBJ_FRACTION: f64 = 0.6;

/// Bytes of assembler temporary emitted per source byte.
pub const ASM_FRACTION: f64 = 2.0;

/// A file in the benchmark tree.
#[derive(Clone, Debug)]
pub struct MabFile {
    /// Path relative to the tree root, e.g. `"cccp/lex.c"`.
    pub rel: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Whether phase 5 compiles it.
    pub compile: bool,
}

/// The synthetic source tree.
#[derive(Clone, Debug)]
pub struct MabSpec {
    /// Directories (relative), parents before children.
    pub dirs: Vec<String>,
    /// Files, including headers.
    pub files: Vec<MabFile>,
    /// Indices into `files` of the shared headers every compile reads.
    pub headers: Vec<usize>,
}

impl MabSpec {
    /// The standard tree: 5 subdirectories, 70 files totalling ~350 KB,
    /// 25 compile units, 8 shared headers — the shape of the Andrew
    /// benchmark sources.
    pub fn standard() -> MabSpec {
        let dirs = ["cccp", "cp", "config", "objc", "doc"]
            .iter()
            .map(|d| d.to_string())
            .collect();
        let mut files = Vec::new();
        let mut headers = Vec::new();
        // Deterministic sizes from a small LCG, 1-18 KB.
        let mut x: u64 = 12345;
        let mut next = |lo: u64, hi: u64| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lo + (x >> 33) % (hi - lo)
        };
        for (d, dir) in ["cccp", "cp", "config", "objc", "doc"].iter().enumerate() {
            for i in 0..14 {
                let compile = d < 2 && i < 13; // 26 candidates; trim to 25 below.
                let ext = if compile {
                    "c"
                } else if i % 3 == 0 {
                    "h"
                } else {
                    "txt"
                };
                let bytes = next(1024, 18 * 1024);
                files.push(MabFile {
                    rel: format!("{dir}/file{i:02}.{ext}"),
                    bytes,
                    compile,
                });
            }
        }
        // Exactly 25 compile units.
        let mut seen = 0;
        for f in &mut files {
            if f.compile {
                seen += 1;
                if seen > 25 {
                    f.compile = false;
                }
            }
        }
        // Eight shared headers from config/ and objc/.
        for (i, f) in files.iter().enumerate() {
            if (f.rel.starts_with("config/") || f.rel.starts_with("objc/"))
                && f.rel.ends_with('h')
                && headers.len() < 8
            {
                headers.push(i);
            }
        }
        MabSpec {
            dirs,
            files,
            headers,
        }
    }

    /// Total bytes of all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes).sum()
    }

    /// Number of compile units.
    pub fn compile_units(&self) -> usize {
        self.files.iter().filter(|f| f.compile).count()
    }
}

/// Per-phase and total times of one MAB run, in seconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct MabReport {
    /// MakeDir, Copy, ScanDir, ReadAll, Compile.
    pub phase_s: [f64; 5],
    /// Sum of the five phases.
    pub total_s: f64,
}

/// The chunk size of copy/read loops.
const IO_CHUNK: u64 = 8192;

fn read_all(p: &UProc, path: &str) -> u64 {
    let fd = p.open(path, OpenFlags::rdonly()).unwrap();
    let mut total = 0;
    loop {
        let n = p.read(fd, IO_CHUNK).unwrap();
        if n == 0 {
            break;
        }
        total += n;
    }
    p.close(fd).unwrap();
    total
}

fn write_file(p: &UProc, path: &str, bytes: u64) {
    let fd = p.creat(path).unwrap();
    let mut left = bytes;
    while left > 0 {
        let n = IO_CHUNK.min(left);
        p.write(fd, n).unwrap();
        left -= n;
    }
    p.close(fd).unwrap();
}

/// Installs the pristine source tree under `/src` (untimed setup).
pub fn mab_setup(p: &UProc, spec: &MabSpec) {
    p.mkdir("/src").unwrap();
    for d in &spec.dirs {
        p.mkdir(&format!("/src/{d}")).unwrap();
    }
    for f in &spec.files {
        write_file(p, &format!("/src/{}", f.rel), f.bytes);
    }
}

/// Runs the five timed phases against `/src` -> `/work`, with compiler
/// temporaries under `/tmp`. Requires [`mab_setup`] first.
pub fn run_mab(p: &UProc, spec: &MabSpec) -> MabReport {
    let mut report = MabReport::default();

    // Phase 1: MakeDir.
    let (_, t1) = timed(p, || {
        p.mkdir("/work").unwrap();
        for d in &spec.dirs {
            p.mkdir(&format!("/work/{d}")).unwrap();
        }
    });

    // Phase 2: Copy.
    let (_, t2) = timed(p, || {
        for f in &spec.files {
            let got = read_all(p, &format!("/src/{}", f.rel));
            assert_eq!(got, f.bytes);
            write_file(p, &format!("/work/{}", f.rel), f.bytes);
        }
    });

    // Phase 3: ScanDir (ls -lR of the working tree).
    let (_, t3) = timed(p, || {
        let top = p.readdir("/work").unwrap();
        for d in top {
            let names = p.readdir(&format!("/work/{d}")).unwrap();
            for n in names {
                let attr = p.stat(&format!("/work/{d}/{n}")).unwrap();
                assert!(!attr.is_dir);
            }
        }
    });

    // Phase 4: ReadAll (grep -r over the tree).
    let (_, t4) = timed(p, || {
        for f in &spec.files {
            read_all(p, &format!("/work/{}", f.rel));
        }
    });

    // Phase 5: Compile and link.
    let (_, t5) = timed(p, || {
        let header_bytes: u64 = spec.headers.iter().map(|&i| spec.files[i].bytes).sum();
        let mut objs: Vec<(String, u64)> = Vec::new();
        for (i, f) in spec.files.iter().enumerate() {
            if !f.compile {
                continue;
            }
            let src_path = format!("/work/{}", f.rel);
            let obj_path = format!("/work/{}.o", f.rel.trim_end_matches(".c"));
            let tmp_path = format!("/tmp/cc{i:03}.s");
            let headers: Vec<String> = spec
                .headers
                .iter()
                .map(|&h| format!("/work/{}", spec.files[h].rel))
                .collect();
            let bytes = f.bytes;
            let obj_bytes = (bytes as f64 * OBJ_FRACTION) as u64;
            let asm_bytes = (bytes as f64 * ASM_FRACTION) as u64;
            let op = obj_path.clone();
            let child = p.fork("cc1", move |c| {
                c.exec(); // cc1
                read_all(&c, &src_path);
                for h in &headers {
                    read_all(&c, h);
                }
                c.compute(Cycles((bytes + header_bytes) * COMPILE_CY_PER_BYTE));
                write_file(&c, &tmp_path, asm_bytes);
                // The assembler pass.
                c.exec(); // as
                read_all(&c, &tmp_path);
                c.compute(Cycles(asm_bytes * COMPILE_CY_PER_BYTE / 10));
                write_file(&c, &op, obj_bytes);
                c.unlink(&tmp_path).unwrap();
            });
            p.waitpid(child);
            objs.push((obj_path, obj_bytes));
        }
        // Link: ld reads every object and writes the binary.
        let total_obj: u64 = objs.iter().map(|(_, b)| b).sum();
        let link = p.fork("ld", move |c| {
            c.exec();
            for (o, _) in &objs {
                read_all(&c, o);
            }
            c.compute(Cycles(total_obj * COMPILE_CY_PER_BYTE / 8));
            // ld writes to a temporary and renames it into place, so a
            // crashed link never leaves a truncated a.out.
            write_file(&c, "/work/a.out.tmp", total_obj);
            c.rename("/work/a.out.tmp", "/work/a.out").unwrap();
        });
        p.waitpid(link);
    });

    report.phase_s = [
        t1.as_secs(),
        t2.as_secs(),
        t3.as_secs(),
        t4.as_secs(),
        t5.as_secs(),
    ];
    report.total_s = report.phase_s.iter().sum();
    report
}

/// Table 3: MAB on the local filesystem, with `/tmp` on the system disk.
pub fn mab_local(os: Os, seed: u64) -> MabReport {
    use tnt_fs::{Disk, DiskParams, FsParams, SimFs};
    let (sim, kernel) = tnt_os::boot(os, seed);
    kernel.mount(SimFs::fresh_for_os(os));
    let tmp_disk = std::sync::Arc::new(Disk::new(DiskParams::quantum2100()));
    kernel.mount_at("/tmp", SimFs::new(tmp_disk, FsParams::for_os(os)));
    let slot = crate::machine::ResultSlot::new();
    let s2 = slot.clone();
    kernel.spawn_user("mab", move |p| {
        let spec = MabSpec::standard();
        mab_setup(&p, &spec);
        s2.put(run_mab(&p, &spec));
    });
    sim.run().expect("MAB simulation failed");
    slot.take().expect("MAB produced a report")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_shape() {
        let spec = MabSpec::standard();
        assert_eq!(spec.dirs.len(), 5);
        assert_eq!(spec.files.len(), 70);
        assert_eq!(spec.compile_units(), 25);
        assert_eq!(spec.headers.len(), 8);
        let total = spec.total_bytes();
        assert!(
            total > 250 * 1024 && total < 800 * 1024,
            "tree ~350-650KB, got {total}"
        );
    }

    #[test]
    fn spec_is_deterministic() {
        let a = MabSpec::standard();
        let b = MabSpec::standard();
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(a.files[0].bytes, b.files[0].bytes);
    }

    #[test]
    fn table3_ordering_and_scale() {
        let linux = mab_local(Os::Linux, 0);
        let freebsd = mab_local(Os::FreeBsd, 0);
        let solaris = mab_local(Os::Solaris, 0);
        assert!(
            linux.total_s < freebsd.total_s && freebsd.total_s < solaris.total_s,
            "Table 3 order: {:.1} < {:.1} < {:.1}",
            linux.total_s,
            freebsd.total_s,
            solaris.total_s
        );
        assert!(
            (linux.total_s - 43.12).abs() < 7.0,
            "Linux ~43s, got {:.1}",
            linux.total_s
        );
        assert!(
            (freebsd.total_s - 47.45).abs() < 7.0,
            "FreeBSD ~47s, got {:.1}",
            freebsd.total_s
        );
        assert!(
            (solaris.total_s - 54.31).abs() < 8.0,
            "Solaris ~54s, got {:.1}",
            solaris.total_s
        );
    }

    #[test]
    fn freebsd_wins_the_stat_phase() {
        let linux = mab_local(Os::Linux, 0);
        let freebsd = mab_local(Os::FreeBsd, 0);
        assert!(
            freebsd.phase_s[2] < linux.phase_s[2],
            "attribute cache: FreeBSD {:.3}s < Linux {:.3}s",
            freebsd.phase_s[2],
            linux.phase_s[2]
        );
    }

    #[test]
    fn compile_dominates() {
        let r = mab_local(Os::Linux, 0);
        assert!(
            r.phase_s[4] > 0.6 * r.total_s,
            "phase 5 dominates: {:?}",
            r.phase_s
        );
    }
}
