//! The Figure 1 context-switch benchmark, `ctx`.
//!
//! A one-byte token circulates through pipes between N processes; each
//! pass costs one write, one read and one context switch, and the
//! reported number is total time divided by passes — pipe overhead
//! included, exactly as the paper reports it.
//!
//! Two circulation patterns:
//! - [`CtxPattern::Ring`]: 0 → 1 → ... → N-1 → 0 (the main benchmark);
//! - [`CtxPattern::LifoChain`]: 0 → 1 → ... → N-1 → ... → 1 → 0, the
//!   variant the authors wrote to probe the Solaris dispatch-table
//!   anomaly.

use crate::machine::{run_bare_with, timed};
use tnt_os::{Os, OsCosts};

/// Token circulation pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtxPattern {
    /// Round-robin ring.
    Ring,
    /// Back-and-forth chain (the paper's "Solaris-LIFO").
    LifoChain,
}

/// Average time per context switch (token pass) in microseconds, with
/// `nprocs` active processes and roughly `nswitches` passes.
pub fn ctx_us(os: Os, nprocs: usize, nswitches: u64, pattern: CtxPattern, seed: u64) -> f64 {
    ctx_us_with(OsCosts::for_os(os), nprocs, nswitches, pattern, seed)
}

/// [`ctx_us`] with an explicit cost table — used to project the Section
/// 13 next releases (Linux 1.3.40, Solaris 2.5) and for scheduler
/// ablations.
pub fn ctx_us_with(
    costs: OsCosts,
    nprocs: usize,
    nswitches: u64,
    pattern: CtxPattern,
    seed: u64,
) -> f64 {
    assert!(nprocs >= 2, "ctx needs at least two processes");
    match pattern {
        CtxPattern::Ring => ring(costs, nprocs, nswitches, seed),
        CtxPattern::LifoChain => chain(costs, nprocs, nswitches, seed),
    }
}

fn ring(costs: OsCosts, nprocs: usize, nswitches: u64, seed: u64) -> f64 {
    run_bare_with(costs, seed, move |p| {
        let rounds = (nswitches / nprocs as u64).max(1);
        // Pipe i is read by process i; process i writes pipe (i+1) % N.
        let pipes: Vec<(u32, u32)> = (0..nprocs).map(|_| p.pipe()).collect();
        let mut children = Vec::new();
        for i in 1..nprocs {
            let rd = pipes[i].0;
            let wr = pipes[(i + 1) % nprocs].1;
            children.push(p.fork(format!("ring{i}"), move |c| {
                for _ in 0..rounds {
                    c.read(rd, 1).unwrap();
                    c.write(wr, 1).unwrap();
                }
            }));
        }
        let my_rd = pipes[0].0;
        let my_wr = pipes[1 % nprocs].1;
        let (_, d) = timed(p, || {
            for _ in 0..rounds {
                p.write(my_wr, 1).unwrap();
                p.read(my_rd, 1).unwrap();
            }
        });
        for c in children {
            p.waitpid(c);
        }
        d.as_micros() / (rounds * nprocs as u64) as f64
    })
}

fn chain(costs: OsCosts, nprocs: usize, nswitches: u64, seed: u64) -> f64 {
    run_bare_with(costs, seed, move |p| {
        let passes_per_cycle = 2 * (nprocs as u64 - 1);
        let rounds = (nswitches / passes_per_cycle).max(1);
        // up[i] carries the token i -> i+1, down[i] carries i+1 -> i.
        let up: Vec<(u32, u32)> = (0..nprocs - 1).map(|_| p.pipe()).collect();
        let down: Vec<(u32, u32)> = (0..nprocs - 1).map(|_| p.pipe()).collect();
        let mut children = Vec::new();
        for i in 1..nprocs {
            let last = i == nprocs - 1;
            let rd_up = up[i - 1].0;
            let wr_down = down[i - 1].1;
            let (wr_up, rd_down) = if last { (0, 0) } else { (up[i].1, down[i].0) };
            children.push(p.fork(format!("chain{i}"), move |c| {
                for _ in 0..rounds {
                    c.read(rd_up, 1).unwrap();
                    if last {
                        c.write(wr_down, 1).unwrap();
                    } else {
                        c.write(wr_up, 1).unwrap();
                        c.read(rd_down, 1).unwrap();
                        c.write(wr_down, 1).unwrap();
                    }
                }
            }));
        }
        let (_, d) = timed(p, || {
            for _ in 0..rounds {
                p.write(up[0].1, 1).unwrap();
                p.read(down[0].0, 1).unwrap();
            }
        });
        for c in children {
            p.waitpid(c);
        }
        d.as_micros() / (rounds * passes_per_cycle) as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SWITCHES: u64 = 1_200;

    #[test]
    fn figure1_two_process_values() {
        // Figure 1 at two processes: Linux ~55, FreeBSD ~80, Solaris ~220.
        let linux = ctx_us(Os::Linux, 2, SWITCHES, CtxPattern::Ring, 0);
        let freebsd = ctx_us(Os::FreeBsd, 2, SWITCHES, CtxPattern::Ring, 0);
        let solaris = ctx_us(Os::Solaris, 2, SWITCHES, CtxPattern::Ring, 0);
        assert!((linux - 55.0).abs() < 8.0, "Linux ~55us, got {linux:.1}");
        assert!(
            (freebsd - 80.0).abs() < 10.0,
            "FreeBSD ~80us, got {freebsd:.1}"
        );
        assert!(
            (solaris - 220.0).abs() < 25.0,
            "Solaris ~220us, got {solaris:.1}"
        );
    }

    #[test]
    fn linux_grows_linearly_and_crosses_freebsd_near_20() {
        let linux10 = ctx_us(Os::Linux, 10, SWITCHES, CtxPattern::Ring, 0);
        let linux40 = ctx_us(Os::Linux, 40, SWITCHES, CtxPattern::Ring, 0);
        let freebsd10 = ctx_us(Os::FreeBsd, 10, SWITCHES, CtxPattern::Ring, 0);
        let freebsd40 = ctx_us(Os::FreeBsd, 40, SWITCHES, CtxPattern::Ring, 0);
        assert!(linux10 < freebsd10, "below 20 procs Linux wins");
        assert!(linux40 > freebsd40, "above 20 procs FreeBSD wins");
        // FreeBSD is flat.
        assert!((freebsd40 - freebsd10).abs() / freebsd10 < 0.05);
        // Linux slope is ~1.4 us per process.
        let slope = (linux40 - linux10) / 30.0;
        assert!(
            (slope - 1.4).abs() < 0.4,
            "Linux slope ~1.4us/proc, got {slope:.2}"
        );
    }

    #[test]
    fn solaris_jumps_at_32_processes() {
        let at24 = ctx_us(Os::Solaris, 24, SWITCHES, CtxPattern::Ring, 0);
        let at40 = ctx_us(Os::Solaris, 40, SWITCHES, CtxPattern::Ring, 0);
        assert!(
            at40 - at24 > 50.0,
            "sharp jump past 32 procs: {at24:.0} -> {at40:.0}"
        );
    }

    #[test]
    fn solaris_lifo_defers_part_of_the_jump() {
        let ring48 = ctx_us(Os::Solaris, 48, SWITCHES, CtxPattern::Ring, 0);
        let lifo48 = ctx_us(Os::Solaris, 48, SWITCHES, CtxPattern::LifoChain, 0);
        assert!(
            lifo48 < ring48 - 15.0,
            "LIFO at 48 procs keeps some table hits: ring {ring48:.0} vs lifo {lifo48:.0}"
        );
    }

    #[test]
    fn chain_token_accounting_terminates() {
        // Small sanity run of the chain pattern on every OS.
        for os in Os::benchmarked() {
            let us = ctx_us(os, 3, 60, CtxPattern::LifoChain, 1);
            assert!(us > 0.0);
        }
    }
}
