//! lmbench's `bw_tcp` (Table 5): 3 MB through a loopback TCP connection
//! using a 48 KB buffer.

use crate::machine::{run_bare, timed};
use tnt_net::{connect, connect_custom, Addr, Net, NetCosts, TcpCosts, TcpListener};
use tnt_os::Os;
use tnt_sim::mbit_per_sec;

/// Bytes per iteration, as in lmbench.
pub const BW_TCP_TOTAL: u64 = 3 * 1024 * 1024;

/// Write/read buffer size, as in lmbench.
pub const BW_TCP_CHUNK: u64 = 48 * 1024;

/// TCP loopback bandwidth in megabits per second.
pub fn tcp_bandwidth_mbit(os: Os, total: u64, chunk: u64, seed: u64) -> f64 {
    run_bare(os, seed, move |p| {
        let kernel = p.kernel().clone();
        let net = Net::ethernet_10mbit();
        let host = net.register_host(&kernel);
        let listener = TcpListener::bind(&net, &kernel, host, 5001).unwrap();
        let child = p.fork("bw_tcp_srv", move |_| {
            let conn = listener.accept().unwrap();
            while conn.read(chunk).unwrap() > 0 {}
        });
        let conn = connect(&net, &kernel, host, Addr { host, port: 5001 }).unwrap();
        let (_, d) = timed(p, || {
            let mut sent = 0;
            while sent < total {
                sent += conn.write(chunk.min(total - sent)).unwrap();
            }
            conn.close();
            p.waitpid(child);
        });
        mbit_per_sec(total, d)
    })
}

/// [`tcp_bandwidth_mbit`] with the send window forced to
/// `window_packets` segments — the `x1` ablation: what Table 5 would
/// look like had Linux 1.2.8 shipped a larger window.
pub fn tcp_bandwidth_with_window(
    os: Os,
    window_packets: u64,
    total: u64,
    chunk: u64,
    seed: u64,
) -> f64 {
    assert!(window_packets >= 1);
    run_bare(os, seed, move |p| {
        let kernel = p.kernel().clone();
        let net = Net::ethernet_10mbit();
        let host = net.register_host(&kernel);
        let base = NetCosts::for_os(os).tcp;
        let costs = TcpCosts {
            window: base.mss * window_packets,
            ..base
        };
        let listener = TcpListener::bind(&net, &kernel, host, 5001).unwrap();
        let child = p.fork("bw_tcp_srv", move |_| {
            let conn = listener.accept().unwrap();
            while conn.read(chunk).unwrap() > 0 {}
        });
        let conn = connect_custom(&net, &kernel, host, Addr { host, port: 5001 }, costs).unwrap();
        let (_, d) = timed(p, || {
            let mut sent = 0;
            while sent < total {
                sent += conn.write(chunk.min(total - sent)).unwrap();
            }
            conn.close();
            p.waitpid(child);
        });
        mbit_per_sec(total, d)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = 1 << 20;

    #[test]
    fn table5_values() {
        let freebsd = tcp_bandwidth_mbit(Os::FreeBsd, T, BW_TCP_CHUNK, 0);
        let solaris = tcp_bandwidth_mbit(Os::Solaris, T, BW_TCP_CHUNK, 0);
        let linux = tcp_bandwidth_mbit(Os::Linux, T, BW_TCP_CHUNK, 0);
        assert!(
            (freebsd - 65.95).abs() < 8.0,
            "FreeBSD ~66 Mb/s, got {freebsd:.1}"
        );
        assert!(
            (solaris - 60.11).abs() < 8.0,
            "Solaris ~60 Mb/s, got {solaris:.1}"
        );
        assert!(
            (linux - 25.03).abs() < 5.0,
            "Linux ~25 Mb/s, got {linux:.1}"
        );
        assert!(freebsd > solaris && solaris > linux);
    }

    #[test]
    fn window_ablation_monotone() {
        // Widening the window lifts Linux TCP toward its per-byte limit.
        let w1 = tcp_bandwidth_with_window(Os::Linux, 1, T, BW_TCP_CHUNK, 0);
        let w4 = tcp_bandwidth_with_window(Os::Linux, 4, T, BW_TCP_CHUNK, 0);
        let w12 = tcp_bandwidth_with_window(Os::Linux, 12, T, BW_TCP_CHUNK, 0);
        assert!(w4 > 1.5 * w1, "4 packets beats 1: {w4:.0} vs {w1:.0}");
        assert!(w12 > w4, "12 beats 4: {w12:.0} vs {w4:.0}");
        let stock = tcp_bandwidth_mbit(Os::Linux, T, BW_TCP_CHUNK, 0);
        assert!(
            (w1 - stock).abs() / stock < 0.05,
            "window=1 IS the stock Linux"
        );
    }

    #[test]
    fn linux_tcp_not_faster_than_a_window_per_roundtrip() {
        // With a one-packet window, bandwidth is bounded by
        // mss / (round trip), whatever the chunk size.
        let with_big_chunks = tcp_bandwidth_mbit(Os::Linux, T, 128 * 1024, 0);
        let with_small_chunks = tcp_bandwidth_mbit(Os::Linux, T, 8 * 1024, 0);
        assert!(
            (with_big_chunks - with_small_chunks).abs() / with_small_chunks < 0.25,
            "chunking barely matters against a one-packet window: {with_big_chunks:.1} vs {with_small_chunks:.1}"
        );
    }
}
