//! Process-creation latencies, in the style of the Ousterhout suite and
//! lmbench's `lat_proc` — companions to the paper's toolkit that the
//! paper itself does not tabulate, but whose costs drive the MAB compile
//! phase (Table 3) through fork and exec.

use crate::machine::{run_bare, timed};
use tnt_os::Os;
use tnt_sim::Cycles;

/// Latency of fork + child exit + waitpid, in microseconds.
pub fn fork_exit_us(os: Os, iters: u32, seed: u64) -> f64 {
    run_bare(os, seed, move |p| {
        let (_, d) = timed(p, || {
            for _ in 0..iters {
                let child = p.fork("child", |_| {});
                p.waitpid(child);
            }
        });
        d.as_micros() / iters as f64
    })
}

/// Latency of fork + exec + exit + waitpid (the `cc1`-launch pattern of
/// MAB's compile phase), in microseconds.
pub fn fork_exec_us(os: Os, iters: u32, seed: u64) -> f64 {
    run_bare(os, seed, move |p| {
        let (_, d) = timed(p, || {
            for _ in 0..iters {
                let child = p.fork("child", |c| {
                    c.exec();
                    c.compute(Cycles(1_000)); // A trivial program body.
                });
                p.waitpid(child);
            }
        });
        d.as_micros() / iters as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_is_sub_millisecond_everywhere() {
        for os in Os::benchmarked() {
            let us = fork_exit_us(os, 20, 0);
            assert!(us > 100.0 && us < 2_500.0, "{os:?}: fork+exit {us:.0}us");
        }
    }

    #[test]
    fn exec_dominates_fork() {
        for os in Os::benchmarked() {
            let fork = fork_exit_us(os, 20, 0);
            let exec = fork_exec_us(os, 20, 0);
            assert!(
                exec > 3.0 * fork,
                "{os:?}: exec-heavy {exec:.0}us vs fork {fork:.0}us"
            );
        }
    }

    #[test]
    fn solaris_exec_is_the_slowest_by_far() {
        // The dynamic-linking story that drags its Table 3 result.
        let linux = fork_exec_us(Os::Linux, 10, 0);
        let solaris = fork_exec_us(Os::Solaris, 10, 0);
        assert!(
            solaris > 4.0 * linux,
            "Solaris exec {solaris:.0}us vs Linux {linux:.0}us"
        );
    }

    #[test]
    fn ordering_matches_trap_costs() {
        let l = fork_exit_us(Os::Linux, 20, 0);
        let f = fork_exit_us(Os::FreeBsd, 20, 0);
        let s = fork_exit_us(Os::Solaris, 20, 0);
        assert!(l < f && f < s, "fork: {l:.0} < {f:.0} < {s:.0}");
    }
}
