//! Helpers for booting benchmark machines and extracting results.

use std::sync::Arc;

use parking_lot::Mutex;

use std::sync::Arc as StdArc;

use tnt_fs::{Disk, DiskParams, FsParams, SimFs};
use tnt_os::{boot, boot_with, Kernel, Os, OsCosts, UProc};
use tnt_sim::{Cycles, Sim};

/// Runs `f` as the sole user process on a freshly booted `os` machine and
/// returns its result. The machine has no filesystem mounted.
pub fn run_bare<T, F>(os: Os, seed: u64, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce(&UProc) -> T + Send + 'static,
{
    let (sim, kernel) = boot(os, seed);
    finish(sim, kernel, f)
}

/// Like [`run_bare`] with an explicit cost table (Section 13 projections
/// and ablations).
pub fn run_bare_with<T, F>(costs: OsCosts, seed: u64, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce(&UProc) -> T + Send + 'static,
{
    let (sim, kernel) = boot_with(costs, seed);
    finish(sim, kernel, f)
}

/// Like [`run_bare`] but with a fresh per-OS filesystem mounted (the
/// paper's re-made benchmark partition on the HP 3725).
pub fn run_with_fs<T, F>(os: Os, seed: u64, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce(&UProc) -> T + Send + 'static,
{
    let (sim, kernel) = boot(os, seed);
    kernel.mount(SimFs::fresh_for_os(os));
    finish(sim, kernel, f)
}

/// Full custom machine: explicit kernel costs and filesystem personality
/// on a fresh HP 3725.
pub fn run_custom<T, F>(costs: OsCosts, fs: FsParams, seed: u64, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce(&UProc) -> T + Send + 'static,
{
    let (sim, kernel) = boot_with(costs, seed);
    let disk = StdArc::new(Disk::new(DiskParams::hp3725()));
    kernel.mount(SimFs::new(disk, fs));
    finish(sim, kernel, f)
}

fn finish<T, F>(sim: Sim, kernel: Kernel, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce(&UProc) -> T + Send + 'static,
{
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let s2 = slot.clone();
    kernel.spawn_user("bench", move |p| {
        let result = f(&p);
        *s2.lock() = Some(result);
    });
    sim.run().expect("benchmark simulation failed");
    let result = slot
        .lock()
        .take()
        .expect("benchmark did not produce a result");
    result
}

/// A shared result slot for benchmarks whose measurement lives in a
/// forked process.
pub struct ResultSlot<T>(Arc<Mutex<Option<T>>>);

impl<T> ResultSlot<T> {
    /// An empty slot.
    pub fn new() -> ResultSlot<T> {
        ResultSlot(Arc::new(Mutex::new(None)))
    }

    /// Stores a value.
    pub fn put(&self, v: T) {
        *self.0.lock() = Some(v);
    }

    /// Takes the value out.
    pub fn take(&self) -> Option<T> {
        self.0.lock().take()
    }
}

impl<T> Default for ResultSlot<T> {
    fn default() -> Self {
        ResultSlot::new()
    }
}

impl<T> Clone for ResultSlot<T> {
    fn clone(&self) -> Self {
        ResultSlot(self.0.clone())
    }
}

/// Measures the simulated duration of `f` within a process.
pub fn timed<T>(p: &UProc, f: impl FnOnce() -> T) -> (T, Cycles) {
    let t0 = p.sim().now();
    let r = f();
    (r, p.sim().now() - t0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_bare_returns_result() {
        let pid = run_bare(Os::Linux, 0, |p| p.getpid());
        assert!(pid > 0);
    }

    #[test]
    fn run_with_fs_can_do_file_io() {
        let size = run_with_fs(Os::FreeBsd, 0, |p| {
            let fd = p.creat("/x").unwrap();
            p.write(fd, 123).unwrap();
            p.close(fd).unwrap();
            p.stat("/x").unwrap().size
        });
        assert_eq!(size, 123);
    }

    #[test]
    fn timed_measures_simulated_cycles() {
        // `compute` charges through the per-run jitter factor, so the
        // measured duration is within a few percent of the request.
        let d = run_bare(Os::Linux, 0, |p| {
            let (_, d) = timed(p, || p.compute(Cycles(5_000)));
            d
        });
        let err = (d.0 as f64 - 5_000.0).abs() / 5_000.0;
        assert!(err < 0.05, "5000 cycles +- jitter, got {d:?}");
    }
}
