//! The Ousterhout `crtdel` microbenchmark (Figure 12): create a file,
//! write it, close, reopen, read, delete — a compiler's temporary file.

use crate::machine::{run_custom, run_with_fs, timed};
use tnt_fs::FsParams;
use tnt_os::{OpenFlags, Os, OsCosts, UProc};

/// Milliseconds per create/delete iteration for `file_bytes`-byte files.
pub fn crtdel_ms(os: Os, file_bytes: u64, iters: u32, seed: u64) -> f64 {
    run_with_fs(os, seed, move |p| {
        let (_, d) = timed(p, || {
            for _ in 0..iters {
                crtdel_once(p, file_bytes);
            }
        });
        d.as_millis() / iters as f64
    })
}

/// [`crtdel_ms`] with explicit kernel costs and filesystem personality
/// (the `x2` metadata-policy ablation and Section 13 projections).
pub fn crtdel_ms_with(costs: OsCosts, fs: FsParams, file_bytes: u64, iters: u32, seed: u64) -> f64 {
    run_custom(costs, fs, seed, move |p| {
        let (_, d) = timed(p, || {
            for _ in 0..iters {
                crtdel_once(p, file_bytes);
            }
        });
        d.as_millis() / iters as f64
    })
}

/// One crtdel iteration.
pub fn crtdel_once(p: &UProc, file_bytes: u64) {
    let fd = p.creat("/crtdel.tmp").unwrap();
    p.write(fd, file_bytes).unwrap();
    p.close(fd).unwrap();
    let fd = p.open("/crtdel.tmp", OpenFlags::rdonly()).unwrap();
    p.read(fd, file_bytes).unwrap();
    p.close(fd).unwrap();
    p.unlink("/crtdel.tmp").unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_small_file_values() {
        let linux = crtdel_ms(Os::Linux, 1024, 10, 0);
        let freebsd = crtdel_ms(Os::FreeBsd, 1024, 10, 0);
        let solaris = crtdel_ms(Os::Solaris, 1024, 10, 0);
        assert!(linux < 4.0, "Linux never touches the disk: {linux:.2}ms");
        assert!(
            (freebsd - 66.0).abs() < 12.0,
            "FreeBSD ~66ms, got {freebsd:.1}"
        );
        assert!(
            (solaris - 34.0).abs() < 8.0,
            "Solaris ~34ms, got {solaris:.1}"
        );
        assert!(linux * 8.0 < solaris, "order-of-magnitude Linux win");
    }

    #[test]
    fn freebsd_solaris_gap_stays_constant_with_size() {
        // Section 7.2: the FreeBSD-Solaris difference stays ~32ms from
        // 1 KB to 1 MB because it is two extra synchronous writes.
        let gap_small = crtdel_ms(Os::FreeBsd, 1024, 6, 0) - crtdel_ms(Os::Solaris, 1024, 6, 0);
        let gap_big = crtdel_ms(Os::FreeBsd, 1 << 20, 6, 0) - crtdel_ms(Os::Solaris, 1 << 20, 6, 0);
        assert!(
            (gap_small - 32.0).abs() < 10.0,
            "small gap ~32ms, got {gap_small:.1}"
        );
        assert!(
            (gap_big - gap_small).abs() < 12.0,
            "gap roughly constant: {gap_big:.1}"
        );
    }

    #[test]
    fn time_grows_with_file_size() {
        for os in Os::benchmarked() {
            let small = crtdel_ms(os, 1024, 5, 0);
            let big = crtdel_ms(os, 1 << 20, 5, 0);
            assert!(big > small, "{os:?}: 1MB {big:.1}ms vs 1KB {small:.1}ms");
        }
    }
}
