//! The Section 6 memory benchmarks (Figures 2-8).
//!
//! These run on the bare machine model — the OS only contributes its
//! libc variant — using the paper's methodology: reuse one buffer until
//! 8 MB of data have been transferred, then report MB/s.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tnt_cpu::{measure, CacheConfig, MemRoutine, MemSystem, MemTiming};

/// Total traffic per measurement, as in the paper.
pub const TOTAL_TRAFFIC: u64 = 8 * 1024 * 1024;

/// Bandwidth of `routine` on a `buf`-byte buffer with `total` bytes of
/// traffic. `seed` perturbs the DRAM timing slightly (refresh and DMA
/// interference), giving the run-to-run spread of the paper's averages.
pub fn mem_bandwidth(routine: MemRoutine, buf: u64, total: u64, seed: u64) -> f64 {
    let timing = jittered_timing(seed);
    let mut mem = MemSystem::new(CacheConfig::p54c_l1d(), CacheConfig::plato_l2(), timing);
    measure(&mut mem, routine, buf, total).mb_per_sec
}

fn jittered_timing(seed: u64) -> MemTiming {
    if seed == 0 {
        return MemTiming::p54c();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    MemTiming::p54c().scaled(rng.gen_range(0.99..=1.01))
}

/// The buffer-size sweep of the figures: powers of two from 256 bytes to
/// 8 MB, with intermediate and ragged (`+15`-byte) points at the low end
/// where the remainder-loop dips of Section 6.4 live.
pub fn standard_buffer_sizes() -> Vec<u64> {
    let mut sizes = Vec::new();
    for k in 8..=23u32 {
        let s = 1u64 << k;
        sizes.push(s);
        if s <= 8192 {
            sizes.push(s + 15); // Worst-case remainder: the visible dip.
        }
        if k < 23 {
            sizes.push(s + s / 2); // Midpoint for a smoother curve.
        }
    }
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_cpu::LibcVariant;

    const T: u64 = 1 << 20; // Keep debug-mode tests quick.

    #[test]
    fn sweep_contains_ragged_sizes() {
        let sizes = standard_buffer_sizes();
        assert!(sizes.contains(&256));
        assert!(sizes.contains(&271));
        assert!(sizes.contains(&(8 << 20)));
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
    }

    #[test]
    fn figure2_plateaus() {
        let l1 = mem_bandwidth(MemRoutine::CustomRead, 4096, T, 0);
        let l2 = mem_bandwidth(MemRoutine::CustomRead, 65536, T, 0);
        let mem = mem_bandwidth(MemRoutine::CustomRead, 1 << 21, T, 0);
        assert!(l1 > 280.0, "L1 ~300+, got {l1:.0}");
        assert!((l2 - 110.0).abs() < 15.0, "L2 ~110, got {l2:.0}");
        assert!((mem - 75.0).abs() < 10.0, "DRAM ~75, got {mem:.0}");
    }

    #[test]
    fn figure5_prefetch_peak() {
        let peak = mem_bandwidth(MemRoutine::CustomWritePrefetch, 4096, T, 0);
        assert!(
            (peak - 310.0).abs() < 40.0,
            "prefetch write ~310, got {peak:.0}"
        );
    }

    #[test]
    fn figure8_prefetch_copy_peak() {
        let peak = mem_bandwidth(MemRoutine::CustomCopyPrefetch, 4096, T, 0);
        assert!(
            (peak - 160.0).abs() < 20.0,
            "prefetch copy ~160, got {peak:.0}"
        );
    }

    #[test]
    fn jitter_gives_small_spread() {
        let base = mem_bandwidth(MemRoutine::LibcMemset(LibcVariant::Linux), 65536, T, 0);
        for seed in 1..5 {
            let v = mem_bandwidth(MemRoutine::LibcMemset(LibcVariant::Linux), 65536, T, seed);
            assert!((v - base).abs() / base < 0.03, "seed {seed}: {v} vs {base}");
        }
    }
}
