//! Multi-user mode: the reason the paper ran everything single-user.
//!
//! Section 3: "All benchmarks were executed in single-user mode. When
//! run in multi-user mode, the benchmarks exhibited slightly higher
//! variance." This module boots a machine with the background daemons a
//! multi-user 1995 system carried — an `update`-style sync daemon, a
//! `cron`-style housekeeper and a logging daemon — each waking on its
//! own period (jittered per seed) and stealing a sliver of CPU, so
//! measurements pick up exactly that extra variance.

use std::sync::Arc;

use parking_lot::Mutex;

use tnt_os::{boot, Os, UProc};
use tnt_sim::Cycles;

/// A background daemon: wakes every `period`, burns `burst` of CPU.
struct Daemon {
    name: &'static str,
    period: Cycles,
    burst: Cycles,
}

/// The standard multi-user daemon set. Periods span milliseconds (the
/// interrupt-driven chatter of ttys and the network) to tens of seconds
/// (update/cron), so both short and long benchmarks feel them.
fn daemons() -> Vec<Daemon> {
    vec![
        // Network/tty servicing: frequent tiny slices.
        Daemon {
            name: "netio",
            period: Cycles::from_millis(6.7),
            burst: Cycles::from_micros(35.0),
        },
        // syslogd(8) and friends: regular small wakeups.
        Daemon {
            name: "syslogd",
            period: Cycles::from_millis(43.0),
            burst: Cycles::from_micros(120.0),
        },
        // sendmail queue runner / inetd pokes.
        Daemon {
            name: "inetd",
            period: Cycles::from_millis(310.0),
            burst: Cycles::from_micros(450.0),
        },
        // update(8): flush scheduling every ~30 s (its real sync work is
        // in the filesystem model; this is its process overhead).
        Daemon {
            name: "update",
            period: Cycles::from_secs(30.0),
            burst: Cycles::from_micros(400.0),
        },
    ]
}

/// Runs `f` as on [`crate::run_bare`], but on a machine in multi-user
/// mode: background daemons tick throughout, perturbing the measurement
/// and inflating the live task count (which Linux's O(n) scheduler
/// feels). The simulation is stopped when `f` returns, as `shutdown(8)`
/// would.
pub fn run_multiuser<T, F>(os: Os, seed: u64, f: F) -> T
where
    T: Send + 'static,
    F: FnOnce(&UProc) -> T + Send + 'static,
{
    let (sim, kernel) = boot(os, seed);
    for (i, d) in daemons().into_iter().enumerate() {
        // Per-seed phase offset so daemons do not tick in lockstep.
        let phase =
            Cycles((seed.wrapping_mul(2_654_435_761).rotate_left(i as u32 * 7)) % d.period.0);
        kernel.spawn_user(d.name, move |p| {
            p.sim().sleep(phase);
            loop {
                p.compute(d.burst);
                p.sim().sleep(d.period);
            }
        });
    }
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let s2 = slot.clone();
    kernel.spawn_user("bench", move |p| {
        *s2.lock() = Some(f(&p));
        p.sim().stop(); // Daemons run forever; shut the machine down.
    });
    sim.run().expect("multi-user simulation failed");
    let result = slot.lock().take().expect("benchmark produced a result");
    result
}

/// Table 2's `getpid` loop in multi-user mode.
///
/// Note the engine is non-preemptive (processes yield only at blocking
/// points), so a pure CPU loop is immune to the daemons; the multi-user
/// noise of Section 3 shows up in benchmarks that block — see
/// [`pipe_rtt_us_multiuser`].
pub fn syscall_us_multiuser(os: Os, iters: u32, seed: u64) -> f64 {
    run_multiuser(os, seed, move |p| {
        let t0 = p.sim().now();
        for _ in 0..iters {
            p.getpid();
        }
        (p.sim().now() - t0).as_micros() / iters as f64
    })
}

fn pipe_rtt_body(round_trips: u32) -> impl FnOnce(&UProc) -> f64 + Send + 'static {
    move |p: &UProc| {
        let (rd_a, wr_a) = p.pipe();
        let (rd_b, wr_b) = p.pipe();
        let child = p.fork("pong", move |c| {
            for _ in 0..round_trips {
                if c.read(rd_a, 1).unwrap() == 0 {
                    break;
                }
                c.write(wr_b, 1).unwrap();
            }
        });
        let t0 = p.sim().now();
        for _ in 0..round_trips {
            p.write(wr_a, 1).unwrap();
            p.read(rd_b, 1).unwrap();
        }
        let rtt = (p.sim().now() - t0).as_micros() / round_trips as f64;
        p.waitpid(child);
        rtt
    }
}

/// One-byte pipe round trips with the daemons ticking: every block point
/// is a chance for background work to land inside the measurement.
pub fn pipe_rtt_us_multiuser(os: Os, round_trips: u32, seed: u64) -> f64 {
    run_multiuser(os, seed, pipe_rtt_body(round_trips))
}

/// The single-user baseline of [`pipe_rtt_us_multiuser`].
pub fn pipe_rtt_us_singleuser(os: Os, round_trips: u32, seed: u64) -> f64 {
    crate::run_bare(os, seed, pipe_rtt_body(round_trips))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_sim::Summary;

    #[test]
    fn multiuser_mode_terminates_cleanly() {
        let us = syscall_us_multiuser(Os::Linux, 2_000, 1);
        assert!(us > 2.0 && us < 4.0, "still roughly Table 2: {us:.2}");
    }

    #[test]
    fn multiuser_raises_variance_as_section_3_reports() {
        // Blocking benchmarks expose the daemons: their bursts land
        // between round trips at seed-dependent phases.
        let spread = |multi: bool| {
            let samples: Vec<f64> = (1..=10)
                .map(|seed| {
                    if multi {
                        pipe_rtt_us_multiuser(Os::FreeBsd, 300, seed)
                    } else {
                        pipe_rtt_us_singleuser(Os::FreeBsd, 300, seed)
                    }
                })
                .collect();
            Summary::of(&samples).sd_pct()
        };
        let single = spread(false);
        let multi = spread(true);
        assert!(
            multi > single,
            "multi-user runs are noisier: {multi:.2}% vs {single:.2}%"
        );
    }

    #[test]
    fn multiuser_slows_linux_more_than_freebsd() {
        // Four extra live tasks cost Linux's O(n) scheduler on every
        // dispatch; FreeBSD's constant-time queues do not care. Measure
        // with a ctx-style pipe ping to involve the scheduler.
        let pipe_rtt = |os: Os, multi: bool| {
            if multi {
                pipe_rtt_us_multiuser(os, 200, 1)
            } else {
                pipe_rtt_us_singleuser(os, 200, 1)
            }
        };
        let linux_hit = pipe_rtt(Os::Linux, true) - pipe_rtt(Os::Linux, false);
        let freebsd_hit = pipe_rtt(Os::FreeBsd, true) - pipe_rtt(Os::FreeBsd, false);
        assert!(
            linux_hit > freebsd_hit + 0.5,
            "Linux pays per-task scheduler cost: +{linux_hit:.2}us vs +{freebsd_hit:.2}us"
        );
    }
}
