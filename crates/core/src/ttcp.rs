//! `ttcp` over UDP (Figure 13): bandwidth as a function of packet size,
//! 4 MB transferred per run, over the loopback interface.

use crate::machine::{run_bare, ResultSlot};
use tnt_net::{Net, UdpSocket};
use tnt_os::Os;
use tnt_sim::mbit_per_sec;

/// Bytes moved per run (the paper transfers 4 MB per iteration).
pub const TTCP_TOTAL: u64 = 4 * 1024 * 1024;

/// The packet sizes of the Figure 13 sweep.
pub fn packet_sizes() -> Vec<u64> {
    vec![256, 512, 1024, 2048, 4096, 8192]
}

/// UDP loopback bandwidth in megabits per second at one packet size.
pub fn udp_bandwidth_mbit(os: Os, packet: u64, total: u64, seed: u64) -> f64 {
    run_bare(os, seed, move |p| {
        let kernel = p.kernel().clone();
        let net = Net::ethernet_10mbit();
        let host = net.register_host(&kernel);
        let tx = UdpSocket::bind(&net, &kernel, host, 5010).unwrap();
        let rx = UdpSocket::bind(&net, &kernel, host, 5011).unwrap();
        let to = rx.addr();
        let slot: ResultSlot<f64> = ResultSlot::new();
        let s2 = slot.clone();
        let child = p.fork("ttcp-r", move |c| {
            let t0 = c.sim().now();
            let mut got = 0;
            while got < total {
                match rx.recv().unwrap() {
                    Some(pkt) => got += pkt.len,
                    None => break,
                }
            }
            s2.put(mbit_per_sec(got, c.sim().now() - t0));
        });
        let mut sent = 0;
        while sent < total {
            let n = packet.min(total - sent);
            tx.send_sized(to, n).unwrap();
            sent += n;
        }
        p.waitpid(child);
        slot.take().expect("receiver measured")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = 1 << 20; // 1 MB keeps debug tests quick.

    #[test]
    fn figure13_peak_ordering() {
        let linux = udp_bandwidth_mbit(Os::Linux, 8192, T, 0);
        let freebsd = udp_bandwidth_mbit(Os::FreeBsd, 8192, T, 0);
        let solaris = udp_bandwidth_mbit(Os::Solaris, 8192, T, 0);
        assert!(
            (freebsd - 48.0).abs() < 7.0,
            "FreeBSD ~48 Mb/s, got {freebsd:.1}"
        );
        assert!(
            (solaris - 32.0).abs() < 5.0,
            "Solaris ~32 Mb/s, got {solaris:.1}"
        );
        assert!((linux - 16.0).abs() < 3.5, "Linux ~16 Mb/s, got {linux:.1}");
        assert!(freebsd > solaris && solaris > linux);
    }

    #[test]
    fn bandwidth_rises_with_packet_size() {
        for os in Os::benchmarked() {
            let small = udp_bandwidth_mbit(os, 512, T / 4, 0);
            let big = udp_bandwidth_mbit(os, 8192, T / 4, 0);
            assert!(big > 1.5 * small, "{os:?}: {small:.1} -> {big:.1} Mb/s");
        }
    }

    #[test]
    fn no_packets_lost_on_loopback() {
        // The backpressure yield keeps the receiver drained.
        let bw = udp_bandwidth_mbit(Os::FreeBsd, 4096, T, 0);
        assert!(bw > 0.0);
    }
}
