//! Tim Bray's `bonnie` (Figures 9-11): sequential write, sequential
//! read, and random seek+I/O on one large file.

use crate::machine::{run_with_fs, timed};
use tnt_os::{OpenFlags, Os, UProc};
use tnt_sim::mb_per_sec;

/// Block size bonnie moves per syscall; the paper's seek phase uses 8 KB.
pub const BONNIE_BLOCK: u64 = 8192;

/// Results of one bonnie invocation.
#[derive(Clone, Copy, Debug)]
pub struct BonnieResult {
    /// Sequential write bandwidth, MB/s (Figure 10).
    pub write_mb_s: f64,
    /// Sequential read bandwidth, MB/s (Figure 9).
    pub read_mb_s: f64,
    /// Random seek+read+write operations per second (Figure 11).
    pub seeks_per_s: f64,
}

/// Runs bonnie with a file of `file_mb` megabytes on a fresh `os`
/// filesystem, with `nseeks` random operations in the seek phase.
pub fn bonnie(os: Os, file_mb: u64, nseeks: u32, seed: u64) -> BonnieResult {
    run_with_fs(os, seed, move |p| bonnie_phases(p, file_mb, nseeks))
}

fn bonnie_phases(p: &UProc, file_mb: u64, nseeks: u32) -> BonnieResult {
    let file_bytes = file_mb * 1024 * 1024;
    let nblocks = file_bytes / BONNIE_BLOCK;

    // Phase 1: sequential write.
    let fd = p.creat("/bonnie.scratch").unwrap();
    let (_, wt) = timed(p, || {
        for _ in 0..nblocks {
            p.write(fd, BONNIE_BLOCK).unwrap();
        }
    });
    p.close(fd).unwrap();

    // Phase 2: sequential read.
    let fd = p.open("/bonnie.scratch", OpenFlags::rdonly()).unwrap();
    let (_, rt) = timed(p, || {
        let mut total = 0;
        loop {
            let n = p.read(fd, BONNIE_BLOCK).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, file_bytes, "bonnie read the whole file back");
    });
    p.close(fd).unwrap();

    // Phase 3: random seek, read the block, write it back.
    let fd = p.open("/bonnie.scratch", OpenFlags::rdwr()).unwrap();
    let offsets: Vec<u64> = (0..nseeks)
        .map(|_| {
            p.sim()
                .with_rng(|rng| rand::Rng::gen_range(rng, 0..nblocks))
                * BONNIE_BLOCK
        })
        .collect();
    let (_, st) = timed(p, || {
        for off in offsets {
            p.lseek(fd, off).unwrap();
            p.read(fd, BONNIE_BLOCK).unwrap();
            p.lseek(fd, off).unwrap();
            p.write(fd, BONNIE_BLOCK).unwrap();
        }
    });
    p.close(fd).unwrap();
    p.unlink("/bonnie.scratch").unwrap();

    BonnieResult {
        write_mb_s: mb_per_sec(file_bytes, wt),
        read_mb_s: mb_per_sec(file_bytes, rt),
        seeks_per_s: nseeks as f64 / st.as_secs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_files_beat_uncached() {
        // 4 MB fits the 20 MB cache; 40 MB does not.
        let small = bonnie(Os::FreeBsd, 4, 50, 0);
        let big = bonnie(Os::FreeBsd, 40, 50, 0);
        assert!(
            small.read_mb_s > 3.0 * big.read_mb_s,
            "{small:?} vs {big:?}"
        );
        assert!(small.seeks_per_s > 3.0 * big.seeks_per_s);
    }

    #[test]
    fn figure9_in_cache_ordering() {
        // FreeBSD reads cached files 5-15% faster than the others.
        let f = bonnie(Os::FreeBsd, 4, 20, 0).read_mb_s;
        let l = bonnie(Os::Linux, 4, 20, 0).read_mb_s;
        let s = bonnie(Os::Solaris, 4, 20, 0).read_mb_s;
        assert!(
            f > l && f > s,
            "FreeBSD fastest cached: {f:.1} vs {l:.1}/{s:.1}"
        );
        assert!(f < l * 1.25 && f < s * 1.25, "but only by a modest margin");
    }

    #[test]
    fn figure9_on_disk_ordering() {
        // Beyond the cache: Solaris best, Linux worst.
        let f = bonnie(Os::FreeBsd, 40, 10, 0).read_mb_s;
        let l = bonnie(Os::Linux, 40, 10, 0).read_mb_s;
        let s = bonnie(Os::Solaris, 40, 10, 0).read_mb_s;
        assert!(
            s > f && f > l,
            "Solaris {s:.2} > FreeBSD {f:.2} > Linux {l:.2}"
        );
    }

    #[test]
    fn figure10_write_ordering() {
        // Below 8 MB FreeBSD writes ~50% faster; Linux under half of both.
        let f = bonnie(Os::FreeBsd, 4, 10, 0).write_mb_s;
        let l = bonnie(Os::Linux, 4, 10, 0).write_mb_s;
        let s = bonnie(Os::Solaris, 4, 10, 0).write_mb_s;
        assert!(
            (f / s - 1.5).abs() < 0.4,
            "FreeBSD ~1.5x Solaris: {f:.1} vs {s:.1}"
        );
        assert!(l < f / 2.0, "Linux {l:.1} under half of FreeBSD {f:.1}");
        assert!(l < s / 2.0 * 1.2, "Linux {l:.1} well under Solaris {s:.1}");
    }

    #[test]
    fn figure11_seek_orderings() {
        // In cache, Linux and Solaris do ~50% more seeks than FreeBSD.
        let f = bonnie(Os::FreeBsd, 4, 60, 0).seeks_per_s;
        let l = bonnie(Os::Linux, 4, 60, 0).seeks_per_s;
        let s = bonnie(Os::Solaris, 4, 60, 0).seeks_per_s;
        assert!(l > 1.25 * f, "Linux {l:.0}/s vs FreeBSD {f:.0}/s");
        assert!(s > 1.25 * f, "Solaris {s:.0}/s vs FreeBSD {f:.0}/s");
    }

    #[test]
    fn figure11_converges_to_14ms_on_disk() {
        for os in Os::benchmarked() {
            let r = bonnie(os, 100, 20, 0);
            let ms = 1000.0 / r.seeks_per_s;
            assert!(
                (ms - 14.0).abs() < 6.0,
                "{os:?}: random op ~14ms on disk, got {ms:.1}ms"
            );
        }
    }
}
