//! MAB across NFS (Tables 6 and 7): the client machine runs the Modified
//! Andrew Benchmark against a server machine over the 10 Mb/s Ethernet.
//!
//! `/tmp` (the compiler's temporaries) stays on the client's local system
//! disk, as it did on `tnt.stanford.edu`; the benchmark tree lives on the
//! NFS mount.

use std::sync::Arc;

use crate::mab::{mab_setup, run_mab, MabReport, MabSpec};
use crate::machine::ResultSlot;
use tnt_fs::{Disk, DiskParams, FsParams, SimFs};
use tnt_net::Net;
use tnt_nfs::{serve, NfsClient, NfsServerConfig};
use tnt_os::{boot_cluster_with_faults, Os};
use tnt_sim::fault::FaultProfile;

/// Runs MAB on `client_os` against an NFS server running `server_os`
/// (Table 6: `Os::Linux` server; Table 7: `Os::SunOs`).
pub fn mab_over_nfs(client_os: Os, server_os: Os, seed: u64) -> MabReport {
    mab_over_nfs_faulty(client_os, server_os, seed, tnt_sim::fault::ambient())
}

/// [`mab_over_nfs`] under an explicit fault profile — the degradation
/// experiment (`x8`) sweeps RPC drop rates through here, bypassing the
/// process-wide ambient profile so its curve is the same whatever
/// `--faults` the rest of the run uses.
pub fn mab_over_nfs_faulty(
    client_os: Os,
    server_os: Os,
    seed: u64,
    faults: FaultProfile,
) -> MabReport {
    let (sim, kernels) = boot_cluster_with_faults(&[client_os, server_os], seed, faults);
    let client_k = kernels[0].clone();
    let server_k = kernels[1].clone();

    let net = Net::ethernet_10mbit();
    let client_host = net.register_host(&client_k);
    let server_host = net.register_host(&server_k);

    // The server exports a fresh filesystem on its own disk.
    let server_fs = SimFs::fresh_for_os(server_os);
    server_k.mount(server_fs.clone());
    let server = serve(
        &net,
        &server_k,
        server_host,
        server_fs,
        NfsServerConfig::for_os(server_os),
    )
    .expect("nfsd start");

    // The client mounts it as root and keeps /tmp local.
    let mount = NfsClient::mount(&net, &client_k, client_host, server.addr()).expect("mount");
    client_k.mount(mount.clone());
    let tmp_disk = Arc::new(Disk::new(DiskParams::quantum2100()));
    client_k.mount_at("/tmp", SimFs::new(tmp_disk, FsParams::for_os(client_os)));

    let slot = ResultSlot::new();
    let s2 = slot.clone();
    client_k.spawn_user("mab-nfs", move |p| {
        let spec = MabSpec::standard();
        mab_setup(&p, &spec);
        // The paper's pristine tree was installed long before the run;
        // start the measurement from a cold client cache.
        mount.flush_caches();
        s2.put(run_mab(&p, &spec));
        p.sim().stop(); // Tears down the nfsd daemon.
    });
    sim.run().expect("MAB/NFS simulation failed");
    slot.take().expect("MAB/NFS produced a report")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_linux_server_ordering() {
        let freebsd = mab_over_nfs(Os::FreeBsd, Os::Linux, 0).total_s;
        let linux = mab_over_nfs(Os::Linux, Os::Linux, 0).total_s;
        let solaris = mab_over_nfs(Os::Solaris, Os::Linux, 0).total_s;
        assert!(
            freebsd < linux && linux < solaris,
            "Table 6 order FreeBSD < Linux < Solaris: {freebsd:.1} {linux:.1} {solaris:.1}"
        );
        assert!(
            (freebsd - 53.24).abs() < 9.0,
            "FreeBSD ~53s, got {freebsd:.1}"
        );
    }

    #[test]
    fn table7_sunos_server_ordering() {
        let freebsd = mab_over_nfs(Os::FreeBsd, Os::SunOs, 0).total_s;
        let solaris = mab_over_nfs(Os::Solaris, Os::SunOs, 0).total_s;
        let linux = mab_over_nfs(Os::Linux, Os::SunOs, 0).total_s;
        assert!(
            freebsd < solaris && solaris < linux,
            "Table 7 order FreeBSD < Solaris < Linux: {freebsd:.1} {solaris:.1} {linux:.1}"
        );
        assert!(
            linux > 1.4 * freebsd,
            "the Linux client collapses: {linux:.1} vs {freebsd:.1}"
        );
    }

    #[test]
    fn sync_server_is_slower_for_every_client() {
        for client in Os::benchmarked() {
            let t6 = mab_over_nfs(client, Os::Linux, 0).total_s;
            let t7 = mab_over_nfs(client, Os::SunOs, 0).total_s;
            assert!(
                t7 > t6,
                "{client:?}: sync server {t7:.1}s vs async {t6:.1}s"
            );
        }
    }
}
