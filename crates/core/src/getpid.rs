//! The Table 2 microbenchmark: `getpid()` in a loop.

use crate::machine::{run_bare, timed};
use tnt_os::Os;

/// Average time per `getpid()` call, in microseconds, over `iters`
/// iterations (the paper uses 100 000).
pub fn syscall_us(os: Os, iters: u32, seed: u64) -> f64 {
    run_bare(os, seed, move |p| {
        let (_, d) = timed(p, || {
            for _ in 0..iters {
                p.getpid();
            }
        });
        d.as_micros() / iters as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        // Table 2: 2.31 / 2.62 / 3.52 us (seed 0's jitter is within a few
        // per cent).
        for (os, expect) in [(Os::Linux, 2.31), (Os::FreeBsd, 2.62), (Os::Solaris, 3.52)] {
            let got = syscall_us(os, 10_000, 0);
            assert!(
                (got - expect).abs() / expect < 0.08,
                "{os:?}: expected ~{expect}us, got {got:.3}us"
            );
        }
    }

    #[test]
    fn table2_ordering_is_stable_across_seeds() {
        for seed in 0..5 {
            let l = syscall_us(Os::Linux, 2_000, seed);
            let f = syscall_us(Os::FreeBsd, 2_000, seed);
            let s = syscall_us(Os::Solaris, 2_000, seed);
            assert!(l < f && f < s, "seed {seed}: {l} {f} {s}");
        }
    }
}
