//! UDP sockets with per-OS protocol costs (Figure 13).
//!
//! Datagrams carry real bytes (the NFS layer XDR-encodes its RPCs into
//! them). Loopback delivery is immediate; a sender that runs far ahead of
//! the receiver yields the CPU once the destination socket buffer is half
//! full, modelling the timeslice preemption that interleaves `ttcp`'s
//! sender and receiver on a single CPU. A full socket buffer drops
//! packets, as real UDP does.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::costs::NetCosts;
use crate::net::{Addr, Net, PortSink, Proto};
use tnt_os::{KEnv, Kernel, SysResult};
use tnt_sim::trace::{Class, Counter};
use tnt_sim::{Cycles, Sim, WaitId};

/// Outcome of a timed receive.
pub enum Recv {
    /// A datagram arrived.
    Packet(Packet),
    /// The deadline passed first.
    TimedOut,
    /// The socket is closed and drained.
    Closed,
}

/// A datagram in flight or queued at a socket.
pub struct Packet {
    /// Sender address.
    pub from: Addr,
    /// Payload size in bytes (may exceed `data.len()` for sized-only
    /// traffic such as `ttcp`'s zero-filled packets).
    pub len: u64,
    /// Instant the last fragment arrives (wire time on Ethernet).
    pub available_at: Cycles,
    /// Payload bytes (empty for sized-only traffic).
    pub data: Vec<u8>,
}

struct SockQ {
    packets: VecDeque<Packet>,
    buffered: u64,
    drops: u64,
    closed: bool,
}

pub(crate) struct SockCore {
    q: Mutex<SockQ>,
    rcv_wait: WaitId,
    rcvbuf: u64,
    sim: Sim,
}

impl PortSink for SockCore {
    fn deliver(&self, pkt: Packet) -> Option<u64> {
        let buffered = {
            let mut q = self.q.lock();
            if q.closed || q.buffered + pkt.len > self.rcvbuf {
                q.drops += 1;
                None
            } else {
                q.buffered += pkt.len;
                q.packets.push_back(pkt);
                Some(q.buffered)
            }
        };
        if buffered.is_some() {
            self.sim.wakeup_one(self.rcv_wait);
        }
        buffered
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A bound UDP socket.
pub struct UdpSocket {
    net: Net,
    addr: Addr,
    env: KEnv,
    costs: NetCosts,
    core: Arc<SockCore>,
}

impl UdpSocket {
    /// Binds a socket on `kernel`'s machine (`host` is that machine's id
    /// on `net`) at `port`.
    pub fn bind(net: &Net, kernel: &Kernel, host: u32, port: u16) -> SysResult<Arc<UdpSocket>> {
        let env = kernel.env().clone();
        let costs = NetCosts::for_os(kernel.costs().os);
        let core = Arc::new(SockCore {
            q: Mutex::new(SockQ {
                packets: VecDeque::new(),
                buffered: 0,
                drops: 0,
                closed: false,
            }),
            rcv_wait: env.sim.new_queue(),
            rcvbuf: costs.udp.rcvbuf,
            sim: env.sim.clone(),
        });
        let addr = Addr { host, port };
        net.bind(addr, Proto::Udp, core.clone())?;
        Ok(Arc::new(UdpSocket {
            net: net.clone(),
            addr,
            env,
            costs,
            core,
        }))
    }

    /// The socket's own address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Packets dropped at this socket for lack of buffer space.
    pub fn drops(&self) -> u64 {
        self.core.q.lock().drops
    }

    fn charge_syscall(&self) {
        let c = &self.env.costs;
        let _t = self.env.sim.span(Class::TrapEntry);
        self.env
            .sim
            .charge(Cycles(c.trap_cy + c.syscall_overhead_cy));
    }

    /// Sends a datagram carrying `data` to `to`.
    pub fn send_to(&self, to: Addr, data: Vec<u8>) -> SysResult<u64> {
        let len = data.len() as u64;
        self.send_inner(to, len, data)
    }

    /// Sends a zero-filled datagram of `len` bytes (bulk benchmarks).
    pub fn send_sized(&self, to: Addr, len: u64) -> SysResult<u64> {
        self.send_inner(to, len, Vec::new())
    }

    /// Sends `data` plus `pad` extra payload bytes that are modelled but
    /// not materialised (an NFS write RPC: small header, large payload).
    pub fn send_padded(&self, to: Addr, data: Vec<u8>, pad: u64) -> SysResult<u64> {
        let len = data.len() as u64 + pad;
        self.send_inner(to, len, data)
    }

    fn send_inner(&self, to: Addr, len: u64, data: Vec<u8>) -> SysResult<u64> {
        self.charge_syscall();
        let u = &self.costs.udp;
        let frags = len.div_ceil(u.mtu).max(1);
        self.env.sim.count(Counter::UdpDatagrams, 1);
        {
            let _s = self.env.sim.span(Class::ProtoCpu);
            self.env.sim.charge(Cycles(
                u.send_fixed_cy
                    + u.per_frag_cy * frags
                    + (u.send_per_byte_cy * len as f64).round() as u64,
            ));
        }
        // Failure injection: a lost frame still consumed wire time.
        let mut available_at = self.net.transit(&self.env, self.addr.host, to.host, len);
        if self.net.frame_lost(&self.env, self.addr.host, to.host) {
            return Ok(len);
        }
        let cross_host = to.host != self.addr.host;
        if cross_host && self.env.sim.faults().net_delay() {
            // Fault plane: the frame queues behind a burst of alien
            // traffic and arrives about one maximum frame time late.
            self.env.sim.count(Counter::NetLateFrames, 1);
            available_at += self.net.max_frame_time();
        }
        // Fault plane: link-layer duplication — the same datagram crosses
        // the wire twice and the receiver sees both copies (the RPC layer
        // must tolerate this; the server's duplicate-request cache does).
        let duplicate = cross_host && self.env.sim.faults().net_dup();
        let dup_data = if duplicate { data.clone() } else { Vec::new() };
        let buffered = match self.net.sink_for(to, Proto::Udp) {
            // No listener: the packet vanishes, as UDP packets do.
            None => return Ok(len),
            Some(sink) => sink.deliver(Packet {
                from: self.addr,
                len,
                available_at,
                data,
            }),
        };
        if duplicate {
            self.env.sim.count(Counter::NetDupFrames, 1);
            let dup_at = self.net.transit(&self.env, self.addr.host, to.host, len);
            if let Some(sink) = self.net.sink_for(to, Proto::Udp) {
                let _ = sink.deliver(Packet {
                    from: self.addr,
                    len,
                    available_at: dup_at,
                    data: dup_data,
                });
            }
        }
        if let Some(buffered) = buffered {
            // Loopback backpressure: once the peer's buffer is half full,
            // yield so the receiver's timeslice can drain it (models the
            // scheduler preemption that interleaves ttcp's processes).
            if to.host == self.addr.host && buffered > u.rcvbuf / 2 {
                self.env.sim.yield_now();
            }
        }
        Ok(len)
    }

    /// Receives one datagram, blocking until one is available. Returns
    /// `None` once the socket is closed and drained.
    pub fn recv(&self) -> SysResult<Option<Packet>> {
        match self.recv_inner(None)? {
            Recv::Packet(p) => Ok(Some(p)),
            Recv::Closed => Ok(None),
            Recv::TimedOut => unreachable!("no timeout was set"),
        }
    }

    /// Like [`UdpSocket::recv`] with a deadline — the RPC retransmission
    /// primitive.
    pub fn recv_timeout(&self, timeout: tnt_sim::Cycles) -> SysResult<Recv> {
        self.recv_inner(Some(timeout))
    }

    fn recv_inner(&self, timeout: Option<tnt_sim::Cycles>) -> SysResult<Recv> {
        self.charge_syscall();
        let deadline = timeout.map(|t| self.env.sim.now() + t);
        loop {
            enum StepOutcome {
                Got(Packet),
                Closed,
                WaitUntil(Cycles),
                Wait,
            }
            let step = {
                let mut q = self.core.q.lock();
                match q.packets.front() {
                    Some(pkt) if pkt.available_at > self.env.sim.now() => {
                        StepOutcome::WaitUntil(pkt.available_at)
                    }
                    Some(_) => {
                        let pkt = q.packets.pop_front().expect("front checked");
                        q.buffered -= pkt.len;
                        StepOutcome::Got(pkt)
                    }
                    None if q.closed => StepOutcome::Closed,
                    None => StepOutcome::Wait,
                }
            };
            match step {
                StepOutcome::Got(pkt) => {
                    let u = &self.costs.udp;
                    let _s = self.env.sim.span(Class::ProtoCpu);
                    self.env.sim.charge(Cycles(
                        u.recv_fixed_cy + (u.recv_per_byte_cy * pkt.len as f64).round() as u64,
                    ));
                    return Ok(Recv::Packet(pkt));
                }
                StepOutcome::Closed => return Ok(Recv::Closed),
                StepOutcome::WaitUntil(at) => {
                    let _w = self.env.sim.span(Class::WireTransit);
                    match deadline {
                        Some(d) if d < at => {
                            if self.env.sim.now() < d {
                                self.env.sim.sleep_until(d);
                            }
                            return Ok(Recv::TimedOut);
                        }
                        _ => self.env.sim.sleep_until(at),
                    }
                }
                StepOutcome::Wait => {
                    let _w = self.env.sim.span(Class::NetRecvWait);
                    match deadline {
                        Some(d) => {
                            let left = d.saturating_sub(self.env.sim.now());
                            if left == Cycles::ZERO
                                || !self.env.sim.wait_on_timeout(
                                    self.core.rcv_wait,
                                    left,
                                    "udp recv (timed)",
                                )
                            {
                                return Ok(Recv::TimedOut);
                            }
                        }
                        None => self.env.sim.wait_on(self.core.rcv_wait, "udp recv"),
                    }
                }
            }
        }
    }

    /// Closes the socket: wakes blocked receivers, unbinds the port.
    pub fn close(&self) {
        {
            let mut q = self.core.q.lock();
            q.closed = true;
        }
        self.env.sim.wakeup_all(self.core.rcv_wait);
        self.net.unbind(self.addr, Proto::Udp);
    }
}

impl Drop for UdpSocket {
    fn drop(&mut self) {
        self.net.unbind(self.addr, Proto::Udp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_os::{boot, Errno, Os};

    fn setup(os: Os) -> (tnt_sim::Sim, Kernel, Net) {
        let (sim, kernel) = boot(os, 0);
        let net = Net::ethernet_10mbit();
        net.register_host(&kernel);
        (sim, kernel, net)
    }

    #[test]
    fn datagrams_round_trip_with_data() {
        let (sim, kernel, net) = setup(Os::FreeBsd);
        let n2 = net.clone();
        let k2 = kernel.clone();
        kernel.spawn_user("pair", move |p| {
            let a = UdpSocket::bind(&n2, &k2, 0, 1000).unwrap();
            let b = UdpSocket::bind(&n2, &k2, 0, 2000).unwrap();
            let b2 = b.clone();
            p.fork("receiver", move |_| {
                let pkt = b2.recv().unwrap().unwrap();
                assert_eq!(pkt.data, b"ping");
                assert_eq!(pkt.from.port, 1000);
            });
            a.send_to(
                Addr {
                    host: 0,
                    port: 2000,
                },
                b"ping".to_vec(),
            )
            .unwrap();
        });
        sim.run().unwrap();
    }

    #[test]
    fn packets_preserve_order() {
        let (sim, kernel, net) = setup(Os::Linux);
        let n2 = net.clone();
        let k2 = kernel.clone();
        kernel.spawn_user("pair", move |p| {
            let tx = UdpSocket::bind(&n2, &k2, 0, 1).unwrap();
            let rx = UdpSocket::bind(&n2, &k2, 0, 2).unwrap();
            for i in 0..10u8 {
                tx.send_to(Addr { host: 0, port: 2 }, vec![i]).unwrap();
            }
            for i in 0..10u8 {
                let pkt = rx.recv().unwrap().unwrap();
                assert_eq!(pkt.data, vec![i]);
            }
            let _ = p;
        });
        sim.run().unwrap();
    }

    #[test]
    fn overflow_drops_packets() {
        let (sim, kernel, net) = setup(Os::FreeBsd);
        let n2 = net.clone();
        let k2 = kernel.clone();
        kernel.spawn_user("flood", move |_| {
            let tx = UdpSocket::bind(&n2, &k2, 0, 1).unwrap();
            let rx = UdpSocket::bind(&n2, &k2, 0, 2).unwrap();
            // No receiver process: 9 x 8 KB overflows the 64 KB buffer.
            for _ in 0..9 {
                tx.send_sized(Addr { host: 0, port: 2 }, 8192).unwrap();
            }
            assert_eq!(rx.drops(), 1);
        });
        sim.run().unwrap();
    }

    #[test]
    fn send_to_unbound_port_vanishes() {
        let (sim, kernel, net) = setup(Os::Solaris);
        let n2 = net.clone();
        let k2 = kernel.clone();
        kernel.spawn_user("lost", move |_| {
            let tx = UdpSocket::bind(&n2, &k2, 0, 1).unwrap();
            assert_eq!(tx.send_sized(Addr { host: 0, port: 99 }, 100).unwrap(), 100);
        });
        sim.run().unwrap();
    }

    #[test]
    fn double_bind_is_eaddrinuse() {
        let (sim, kernel, net) = setup(Os::Linux);
        let n2 = net.clone();
        let k2 = kernel.clone();
        kernel.spawn_user("bind2", move |_| {
            let _a = UdpSocket::bind(&n2, &k2, 0, 7).unwrap();
            assert_eq!(
                UdpSocket::bind(&n2, &k2, 0, 7).err(),
                Some(Errno::EADDRINUSE)
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn close_unblocks_receiver() {
        let (sim, kernel, net) = setup(Os::FreeBsd);
        let n2 = net.clone();
        let k2 = kernel.clone();
        kernel.spawn_user("main", move |p| {
            let rx = UdpSocket::bind(&n2, &k2, 0, 5).unwrap();
            let rx2 = rx.clone();
            let child = p.fork("receiver", move |_| {
                assert!(rx2.recv().unwrap().is_none(), "close delivers EOF");
            });
            p.compute(Cycles(10_000));
            rx.close();
            p.waitpid(child);
        });
        sim.run().unwrap();
    }

    #[test]
    fn cross_host_packets_pay_wire_time() {
        let (sim, kernels) = tnt_os::boot_cluster(&[Os::FreeBsd, Os::SunOs], 0);
        let net = Net::ethernet_10mbit();
        net.register_host(&kernels[0]);
        net.register_host(&kernels[1]);
        // Bind both endpoints before either process runs so the client's
        // first send cannot race the server's bind.
        let rx = UdpSocket::bind(&net, &kernels[1], 1, 2049).unwrap();
        let tx = UdpSocket::bind(&net, &kernels[0], 0, 1000).unwrap();
        let done = Arc::new(Mutex::new(0.0f64));
        let d2 = done.clone();
        kernels[1].spawn_user("server", move |p| {
            let pkt = rx.recv().unwrap().unwrap();
            assert_eq!(pkt.len, 8192);
            *d2.lock() = p.sim().now().as_millis();
        });
        kernels[0].spawn_user("client", move |_| {
            tx.send_sized(
                Addr {
                    host: 1,
                    port: 2049,
                },
                8192,
            )
            .unwrap();
        });
        sim.run().unwrap();
        // 8 KB at 10 Mb/s is ~6.6 ms of wire time.
        let ms = *done.lock();
        assert!(ms > 6.0, "cross-host packet had to cross the wire: {ms}ms");
    }
}
