#![warn(missing_docs)]

//! Network stack models for Sections 9 and 10 of the paper.
//!
//! Three protocol paths, each with per-OS cost personalities:
//!
//! - **pipes** live in `tnt-os` (they are IPC, not networking, but the
//!   paper treats their bandwidth as the protocol-free upper bound);
//! - **UDP** ([`UdpSocket`]): Figure 13's packet-size sweep — Linux's
//!   extra copies and allocator overhead cap it near 16 Mb/s while
//!   FreeBSD reaches ~48 Mb/s;
//! - **TCP** ([`TcpStream`]): Table 5 — Linux 1.2.8's one-packet window
//!   stalls every segment, FreeBSD and Solaris stream at 60-66 Mb/s.
//!
//! Cross-host traffic (the NFS experiments) crosses a shared 10 Mb/s
//! Ethernet that serialises frames; loopback traffic is free of wire
//! effects, exactly as in the paper's methodology.
//!
//! # Examples
//!
//! ```
//! use tnt_net::{Net, UdpSocket, Addr};
//! use tnt_os::{boot, Os};
//!
//! let (sim, kernel) = boot(Os::FreeBsd, 0);
//! let net = Net::ethernet_10mbit();
//! let host = net.register_host(&kernel);
//! let (n2, k2) = (net.clone(), kernel.clone());
//! kernel.spawn_user("udp", move |p| {
//!     let tx = UdpSocket::bind(&n2, &k2, host, 1000).unwrap();
//!     let rx = UdpSocket::bind(&n2, &k2, host, 2000).unwrap();
//!     tx.send_to(Addr { host, port: 2000 }, b"hello".to_vec()).unwrap();
//!     let pkt = rx.recv().unwrap().unwrap();
//!     assert_eq!(pkt.data, b"hello");
//!     let _ = p;
//! });
//! sim.run().unwrap();
//! ```

mod costs;
mod net;
mod switch;
mod tcp;
mod udp;

pub use costs::{NetCosts, TcpCosts, UdpCosts};
pub use net::{Addr, Net, Proto, ETHER_FRAMING};
pub use switch::{Delivery, Switch, SWITCH_MTU};
pub use tcp::{connect, connect_custom, TcpListener, TcpStream};
pub use udp::{Packet, Recv, UdpSocket};
