//! The multi-host switched topology: per-host access links joined by a
//! store-and-forward switch.
//!
//! The flat [`crate::Net`] Ethernet serialises every cross-host frame on
//! one shared wire — faithful to the paper's two-machine NFS rig, but
//! wrong for a server farm, where N clients each own their access link
//! and only contend at the server's port. This module models that shape:
//! every host gets an uplink (host → switch) and a downlink (switch →
//! host), each with its own bandwidth serialisation and a bounded
//! drop-tail queue. A frame from A to B transmits on A's uplink, then on
//! B's downlink; many clients sending at once overrun the server's
//! downlink queue and the tail frames are dropped, exactly the loss mode
//! an overloaded 1995 server showed.
//!
//! The switch composes with the fault plane: with `--faults lossy`
//! armed, each frame also rolls the plane's salted `net_drop` stream, so
//! degraded-mode capacity curves stay deterministic per seed.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::net::ETHER_FRAMING;
use tnt_sim::{Cycles, Sim};

/// Frame payload bytes (Ethernet MTU); larger sends are fragmented.
pub const SWITCH_MTU: u64 = 1500;

/// One direction of one host's access link.
struct Link {
    bps: f64,
    busy_until: Cycles,
    /// Completion instants of frames accepted but not yet transmitted —
    /// monotone, pruned lazily; its length is the drop-tail occupancy.
    backlog: VecDeque<Cycles>,
    cap: usize,
    dropped: u64,
}

impl Link {
    fn new(bps: f64, cap: usize) -> Link {
        Link {
            bps,
            busy_until: Cycles::ZERO,
            backlog: VecDeque::new(),
            cap,
            dropped: 0,
        }
    }

    /// Admits one frame arriving at instant `at`: serialises it after
    /// the link's current backlog and returns its completion instant, or
    /// `None` (drop-tail) if the queue is full at `at`.
    fn admit(&mut self, at: Cycles, bytes: u64) -> Option<Cycles> {
        while self.backlog.front().is_some_and(|&done| done <= at) {
            self.backlog.pop_front();
        }
        if self.backlog.len() >= self.cap {
            self.dropped += 1;
            return None;
        }
        let start = at.max(self.busy_until);
        let tx_secs = (bytes + ETHER_FRAMING) as f64 * 8.0 / self.bps;
        let done = start + Cycles::from_secs(tx_secs);
        self.busy_until = done;
        self.backlog.push_back(done);
        Some(done)
    }
}

/// Outcome of a [`Switch::send`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Every frame got through; the payload is complete at the
    /// destination host at this instant.
    Delivered(Cycles),
    /// At least one frame was dropped — by a full drop-tail queue or the
    /// fault plane. Nothing arrives; the sender's timeout is the only
    /// signal, as on a real wire.
    Dropped,
}

struct SwitchState {
    up: Vec<Link>,
    down: Vec<Link>,
    fault_drops: u64,
}

/// A store-and-forward switch joining `hosts` access links.
///
/// Host ids are the farm's own logical numbering (0-based, assigned by
/// the caller); they are unrelated to [`crate::Net::register_host`] ids.
/// All state sits behind one mutex, and the baton engine runs one
/// process at a time, so admissions happen in simulated-time order and
/// same-seed runs are byte-identical.
#[derive(Clone)]
pub struct Switch {
    inner: Arc<Mutex<SwitchState>>,
}

impl Switch {
    /// A switch with `hosts` access links of `bps` bits/second each and
    /// `queue_frames` frames of drop-tail buffering per link direction.
    pub fn new(hosts: usize, bps: f64, queue_frames: usize) -> Switch {
        assert!(hosts > 0 && bps > 0.0 && queue_frames > 0);
        Switch {
            inner: Arc::new(Mutex::new(SwitchState {
                up: (0..hosts).map(|_| Link::new(bps, queue_frames)).collect(),
                down: (0..hosts).map(|_| Link::new(bps, queue_frames)).collect(),
                fault_drops: 0,
            })),
        }
    }

    /// Sends `bytes` of payload from host `from` to host `to`,
    /// fragmenting at [`SWITCH_MTU`]. Each frame serialises on the
    /// sender's uplink and then the receiver's downlink; a full queue or
    /// a fault-plane loss drops the whole send. Same-host sends are
    /// loopback: delivered now, no wire.
    pub fn send(&self, sim: &Sim, from: u32, to: u32, bytes: u64) -> Delivery {
        let now = sim.now();
        if from == to {
            return Delivery::Delivered(now);
        }
        let mut st = self.inner.lock();
        let mut arrival = now;
        let mut left = bytes.max(1);
        while left > 0 {
            let frame = left.min(SWITCH_MTU);
            left -= frame;
            // Fault plane first: its salted stream draws nothing when the
            // profile is off, keeping off-runs byte-identical.
            if sim.faults().net_drop() {
                st.fault_drops += 1;
                return Delivery::Dropped;
            }
            let Some(at_switch) = st.up[from as usize].admit(now, frame) else {
                return Delivery::Dropped;
            };
            let Some(at_host) = st.down[to as usize].admit(at_switch, frame) else {
                return Delivery::Dropped;
            };
            arrival = arrival.max(at_host);
        }
        Delivery::Delivered(arrival)
    }

    /// Frames dropped by full drop-tail queues so far, both directions.
    pub fn queue_drops(&self) -> u64 {
        let st = self.inner.lock();
        st.up.iter().chain(st.down.iter()).map(|l| l.dropped).sum()
    }

    /// Frames dropped by the fault plane so far.
    pub fn fault_drops(&self) -> u64 {
        self.inner.lock().fault_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_os::{boot, boot_cluster_with_faults, Os};
    use tnt_sim::fault::FaultProfile;

    /// 10 Mb/s wire time for one MTU payload, in cycles.
    fn frame_cy() -> u64 {
        Cycles::from_secs((SWITCH_MTU + ETHER_FRAMING) as f64 * 8.0 / 10e6).0
    }

    #[test]
    fn frames_serialise_per_link() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let sw = Switch::new(3, 10e6, 64);
        kernel.spawn_user("t", move |p| {
            let s = p.sim();
            let f = frame_cy();
            let t0 = s.now().0; // boot charges land before we run
            // Two sends from host 0: back to back on 0's uplink.
            let a = sw.send(s, 0, 2, SWITCH_MTU);
            let b = sw.send(s, 0, 2, SWITCH_MTU);
            assert_eq!(a, Delivery::Delivered(Cycles(t0 + 2 * f)));
            assert_eq!(b, Delivery::Delivered(Cycles(t0 + 3 * f)));
            // A send from host 1 rides its own idle uplink but queues
            // behind both on host 2's downlink.
            let c = sw.send(s, 1, 2, SWITCH_MTU);
            assert_eq!(c, Delivery::Delivered(Cycles(t0 + 4 * f)));
            // The reverse direction is independent of all of the above.
            let d = sw.send(s, 2, 0, SWITCH_MTU);
            assert_eq!(d, Delivery::Delivered(Cycles(t0 + 2 * f)));
        });
        sim.run().unwrap();
    }

    #[test]
    fn loopback_is_immediate_and_free() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let sw = Switch::new(2, 10e6, 4);
        kernel.spawn_user("t", move |p| {
            let s = p.sim();
            for _ in 0..100 {
                assert_eq!(sw.send(s, 1, 1, 64 * 1024), Delivery::Delivered(s.now()));
            }
            // The wire never saw any of it.
            let t0 = s.now().0;
            assert_eq!(
                sw.send(s, 0, 1, SWITCH_MTU),
                Delivery::Delivered(Cycles(t0 + 2 * frame_cy()))
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn full_queues_drop_the_tail() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let sw = Switch::new(4, 10e6, 2);
        let sw2 = sw.clone();
        kernel.spawn_user("t", move |p| {
            let s = p.sim();
            // Three clients flood host 3's downlink (cap 2 per link
            // direction): uplinks hold 2 frames each, the downlink
            // overflows.
            let mut delivered = 0;
            let mut dropped = 0;
            for from in 0..3u32 {
                for _ in 0..2 {
                    match sw2.send(s, from, 3, SWITCH_MTU) {
                        Delivery::Delivered(_) => delivered += 1,
                        Delivery::Dropped => dropped += 1,
                    }
                }
            }
            assert_eq!(delivered + dropped, 6);
            assert!(dropped > 0, "overload must overflow the drop-tail queue");
            assert_eq!(sw2.queue_drops(), dropped);
        });
        sim.run().unwrap();
        assert_eq!(sw.fault_drops(), 0);
    }

    #[test]
    fn queues_drain_with_time() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let sw = Switch::new(2, 10e6, 2);
        kernel.spawn_user("t", move |p| {
            let s = p.sim();
            let t0 = s.now().0;
            assert_eq!(
                sw.send(s, 0, 1, SWITCH_MTU),
                Delivery::Delivered(Cycles(t0 + 2 * frame_cy()))
            );
            assert_eq!(
                sw.send(s, 0, 1, SWITCH_MTU),
                Delivery::Delivered(Cycles(t0 + 3 * frame_cy()))
            );
            assert_eq!(sw.send(s, 0, 1, SWITCH_MTU), Delivery::Dropped, "uplink full");
            // Once the backlog transmits, the link accepts again.
            s.sleep(Cycles(4 * frame_cy()));
            assert!(matches!(sw.send(s, 0, 1, SWITCH_MTU), Delivery::Delivered(_)));
        });
        sim.run().unwrap();
    }

    #[test]
    fn multi_frame_sends_fragment_at_the_mtu() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let sw = Switch::new(2, 10e6, 64);
        kernel.spawn_user("t", move |p| {
            let s = p.sim();
            // 4000 bytes = 2 full frames + 1 of 1000 bytes. Store and
            // forward: the downlink re-serialises every fragment, so the
            // tail fragment arrives after three full-frame times (the
            // downlink is still moving fragment 2 when it shows up) plus
            // its own transmission.
            let full_secs = (1500.0 + 38.0) * 8.0 / 10e6;
            let last_secs = (1000.0 + 38.0) * 8.0 / 10e6;
            let want = s.now() + Cycles::from_secs(3.0 * full_secs) + Cycles::from_secs(last_secs);
            match sw.send(s, 0, 1, 4000) {
                Delivery::Delivered(at) => {
                    let got = at.0 as i64;
                    assert!((got - want.0 as i64).abs() <= 2, "{got} vs {}", want.0);
                }
                Delivery::Dropped => panic!("nothing should drop"),
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn fault_plane_losses_are_counted_and_deterministic() {
        let run = || {
            let profile = FaultProfile {
                net_drop: 0.2,
                ..FaultProfile::off()
            };
            let (sim, kernels) = boot_cluster_with_faults(&[Os::Linux], 7, profile);
            let sw = Switch::new(2, 10e6, 64);
            let sw2 = sw.clone();
            kernels[0].spawn_user("t", move |p| {
                let s = p.sim();
                for _ in 0..200 {
                    let _ = sw2.send(s, 0, 1, SWITCH_MTU);
                    s.sleep(Cycles(frame_cy()));
                }
            });
            sim.run().unwrap();
            sw.fault_drops()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same-seed loss pattern must repeat");
        assert!(a > 10 && a < 90, "0.2 loss over 200 frames, got {a}");
    }
}
