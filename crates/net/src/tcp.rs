//! TCP streams with per-OS window behaviour (Table 5).
//!
//! The implementation models what matters for loopback bandwidth: data
//! moves in MSS-sized segments against a fixed window of unacknowledged
//! bytes. The receiver acknowledges as it consumes, releasing the window.
//! Linux 1.2.8's window is a single packet (Section 9.3), so its sender
//! stalls for a full scheduling round trip per segment — the 0.38x of
//! Table 5. FreeBSD and Solaris stream against multi-segment windows and
//! are limited by per-byte protocol cost instead.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::costs::TcpCosts;
use crate::net::{Addr, Net, PortSink, Proto};
use crate::udp::Packet;
use tnt_os::{Errno, KEnv, Kernel, SysResult};
use tnt_sim::trace::{Class, Counter};
use tnt_sim::{Cycles, Sim, WaitId};

struct Seg {
    len: u64,
    available_at: Cycles,
}

/// Retransmission timeout charged when the fault plane drops a cross-host
/// segment: the era's BSD timers fired at 500 ms granularity.
const TCP_RTO: Cycles = Cycles(50_000_000);

struct DirState {
    segs: VecDeque<Seg>,
    /// Bytes sent and not yet consumed+acked.
    inflight: u64,
    /// Sender finished (EOF for the reader).
    fin: bool,
    /// Receiver is gone (`close(2)`): further sends get EPIPE/RST.
    receiver_gone: bool,
}

/// One direction of a connection: a windowed byte conduit.
struct TcpDir {
    state: Mutex<DirState>,
    window: u64,
    rd_wait: WaitId,
    wr_wait: WaitId,
}

impl TcpDir {
    fn new(sim: &Sim, window: u64) -> Arc<TcpDir> {
        Arc::new(TcpDir {
            state: Mutex::new(DirState {
                segs: VecDeque::new(),
                inflight: 0,
                fin: false,
                receiver_gone: false,
            }),
            window,
            rd_wait: sim.new_queue(),
            wr_wait: sim.new_queue(),
        })
    }
}

/// One end of an established TCP connection.
pub struct TcpStream {
    net: Net,
    env: KEnv,
    costs: TcpCosts,
    local_host: u32,
    peer_host: u32,
    tx: Arc<TcpDir>,
    rx: Arc<TcpDir>,
}

impl TcpStream {
    fn charge_syscall(&self) {
        let c = &self.env.costs;
        let _t = self.env.sim.span(Class::TrapEntry);
        self.env
            .sim
            .charge(Cycles(c.trap_cy + c.syscall_overhead_cy));
    }

    /// Writes `len` bytes to the stream, blocking on the send window.
    pub fn write(&self, len: u64) -> SysResult<u64> {
        self.charge_syscall();
        let mut sent = 0;
        while sent < len {
            let chunk = (len - sent).min(self.costs.mss);
            loop {
                let fits = {
                    let mut st = self.tx.state.lock();
                    if st.fin || st.receiver_gone {
                        return Err(Errno::EPIPE);
                    }
                    if st.inflight + chunk <= self.tx.window {
                        st.inflight += chunk;
                        true
                    } else {
                        false
                    }
                };
                if fits {
                    let mut available_at =
                        self.net
                            .transit(&self.env, self.local_host, self.peer_host, chunk);
                    if self.local_host != self.peer_host && self.env.sim.faults().net_drop() {
                        // Fault plane: the segment was lost on the wire.
                        // TCP is reliable, so the loss surfaces as latency:
                        // the sender idles one RTO, then the segment
                        // crosses the (re-reserved) wire again.
                        self.env.sim.count(Counter::TcpRetransmits, 1);
                        {
                            let _w = self.env.sim.span(Class::AckWindowWait);
                            self.env.sim.sleep(TCP_RTO);
                        }
                        available_at =
                            self.net
                                .transit(&self.env, self.local_host, self.peer_host, chunk);
                    }
                    self.tx.state.lock().segs.push_back(Seg {
                        len: chunk,
                        available_at,
                    });
                    break;
                }
                // A window-limited sender sits here until the receiver's
                // (possibly delayed) acknowledgment arrives — the stall
                // the T5 profile attributes Linux's 0.38x to.
                let _w = self.env.sim.span(Class::AckWindowWait);
                self.env.sim.wait_on(self.tx.wr_wait, "tcp send window");
            }
            self.env.sim.count(Counter::TcpSegments, 1);
            {
                let _s = self.env.sim.span(Class::ProtoCpu);
                self.env.sim.charge(Cycles(
                    self.costs.send_seg_cy
                        + (self.costs.send_per_byte_cy * chunk as f64).round() as u64,
                ));
            }
            self.env.sim.wakeup_one(self.tx.rd_wait);
            sent += chunk;
        }
        Ok(sent)
    }

    /// Reads up to `max` bytes; returns 0 at end of stream. Consuming
    /// data acknowledges it and reopens the peer's send window.
    pub fn read(&self, max: u64) -> SysResult<u64> {
        self.charge_syscall();
        loop {
            enum StepOutcome {
                Got { bytes: u64, nsegs: u64 },
                Eof,
                WaitUntil(Cycles),
                Wait,
            }
            let step = {
                let mut st = self.rx.state.lock();
                match st.segs.front() {
                    Some(seg) if seg.available_at > self.env.sim.now() => {
                        StepOutcome::WaitUntil(seg.available_at)
                    }
                    Some(_) => {
                        let mut bytes = 0;
                        let mut nsegs = 0;
                        let now = self.env.sim.now();
                        while bytes < max {
                            match st.segs.front_mut() {
                                Some(seg) if seg.available_at <= now => {
                                    let take = seg.len.min(max - bytes);
                                    seg.len -= take;
                                    bytes += take;
                                    nsegs += 1;
                                    if seg.len == 0 {
                                        st.segs.pop_front();
                                    }
                                }
                                _ => break,
                            }
                        }
                        st.inflight -= bytes;
                        StepOutcome::Got { bytes, nsegs }
                    }
                    None if st.fin => StepOutcome::Eof,
                    None => StepOutcome::Wait,
                }
            };
            match step {
                StepOutcome::Got { bytes, nsegs } => {
                    // Receive-path processing plus the acknowledgment that
                    // reopens the peer's window. A delayed ack (Linux
                    // 1.2.8's coarse generation) holds a window-limited
                    // sender idle for `ack_delay_cy`.
                    {
                        let _s = self.env.sim.span(Class::ProtoCpu);
                        self.env.sim.charge(Cycles(
                            self.costs.recv_seg_cy * nsegs
                                + self.costs.ack_cy * nsegs
                                + (self.costs.recv_per_byte_cy * bytes as f64).round() as u64,
                        ));
                    }
                    if self.costs.ack_delay_cy == 0 {
                        self.env.sim.wakeup_one(self.rx.wr_wait);
                    } else {
                        self.env.sim.count(Counter::DelayedAcks, 1);
                        let at = self.env.sim.now() + Cycles(self.costs.ack_delay_cy);
                        self.env.sim.wakeup_one_at(self.rx.wr_wait, at);
                    }
                    return Ok(bytes);
                }
                StepOutcome::Eof => return Ok(0),
                StepOutcome::WaitUntil(at) => {
                    let _w = self.env.sim.span(Class::WireTransit);
                    self.env.sim.sleep_until(at);
                }
                StepOutcome::Wait => {
                    let _w = self.env.sim.span(Class::NetRecvWait);
                    self.env.sim.wait_on(self.rx.rd_wait, "tcp recv");
                }
            }
        }
    }

    /// `close(2)`: finishes our sending direction (EOF for the peer's
    /// reads) and abandons our receiving direction (the peer's later
    /// writes fail with `EPIPE`, as a reset would cause).
    pub fn close(&self) {
        self.tx.state.lock().fin = true;
        self.env.sim.wakeup_all(self.tx.rd_wait);
        self.rx.state.lock().receiver_gone = true;
        // Unblock a peer stuck on our (now meaningless) window.
        self.env.sim.wakeup_all(self.rx.wr_wait);
    }

    /// `shutdown(SHUT_WR)`: half-close — our sends end (peer sees EOF)
    /// but we keep reading.
    pub fn shutdown_write(&self) {
        self.tx.state.lock().fin = true;
        self.env.sim.wakeup_all(self.tx.rd_wait);
    }
}

struct PendingConn {
    a2b: Arc<TcpDir>,
    b2a: Arc<TcpDir>,
    from_host: u32,
}

struct ListenQ {
    pending: Mutex<VecDeque<PendingConn>>,
    wait: WaitId,
    sim: Sim,
}

impl PortSink for ListenQ {
    fn deliver(&self, _pkt: Packet) -> Option<u64> {
        // TCP connections arrive through `push_pending`, not raw packets.
        None
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A listening TCP socket.
pub struct TcpListener {
    net: Net,
    env: KEnv,
    costs: TcpCosts,
    addr: Addr,
    q: Arc<ListenQ>,
}

impl TcpListener {
    /// Binds a listener at `port` on `kernel`'s machine.
    pub fn bind(net: &Net, kernel: &Kernel, host: u32, port: u16) -> SysResult<Arc<TcpListener>> {
        let env = kernel.env().clone();
        let costs = crate::costs::NetCosts::for_os(kernel.costs().os).tcp;
        let q = Arc::new(ListenQ {
            pending: Mutex::new(VecDeque::new()),
            wait: env.sim.new_queue(),
            sim: env.sim.clone(),
        });
        let addr = Addr { host, port };
        net.bind(addr, Proto::Tcp, q.clone())?;
        Ok(Arc::new(TcpListener {
            net: net.clone(),
            env,
            costs,
            addr,
            q,
        }))
    }

    /// The listener's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Accepts one connection, blocking until a peer connects.
    pub fn accept(&self) -> SysResult<TcpStream> {
        let c = &self.env.costs;
        {
            let _t = self.env.sim.span(Class::TrapEntry);
            self.env
                .sim
                .charge(Cycles(c.trap_cy + c.syscall_overhead_cy));
        }
        loop {
            let conn = self.q.pending.lock().pop_front();
            match conn {
                Some(conn) => {
                    let _s = self.env.sim.span(Class::ProtoCpu);
                    self.env.sim.charge(Cycles(self.costs.connect_cy / 2));
                    return Ok(TcpStream {
                        net: self.net.clone(),
                        env: self.env.clone(),
                        costs: self.costs,
                        local_host: self.addr.host,
                        peer_host: conn.from_host,
                        tx: conn.b2a,
                        rx: conn.a2b,
                    });
                }
                None => {
                    let _w = self.env.sim.span(Class::NetRecvWait);
                    self.env.sim.wait_on(self.q.wait, "tcp accept");
                }
            }
        }
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        self.net.unbind(self.addr, Proto::Tcp);
    }
}

/// Connects from `kernel`'s machine to a listening socket at `to`.
///
/// The effective window is the smaller of the two ends' windows, as TCP
/// negotiates.
pub fn connect(net: &Net, kernel: &Kernel, local_host: u32, to: Addr) -> SysResult<TcpStream> {
    let my = crate::costs::NetCosts::for_os(kernel.costs().os).tcp;
    let peer = net.host_costs(to.host).tcp;
    let costs = TcpCosts {
        window: my.window.min(peer.window),
        mss: my.mss.min(peer.mss),
        ..my
    };
    connect_custom(net, kernel, local_host, to, costs)
}

/// [`connect`] with an explicit cost table — the window-size ablation of
/// experiment `x1` uses this to show how Linux 1.2.8's one-packet window
/// caps Table 5.
pub fn connect_custom(
    net: &Net,
    kernel: &Kernel,
    local_host: u32,
    to: Addr,
    costs: TcpCosts,
) -> SysResult<TcpStream> {
    let env = kernel.env().clone();
    let window = costs.window;
    let sink = net.sink_for(to, Proto::Tcp).ok_or(Errno::ECONNREFUSED)?;
    // Downcast via a second registry would be heavyweight; instead the
    // listener is reached through its queue, held in the bindings map.
    // We rebuild the Arc<ListenQ> by trait-object identity: the sink IS
    // the ListenQ (the only Tcp sinks are listeners).
    let a2b = TcpDir::new(&env.sim, window);
    let b2a = TcpDir::new(&env.sim, window);
    {
        let _t = env.sim.span(Class::TrapEntry);
        env.sim
            .charge(Cycles(env.costs.trap_cy + env.costs.syscall_overhead_cy));
    }
    {
        let _s = env.sim.span(Class::ProtoCpu);
        env.sim.charge(Cycles(costs.connect_cy / 2));
    }
    // The handshake crosses the wire twice.
    let _ = net.transit(&env, local_host, to.host, 64);
    let _ = net.transit(&env, local_host, to.host, 64);
    push_pending(
        &sink,
        PendingConn {
            a2b: a2b.clone(),
            b2a: b2a.clone(),
            from_host: local_host,
        },
    );
    Ok(TcpStream {
        net: net.clone(),
        env,
        costs,
        local_host,
        peer_host: to.host,
        tx: a2b,
        rx: b2a,
    })
}

/// Hands the new connection to the listener behind the `PortSink` trait
/// object. `ListenQ` is the only implementor ever bound under
/// `Proto::Tcp` (this module owns both bind sites), so the downcast
/// cannot fail.
fn push_pending(sink: &Arc<dyn PortSink>, conn: PendingConn) {
    let q = sink
        .as_any()
        .downcast_ref::<ListenQ>()
        .expect("TCP sink is always a ListenQ");
    q.pending.lock().push_back(conn);
    q.sim.wakeup_one(q.wait);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_os::{boot, Os};

    fn setup(os: Os) -> (tnt_sim::Sim, Kernel, Net) {
        let (sim, kernel) = boot(os, 0);
        let net = Net::ethernet_10mbit();
        net.register_host(&kernel);
        (sim, kernel, net)
    }

    /// Runs bw_tcp-shaped traffic: `total` bytes in `chunk`-sized writes
    /// over loopback; returns Mb/s.
    fn loopback_bw(os: Os, total: u64, chunk: u64) -> f64 {
        let (sim, kernel, net) = setup(os);
        let n2 = net.clone();
        let k2 = kernel.clone();
        let result = Arc::new(Mutex::new(0.0f64));
        let r2 = result.clone();
        kernel.spawn_user("bw_tcp", move |p| {
            let listener = TcpListener::bind(&n2, &k2, 0, 5001).unwrap();
            let child = p.fork("server", move |_| {
                let conn = listener.accept().unwrap();
                while conn.read(chunk).unwrap() > 0 {}
            });
            let conn = connect(
                &n2,
                &k2,
                0,
                Addr {
                    host: 0,
                    port: 5001,
                },
            )
            .unwrap();
            let t0 = p.sim().now();
            let mut sent = 0;
            while sent < total {
                sent += conn.write(chunk.min(total - sent)).unwrap();
            }
            conn.close();
            p.waitpid(child);
            let elapsed = p.sim().now() - t0;
            *r2.lock() = tnt_sim::mbit_per_sec(total, elapsed);
        });
        sim.run().unwrap();
        let v = *result.lock();
        v
    }

    #[test]
    fn stream_delivers_all_bytes() {
        let (sim, kernel, net) = setup(Os::FreeBsd);
        let n2 = net.clone();
        let k2 = kernel.clone();
        kernel.spawn_user("pair", move |p| {
            let listener = TcpListener::bind(&n2, &k2, 0, 80).unwrap();
            let total = Arc::new(Mutex::new(0u64));
            let t2 = total.clone();
            let child = p.fork("server", move |_| {
                let conn = listener.accept().unwrap();
                loop {
                    let n = conn.read(4096).unwrap();
                    if n == 0 {
                        break;
                    }
                    *t2.lock() += n;
                }
            });
            let conn = connect(&n2, &k2, 0, Addr { host: 0, port: 80 }).unwrap();
            conn.write(100_000).unwrap();
            conn.close();
            p.waitpid(child);
            assert_eq!(*total.lock(), 100_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn connect_to_nothing_is_refused() {
        let (sim, kernel, net) = setup(Os::Linux);
        let n2 = net.clone();
        let k2 = kernel.clone();
        kernel.spawn_user("c", move |_| {
            let r = connect(
                &n2,
                &k2,
                0,
                Addr {
                    host: 0,
                    port: 9999,
                },
            );
            assert!(matches!(r.err(), Some(Errno::ECONNREFUSED)));
        });
        sim.run().unwrap();
    }

    #[test]
    fn write_blocks_on_window_until_reader_drains() {
        let (sim, kernel, net) = setup(Os::Linux);
        let n2 = net.clone();
        let k2 = kernel.clone();
        kernel.spawn_user("pair", move |p| {
            let listener = TcpListener::bind(&n2, &k2, 0, 80).unwrap();
            let child = p.fork("server", move |c| {
                let conn = listener.accept().unwrap();
                c.compute(Cycles(1_000_000)); // 10 ms before reading
                while conn.read(65536).unwrap() > 0 {}
            });
            let conn = connect(&n2, &k2, 0, Addr { host: 0, port: 80 }).unwrap();
            let t0 = p.sim().now();
            conn.write(10_000).unwrap(); // Far beyond the 1988-byte window.
            assert!(
                (p.sim().now() - t0).as_millis() >= 10.0,
                "sender had to wait for the slow reader's window"
            );
            conn.close();
            p.waitpid(child);
        });
        sim.run().unwrap();
    }

    #[test]
    fn table5_bandwidth_shape() {
        // bw_tcp: 3 MB in 48 KB chunks over loopback.
        let linux = loopback_bw(Os::Linux, 3 << 20, 48 * 1024);
        let freebsd = loopback_bw(Os::FreeBsd, 3 << 20, 48 * 1024);
        let solaris = loopback_bw(Os::Solaris, 3 << 20, 48 * 1024);
        assert!(
            (freebsd - 65.95).abs() < 10.0,
            "FreeBSD ~66 Mb/s, got {freebsd}"
        );
        assert!(
            (solaris - 60.11).abs() < 10.0,
            "Solaris ~60 Mb/s, got {solaris}"
        );
        assert!((linux - 25.03).abs() < 6.0, "Linux ~25 Mb/s, got {linux}");
        assert!(freebsd > solaris && solaris > linux);
        let norm = linux / freebsd;
        assert!(
            (norm - 0.38).abs() < 0.12,
            "Linux ~0.38x of FreeBSD, got {norm}"
        );
    }
}
