//! Per-OS network protocol cost tables.
//!
//! Calibrated against the paper's own measurements:
//!
//! - **UDP (Figure 13)**: peak bandwidths of ~16 (Linux), ~48 (FreeBSD)
//!   and ~32 Mb/s (Solaris). The Linux per-byte constant aggregates the
//!   "unnecessary copies and inefficient buffer allocation" of Section
//!   9.2, plus its 2000-byte loopback MTU forcing fragmentation of large
//!   datagrams.
//! - **TCP (Table 5)**: 65.95 / 60.11 / 25.03 Mb/s. Linux 1.2.8's TCP
//!   window is a *single packet* (Section 9.3), so every segment stalls
//!   for an acknowledgment round trip; FreeBSD and Solaris stream against
//!   a multi-segment window and are limited by per-byte protocol cost.
//!
//! All constants are CPU cycles at 100 MHz, all-inclusive (they cover the
//! data copies and checksums of their path).

use tnt_os::Os;

/// UDP path costs.
#[derive(Clone, Copy, Debug)]
pub struct UdpCosts {
    /// Loopback/driver MTU: datagrams larger than this fragment.
    pub mtu: u64,
    /// Fixed send-path cost per datagram (socket + protocol entry).
    pub send_fixed_cy: u64,
    /// Cost per fragment produced (buffer allocation, header build).
    pub per_frag_cy: u64,
    /// Fixed receive-path cost per datagram (reassembly, socket wakeup).
    pub recv_fixed_cy: u64,
    /// Per-byte send cost (copies, checksum, buffer chains).
    pub send_per_byte_cy: f64,
    /// Per-byte receive cost.
    pub recv_per_byte_cy: f64,
    /// Default socket receive buffer in bytes.
    pub rcvbuf: u64,
}

/// TCP path costs.
#[derive(Clone, Copy, Debug)]
pub struct TcpCosts {
    /// Maximum segment size on the loopback path.
    pub mss: u64,
    /// Send window in bytes. Linux 1.2.8: one packet.
    pub window: u64,
    /// Fixed cost per segment sent.
    pub send_seg_cy: u64,
    /// Fixed cost per segment received.
    pub recv_seg_cy: u64,
    /// Cost of generating + processing an acknowledgment.
    pub ack_cy: u64,
    /// Idle delay before the acknowledgment is sent (delayed-ack
    /// behaviour). A window-limited sender stalls for this on every
    /// window; a streaming sender never notices it.
    pub ack_delay_cy: u64,
    /// Per-byte send cost.
    pub send_per_byte_cy: f64,
    /// Per-byte receive cost.
    pub recv_per_byte_cy: f64,
    /// Connection establishment cost (three-way handshake, both ends).
    pub connect_cy: u64,
}

/// The complete network personality of one OS.
#[derive(Clone, Copy, Debug)]
pub struct NetCosts {
    /// UDP parameters.
    pub udp: UdpCosts,
    /// TCP parameters.
    pub tcp: TcpCosts,
}

impl NetCosts {
    /// Calibrated table for `os`.
    pub fn for_os(os: Os) -> NetCosts {
        match os {
            Os::Linux => NetCosts {
                udp: UdpCosts {
                    mtu: 2000,
                    send_fixed_cy: 18_000,
                    per_frag_cy: 12_000,
                    recv_fixed_cy: 8_000,
                    send_per_byte_cy: 25.0,
                    recv_per_byte_cy: 18.0,
                    rcvbuf: 64 * 1024,
                },
                tcp: TcpCosts {
                    mss: 1988,
                    window: 1988, // The one-packet window of Section 9.3.
                    send_seg_cy: 5_600,
                    recv_seg_cy: 5_600,
                    ack_cy: 3_200,
                    // Coarse ack generation: the stall that, combined
                    // with the one-packet window, caps Table 5 at 25 Mb/s.
                    // Dominant by design: Linux's TCP processing itself is
                    // only modestly dearer than FreeBSD's, so the deficit
                    // is idle wait, not CPU (what the profile shows).
                    ack_delay_cy: 29_000,
                    send_per_byte_cy: 2.6,
                    recv_per_byte_cy: 2.6,
                    connect_cy: 30_000,
                },
            },
            Os::FreeBsd => NetCosts {
                udp: UdpCosts {
                    mtu: 16_384,
                    send_fixed_cy: 6_000,
                    per_frag_cy: 4_000,
                    recv_fixed_cy: 5_000,
                    send_per_byte_cy: 8.2,
                    recv_per_byte_cy: 7.0,
                    rcvbuf: 64 * 1024,
                },
                tcp: TcpCosts {
                    mss: 1460,
                    window: 17_520,
                    send_seg_cy: 5_000,
                    recv_seg_cy: 5_000,
                    ack_cy: 1_200,
                    ack_delay_cy: 0,
                    send_per_byte_cy: 2.3,
                    recv_per_byte_cy: 2.3,
                    connect_cy: 25_000,
                },
            },
            Os::Solaris => NetCosts {
                udp: UdpCosts {
                    mtu: 8232,
                    send_fixed_cy: 12_000,
                    per_frag_cy: 6_000,
                    recv_fixed_cy: 12_000,
                    send_per_byte_cy: 12.0,
                    recv_per_byte_cy: 9.9,
                    rcvbuf: 64 * 1024,
                },
                tcp: TcpCosts {
                    mss: 1460,
                    window: 17_520,
                    send_seg_cy: 4_500,
                    recv_seg_cy: 4_500,
                    ack_cy: 1_500,
                    ack_delay_cy: 0,
                    send_per_byte_cy: 2.6,
                    recv_per_byte_cy: 2.6,
                    connect_cy: 45_000,
                },
            },
            Os::SunOs => NetCosts {
                udp: UdpCosts {
                    mtu: 8232,
                    send_fixed_cy: 7_000,
                    per_frag_cy: 4_000,
                    recv_fixed_cy: 6_000,
                    send_per_byte_cy: 8.5,
                    recv_per_byte_cy: 7.5,
                    rcvbuf: 64 * 1024,
                },
                tcp: TcpCosts {
                    mss: 1460,
                    window: 8_760,
                    send_seg_cy: 5_500,
                    recv_seg_cy: 5_500,
                    ack_cy: 1_400,
                    ack_delay_cy: 0,
                    send_per_byte_cy: 2.5,
                    recv_per_byte_cy: 2.5,
                    connect_cy: 30_000,
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_tcp_window_is_one_packet() {
        let c = NetCosts::for_os(Os::Linux).tcp;
        assert_eq!(c.window, c.mss, "Linux 1.2.8 TCP window = one packet");
    }

    #[test]
    fn others_have_multi_packet_windows() {
        for os in [Os::FreeBsd, Os::Solaris] {
            let c = NetCosts::for_os(os).tcp;
            assert!(
                c.window >= 6 * c.mss,
                "{os:?} streams against a real window"
            );
        }
    }

    #[test]
    fn linux_udp_per_byte_is_the_worst() {
        let total = |os: Os| {
            let u = NetCosts::for_os(os).udp;
            u.send_per_byte_cy + u.recv_per_byte_cy
        };
        assert!(total(Os::Linux) > 2.0 * total(Os::FreeBsd));
        assert!(total(Os::Solaris) > total(Os::FreeBsd));
    }
}
