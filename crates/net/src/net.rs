//! The network fabric: host registry, the loopback path and the shared
//! 10 Mb/s Ethernet.
//!
//! The paper runs pipe/UDP/TCP benchmarks over the loopback interface to
//! measure protocol-stack efficiency without wire effects, and the NFS
//! experiments over a real 10 Mb/s Ethernet (3Com 3c509). Both paths are
//! modelled here: loopback delivery is immediate (cost lives in the
//! protocol stacks); Ethernet transmissions serialise on the shared wire
//! at 10 Mb/s plus framing overhead.

// audit:allow(hashmap-iter) port bindings are keyed lookup/insert/remove only, never iterated
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::costs::NetCosts;
use tnt_os::{KEnv, Kernel};
use tnt_sim::Cycles;

/// A network endpoint address: (host id, port).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Host id returned by [`Net::register_host`].
    pub host: u32,
    /// Port number.
    pub port: u16,
}

/// Transport protocol, used to key port bindings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Proto {
    /// User datagrams.
    Udp,
    /// Byte streams.
    Tcp,
}

/// Bytes of Ethernet framing per packet (header + CRC + preamble + gap).
pub const ETHER_FRAMING: u64 = 38;

pub(crate) struct HostEntry {
    pub costs: NetCosts,
}

struct Ether {
    /// Wire speed in bits per second (0 = no wire, loopback only).
    bps: f64,
    busy_until: Cycles,
    /// Probability a cross-host frame is lost (collisions, noise).
    loss: f64,
    /// Frames dropped by the wire so far.
    dropped: u64,
}

/// Key of a port binding: (host, port, protocol).
type BindKey = (u32, u16, Proto);

pub(crate) struct NetInner {
    pub hosts: Mutex<Vec<HostEntry>>,
    ether: Mutex<Ether>,
    // audit:allow(hashmap-iter) keyed lookup only; results never depend on map order
    pub bindings: Mutex<HashMap<BindKey, Arc<dyn PortSink>>>,
}

/// Something bound to a port that accepts incoming packets. Implemented
/// by the UDP socket core and the TCP listener/connection demultiplexers.
pub(crate) trait PortSink: Send + Sync {
    /// Delivers a packet; returns the receiver's buffered byte count
    /// after delivery, or `None` if the packet had to be dropped.
    fn deliver(&self, pkt: crate::udp::Packet) -> Option<u64>;

    /// Concrete-type access for the TCP connect path.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// A simulated network connecting one or more hosts.
#[derive(Clone)]
pub struct Net {
    pub(crate) inner: Arc<NetInner>,
}

impl Net {
    /// A network whose cross-host wire is a 10 Mb/s Ethernet.
    pub fn ethernet_10mbit() -> Net {
        Net::with_wire(10_000_000.0)
    }

    /// A network with a custom wire speed (bits/second); loopback traffic
    /// never touches the wire.
    pub fn with_wire(bps: f64) -> Net {
        Net {
            inner: Arc::new(NetInner {
                hosts: Mutex::new(Vec::new()),
                ether: Mutex::new(Ether {
                    bps,
                    busy_until: Cycles::ZERO,
                    loss: 0.0,
                    dropped: 0,
                }),
                // audit:allow(hashmap-iter) see NetInner::bindings
                bindings: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Sets the cross-host frame loss probability (failure injection;
    /// loopback traffic is never lost). NFS clients must retransmit.
    pub fn set_loss(&self, loss: f64) {
        assert!((0.0..=1.0).contains(&loss));
        self.inner.ether.lock().loss = loss;
    }

    /// Frames the lossy wire has dropped so far.
    pub fn dropped_frames(&self) -> u64 {
        self.inner.ether.lock().dropped
    }

    /// Rolls the loss dice for one cross-host frame (true = lost). Uses
    /// the simulation RNG, so runs stay deterministic per seed.
    pub(crate) fn frame_lost(&self, env: &KEnv, from: u32, to: u32) -> bool {
        if from == to {
            return false;
        }
        // Fault plane: injected frame loss draws from its own salted RNG
        // stream, so enabling it never perturbs the simulation RNG (and
        // with faults off it draws nothing at all).
        if env.sim.faults().net_drop() {
            self.inner.ether.lock().dropped += 1;
            return true;
        }
        let loss = self.inner.ether.lock().loss;
        if loss == 0.0 {
            return false;
        }
        let roll: f64 = env.sim.with_rng(|rng| rand::Rng::gen_range(rng, 0.0..1.0));
        if roll < loss {
            self.inner.ether.lock().dropped += 1;
            true
        } else {
            false
        }
    }

    /// Registers a machine on this network and returns its host id.
    pub fn register_host(&self, kernel: &Kernel) -> u32 {
        let mut hosts = self.inner.hosts.lock();
        hosts.push(HostEntry {
            costs: NetCosts::for_os(kernel.costs().os),
        });
        (hosts.len() - 1) as u32
    }

    pub(crate) fn host_costs(&self, host: u32) -> NetCosts {
        self.inner.hosts.lock()[host as usize].costs
    }

    /// Reserves wire time for a cross-host frame of `bytes` payload and
    /// returns its arrival instant. Loopback (same host) returns `now`.
    #[must_use]
    pub(crate) fn transit(&self, env: &KEnv, from: u32, to: u32, bytes: u64) -> Cycles {
        let now = env.sim.now();
        if from == to {
            return now;
        }
        let mut ether = self.inner.ether.lock();
        let start = now.max(ether.busy_until);
        let tx_secs = (bytes + ETHER_FRAMING) as f64 * 8.0 / ether.bps;
        ether.busy_until = start + Cycles::from_secs(tx_secs);
        ether.busy_until
    }

    /// Wire time of one maximum-size frame (MTU payload plus framing) —
    /// the unit of fault-injected delivery delay. Zero on a wireless
    /// (loopback-only) network.
    #[must_use]
    pub(crate) fn max_frame_time(&self) -> Cycles {
        let bps = self.inner.ether.lock().bps;
        if bps <= 0.0 {
            return Cycles::ZERO;
        }
        Cycles::from_secs((1500 + ETHER_FRAMING) as f64 * 8.0 / bps)
    }

    pub(crate) fn bind(
        &self,
        addr: Addr,
        proto: Proto,
        sink: Arc<dyn PortSink>,
    ) -> Result<(), tnt_os::Errno> {
        let mut b = self.inner.bindings.lock();
        if b.contains_key(&(addr.host, addr.port, proto)) {
            return Err(tnt_os::Errno::EADDRINUSE);
        }
        b.insert((addr.host, addr.port, proto), sink);
        Ok(())
    }

    pub(crate) fn unbind(&self, addr: Addr, proto: Proto) {
        self.inner
            .bindings
            .lock()
            .remove(&(addr.host, addr.port, proto));
    }

    pub(crate) fn sink_for(&self, addr: Addr, proto: Proto) -> Option<Arc<dyn PortSink>> {
        self.inner
            .bindings
            .lock()
            .get(&(addr.host, addr.port, proto))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_os::{boot, Os};

    #[test]
    fn loopback_transit_is_immediate() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let net = Net::ethernet_10mbit();
        net.register_host(&kernel);
        let env = kernel.env().clone();
        let n2 = net.clone();
        kernel.spawn_user("t", move |p| {
            let arrival = n2.transit(&env, 0, 0, 1500);
            assert_eq!(arrival, p.sim().now());
        });
        sim.run().unwrap();
    }

    #[test]
    fn ethernet_serialises_frames() {
        let (sim, kernels) = tnt_os::boot_cluster(&[Os::Linux, Os::SunOs], 0);
        let net = Net::ethernet_10mbit();
        net.register_host(&kernels[0]);
        net.register_host(&kernels[1]);
        let env = kernels[0].env().clone();
        let n2 = net.clone();
        kernels[0].spawn_user("t", move |p| {
            let a1 = n2.transit(&env, 0, 1, 1500);
            let a2 = n2.transit(&env, 0, 1, 1500);
            // 1538 bytes at 10 Mb/s is ~1.23 ms per frame, back to back.
            let per_frame_us = 1538.0 * 8.0 / 10.0; // = 1230.4 us
            assert!((a1 - p.sim().now()).as_micros() - per_frame_us < 1.0);
            assert!(((a2 - a1).as_micros() - per_frame_us).abs() < 1.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn host_registration_and_costs() {
        let (_sim, kernels) = tnt_os::boot_cluster(&[Os::FreeBsd, Os::SunOs], 0);
        let net = Net::ethernet_10mbit();
        assert_eq!(net.register_host(&kernels[0]), 0);
        assert_eq!(net.register_host(&kernels[1]), 1);
        assert_eq!(net.host_costs(0).tcp.mss, 1460);
    }
}
