//! Per-OS filesystem personalities.
//!
//! These parameters encode the 1995 design choices that Section 7 of the
//! paper attributes the file-system results to:
//!
//! - **ext2 (Linux 1.2.8)**: 1 KB blocks, *fully asynchronous metadata*
//!   (the order-of-magnitude crtdel win), modest read-ahead, a small
//!   write-behind window and poor write clustering (the Figure 10 loss);
//! - **FFS (FreeBSD 2.0.5R)**: 8 KB blocks, synchronous inode + directory
//!   writes on create/delete (4 far seeks per crtdel iteration, ~66 ms),
//!   a large dirty window and good clustering (the Figure 10 win below
//!   8 MB), plus the separate directory attribute cache that wins MAB's
//!   stat phase;
//! - **UFS (Solaris 2.4)**: 8 KB blocks, synchronous metadata but fewer
//!   sync writes per operation (~34 ms crtdel), and the most aggressive
//!   read-ahead (the best out-of-cache reads in Figure 9).
//!
//! The FreeBSD `overwrite_block_cy` models the overwrite path of its
//! merged VM/buffer machinery; the paper observes (Figure 11) that
//! FreeBSD performs ~50% fewer cached random read+write operations per
//! second without identifying the mechanism, so this constant is our
//! hypothesis knob, documented as such.

use crate::bufcache::CacheParams;
use tnt_os::Os;

/// Complete parameter set of one filesystem personality.
#[derive(Clone, Copy, Debug)]
pub struct FsParams {
    /// Human-readable name ("ext2fs", "ffs", "ufs").
    pub label: &'static str,
    /// Filesystem block size in bytes.
    pub block_bytes: u64,
    /// Buffer cache geometry and write-behind policy.
    pub cache: CacheParams,
    /// Read-ahead window in blocks for sequential reads.
    pub readahead_blocks: u64,
    /// CPU cycles per path component resolved.
    pub lookup_cy: u64,
    /// Generic CPU cycles per filesystem operation.
    pub per_op_cy: u64,
    /// CPU cycles per block on the read path (bmap, buffer handling).
    pub per_block_read_cy: u64,
    /// CPU cycles per newly allocated block on the write path (balloc
    /// bitmap search, bmap extension, indirect blocks).
    pub per_block_write_cy: u64,
    /// CPU cycles per overwrite of an existing block (no allocation).
    pub overwrite_block_cy: u64,
    /// Extra CPU per `write(2)` call (Solaris UFS pays heavy per-call
    /// locking and rnode bookkeeping; near zero elsewhere).
    pub write_call_cy: u64,
    /// Synchronous metadata writes per `creat` (0 = fully async).
    pub sync_create: u32,
    /// Synchronous metadata writes per `unlink`.
    pub sync_unlink: u32,
    /// Synchronous metadata writes per `mkdir`/`rmdir`.
    pub sync_mkdir: u32,
    /// Contiguous blocks the allocator lays out before inserting a gap.
    pub contig_run_blocks: u64,
    /// Size of that allocation gap, in 1 KB disk blocks.
    pub frag_gap_kb: u64,
    /// Whether a separate directory attribute cache exists (FreeBSD).
    pub attr_cache: bool,
    /// Capacity of the in-core inode/attribute LRU, in inodes.
    pub meta_lru_cap: usize,
    /// Cycles for a `getattr` served from the attribute/inode cache.
    pub getattr_hit_cy: u64,
    /// Cycles to rebuild attributes on an inode-cache miss (plus a buffer
    /// cache read that may reach the disk).
    pub getattr_miss_cy: u64,
    /// Cycles per directory entry returned by `readdir`.
    pub readdir_entry_cy: u64,
}

impl FsParams {
    /// Linux 1.2.8 ext2fs.
    pub fn ext2_linux() -> FsParams {
        FsParams {
            label: "ext2fs",
            block_bytes: 1024,
            cache: CacheParams {
                capacity_bytes: 21 * 1024 * 1024,
                block_bytes: 1024,
                dirty_hiwater_bytes: 8 * 1024 * 1024,
                write_cluster_blocks: 24,
                per_block_cpu_cy: 200,
            },
            readahead_blocks: 7,
            lookup_cy: 1_500,
            per_op_cy: 1_200,
            per_block_read_cy: 2_600,
            per_block_write_cy: 15_700,
            overwrite_block_cy: 2_200,
            write_call_cy: 0,
            sync_create: 0,
            sync_unlink: 0,
            sync_mkdir: 0,
            contig_run_blocks: 24,
            frag_gap_kb: 64,
            attr_cache: false,
            meta_lru_cap: 32,
            getattr_hit_cy: 800,
            getattr_miss_cy: 12_000,
            readdir_entry_cy: 250,
        }
    }

    /// FreeBSD 2.0.5R FFS.
    pub fn ffs_freebsd() -> FsParams {
        FsParams {
            label: "ffs",
            block_bytes: 8192,
            cache: CacheParams {
                capacity_bytes: 20 * 1024 * 1024,
                block_bytes: 8192,
                dirty_hiwater_bytes: 8 * 1024 * 1024,
                write_cluster_blocks: 16,
                per_block_cpu_cy: 200,
            },
            readahead_blocks: 7,
            lookup_cy: 2_200,
            per_op_cy: 1_800,
            per_block_read_cy: 17_800,
            per_block_write_cy: 26_000,
            overwrite_block_cy: 62_000,
            write_call_cy: 0,
            sync_create: 2,
            sync_unlink: 2,
            sync_mkdir: 2,
            contig_run_blocks: 128,
            frag_gap_kb: 128,
            attr_cache: true,
            meta_lru_cap: 256,
            getattr_hit_cy: 1_500,
            getattr_miss_cy: 8_000,
            readdir_entry_cy: 350,
        }
    }

    /// Solaris 2.4 UFS.
    pub fn ufs_solaris() -> FsParams {
        FsParams {
            label: "ufs",
            block_bytes: 8192,
            cache: CacheParams {
                capacity_bytes: 20 * 1024 * 1024,
                block_bytes: 8192,
                dirty_hiwater_bytes: 8 * 1024 * 1024,
                write_cluster_blocks: 12,
                per_block_cpu_cy: 300,
            },
            readahead_blocks: 15,
            lookup_cy: 3_200,
            per_op_cy: 2_600,
            per_block_read_cy: 19_800,
            per_block_write_cy: 26_000,
            overwrite_block_cy: 12_000,
            write_call_cy: 19_000,
            sync_create: 1,
            sync_unlink: 1,
            sync_mkdir: 2,
            contig_run_blocks: 64,
            frag_gap_kb: 96,
            attr_cache: false,
            meta_lru_cap: 128,
            getattr_hit_cy: 2_500,
            getattr_miss_cy: 15_000,
            readdir_entry_cy: 500,
        }
    }

    /// FreeBSD 2.1's FFS with *ordered asynchronous* metadata updates
    /// (Section 13): creates and deletes no longer wait on the disk, at
    /// a small CPU cost for dependency ordering — the soft-updates
    /// lineage. Everything else matches 2.0.5R.
    pub fn ffs_freebsd_21() -> FsParams {
        let base = FsParams::ffs_freebsd();
        FsParams {
            label: "ffs+ordered-async",
            sync_create: 0,
            sync_unlink: 0,
            sync_mkdir: 0,
            // Ordering bookkeeping per metadata operation.
            per_op_cy: base.per_op_cy + 1_200,
            ..base
        }
    }

    /// Ablation: this personality with its metadata policy toggled
    /// (async made sync and vice versa), used by experiment `x2` to show
    /// how much of Figure 12 is the update policy alone.
    pub fn with_sync_metadata(self, sync: bool) -> FsParams {
        let n = if sync { 2 } else { 0 };
        FsParams {
            sync_create: n,
            sync_unlink: n,
            sync_mkdir: n,
            ..self
        }
    }

    /// SunOS 4.1.4 FFS (the Table 7 NFS server).
    pub fn ffs_sunos() -> FsParams {
        FsParams {
            label: "4.2bsd-ffs",
            sync_create: 2,
            sync_unlink: 2,
            sync_mkdir: 2,
            ..FsParams::ffs_freebsd()
        }
    }

    /// The personality an OS mounts for local benchmarks.
    pub fn for_os(os: Os) -> FsParams {
        match os {
            Os::Linux => FsParams::ext2_linux(),
            Os::FreeBsd => FsParams::ffs_freebsd(),
            Os::Solaris => FsParams::ufs_solaris(),
            Os::SunOs => FsParams::ffs_sunos(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext2_is_fully_async() {
        let p = FsParams::ext2_linux();
        assert_eq!((p.sync_create, p.sync_unlink, p.sync_mkdir), (0, 0, 0));
    }

    #[test]
    fn ffs_variants_are_synchronous() {
        assert_eq!(FsParams::ffs_freebsd().sync_create, 2);
        assert_eq!(FsParams::ufs_solaris().sync_create, 1);
        assert!(FsParams::ffs_sunos().sync_create > 0);
    }

    #[test]
    fn crtdel_sync_write_counts_match_section_7_2() {
        // FreeBSD pays 4 sync writes per create+delete, Solaris 2; at
        // ~14.5 ms per far metadata write this is the 66 ms vs 34 ms gap.
        let f = FsParams::ffs_freebsd();
        let s = FsParams::ufs_solaris();
        assert_eq!(f.sync_create + f.sync_unlink, 4);
        assert_eq!(s.sync_create + s.sync_unlink, 2);
    }

    #[test]
    fn only_freebsd_has_attr_cache() {
        assert!(FsParams::ffs_freebsd().attr_cache);
        assert!(!FsParams::ext2_linux().attr_cache);
        assert!(!FsParams::ufs_solaris().attr_cache);
    }

    #[test]
    fn cache_sizes_leave_room_for_the_20mb_cliff() {
        for os in Os::benchmarked() {
            let p = FsParams::for_os(os);
            let mb = p.cache.capacity_bytes / (1024 * 1024);
            assert!((20..=22).contains(&mb), "{os:?} cache {mb} MB");
            assert_eq!(p.cache.block_bytes, p.block_bytes);
        }
    }
}
