#![warn(missing_docs)]

//! Storage stack of the reproduction: disk models, the unified buffer
//! cache, and the three filesystem personalities of Section 7.
//!
//! The headline behaviours reproduced here:
//!
//! - ext2's *asynchronous* metadata updates make create/delete workloads
//!   an order of magnitude faster than the FFS family (Figure 12);
//! - the FFS family pays 2-4 synchronous far-seek metadata writes per
//!   create/delete (FreeBSD ~66 ms, Solaris ~34 ms per crtdel iteration);
//! - the unified buffer cache grows to ~20 MB of the 32 MB machine,
//!   producing the cliffs of Figures 9-11;
//! - per-OS read-ahead and write-clustering quality set the large-file
//!   orderings (Solaris best at cold reads, FreeBSD best below its dirty
//!   window, Linux's small blocks and fragmented allocator losing both).
//!
//! # Examples
//!
//! ```
//! use tnt_fs::SimFs;
//! use tnt_os::{boot, Os};
//!
//! let (sim, kernel) = boot(Os::Linux, 0);
//! kernel.mount(SimFs::fresh_for_os(Os::Linux));
//! kernel.spawn_user("hello-fs", |p| {
//!     let fd = p.creat("/hello").unwrap();
//!     p.write(fd, 4096).unwrap();
//!     p.close(fd).unwrap();
//!     assert_eq!(p.stat("/hello").unwrap().size, 4096);
//! });
//! sim.run().unwrap();
//! ```

mod bufcache;
mod disk;
mod fsimpl;
mod params;

pub use bufcache::{BufferCache, CacheParams};
pub use disk::{Disk, DiskParams, IoKind, DISK_RETRIES};
pub use fsimpl::{CrashReport, SimFs};
pub use params::FsParams;
