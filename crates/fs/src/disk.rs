//! SCSI disk models for the two drives of `tnt.stanford.edu`.
//!
//! The paper's only direct disk measurement is that a random 8 KB
//! read-modify-write converges to 14 ms (Figure 11), so the seek curve,
//! rotation and media rate below are calibrated to produce ~14 ms random
//! 8 KB I/O on the HP 3725 benchmark disk. Addresses are in 1 KB blocks.

use parking_lot::Mutex;

use tnt_os::KEnv;
use tnt_sim::trace::{Class, Counter};
use tnt_sim::Cycles;

/// Mechanical and transfer parameters of a drive.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Spindle speed.
    pub rpm: u32,
    /// Single-track (minimum) seek, milliseconds.
    pub min_seek_ms: f64,
    /// Average (third-stroke) seek, milliseconds.
    pub avg_seek_ms: f64,
    /// Full-stroke seek, milliseconds.
    pub max_seek_ms: f64,
    /// Sustained media transfer rate, MB/s.
    pub media_mb_s: f64,
    /// Fixed per-command overhead (controller + SCSI bus), milliseconds.
    pub overhead_ms: f64,
    /// Capacity in 1 KB blocks.
    pub total_blocks: u64,
}

impl DiskParams {
    /// The HP 3725 used as the dedicated benchmark disk.
    pub fn hp3725() -> DiskParams {
        DiskParams {
            rpm: 4500,
            min_seek_ms: 2.5,
            avg_seek_ms: 7.5,
            max_seek_ms: 17.0,
            media_mb_s: 3.5,
            overhead_ms: 1.0,
            total_blocks: 2 * 1024 * 1024, // 2 GB
        }
    }

    /// The Quantum Empire 2100S holding the operating systems.
    pub fn quantum2100() -> DiskParams {
        DiskParams {
            rpm: 5400,
            min_seek_ms: 1.5,
            avg_seek_ms: 9.5,
            max_seek_ms: 19.0,
            media_mb_s: 3.5,
            overhead_ms: 0.7,
            total_blocks: 2 * 1024 * 1024,
        }
    }

    /// Duration of one platter revolution.
    #[must_use]
    pub fn rotation(&self) -> Cycles {
        Cycles::from_millis(60_000.0 / self.rpm as f64)
    }
}

struct DiskState {
    head: u64,
    reads: u64,
    writes: u64,
    blocks_moved: u64,
}

/// A disk drive: computes service times from head movement and transfer
/// size, and remembers head position across requests.
pub struct Disk {
    params: DiskParams,
    state: Mutex<DiskState>,
}

/// Kind of transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoKind {
    /// Read from media.
    Read,
    /// Write to media.
    Write,
}

impl Disk {
    /// A drive with the head parked at block 0.
    pub fn new(params: DiskParams) -> Disk {
        Disk {
            params,
            state: Mutex::new(DiskState {
                head: 0,
                reads: 0,
                writes: 0,
                blocks_moved: 0,
            }),
        }
    }

    /// The drive's parameters.
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// (reads, writes, blocks transferred) so far — for tests and reports.
    pub fn stats(&self) -> (u64, u64, u64) {
        let st = self.state.lock();
        (st.reads, st.writes, st.blocks_moved)
    }

    /// Seek time for a head movement of `dist` blocks, using the classic
    /// square-root seek curve anchored at (1, min), (total/3, avg).
    #[must_use]
    pub fn seek_time(&self, dist: u64) -> Cycles {
        if dist == 0 {
            return Cycles::ZERO;
        }
        let p = &self.params;
        let third = p.total_blocks as f64 / 3.0;
        let b = (p.avg_seek_ms - p.min_seek_ms) / third.sqrt();
        let ms = (p.min_seek_ms + b * (dist as f64).sqrt()).min(p.max_seek_ms);
        Cycles::from_millis(ms)
    }

    /// The three mechanical phases of a request — (command overhead +
    /// seek, rotational delay, media transfer) — without performing it.
    /// Their sum is exactly [`Disk::service_time`].
    pub fn service_phases(&self, from: u64, addr: u64, blocks: u64) -> [Cycles; 3] {
        let p = &self.params;
        let dist = from.abs_diff(addr);
        let seek = Cycles::from_millis(p.overhead_ms) + self.seek_time(dist);
        // A sequential continuation skips the seek but the controller
        // still loses part of a revolution between commands; a random
        // access waits half a revolution on average.
        let rot = if dist == 0 {
            self.params.rotation().scale(0.4)
        } else {
            self.params.rotation().scale(0.5)
        };
        let xfer = Cycles::from_millis(blocks as f64 / 1024.0 / p.media_mb_s * 1_000.0);
        [seek, rot, xfer]
    }

    /// Pure service time of a request, without performing it.
    #[must_use]
    pub fn service_time(&self, from: u64, addr: u64, blocks: u64) -> Cycles {
        let [seek, rot, xfer] = self.service_phases(from, addr, blocks);
        seek + rot + xfer
    }

    /// Performs a synchronous transfer of `blocks` 1 KB blocks starting at
    /// `addr`: the calling simulated process sleeps for the service time,
    /// phase by phase so the profiler sees where the milliseconds go.
    pub fn io(&self, env: &KEnv, kind: IoKind, addr: u64, blocks: u64) {
        let phases = {
            let mut st = self.state.lock();
            let phases = self.service_phases(st.head, addr, blocks);
            st.head = addr + blocks;
            match kind {
                IoKind::Read => st.reads += 1,
                IoKind::Write => st.writes += 1,
            }
            st.blocks_moved += blocks;
            phases
        };
        let counter = match kind {
            IoKind::Read => Counter::DiskReads,
            IoKind::Write => Counter::DiskWrites,
        };
        env.sim.count(counter, 1);
        let classes = [Class::DiskSeek, Class::DiskRotation, Class::DiskMedia];
        for (class, t) in classes.into_iter().zip(phases) {
            if t > Cycles::ZERO {
                let _s = env.sim.span(class);
                env.sim.sleep(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_os::{boot, Os};

    #[test]
    fn random_8k_io_near_14ms() {
        // Figure 11: the systems converge to ~14 ms per random 8 KB I/O.
        // Bonnie seeks within its (up to 100 MB) file, so the relevant
        // distance is intra-file, not full-disk.
        let d = Disk::new(DiskParams::hp3725());
        let file_blocks = 100 * 1024; // 100 MB in 1 KB blocks
        let t = d.service_time(0, file_blocks / 2, 8);
        let ms = t.as_millis();
        assert!(
            (ms - 14.0).abs() < 2.0,
            "random-in-file 8KB ~14ms, got {ms}"
        );
        // A full third-stroke seek is dearer.
        let far = d.service_time(0, DiskParams::hp3725().total_blocks / 3, 8);
        assert!(far.as_millis() > ms);
    }

    #[test]
    fn sequential_io_is_much_cheaper() {
        let d = Disk::new(DiskParams::hp3725());
        // For small transfers the seek+rotation dominates.
        let seq8 = d.service_time(1000, 1000, 8);
        let rand8 = d.service_time(0, 700_000, 8);
        assert!(seq8.as_millis() < rand8.as_millis() / 2.0);
        let seq = d.service_time(1000, 1000, 64);
        // 64 KB at 3.5 MB/s is ~18.3 ms of transfer plus overhead and the
        // inter-command rotational loss.
        assert!(
            (seq.as_millis() - 24.6).abs() < 1.0,
            "got {}",
            seq.as_millis()
        );
    }

    #[test]
    fn seek_curve_monotone_and_bounded() {
        let d = Disk::new(DiskParams::hp3725());
        let mut last = Cycles::ZERO;
        for dist in [0u64, 1, 100, 10_000, 1_000_000, 2_000_000] {
            let t = d.seek_time(dist);
            assert!(t >= last, "seek time must not decrease with distance");
            assert!(t <= Cycles::from_millis(16.0), "capped at full stroke");
            last = t;
        }
        assert_eq!(d.seek_time(0), Cycles::ZERO);
    }

    #[test]
    fn io_advances_clock_and_head() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let disk = std::sync::Arc::new(Disk::new(DiskParams::hp3725()));
        let d2 = disk.clone();
        let env = kernel.env().clone();
        kernel.spawn_user("io", move |_| {
            d2.io(&env, IoKind::Read, 500_000, 8);
            d2.io(&env, IoKind::Read, 500_008, 8); // sequential: cheap
        });
        let elapsed = sim.run().unwrap();
        let (reads, writes, blocks) = disk.stats();
        assert_eq!((reads, writes, blocks), (2, 0, 16));
        let ms = elapsed.as_millis();
        assert!(
            ms > 15.0 && ms < 32.0,
            "one random + one sequential, got {ms}ms"
        );
    }

    #[test]
    fn rotation_from_rpm() {
        let p = DiskParams::hp3725();
        assert!((p.rotation().as_millis() - 13.33).abs() < 0.02);
    }
}
