//! SCSI disk models for the two drives of `tnt.stanford.edu`.
//!
//! The paper's only direct disk measurement is that a random 8 KB
//! read-modify-write converges to 14 ms (Figure 11), so the seek curve,
//! rotation and media rate below are calibrated to produce ~14 ms random
//! 8 KB I/O on the HP 3725 benchmark disk. Addresses are in 1 KB blocks.

use parking_lot::Mutex;

use tnt_os::{Errno, KEnv, SysResult};
use tnt_sim::trace::{Class, Counter};
use tnt_sim::Cycles;

/// Transparent retries the driver performs on a transient command fault
/// before surfacing `EIO` to the filesystem (the classic `sd` retry
/// budget). Each retry re-pays the full mechanical service time.
/// Public so the trace replayer (`tnt-harness`) can mirror the driver's
/// retry behaviour when it drives [`Disk::command`] directly.
pub const DISK_RETRIES: u32 = 2;

/// Mechanical and transfer parameters of a drive.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Spindle speed.
    pub rpm: u32,
    /// Single-track (minimum) seek, milliseconds.
    pub min_seek_ms: f64,
    /// Average (third-stroke) seek, milliseconds.
    pub avg_seek_ms: f64,
    /// Full-stroke seek, milliseconds.
    pub max_seek_ms: f64,
    /// Sustained media transfer rate, MB/s.
    pub media_mb_s: f64,
    /// Fixed per-command overhead (controller + SCSI bus), milliseconds.
    pub overhead_ms: f64,
    /// Capacity in 1 KB blocks.
    pub total_blocks: u64,
}

impl DiskParams {
    /// The HP 3725 used as the dedicated benchmark disk.
    pub fn hp3725() -> DiskParams {
        DiskParams {
            rpm: 4500,
            min_seek_ms: 2.5,
            avg_seek_ms: 7.5,
            max_seek_ms: 17.0,
            media_mb_s: 3.5,
            overhead_ms: 1.0,
            total_blocks: 2 * 1024 * 1024, // 2 GB
        }
    }

    /// The Quantum Empire 2100S holding the operating systems.
    pub fn quantum2100() -> DiskParams {
        DiskParams {
            rpm: 5400,
            min_seek_ms: 1.5,
            avg_seek_ms: 9.5,
            max_seek_ms: 19.0,
            media_mb_s: 3.5,
            overhead_ms: 0.7,
            total_blocks: 2 * 1024 * 1024,
        }
    }

    /// Duration of one platter revolution.
    #[must_use]
    pub fn rotation(&self) -> Cycles {
        Cycles::from_millis(60_000.0 / self.rpm as f64)
    }
}

struct DiskState {
    head: u64,
    reads: u64,
    writes: u64,
    blocks_moved: u64,
    /// Total mechanical service time of every command issued, remap
    /// spikes included — the drive's busy time. Capture-vs-replay
    /// equality is asserted on this total.
    busy: Cycles,
    /// Transient command faults absorbed by driver retries.
    faults: u64,
    /// Sector-remap latency spikes paid.
    remaps: u64,
}

/// A disk drive: computes service times from head movement and transfer
/// size, and remembers head position across requests.
pub struct Disk {
    params: DiskParams,
    state: Mutex<DiskState>,
}

/// Kind of transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoKind {
    /// Read from media.
    Read,
    /// Write to media.
    Write,
}

impl Disk {
    /// A drive with the head parked at block 0.
    pub fn new(params: DiskParams) -> Disk {
        Disk {
            params,
            state: Mutex::new(DiskState {
                head: 0,
                reads: 0,
                writes: 0,
                blocks_moved: 0,
                busy: Cycles::ZERO,
                faults: 0,
                remaps: 0,
            }),
        }
    }

    /// The drive's parameters.
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// (reads, writes, blocks transferred) so far — for tests and reports.
    pub fn stats(&self) -> (u64, u64, u64) {
        let st = self.state.lock();
        (st.reads, st.writes, st.blocks_moved)
    }

    /// (transient faults retried, sector remaps paid) so far — nonzero
    /// only when the fault plane is injecting.
    pub fn fault_stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.faults, st.remaps)
    }

    /// Total mechanical service time of every command issued so far
    /// (remap spikes included). A deterministic function of the command
    /// sequence alone, so a faithful replay of a capture reproduces it
    /// exactly — the equality experiments x11/x12 assert.
    #[must_use]
    pub fn busy_cycles(&self) -> Cycles {
        self.state.lock().busy
    }

    /// Seek time for a head movement of `dist` blocks, using the classic
    /// square-root seek curve anchored at (1, min), (total/3, avg).
    #[must_use]
    pub fn seek_time(&self, dist: u64) -> Cycles {
        if dist == 0 {
            return Cycles::ZERO;
        }
        let p = &self.params;
        let third = p.total_blocks as f64 / 3.0;
        let b = (p.avg_seek_ms - p.min_seek_ms) / third.sqrt();
        let ms = (p.min_seek_ms + b * (dist as f64).sqrt()).min(p.max_seek_ms);
        Cycles::from_millis(ms)
    }

    /// The three mechanical phases of a request — (command overhead +
    /// seek, rotational delay, media transfer) — without performing it.
    /// Their sum is exactly [`Disk::service_time`].
    pub fn service_phases(&self, from: u64, addr: u64, blocks: u64) -> [Cycles; 3] {
        let p = &self.params;
        let dist = from.abs_diff(addr);
        let seek = Cycles::from_millis(p.overhead_ms) + self.seek_time(dist);
        // A sequential continuation skips the seek but the controller
        // still loses part of a revolution between commands; a random
        // access waits half a revolution on average.
        let rot = if dist == 0 {
            self.params.rotation().scale(0.4)
        } else {
            self.params.rotation().scale(0.5)
        };
        let xfer = Cycles::from_millis(blocks as f64 / 1024.0 / p.media_mb_s * 1_000.0);
        [seek, rot, xfer]
    }

    /// Pure service time of a request, without performing it.
    #[must_use]
    pub fn service_time(&self, from: u64, addr: u64, blocks: u64) -> Cycles {
        let [seek, rot, xfer] = self.service_phases(from, addr, blocks);
        seek + rot + xfer
    }

    /// Performs a synchronous transfer of `blocks` 1 KB blocks starting at
    /// `addr`: the calling simulated process sleeps for the service time,
    /// phase by phase so the profiler sees where the milliseconds go.
    ///
    /// Under fault injection a command may hit a sector remap (the
    /// service succeeds after extra arm travel plus a lost revolution) or
    /// fail transiently; the driver retries a failed command up to
    /// [`DISK_RETRIES`] times — each retry re-pays full service time —
    /// and surfaces `EIO` only when the budget is spent. With faults off
    /// this is infallible and byte-identical to the faultless model.
    pub fn io(&self, env: &KEnv, kind: IoKind, addr: u64, blocks: u64) -> SysResult<()> {
        for _attempt in 0..=DISK_RETRIES {
            let phases = self.issue(env, kind, addr, blocks);
            for (class, t) in [Class::DiskSeek, Class::DiskRotation, Class::DiskMedia]
                .into_iter()
                .zip(phases)
            {
                if t > Cycles::ZERO {
                    let _s = env.sim.span(class);
                    env.sim.sleep(t);
                }
            }
            if !env.sim.faults().disk_transient() {
                return Ok(());
            }
            // The command failed after the mechanical work; count it and
            // let the retry loop re-issue.
            self.state.lock().faults += 1;
            env.sim.count(Counter::DiskFaults, 1);
        }
        Err(Errno::EIO)
    }

    /// Issues one command **without sleeping**: counts it, captures it
    /// to the workload recorder, moves the head, pays the remap roll,
    /// and returns the mechanical phases plus whether the command
    /// completed (one transient-fault roll, as in [`Disk::io`]). The
    /// caller owes the drive the phase sum of simulated time — the
    /// trace replayer pays it by *returning* `Step::Block` from a lite
    /// process's `poll`, where the sleeping [`Disk::io`] is off limits.
    ///
    /// Statistics ([`Disk::stats`], [`Disk::busy_cycles`],
    /// [`Disk::fault_stats`]) advance exactly as for one [`Disk::io`]
    /// attempt, so a faithful replay of a recorded command sequence
    /// reproduces the recorded totals. The only behavioural difference
    /// from `io` is fault-roll *timing*: `io` rolls the transient fault
    /// after the mechanical sleep, `command` rolls it at issue — both
    /// sides of a capture/replay pair see the same per-command
    /// distributions either way.
    pub fn command(&self, env: &KEnv, kind: IoKind, addr: u64, blocks: u64) -> ([Cycles; 3], bool) {
        let phases = self.issue(env, kind, addr, blocks);
        let ok = !env.sim.faults().disk_transient();
        if !ok {
            self.state.lock().faults += 1;
            env.sim.count(Counter::DiskFaults, 1);
        }
        (phases, ok)
    }

    /// The shared front half of [`Disk::io`] and [`Disk::command`]:
    /// everything a command does besides occupying simulated time and
    /// rolling its transient fault.
    fn issue(&self, env: &KEnv, kind: IoKind, addr: u64, blocks: u64) -> [Cycles; 3] {
        let counter = match kind {
            IoKind::Read => Counter::DiskReads,
            IoKind::Write => Counter::DiskWrites,
        };
        // Each attempt is a command the bus carried, so each counts —
        // and each is what the workload recorder captures: replaying
        // the capture re-issues exactly the commands the bus saw.
        env.sim.count(counter, 1);
        env.sim.record_block(kind == IoKind::Write, addr, blocks);
        let mut phases = {
            let mut st = self.state.lock();
            let phases = self.service_phases(st.head, addr, blocks);
            st.head = addr + blocks;
            match kind {
                IoKind::Read => st.reads += 1,
                IoKind::Write => st.writes += 1,
            }
            st.blocks_moved += blocks;
            phases
        };
        if env.sim.faults().disk_remap() {
            // The drive transparently revectors the sector: extra arm
            // travel to the spare cylinder plus one lost revolution,
            // charged to the seek phase where an observer's timing
            // would see it.
            self.state.lock().remaps += 1;
            env.sim.count(Counter::DiskRemaps, 1);
            phases[0] = phases[0] + self.seek_time(self.params.total_blocks) + self.params.rotation();
        }
        {
            let mut st = self.state.lock();
            st.busy = st.busy + phases[0] + phases[1] + phases[2];
        }
        phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_os::{boot, Os};

    #[test]
    fn random_8k_io_near_14ms() {
        // Figure 11: the systems converge to ~14 ms per random 8 KB I/O.
        // Bonnie seeks within its (up to 100 MB) file, so the relevant
        // distance is intra-file, not full-disk.
        let d = Disk::new(DiskParams::hp3725());
        let file_blocks = 100 * 1024; // 100 MB in 1 KB blocks
        let t = d.service_time(0, file_blocks / 2, 8);
        let ms = t.as_millis();
        assert!(
            (ms - 14.0).abs() < 2.0,
            "random-in-file 8KB ~14ms, got {ms}"
        );
        // A full third-stroke seek is dearer.
        let far = d.service_time(0, DiskParams::hp3725().total_blocks / 3, 8);
        assert!(far.as_millis() > ms);
    }

    #[test]
    fn sequential_io_is_much_cheaper() {
        let d = Disk::new(DiskParams::hp3725());
        // For small transfers the seek+rotation dominates.
        let seq8 = d.service_time(1000, 1000, 8);
        let rand8 = d.service_time(0, 700_000, 8);
        assert!(seq8.as_millis() < rand8.as_millis() / 2.0);
        let seq = d.service_time(1000, 1000, 64);
        // 64 KB at 3.5 MB/s is ~18.3 ms of transfer plus overhead and the
        // inter-command rotational loss.
        assert!(
            (seq.as_millis() - 24.6).abs() < 1.0,
            "got {}",
            seq.as_millis()
        );
    }

    #[test]
    fn seek_curve_monotone_and_bounded() {
        let d = Disk::new(DiskParams::hp3725());
        let mut last = Cycles::ZERO;
        for dist in [0u64, 1, 100, 10_000, 1_000_000, 2_000_000] {
            let t = d.seek_time(dist);
            assert!(t >= last, "seek time must not decrease with distance");
            assert!(t <= Cycles::from_millis(16.0), "capped at full stroke");
            last = t;
        }
        assert_eq!(d.seek_time(0), Cycles::ZERO);
    }

    #[test]
    fn io_advances_clock_and_head() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let disk = std::sync::Arc::new(Disk::new(DiskParams::hp3725()));
        let d2 = disk.clone();
        let env = kernel.env().clone();
        kernel.spawn_user("io", move |_| {
            d2.io(&env, IoKind::Read, 500_000, 8).unwrap();
            d2.io(&env, IoKind::Read, 500_008, 8).unwrap(); // sequential: cheap
        });
        let elapsed = sim.run().unwrap();
        let (reads, writes, blocks) = disk.stats();
        assert_eq!((reads, writes, blocks), (2, 0, 16));
        let ms = elapsed.as_millis();
        assert!(
            ms > 15.0 && ms < 32.0,
            "one random + one sequential, got {ms}ms"
        );
    }

    #[test]
    fn rotation_from_rpm() {
        let p = DiskParams::hp3725();
        assert!((p.rotation().as_millis() - 13.33).abs() < 0.02);
    }

    fn boot_faulty(
        profile: tnt_sim::fault::FaultProfile,
    ) -> (tnt_sim::Sim, tnt_os::Kernel) {
        let (sim, kernels) = tnt_os::boot_cluster_with_faults(&[Os::Linux], 0, profile);
        (sim, kernels[0].clone())
    }

    #[test]
    fn transient_faults_exhaust_the_retry_budget_to_eio() {
        use tnt_sim::fault::FaultProfile;
        let (sim, kernel) = boot_faulty(FaultProfile {
            disk_transient: 1.0,
            ..FaultProfile::off()
        });
        let disk = std::sync::Arc::new(Disk::new(DiskParams::hp3725()));
        let d2 = disk.clone();
        let env = kernel.env().clone();
        kernel.spawn_user("io", move |_| {
            assert_eq!(d2.io(&env, IoKind::Write, 0, 8).err(), Some(Errno::EIO));
        });
        let elapsed = sim.run().unwrap();
        let (faults, _) = disk.fault_stats();
        // Initial command + DISK_RETRIES retries, every one a fault, and
        // every one paid full mechanical service time.
        assert_eq!(faults, 1 + DISK_RETRIES as u64);
        let (_, writes, _) = disk.stats();
        assert_eq!(writes, 1 + DISK_RETRIES as u64);
        let one = Disk::new(DiskParams::hp3725()).service_time(0, 0, 8);
        assert!(
            elapsed.as_millis() >= one.as_millis() * (1 + DISK_RETRIES) as f64,
            "each retry re-pays service time: {}ms",
            elapsed.as_millis()
        );
    }

    #[test]
    fn remaps_cost_time_but_the_command_succeeds() {
        use tnt_sim::fault::FaultProfile;
        let run = |profile: FaultProfile| {
            let (sim, kernel) = boot_faulty(profile);
            let disk = std::sync::Arc::new(Disk::new(DiskParams::hp3725()));
            let d2 = disk.clone();
            let env = kernel.env().clone();
            kernel.spawn_user("io", move |_| {
                d2.io(&env, IoKind::Read, 1000, 8).unwrap();
            });
            (sim.run().unwrap(), disk.fault_stats())
        };
        let (clean, (f0, r0)) = run(FaultProfile::off());
        assert_eq!((f0, r0), (0, 0));
        let (remapped, (f1, r1)) = run(FaultProfile {
            disk_remap: 1.0,
            ..FaultProfile::off()
        });
        assert_eq!((f1, r1), (0, 1), "one remap, no transient faults");
        // The revector pays a full-stroke seek plus a lost revolution.
        assert!(
            remapped.as_millis() > clean.as_millis() + 20.0,
            "remap spike visible: {} vs {}ms",
            remapped.as_millis(),
            clean.as_millis()
        );
    }
}
