//! The unified buffer cache.
//!
//! All three systems trade physical pages between the VM system and the
//! file cache, which is why Figures 9-11 show a cliff near 20 MB on the
//! 32 MB machine: the cache can grow to roughly that size. The cache is
//! an LRU over filesystem blocks with delayed writes: dirty blocks
//! accumulate until a high-water mark, then the writing process flushes
//! them in ascending disk order as clustered sequential transfers (the
//! classic self-throttling write-behind of 1990s kernels).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::{Disk, IoKind};
use tnt_os::{KEnv, SysResult};
use tnt_sim::trace::{Class, Counter};
use tnt_sim::Cycles;

/// Cache geometry and write-behind policy.
#[derive(Clone, Copy, Debug)]
pub struct CacheParams {
    /// Maximum cache size in bytes (~20 MB on the 32 MB machine).
    pub capacity_bytes: u64,
    /// Cache block size = filesystem block size, in bytes.
    pub block_bytes: u64,
    /// Dirty bytes that trigger a flush by the writing process.
    pub dirty_hiwater_bytes: u64,
    /// Largest contiguous run written per disk command during a flush,
    /// in cache blocks (write clustering quality differs per OS).
    pub write_cluster_blocks: u64,
    /// CPU cost per cache block operation (hash lookup, buffer headers).
    pub per_block_cpu_cy: u64,
}

#[derive(Clone, Copy)]
struct Entry {
    seq: u64,
    dirty: bool,
}

struct CState {
    seq: u64,
    /// addr (in 1 KB disk blocks, block-aligned) -> entry. BTreeMap so
    /// any future iteration is in address order, never hash order.
    map: BTreeMap<u64, Entry>,
    /// LRU order: seq -> addr.
    order: BTreeMap<u64, u64>,
    dirty: BTreeSet<u64>,
    hits: u64,
    misses: u64,
}

/// A write-behind LRU buffer cache in front of one disk.
pub struct BufferCache {
    disk: Arc<Disk>,
    params: CacheParams,
    state: Mutex<CState>,
}

impl BufferCache {
    /// An empty cache over `disk`.
    pub fn new(disk: Arc<Disk>, params: CacheParams) -> BufferCache {
        assert!(params.block_bytes >= 1024 && params.block_bytes.is_multiple_of(1024));
        assert!(params.capacity_bytes >= params.block_bytes);
        BufferCache {
            disk,
            params,
            state: Mutex::new(CState {
                seq: 0,
                map: BTreeMap::new(),
                order: BTreeMap::new(),
                dirty: BTreeSet::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// The cache parameters.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    fn bs_kb(&self) -> u64 {
        self.params.block_bytes / 1024
    }

    fn capacity_blocks(&self) -> u64 {
        self.params.capacity_bytes / self.params.block_bytes
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.hits, st.misses)
    }

    /// The underlying disk's (reads, writes, blocks moved).
    pub fn disk_stats(&self) -> (u64, u64, u64) {
        self.disk.stats()
    }

    /// The underlying disk, for callers that need its full statistics
    /// surface (the capture/replay equality experiments compare
    /// [`Disk::busy_cycles`] across a record/replay pair).
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// Bytes of dirty data currently held.
    pub fn dirty_bytes(&self) -> u64 {
        self.state.lock().dirty.len() as u64 * self.params.block_bytes
    }

    /// Whether the block at `addr` is cached (tests).
    pub fn contains(&self, addr: u64) -> bool {
        self.state.lock().map.contains_key(&addr)
    }

    /// Whether the block at `addr` is dirty (not yet on disk).
    pub fn is_dirty(&self, addr: u64) -> bool {
        self.state.lock().dirty.contains(&addr)
    }

    fn touch(st: &mut CState, addr: u64) {
        if let Some(e) = st.map.get_mut(&addr) {
            st.order.remove(&e.seq);
            st.seq += 1;
            e.seq = st.seq;
            st.order.insert(st.seq, addr);
        }
    }

    fn insert(st: &mut CState, addr: u64, dirty: bool) {
        st.seq += 1;
        if let Some(old) = st.map.insert(addr, Entry { seq: st.seq, dirty }) {
            st.order.remove(&old.seq);
            if old.dirty && !dirty {
                st.dirty.remove(&addr);
            }
        }
        st.order.insert(st.seq, addr);
        if dirty {
            st.dirty.insert(addr);
        }
    }

    /// Evicts LRU entries until there is room for `need` more blocks.
    /// Returns the dirty victims that must be written out.
    fn make_room(&self, st: &mut CState, need: u64) -> Vec<u64> {
        let cap = self.capacity_blocks();
        let mut victims = Vec::new();
        while st.map.len() as u64 + need > cap {
            let (&seq, &addr) = match st.order.iter().next() {
                Some(kv) => kv,
                None => break,
            };
            st.order.remove(&seq);
            let e = st.map.remove(&addr).expect("order/map out of sync");
            if e.dirty {
                st.dirty.remove(&addr);
                victims.push(addr);
            }
        }
        victims
    }

    /// Reads the cache block at `addr` (1 KB-block address, aligned to the
    /// cache block size). On a miss, reads `1 + readahead` consecutive
    /// blocks from disk in one command. Returns whether it hit, or the
    /// disk's error if a miss's transfer failed past the retry budget.
    pub fn read(&self, env: &KEnv, addr: u64, readahead: u64) -> SysResult<bool> {
        {
            let _s = env.sim.span(Class::FsCpu);
            env.sim.charge(Cycles(self.params.per_block_cpu_cy));
        }
        let bs = self.bs_kb();
        debug_assert_eq!(addr % bs, 0, "unaligned cache read");
        let (hit, write_out) = {
            let mut st = self.state.lock();
            if st.map.contains_key(&addr) {
                st.hits += 1;
                Self::touch(&mut st, addr);
                (true, Vec::new())
            } else {
                st.misses += 1;
                let n = 1 + readahead;
                let victims = self.make_room(&mut st, n);
                for i in 0..n {
                    Self::insert(&mut st, addr + i * bs, false);
                }
                (false, victims)
            }
        };
        env.sim.count(
            if hit {
                Counter::CacheHits
            } else {
                Counter::CacheMisses
            },
            1,
        );
        if !hit {
            self.write_runs(env, &write_out)?;
            self.disk.io(env, IoKind::Read, addr, (1 + readahead) * bs)?;
        }
        Ok(hit)
    }

    /// Writes the cache block at `addr`.
    ///
    /// `sync` forces the block to disk before returning (FFS metadata).
    /// Delayed writes accumulate; once the dirty high-water mark is hit,
    /// the caller flushes down to half the mark, paying the disk time —
    /// this is where sequential-write benchmarks become disk bound.
    ///
    /// Errors surface only from the disk commands a write triggers (sync
    /// writes, evictions, high-water flushes); the block itself is cached
    /// before any of those run.
    pub fn write(&self, env: &KEnv, addr: u64, sync: bool) -> SysResult<()> {
        {
            let _s = env.sim.span(Class::FsCpu);
            env.sim.charge(Cycles(self.params.per_block_cpu_cy));
        }
        if sync {
            env.sim.count(Counter::SyncMetaWrites, 1);
        }
        let bs = self.bs_kb();
        debug_assert_eq!(addr % bs, 0, "unaligned cache write");
        let write_out = {
            let mut st = self.state.lock();
            let victims = self.make_room(&mut st, 1);
            Self::insert(&mut st, addr, !sync);
            victims
        };
        self.write_runs(env, &write_out)?;
        if sync {
            return self.disk.io(env, IoKind::Write, addr, bs);
        }
        let hiwater_blocks = self.params.dirty_hiwater_bytes / self.params.block_bytes;
        let need_flush = self.state.lock().dirty.len() as u64 > hiwater_blocks;
        if need_flush {
            self.flush_down_to(env, hiwater_blocks / 2)?;
        }
        Ok(())
    }

    /// Flushes dirty blocks (ascending disk order, clustered) until at
    /// most `target_blocks` remain dirty.
    fn flush_down_to(&self, env: &KEnv, target_blocks: u64) -> SysResult<()> {
        loop {
            let run = {
                let mut st = self.state.lock();
                if st.dirty.len() as u64 <= target_blocks {
                    return Ok(());
                }
                self.take_run(&mut st)
            };
            match run {
                None => return Ok(()),
                Some((addr, nblocks)) => {
                    self.disk
                        .io(env, IoKind::Write, addr, nblocks * self.bs_kb())?;
                }
            }
        }
    }

    /// Removes the first contiguous dirty run (up to the cluster limit)
    /// and marks it clean; returns (start addr, blocks).
    fn take_run(&self, st: &mut CState) -> Option<(u64, u64)> {
        let bs = self.bs_kb();
        let first = *st.dirty.iter().next()?;
        let mut run = vec![first];
        let mut next = first + bs;
        while run.len() < self.params.write_cluster_blocks as usize && st.dirty.contains(&next) {
            run.push(next);
            next += bs;
        }
        for addr in &run {
            st.dirty.remove(addr);
            if let Some(e) = st.map.get_mut(addr) {
                e.dirty = false;
            }
        }
        Some((first, run.len() as u64))
    }

    /// Writes evicted dirty victims back, merging contiguous blocks into
    /// clustered commands (sequential workloads evict in address order,
    /// so this behaves like the elevator it models).
    fn write_runs(&self, env: &KEnv, victims: &[u64]) -> SysResult<()> {
        if victims.is_empty() {
            return Ok(());
        }
        let bs = self.bs_kb();
        let mut sorted = victims.to_vec();
        sorted.sort_unstable();
        let mut start = sorted[0];
        let mut len = 1u64;
        for &addr in &sorted[1..] {
            if addr == start + len * bs && len < self.params.write_cluster_blocks {
                len += 1;
            } else {
                self.disk.io(env, IoKind::Write, start, len * bs)?;
                start = addr;
                len = 1;
            }
        }
        self.disk.io(env, IoKind::Write, start, len * bs)
    }

    /// Writes out every dirty block (the `sync`/fresh-filesystem path).
    pub fn flush_all(&self, env: &KEnv) -> SysResult<()> {
        self.flush_down_to(env, 0)
    }

    /// Drops the given blocks without writing them back — the fate of a
    /// deleted file's delayed writes (ext2's asynchronous win: a compiler
    /// temporary can live and die without ever touching the disk).
    pub fn discard(&self, addrs: &[u64]) {
        let mut st = self.state.lock();
        for addr in addrs {
            if let Some(e) = st.map.remove(addr) {
                st.order.remove(&e.seq);
                st.dirty.remove(addr);
            }
        }
    }

    /// Drops every entry without writing (mkfs of a scratch partition).
    pub fn invalidate_all(&self) {
        let mut st = self.state.lock();
        st.map.clear();
        st.order.clear();
        st.dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use tnt_os::{boot, Os};

    fn params() -> CacheParams {
        CacheParams {
            capacity_bytes: 64 * 1024,
            block_bytes: 8192,
            dirty_hiwater_bytes: 32 * 1024,
            write_cluster_blocks: 8,
            per_block_cpu_cy: 100,
        }
    }

    fn run_with_cache(
        f: impl FnOnce(&KEnv, &BufferCache) + Send + 'static,
    ) -> (Cycles, (u64, u64), (u64, u64, u64)) {
        let (sim, kernel) = boot(Os::Linux, 0);
        let disk = Arc::new(Disk::new(DiskParams::hp3725()));
        let cache = Arc::new(BufferCache::new(disk.clone(), params()));
        let env = kernel.env().clone();
        let c2 = cache.clone();
        kernel.spawn_user("user", move |_| f(&env, &c2));
        let t = sim.run().unwrap();
        (t, cache.stats(), disk.stats())
    }

    #[test]
    fn read_miss_then_hit() {
        let (_, (hits, misses), (reads, _, _)) = run_with_cache(|env, c| {
            assert!(!c.read(env, 0, 0).unwrap(), "cold miss");
            assert!(c.read(env, 0, 0).unwrap(), "now cached");
        });
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(reads, 1);
    }

    #[test]
    fn readahead_fills_following_blocks() {
        let (_, (hits, misses), (reads, _, _)) = run_with_cache(|env, c| {
            assert!(!c.read(env, 0, 3).unwrap()); // brings 0, 8, 16, 24 (KB)
            assert!(c.read(env, 8, 0).unwrap());
            assert!(c.read(env, 16, 0).unwrap());
            assert!(c.read(env, 24, 0).unwrap());
        });
        assert_eq!((hits, misses), (3, 1));
        assert_eq!(reads, 1, "one clustered disk read");
    }

    #[test]
    fn delayed_write_touches_no_disk() {
        let (_, _, (reads, writes, _)) = run_with_cache(|env, c| {
            c.write(env, 0, false).unwrap();
            c.write(env, 8, false).unwrap();
            assert_eq!(c.dirty_bytes(), 16 * 1024);
        });
        assert_eq!((reads, writes), (0, 0), "delayed writes stay in cache");
    }

    #[test]
    fn sync_write_hits_disk_immediately() {
        let (t, _, (_, writes, _)) = run_with_cache(|env, c| {
            c.write(env, 700_000 * 8, true).unwrap();
        });
        assert_eq!(writes, 1);
        assert!(t.as_millis() > 5.0, "a sync metadata write costs a disk op");
    }

    #[test]
    fn hiwater_flush_clusters_sequential_runs() {
        // Cache hiwater = 4 blocks; writing 6 sequential blocks forces a
        // flush that should need very few disk commands.
        let (_, _, (_, writes, blocks)) = run_with_cache(|env, c| {
            for i in 0..6u64 {
                c.write(env, i * 8, false).unwrap();
            }
        });
        assert!(writes <= 2, "clustered flush, got {writes} commands");
        assert!(blocks >= 16, "flushed at least down to half the mark");
    }

    #[test]
    fn eviction_never_exceeds_capacity() {
        let (_, _, _) = run_with_cache(|env, c| {
            for i in 0..100u64 {
                c.read(env, i * 8, 0).unwrap();
            }
            // Capacity is 8 blocks of 8 KB.
            let mut resident = 0;
            for i in 0..100u64 {
                if c.contains(i * 8) {
                    resident += 1;
                }
            }
            assert!(resident <= 8);
            assert_eq!(resident, 8, "a scan leaves the cache full");
        });
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (_, _, (_, writes, _)) = run_with_cache(|env, c| {
            c.write(env, 0, false).unwrap(); // one dirty block
            for i in 1..20u64 {
                c.read(env, i * 8, 0).unwrap(); // push it out
            }
            assert!(!c.contains(0));
        });
        assert!(writes >= 1, "the dirty victim reached the disk");
    }

    #[test]
    fn flush_all_cleans_everything() {
        let (_, _, _) = run_with_cache(|env, c| {
            for i in 0..4u64 {
                c.write(env, i * 8, false).unwrap();
            }
            c.flush_all(env).unwrap();
            assert_eq!(c.dirty_bytes(), 0);
        });
    }

    #[test]
    fn invalidate_drops_without_io() {
        let (_, _, (_, writes, _)) = run_with_cache(|env, c| {
            c.write(env, 0, false).unwrap();
            c.invalidate_all();
            assert_eq!(c.dirty_bytes(), 0);
            assert!(!c.contains(0));
        });
        assert_eq!(writes, 0);
    }
}
