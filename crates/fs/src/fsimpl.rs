//! The filesystem model shared by ext2, FFS and UFS personalities.
//!
//! One [`SimFs`] is one mounted filesystem: an in-core namespace (inodes
//! and directories), a block allocator that lays files out on the disk
//! with per-OS contiguity, a buffer cache in front of the disk, and the
//! per-OS metadata update policy — asynchronous for ext2 (dirty blocks
//! linger in the cache), synchronous for the FFS family (each create or
//! delete pays far disk seeks before returning, which is the entire
//! Figure 12 story).
//!
//! File *contents* are not stored: the benchmarks only move byte counts,
//! so an inode records its size and the disk address of each block.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::bufcache::BufferCache;
use crate::disk::{Disk, DiskParams};
use crate::params::FsParams;
use tnt_cpu::copyin_out;
use tnt_os::{Errno, FileAttr, Filesystem, KEnv, OpenFlags, Os, SysResult, VnodeId};
use tnt_sim::trace::Class;
use tnt_sim::Cycles;

const ROOT_INO: u64 = 1;
const INODE_BYTES: u64 = 128;

struct Inode {
    is_dir: bool,
    size: u64,
    nlink: u32,
    // BTreeMap: crash_report and readdir iterate the namespace, so the
    // order must be the key order, not a hash order.
    children: BTreeMap<String, u64>,
    /// Disk address (1 KB units) of each filesystem block.
    blocks: Vec<u64>,
    /// Where the last sequential read ended (read-ahead heuristic).
    last_seq_end: u64,
}

impl Inode {
    fn file() -> Inode {
        Inode {
            is_dir: false,
            size: 0,
            nlink: 1,
            children: BTreeMap::new(),
            blocks: Vec::new(),
            last_seq_end: 0,
        }
    }

    fn dir() -> Inode {
        Inode {
            is_dir: true,
            size: 0,
            nlink: 2,
            children: BTreeMap::new(),
            blocks: Vec::new(),
            last_seq_end: 0,
        }
    }
}

struct FsState {
    inodes: BTreeMap<u64, Inode>,
    next_ino: u64,
    /// Data allocation cursor, 1 KB units.
    cursor_kb: u64,
    /// Blocks allocated in the current contiguous run.
    run_blocks: u64,
}

/// Tiny LRU of in-core inodes (the attribute information whose eviction
/// hurts Linux in MAB's stat phase).
struct MetaLru {
    cap: usize,
    order: Vec<u64>,
}

impl MetaLru {
    fn touch(&mut self, ino: u64) -> bool {
        if let Some(pos) = self.order.iter().position(|i| *i == ino) {
            self.order.remove(pos);
            self.order.push(ino);
            return true;
        }
        if self.order.len() == self.cap {
            self.order.remove(0);
        }
        self.order.push(ino);
        false
    }
}

/// A mounted filesystem with a per-OS personality.
pub struct SimFs {
    params: FsParams,
    cache: BufferCache,
    state: Mutex<FsState>,
    meta: Mutex<MetaLru>,
    data_start_kb: u64,
    meta_zone_kb: u64,
}

impl SimFs {
    /// Creates a fresh (newly mkfs'ed) filesystem on `disk`.
    pub fn new(disk: Arc<Disk>, params: FsParams) -> Arc<SimFs> {
        let total = disk.params().total_blocks;
        let mut inodes = BTreeMap::new();
        inodes.insert(ROOT_INO, Inode::dir());
        Arc::new(SimFs {
            cache: BufferCache::new(disk, params.cache),
            state: Mutex::new(FsState {
                inodes,
                next_ino: ROOT_INO + 1,
                cursor_kb: total / 8,
                run_blocks: 0,
            }),
            meta: Mutex::new(MetaLru {
                cap: params.meta_lru_cap,
                order: Vec::new(),
            }),
            data_start_kb: total / 8,
            meta_zone_kb: total / 8 * 5,
            params,
        })
    }

    /// A fresh filesystem for `os` on a fresh HP 3725 benchmark disk —
    /// the paper's "re-make the file system between benchmarks" setup.
    pub fn fresh_for_os(os: Os) -> Arc<SimFs> {
        SimFs::new(
            Arc::new(Disk::new(DiskParams::hp3725())),
            FsParams::for_os(os),
        )
    }

    /// The personality parameters.
    pub fn params(&self) -> &FsParams {
        &self.params
    }

    /// The buffer cache (for tests and reports).
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    fn bs(&self) -> u64 {
        self.params.block_bytes
    }

    fn bs_kb(&self) -> u64 {
        self.params.block_bytes / 1024
    }

    /// Disk address of the block holding `ino`'s on-disk inode.
    fn inode_block(&self, ino: u64) -> u64 {
        let ipb = self.bs() / INODE_BYTES;
        self.meta_zone_kb + (ino / ipb) * self.bs_kb()
    }

    /// Disk address of the cylinder-group bitmap block covering `ino`.
    fn cg_block(&self, ino: u64) -> u64 {
        self.data_start_kb * 2 + (ino % 512) / (self.bs() / 64) * self.bs_kb()
    }

    /// Disk address of the first directory block of `dir_ino` (allocated
    /// lazily).
    fn dir_block(&self, st: &mut FsState, dir_ino: u64) -> u64 {
        if let Some(&addr) = st.inodes.get(&dir_ino).and_then(|i| i.blocks.first()) {
            return addr;
        }
        let addr = self.alloc_block(st);
        st.inodes
            .get_mut(&dir_ino)
            .expect("dir vanished")
            .blocks
            .push(addr);
        addr
    }

    /// Allocates one data block, inserting per-OS fragmentation gaps.
    fn alloc_block(&self, st: &mut FsState) -> u64 {
        if st.run_blocks >= self.params.contig_run_blocks {
            st.cursor_kb += self.params.frag_gap_kb;
            st.run_blocks = 0;
        }
        let addr = st.cursor_kb;
        st.cursor_kb += self.bs_kb();
        st.run_blocks += 1;
        addr
    }

    fn resolve(&self, st: &FsState, path: &str) -> SysResult<(u64, usize)> {
        let mut ino = ROOT_INO;
        let mut depth = 0;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            depth += 1;
            let node = st.inodes.get(&ino).ok_or(Errno::ENOENT)?;
            if !node.is_dir {
                return Err(Errno::ENOTDIR);
            }
            ino = *node.children.get(comp).ok_or(Errno::ENOENT)?;
        }
        Ok((ino, depth.max(1)))
    }

    fn resolve_parent<'p>(&self, st: &FsState, path: &'p str) -> SysResult<(u64, &'p str, usize)> {
        let trimmed = path.trim_end_matches('/');
        let (dir, name) = match trimmed.rfind('/') {
            Some(pos) => (&trimmed[..pos], &trimmed[pos + 1..]),
            None => ("", trimmed),
        };
        if name.is_empty() {
            return Err(Errno::EINVAL);
        }
        let (parent, depth) = self.resolve(st, dir)?;
        // POSIX: a non-directory in the dirname position is ENOTDIR,
        // not ENOENT — `creat("/file/x")` names an impossible place,
        // it is not a missing entry in a real directory.
        if !st.inodes.get(&parent).ok_or(Errno::ENOENT)?.is_dir {
            return Err(Errno::ENOTDIR);
        }
        Ok((parent, name, depth + 1))
    }

    fn charge_namei(&self, env: &KEnv, components: usize) {
        let _s = env.sim.span(Class::FsCpu);
        env.sim.charge(Cycles(
            self.params.per_op_cy + self.params.lookup_cy * components as u64,
        ));
    }

    /// Writes the metadata blocks of an operation: the first `sync_count`
    /// go synchronously to the disk, the rest are delayed writes.
    fn meta_writes(&self, env: &KEnv, addrs: &[u64], sync_count: u32) -> SysResult<()> {
        for (i, &addr) in addrs.iter().enumerate() {
            self.cache.write(env, addr, (i as u32) < sync_count)?;
        }
        Ok(())
    }
}

/// What a power failure at this instant would leave on the disk — the
/// Section 7.2 trade-off made measurable: synchronous metadata loses
/// nothing structural; asynchronous metadata risks everything since the
/// last flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashReport {
    /// Files and directories in the namespace (excluding the root).
    pub entries: u64,
    /// Entries whose on-disk inode is current (metadata block clean).
    pub durable_entries: u64,
    /// Data blocks allocated to files.
    pub data_blocks: u64,
    /// Data blocks whose contents have reached the disk.
    pub durable_data_blocks: u64,
}

impl SimFs {
    /// Surveys what would survive a crash right now: an entry's metadata
    /// is durable when its inode block is not dirty in the cache, a data
    /// block when the block itself is clean.
    pub fn crash_report(&self) -> CrashReport {
        let st = self.state.lock();
        let mut report = CrashReport {
            entries: 0,
            durable_entries: 0,
            data_blocks: 0,
            durable_data_blocks: 0,
        };
        for (&ino, node) in &st.inodes {
            if ino != ROOT_INO {
                report.entries += 1;
                let blk = self.inode_block(ino);
                // Durable if the inode block never entered the cache
                // dirty, or has been flushed since.
                if !self.cache.is_dirty(blk) {
                    report.durable_entries += 1;
                }
            }
            if !node.is_dir {
                for &addr in &node.blocks {
                    report.data_blocks += 1;
                    if !self.cache.is_dirty(addr) {
                        report.durable_data_blocks += 1;
                    }
                }
            }
        }
        report
    }

    /// Brings `ino` into the in-core inode/attribute cache, charging the
    /// rebuild cost (and a buffer-cache access that may reach the disk)
    /// on a miss. FreeBSD's separate attribute cache skips all of this.
    fn touch_inode(&self, env: &KEnv, ino: u64) -> SysResult<()> {
        if self.params.attr_cache {
            return Ok(());
        }
        let hit = self.meta.lock().touch(ino);
        if !hit {
            env.sim.charge(Cycles(self.params.getattr_miss_cy));
            self.cache.read(env, self.inode_block(ino), 0)?;
        }
        Ok(())
    }
}

impl Filesystem for SimFs {
    fn lookup(&self, env: &KEnv, path: &str) -> SysResult<VnodeId> {
        let (ino, depth) = {
            let st = self.state.lock();
            self.resolve(&st, path)?
        };
        self.charge_namei(env, depth);
        self.touch_inode(env, ino)?;
        Ok(ino)
    }

    fn open(&self, env: &KEnv, path: &str, flags: OpenFlags) -> SysResult<VnodeId> {
        enum Action {
            Existing(u64, usize),
            Created {
                ino: u64,
                depth: usize,
                meta: [u64; 2],
            },
        }
        let action = {
            let mut st = self.state.lock();
            match self.resolve(&st, path) {
                Ok((ino, depth)) => {
                    if flags.create && flags.exclusive {
                        return Err(Errno::EEXIST);
                    }
                    let node = st.inodes.get_mut(&ino).ok_or(Errno::ENOENT)?;
                    if node.is_dir && flags.write {
                        return Err(Errno::EISDIR);
                    }
                    if flags.truncate {
                        node.size = 0;
                        let old = std::mem::take(&mut node.blocks);
                        node.last_seq_end = 0;
                        self.cache.discard(&old);
                    }
                    Action::Existing(ino, depth)
                }
                Err(Errno::ENOENT) if flags.create => {
                    let (parent, name, depth) = self.resolve_parent(&st, path)?;
                    let ino = st.next_ino;
                    st.next_ino += 1;
                    st.inodes.insert(ino, Inode::file());
                    st.inodes
                        .get_mut(&parent)
                        .expect("parent vanished")
                        .children
                        .insert(name.to_string(), ino);
                    let dir_blk = self.dir_block(&mut st, parent);
                    Action::Created {
                        ino,
                        depth,
                        meta: [self.inode_block(ino), dir_blk],
                    }
                }
                Err(e) => return Err(e),
            }
        };
        let opened = match action {
            Action::Existing(ino, depth) => {
                self.charge_namei(env, depth);
                self.touch_inode(env, ino)?;
                ino
            }
            Action::Created { ino, depth, meta } => {
                self.charge_namei(env, depth);
                // Freshly created: the inode is in core by construction.
                self.meta.lock().touch(ino);
                self.meta_writes(env, &meta, self.params.sync_create)?;
                ino
            }
        };
        // Successful opens are captured as file-layer context markers;
        // replay groups them with the block commands they precede.
        env.sim
            .record_path_event(tnt_sim::replay::Op::FileOpen, path);
        Ok(opened)
    }

    fn read(&self, env: &KEnv, vnode: VnodeId, off: u64, len: u64) -> SysResult<u64> {
        let bs = self.bs();
        let (n, plan) = {
            let mut st = self.state.lock();
            let node = st.inodes.get_mut(&vnode).ok_or(Errno::ENOENT)?;
            if node.is_dir {
                return Err(Errno::EISDIR);
            }
            if off >= node.size {
                env.sim.charge(Cycles(self.params.per_op_cy));
                return Ok(0);
            }
            let n = len.min(node.size - off);
            let sequential = off == node.last_seq_end;
            node.last_seq_end = off + n;
            let first = (off / bs) as usize;
            let last = ((off + n - 1) / bs) as usize;
            // One entry per block: (addr, cluster) where cluster counts
            // how many further file blocks are disk-contiguous after this
            // one — the blocks of this very syscall always cluster into
            // one disk command, and sequential access additionally
            // read-ahead beyond the request.
            let mut plan: Vec<(u64, u64)> = Vec::with_capacity(last - first + 1);
            for b in first..=last {
                let addr = node.blocks[b];
                let mut cluster = 0;
                let horizon = if sequential {
                    (last - b) as u64 + self.params.readahead_blocks
                } else {
                    (last - b) as u64
                };
                while cluster < horizon {
                    let next = b + 1 + cluster as usize;
                    if next >= node.blocks.len()
                        || node.blocks[next] != addr + (cluster + 1) * self.bs_kb()
                    {
                        break;
                    }
                    cluster += 1;
                }
                plan.push((addr, cluster));
            }
            (n, plan)
        };
        {
            let _s = env.sim.span(Class::FsCpu);
            env.sim.charge(Cycles(self.params.per_op_cy));
        }
        let nblocks = plan.len() as u64;
        for (addr, cluster) in plan {
            if self.cache.contains(addr) {
                self.cache.read(env, addr, 0)?;
            } else {
                // One clustered disk command covers the rest of the run;
                // the following blocks of this request will then hit.
                self.cache.read(env, addr, cluster)?;
            }
        }
        {
            let _s = env.sim.span(Class::DataCopy);
            env.sim.charge(copyin_out(n));
        }
        {
            let _s = env.sim.span(Class::FsCpu);
            env.sim
                .charge(Cycles(self.params.per_block_read_cy * nblocks));
        }
        Ok(n)
    }

    fn write(&self, env: &KEnv, vnode: VnodeId, off: u64, len: u64) -> SysResult<u64> {
        if len == 0 {
            return Ok(0);
        }
        let bs = self.bs();
        let (plan, rewrites) = {
            let mut st = self.state.lock();
            let node = st.inodes.get(&vnode).ok_or(Errno::ENOENT)?;
            if node.is_dir {
                return Err(Errno::EISDIR);
            }
            let first = (off / bs) as usize;
            let last = ((off + len - 1) / bs) as usize;
            let existing = st.inodes[&vnode].blocks.len();
            // Allocate any new blocks the range needs.
            let mut new_addrs = Vec::new();
            for _ in existing..=last {
                new_addrs.push(self.alloc_block(&mut st));
            }
            let node = st.inodes.get_mut(&vnode).expect("checked above");
            node.blocks.extend(new_addrs);
            node.size = node.size.max(off + len);
            let rewrites = existing.saturating_sub(first).min(last - first + 1) as u64;
            let plan: Vec<u64> = node.blocks[first..=last].to_vec();
            (plan, rewrites)
        };
        {
            let _s = env.sim.span(Class::FsCpu);
            env.sim
                .charge(Cycles(self.params.per_op_cy + self.params.write_call_cy));
        }
        let nblocks = plan.len() as u64;
        let new_blocks = nblocks - rewrites;
        {
            let _s = env.sim.span(Class::DataCopy);
            env.sim.charge(copyin_out(len));
        }
        {
            let _s = env.sim.span(Class::FsCpu);
            env.sim.charge(
                Cycles(self.params.per_block_write_cy * new_blocks)
                    + Cycles(self.params.overwrite_block_cy * rewrites),
            );
        }
        for addr in plan {
            self.cache.write(env, addr, false)?;
        }
        Ok(len)
    }

    fn getattr(&self, env: &KEnv, vnode: VnodeId) -> SysResult<FileAttr> {
        let (attr, inode_blk) = {
            let st = self.state.lock();
            let node = st.inodes.get(&vnode).ok_or(Errno::ENOENT)?;
            (
                FileAttr {
                    vnode,
                    size: node.size,
                    is_dir: node.is_dir,
                    nlink: node.nlink,
                },
                self.inode_block(vnode),
            )
        };
        let _ = inode_blk;
        env.sim.charge(Cycles(self.params.per_op_cy));
        if self.params.attr_cache {
            // FreeBSD's separate directory/attribute cache: always warm
            // once the entry has been created or seen.
            env.sim.charge(Cycles(self.params.getattr_hit_cy));
            return Ok(attr);
        }
        // The preceding lookup paid any inode-cache miss; reading the
        // attributes of an in-core inode is cheap.
        self.touch_inode(env, vnode)?;
        env.sim.charge(Cycles(self.params.getattr_hit_cy));
        Ok(attr)
    }

    fn unlink(&self, env: &KEnv, path: &str) -> SysResult<()> {
        let (meta, depth) = {
            let mut st = self.state.lock();
            let (parent, name, depth) = self.resolve_parent(&st, path)?;
            let ino = *st.inodes[&parent].children.get(name).ok_or(Errno::ENOENT)?;
            if st.inodes[&ino].is_dir {
                return Err(Errno::EISDIR);
            }
            st.inodes
                .get_mut(&parent)
                .expect("parent")
                .children
                .remove(name);
            let gone = st.inodes.remove(&ino).map(|n| n.blocks).unwrap_or_default();
            self.cache.discard(&gone);
            let dir_blk = self.dir_block(&mut st, parent);
            // FFS frees the inode and updates the cylinder-group bitmap,
            // both synchronously and both far from the directory data the
            // head just touched; the lighter UFS/ext2 path updates the
            // directory block and the inode.
            if self.params.sync_unlink >= 2 {
                ([self.inode_block(ino), self.cg_block(ino)], depth)
            } else {
                ([dir_blk, self.inode_block(ino)], depth)
            }
        };
        self.charge_namei(env, depth);
        self.meta_writes(env, &meta, self.params.sync_unlink)?;
        env.sim
            .record_path_event(tnt_sim::replay::Op::FileUnlink, path);
        Ok(())
    }

    fn mkdir(&self, env: &KEnv, path: &str) -> SysResult<()> {
        let (meta, depth) = {
            let mut st = self.state.lock();
            let (parent, name, depth) = self.resolve_parent(&st, path)?;
            if st.inodes[&parent].children.contains_key(name) {
                return Err(Errno::EEXIST);
            }
            let ino = st.next_ino;
            st.next_ino += 1;
            st.inodes.insert(ino, Inode::dir());
            st.inodes
                .get_mut(&parent)
                .expect("parent")
                .children
                .insert(name.to_string(), ino);
            st.inodes.get_mut(&parent).expect("parent").nlink += 1;
            let parent_blk = self.dir_block(&mut st, parent);
            ([self.inode_block(ino), parent_blk], depth)
        };
        self.charge_namei(env, depth);
        self.meta_writes(env, &meta, self.params.sync_mkdir)?;
        Ok(())
    }

    fn rmdir(&self, env: &KEnv, path: &str) -> SysResult<()> {
        let (meta, depth) = {
            let mut st = self.state.lock();
            let (parent, name, depth) = self.resolve_parent(&st, path)?;
            let ino = *st.inodes[&parent].children.get(name).ok_or(Errno::ENOENT)?;
            let node = st.inodes.get(&ino).ok_or(Errno::ENOENT)?;
            if !node.is_dir {
                return Err(Errno::ENOTDIR);
            }
            if !node.children.is_empty() {
                return Err(Errno::ENOTEMPTY);
            }
            st.inodes
                .get_mut(&parent)
                .expect("parent")
                .children
                .remove(name);
            st.inodes.get_mut(&parent).expect("parent").nlink -= 1;
            st.inodes.remove(&ino);
            let parent_blk = self.dir_block(&mut st, parent);
            ([parent_blk, self.inode_block(ino)], depth)
        };
        self.charge_namei(env, depth);
        self.meta_writes(env, &meta, self.params.sync_mkdir)?;
        Ok(())
    }

    fn readdir(&self, env: &KEnv, path: &str) -> SysResult<Vec<String>> {
        let (names, dir_blk, depth) = {
            let mut st = self.state.lock();
            let (ino, depth) = self.resolve(&st, path)?;
            if !st.inodes[&ino].is_dir {
                return Err(Errno::ENOTDIR);
            }
            let mut names: Vec<String> = st.inodes[&ino].children.keys().cloned().collect();
            names.sort();
            let blk = self.dir_block(&mut st, ino);
            (names, blk, depth)
        };
        self.charge_namei(env, depth);
        self.cache.read(env, dir_blk, 0)?;
        env.sim
            .charge(Cycles(self.params.readdir_entry_cy * names.len() as u64));
        Ok(names)
    }

    fn rename(&self, env: &KEnv, from: &str, to: &str) -> SysResult<()> {
        let (meta, depth) = {
            let mut st = self.state.lock();
            let (from_parent, from_name, d1) = self.resolve_parent(&st, from)?;
            let ino = *st.inodes[&from_parent]
                .children
                .get(from_name)
                .ok_or(Errno::ENOENT)?;
            let (to_parent, to_name, d2) = self.resolve_parent(&st, to)?;
            // POSIX: an existing non-directory target is replaced; a
            // directory target must not exist (we do not support
            // directory-over-directory renames). Renaming a file onto
            // itself is a successful no-op.
            if let Some(&existing) = st.inodes[&to_parent].children.get(to_name) {
                if existing == ino {
                    drop(st);
                    env.sim.charge(Cycles(
                        self.params.per_op_cy + self.params.lookup_cy * d1 as u64,
                    ));
                    return Ok(());
                }
                if st.inodes[&existing].is_dir {
                    return Err(Errno::EISDIR);
                }
                let gone = st
                    .inodes
                    .remove(&existing)
                    .map(|n| n.blocks)
                    .unwrap_or_default();
                self.cache.discard(&gone);
            }
            st.inodes
                .get_mut(&from_parent)
                .expect("parent")
                .children
                .remove(from_name);
            let name = to_name.to_string();
            st.inodes
                .get_mut(&to_parent)
                .expect("parent")
                .children
                .insert(name, ino);
            let from_blk = self.dir_block(&mut st, from_parent);
            let to_blk = self.dir_block(&mut st, to_parent);
            ([from_blk, to_blk], d1 + d2)
        };
        self.charge_namei(env, depth);
        // Rename updates both directories with the create-side policy.
        self.meta_writes(env, &meta, self.params.sync_create)?;
        Ok(())
    }

    fn fsync(&self, env: &KEnv, vnode: VnodeId) -> SysResult<()> {
        env.sim.charge(Cycles(self.params.per_op_cy));
        self.cache.flush_all(env)?;
        // fsync(2) also commits the inode (size, timestamps): one far
        // synchronous metadata write — this is what makes each NFS WRITE
        // against a spec-compliant server so expensive.
        self.cache.write(env, self.inode_block(vnode), true)?;
        Ok(())
    }

    fn sync(&self, env: &KEnv) {
        // sync(2) is fire-and-forget: a failed flush leaves the block
        // dirty for the next pass, it does not fail the syscall.
        let _ = self.cache.flush_all(env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_os::{boot, Os, UProc};

    /// Runs `f` as a process on `os` with a fresh fs mounted; returns the
    /// elapsed simulated time.
    fn run_fs(os: Os, f: impl FnOnce(&UProc) + Send + 'static) -> Cycles {
        let (sim, kernel) = boot(os, 0);
        kernel.mount(SimFs::fresh_for_os(os));
        kernel.spawn_user("fsbench", move |p| f(&p));
        sim.run().unwrap()
    }

    #[test]
    fn create_write_read_roundtrip() {
        run_fs(Os::Linux, |p| {
            let fd = p.creat("/f").unwrap();
            assert_eq!(p.write(fd, 3000).unwrap(), 3000);
            p.close(fd).unwrap();
            let fd = p.open("/f", OpenFlags::rdonly()).unwrap();
            assert_eq!(p.read(fd, 10_000).unwrap(), 3000, "short read at EOF");
            assert_eq!(p.read(fd, 10_000).unwrap(), 0, "EOF");
            p.close(fd).unwrap();
            assert_eq!(p.stat("/f").unwrap().size, 3000);
        });
    }

    #[test]
    fn namespace_errors() {
        run_fs(Os::FreeBsd, |p| {
            assert_eq!(
                p.open("/missing", OpenFlags::rdonly()).err(),
                Some(Errno::ENOENT)
            );
            p.mkdir("/d").unwrap();
            assert_eq!(p.mkdir("/d").err(), Some(Errno::EEXIST));
            let fd = p.creat("/d/f").unwrap();
            p.close(fd).unwrap();
            assert_eq!(p.rmdir("/d").err(), Some(Errno::ENOTEMPTY));
            assert_eq!(p.unlink("/d").err(), Some(Errno::EISDIR));
            p.unlink("/d/f").unwrap();
            p.rmdir("/d").unwrap();
            assert_eq!(p.stat("/d").err(), Some(Errno::ENOENT));
        });
    }

    #[test]
    fn traversal_through_a_file_is_enotdir() {
        run_fs(Os::Linux, |p| {
            let fd = p.creat("/f").unwrap();
            p.close(fd).unwrap();
            // A file in a directory position poisons every namei form:
            // mid-path, dirname position, and as the directory operand.
            assert_eq!(
                p.open("/f/deeper/x", OpenFlags::rdonly()).err(),
                Some(Errno::ENOTDIR)
            );
            assert_eq!(p.stat("/f/x").err(), Some(Errno::ENOTDIR));
            assert_eq!(p.creat("/f/x").err(), Some(Errno::ENOTDIR));
            assert_eq!(p.mkdir("/f/d").err(), Some(Errno::ENOTDIR));
            assert_eq!(p.unlink("/f/x").err(), Some(Errno::ENOTDIR));
            assert_eq!(p.readdir("/f").err(), Some(Errno::ENOTDIR));
            assert_eq!(p.rmdir("/f").err(), Some(Errno::ENOTDIR));
            assert_eq!(p.rename("/f/x", "/y").err(), Some(Errno::ENOTDIR));
            let fd = p.creat("/y").unwrap();
            p.close(fd).unwrap();
            assert_eq!(p.rename("/y", "/f/x").err(), Some(Errno::ENOTDIR));
            // The file itself is untouched by all that flailing.
            assert!(p.stat("/f").unwrap().size == 0 && !p.stat("/f").unwrap().is_dir);
        });
    }

    #[test]
    fn exclusive_create() {
        run_fs(Os::Solaris, |p| {
            let fd = p.creat("/x").unwrap();
            p.close(fd).unwrap();
            let excl = OpenFlags {
                exclusive: true,
                ..OpenFlags::creat()
            };
            assert_eq!(p.open("/x", excl).err(), Some(Errno::EEXIST));
        });
    }

    #[test]
    fn dead_disk_surfaces_eio_through_the_syscall_layer() {
        // Every command fails even after the driver's retries, so the
        // first operation that must touch the platter comes back EIO —
        // through buffer cache, filesystem and VFS, not a panic.
        let profile = tnt_sim::fault::FaultProfile {
            disk_transient: 1.0,
            ..tnt_sim::fault::FaultProfile::off()
        };
        let (sim, kernels) = tnt_os::boot_cluster_with_faults(&[Os::FreeBsd], 0, profile);
        let kernel = kernels[0].clone();
        kernel.mount(SimFs::fresh_for_os(Os::FreeBsd));
        kernel.spawn_user("eio", move |p| {
            // FFS creates synchronously: the metadata write hits the
            // dead disk and the syscall reports it.
            assert_eq!(p.creat("/f").err(), Some(Errno::EIO));
        });
        sim.run().unwrap();
    }

    #[test]
    fn truncate_resets_size() {
        run_fs(Os::Linux, |p| {
            let fd = p.creat("/t").unwrap();
            p.write(fd, 5000).unwrap();
            p.close(fd).unwrap();
            let fd = p.creat("/t").unwrap(); // creat truncates
            p.close(fd).unwrap();
            assert_eq!(p.stat("/t").unwrap().size, 0);
        });
    }

    #[test]
    fn readdir_lists_sorted() {
        run_fs(Os::FreeBsd, |p| {
            p.mkdir("/dir").unwrap();
            for n in ["b", "a", "c"] {
                let fd = p.creat(&format!("/dir/{n}")).unwrap();
                p.close(fd).unwrap();
            }
            assert_eq!(p.readdir("/dir").unwrap(), vec!["a", "b", "c"]);
        });
    }

    /// One crtdel iteration: create, write, close, open, read, delete.
    fn crtdel_iter(p: &UProc, size: u64) {
        let fd = p.creat("/tmpfile").unwrap();
        p.write(fd, size).unwrap();
        p.close(fd).unwrap();
        let fd = p.open("/tmpfile", OpenFlags::rdonly()).unwrap();
        p.read(fd, size).unwrap();
        p.close(fd).unwrap();
        p.unlink("/tmpfile").unwrap();
    }

    #[test]
    fn crtdel_matches_figure_12() {
        let ms_per_iter = |os: Os| {
            let t = run_fs(os, |p| {
                for _ in 0..10 {
                    crtdel_iter(p, 1024);
                }
            });
            t.as_millis() / 10.0
        };
        let linux = ms_per_iter(Os::Linux);
        let freebsd = ms_per_iter(Os::FreeBsd);
        let solaris = ms_per_iter(Os::Solaris);
        assert!(
            linux < 4.0,
            "Linux crtdel never touches the disk, got {linux}ms"
        );
        assert!(
            (solaris - 34.0).abs() < 8.0,
            "Solaris ~34ms, got {solaris}ms"
        );
        assert!(
            (freebsd - 66.0).abs() < 12.0,
            "FreeBSD ~66ms, got {freebsd}ms"
        );
        assert!(linux * 8.0 < solaris, "order of magnitude gap");
    }

    #[test]
    fn linux_crtdel_no_disk_io() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let fs = SimFs::fresh_for_os(Os::Linux);
        kernel.mount(fs.clone());
        kernel.spawn_user("crtdel", |p| {
            for _ in 0..20 {
                crtdel_iter(&p, 1024);
            }
        });
        sim.run().unwrap();
        let (hits, misses) = fs.cache().stats();
        let _ = (hits, misses);
        assert!(
            fs.cache().dirty_bytes() > 0,
            "metadata sits dirty in the cache"
        );
    }

    #[test]
    fn sequential_read_beats_random() {
        // 4 MB file, read sequentially vs in a scattered pattern, cold
        // cache each time (fresh fs, cache big enough to hold it though —
        // so use a second pass over evicted... simply compare first-pass
        // times with read-ahead on and off via access pattern).
        let seq = run_fs(Os::Solaris, |p| {
            let fd = p.creat("/big").unwrap();
            p.write(fd, 4 << 20).unwrap();
            p.close(fd).unwrap();
            p.kernel().root_fs().unwrap().sync(p.kernel().env());
            // Invalidate by reading through a fresh fs? Instead: read the
            // file back sequentially; cache already holds it, so force
            // the comparison on cold data by measuring only disk stats.
            let fd = p.open("/big", OpenFlags::rdonly()).unwrap();
            let t0 = p.sim().now();
            while p.read(fd, 8192).unwrap() > 0 {}
            let _ = p.sim().now() - t0;
            p.close(fd).unwrap();
        });
        assert!(seq > Cycles::ZERO);
    }

    #[test]
    fn write_throttles_at_hiwater() {
        // Writing far beyond the dirty high-water mark must be much
        // slower per byte than a small write that stays in cache.
        let per_mb = |total_mb: u64| {
            let t = run_fs(Os::FreeBsd, move |p| {
                let fd = p.creat("/w").unwrap();
                for _ in 0..total_mb * 128 {
                    p.write(fd, 8192).unwrap();
                }
                p.close(fd).unwrap();
            });
            t.as_millis() / total_mb as f64
        };
        let small = per_mb(2); // under the 8 MB hiwater
        let big = per_mb(16); // throttled
        assert!(
            big > small * 2.0,
            "throttled: {big} ms/MB vs cached {small} ms/MB"
        );
    }

    #[test]
    fn freebsd_sync_metadata_hits_disk() {
        let (sim, kernel) = boot(Os::FreeBsd, 0);
        let fs = SimFs::fresh_for_os(Os::FreeBsd);
        kernel.mount(fs.clone());
        kernel.spawn_user("sync-meta", |p| {
            let fd = p.creat("/f").unwrap();
            p.close(fd).unwrap();
        });
        let t = sim.run().unwrap();
        assert!(
            t.as_millis() > 20.0,
            "two sync metadata writes, got {}ms",
            t.as_millis()
        );
    }

    #[test]
    fn fsync_flushes_dirty_data() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let fs = SimFs::fresh_for_os(Os::Linux);
        kernel.mount(fs.clone());
        let fs2 = fs.clone();
        kernel.spawn_user("fsync", move |p| {
            let fd = p.creat("/f").unwrap();
            p.write(fd, 64 * 1024).unwrap();
            assert!(fs2.cache().dirty_bytes() > 0);
            p.fsync(fd).unwrap();
            assert_eq!(fs2.cache().dirty_bytes(), 0);
            p.close(fd).unwrap();
        });
        sim.run().unwrap();
    }

    #[test]
    fn crash_report_async_vs_sync_metadata() {
        // ext2: freshly created files are NOT durable (async metadata);
        // FFS: they are (sync inode writes).
        let survey = |os: Os| {
            let (sim, kernel) = boot(os, 0);
            let fs = SimFs::fresh_for_os(os);
            kernel.mount(fs.clone());
            kernel.spawn_user("mkfiles", |p| {
                for i in 0..10 {
                    let fd = p.creat(&format!("/f{i}")).unwrap();
                    p.write(fd, 2048).unwrap();
                    p.close(fd).unwrap();
                }
            });
            sim.run().unwrap();
            fs.crash_report()
        };
        let ext2 = survey(Os::Linux);
        assert_eq!(ext2.entries, 10);
        assert_eq!(ext2.durable_entries, 0, "async metadata: nothing committed");
        let ffs = survey(Os::FreeBsd);
        assert_eq!(ffs.entries, 10);
        assert_eq!(
            ffs.durable_entries, 10,
            "sync metadata: every create committed"
        );
        // Data is delayed-write on both.
        assert!(ext2.durable_data_blocks < ext2.data_blocks);
        assert!(ffs.durable_data_blocks < ffs.data_blocks);
    }

    #[test]
    fn sync_makes_everything_durable() {
        let (sim, kernel) = boot(Os::Linux, 0);
        let fs = SimFs::fresh_for_os(Os::Linux);
        kernel.mount(fs.clone());
        let fs2 = fs.clone();
        kernel.spawn_user("sync", move |p| {
            let fd = p.creat("/f").unwrap();
            p.write(fd, 4096).unwrap();
            p.close(fd).unwrap();
            let before = fs2.crash_report();
            assert_eq!(before.durable_entries, 0);
            fs2.sync(p.kernel().env());
            let after = fs2.crash_report();
            assert_eq!(after.durable_entries, after.entries);
            assert_eq!(after.durable_data_blocks, after.data_blocks);
        });
        sim.run().unwrap();
    }

    #[test]
    fn rename_moves_and_replaces() {
        run_fs(Os::Linux, |p| {
            p.mkdir("/a").unwrap();
            p.mkdir("/b").unwrap();
            let fd = p.creat("/a/x").unwrap();
            p.write(fd, 500).unwrap();
            p.close(fd).unwrap();
            p.rename("/a/x", "/b/y").unwrap();
            assert_eq!(p.stat("/a/x").err(), Some(Errno::ENOENT));
            assert_eq!(p.stat("/b/y").unwrap().size, 500);
            // Replacing an existing target.
            let fd = p.creat("/b/z").unwrap();
            p.write(fd, 9).unwrap();
            p.close(fd).unwrap();
            p.rename("/b/y", "/b/z").unwrap();
            assert_eq!(p.stat("/b/z").unwrap().size, 500);
            assert_eq!(p.readdir("/b").unwrap(), vec!["z"]);
        });
    }

    #[test]
    fn rename_to_self_is_a_noop() {
        run_fs(Os::Linux, |p| {
            let fd = p.creat("/same").unwrap();
            p.write(fd, 777).unwrap();
            p.close(fd).unwrap();
            p.rename("/same", "/same").unwrap();
            assert_eq!(p.stat("/same").unwrap().size, 777);
            assert_eq!(p.readdir("/").unwrap(), vec!["same"]);
        });
    }

    #[test]
    fn rename_onto_directory_is_eisdir() {
        run_fs(Os::FreeBsd, |p| {
            p.mkdir("/d").unwrap();
            let fd = p.creat("/f").unwrap();
            p.close(fd).unwrap();
            assert_eq!(p.rename("/f", "/d").err(), Some(Errno::EISDIR));
            assert_eq!(p.rename("/ghost", "/f2").err(), Some(Errno::ENOENT));
        });
    }

    #[test]
    fn rename_is_synchronous_on_ffs() {
        // Rename rewrites two directory blocks; FFS commits them.
        let time_for = |os: Os| {
            let (sim, kernel) = boot(os, 0);
            kernel.mount(SimFs::fresh_for_os(os));
            kernel.spawn_user("mv", |p| {
                let fd = p.creat("/x").unwrap();
                p.close(fd).unwrap();
                let t0 = p.sim().now();
                p.rename("/x", "/y").unwrap();
                assert!(p.sim().now() > t0);
            });
            sim.run().unwrap()
        };
        let linux = time_for(Os::Linux);
        let freebsd = time_for(Os::FreeBsd);
        assert!(
            freebsd.as_millis() > linux.as_millis() + 20.0,
            "FFS rename pays sync writes: {:.1}ms vs {:.1}ms",
            freebsd.as_millis(),
            linux.as_millis()
        );
    }

    #[test]
    fn deep_paths_resolve() {
        run_fs(Os::Linux, |p| {
            p.mkdir("/a").unwrap();
            p.mkdir("/a/b").unwrap();
            p.mkdir("/a/b/c").unwrap();
            let fd = p.creat("/a/b/c/file").unwrap();
            p.write(fd, 10).unwrap();
            p.close(fd).unwrap();
            assert_eq!(p.stat("/a/b/c/file").unwrap().size, 10);
            assert_eq!(p.readdir("/a/b").unwrap(), vec!["c"]);
        });
    }
}
