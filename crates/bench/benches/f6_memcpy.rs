//! Bench target for Figure 6 (memcpy).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;
use tnt_cpu::MemRoutine;

fn bench(c: &mut Criterion) {
    print_reproduction("f6");
    let mut g = c.benchmark_group("f6_memcpy");
    for buf in [4096u64, 65536, 1 << 21] {
        g.bench_function(format!("buf_{buf}"), |b| {
            b.iter(|| {
                tnt_core::mem_bandwidth(
                    MemRoutine::LibcMemcpy(tnt_cpu::LibcVariant::Linux),
                    buf,
                    1 << 20,
                    1,
                )
            })
        });
    }
    g.finish();
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
