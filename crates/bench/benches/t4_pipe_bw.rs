//! Bench target for Table 4 (pipe bandwidth).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;
use tnt_os::Os;

fn bench(c: &mut Criterion) {
    print_reproduction("t4");
    let mut g = c.benchmark_group("t4_pipe");
    for os in Os::benchmarked() {
        g.bench_function(format!("{os:?}_8mb"), |b| {
            b.iter(|| tnt_core::pipe_bandwidth_mbit(os, 8 << 20, tnt_core::BW_PIPE_CHUNK, 1))
        });
    }
    g.finish();
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
