//! Bench target for Figure 13 (UDP bandwidth vs packet size).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;
use tnt_os::Os;

fn bench(c: &mut Criterion) {
    print_reproduction("f13");
    let mut g = c.benchmark_group("f13_udp");
    for packet in [1024u64, 8192] {
        g.bench_function(format!("freebsd_pkt_{packet}"), |b| {
            b.iter(|| tnt_core::udp_bandwidth_mbit(Os::FreeBsd, packet, 1 << 20, 1))
        });
    }
    g.finish();
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
