//! Bench target for Figure 12 (file create/delete).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;
use tnt_os::Os;

fn bench(c: &mut Criterion) {
    print_reproduction("f12");
    let mut g = c.benchmark_group("f12_crtdel");
    for os in Os::benchmarked() {
        g.bench_function(format!("{os:?}_1kb"), |b| {
            b.iter(|| tnt_core::crtdel_ms(os, 1024, 5, 1))
        });
    }
    g.finish();
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
