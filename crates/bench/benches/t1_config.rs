//! Bench target for Table 1 (disk partitioning).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;

fn bench(c: &mut Criterion) {
    print_reproduction("t1");
    c.bench_function("t1_config_render", |b| b.iter(print_scale));
}

fn print_scale() -> usize {
    // Table 1 is configuration; benchmark the render path itself.
    tnt_harness::run_one("t1", &tnt_harness::Scale::smoke()).len()
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
