//! Bench target for Table 2 (system call).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;

fn bench(c: &mut Criterion) {
    print_reproduction("t2");
    c.bench_function("t2_getpid_100k_linux", |b| {
        b.iter(|| tnt_core::syscall_us(tnt_os::Os::Linux, 100_000, 1))
    });
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
