//! Bench target for Table 6 (MAB over NFS, Linux server).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;
use tnt_os::Os;

fn bench(c: &mut Criterion) {
    print_reproduction("t6");
    c.bench_function("t6_mab_nfs_freebsd_client", |b| {
        b.iter(|| tnt_core::mab_over_nfs(Os::FreeBsd, Os::Linux, 1).total_s)
    });
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
