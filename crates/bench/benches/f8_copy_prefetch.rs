//! Bench target for Figure 8 (prefetching custom copy).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;
use tnt_cpu::MemRoutine;

fn bench(c: &mut Criterion) {
    print_reproduction("f8");
    let mut g = c.benchmark_group("f8_copy_prefetch");
    for buf in [4096u64, 65536, 1 << 21] {
        g.bench_function(format!("buf_{buf}"), |b| {
            b.iter(|| tnt_core::mem_bandwidth(MemRoutine::CustomCopyPrefetch, buf, 1 << 20, 1))
        });
    }
    g.finish();
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
