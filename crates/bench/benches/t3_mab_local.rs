//! Bench target for Table 3 (MAB on the local filesystem).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;
use tnt_os::Os;

fn bench(c: &mut Criterion) {
    print_reproduction("t3");
    c.bench_function("t3_mab_local_linux", |b| {
        b.iter(|| tnt_core::mab_local(Os::Linux, 1).total_s)
    });
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
