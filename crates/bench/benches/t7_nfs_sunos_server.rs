//! Bench target for Table 7 (MAB over NFS, SunOS server).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;
use tnt_os::Os;

fn bench(c: &mut Criterion) {
    print_reproduction("t7");
    c.bench_function("t7_mab_nfs_linux_client", |b| {
        b.iter(|| tnt_core::mab_over_nfs(Os::Linux, Os::SunOs, 1).total_s)
    });
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
