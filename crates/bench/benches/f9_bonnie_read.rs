//! Bench target for Figure 9 (bonnie sequential read).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;
use tnt_os::Os;

fn bench(c: &mut Criterion) {
    print_reproduction("f9");
    let mut g = c.benchmark_group("f9_bonnie_read");
    for mb in [4u64, 32] {
        g.bench_function(format!("freebsd_{mb}mb"), |b| {
            b.iter(|| tnt_core::bonnie(Os::FreeBsd, mb, 20, 1))
        });
    }
    g.finish();
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
