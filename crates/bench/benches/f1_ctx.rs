//! Bench target for Figure 1 (context switching).
//!
//! Prints the reproduced result, then times one representative
//! simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use tnt_bench::print_reproduction;

use tnt_core::CtxPattern;
use tnt_os::Os;

fn bench(c: &mut Criterion) {
    print_reproduction("f1");
    let mut g = c.benchmark_group("f1_ctx");
    for n in [2usize, 32, 96] {
        g.bench_function(format!("ring_{n}_procs_linux"), |b| {
            b.iter(|| tnt_core::ctx_us(Os::Linux, n, 1_000, CtxPattern::Ring, 1))
        });
    }
    g.bench_function("lifo_48_procs_solaris", |b| {
        b.iter(|| tnt_core::ctx_us(Os::Solaris, 48, 1_000, CtxPattern::LifoChain, 1))
    });
    g.finish();
}

criterion_group! { name = benches; config = tnt_bench::bench_config!(); targets = bench }
criterion_main!(benches);
