//! Shared plumbing for the per-table/per-figure Criterion benches.
//!
//! Every bench target does two things:
//!
//! 1. prints the reproduced table or figure (rows/series in the paper's
//!    format) by running the corresponding harness experiment once;
//! 2. benchmarks a representative single simulation run with Criterion,
//!    so `cargo bench` also tracks the *simulator's* performance.

use tnt_harness::{run_one, Scale};

/// Prints the reproduced output of experiment `id` at a scale suitable
/// for a bench preamble (small but shape-preserving).
pub fn print_reproduction(id: &str) {
    let scale = preamble_scale(id);
    for out in run_one(id, &scale) {
        println!("{}", out.text);
    }
}

/// Heavy experiments (whole-MAB runs) use the smoke scale for their
/// printed preamble; everything else uses quick.
fn preamble_scale(id: &str) -> Scale {
    match id {
        "t3" | "t6" | "t7" | "f9" | "f10" | "f11" => Scale::smoke(),
        _ => Scale::quick(),
    }
}

/// The per-bench Criterion configuration: simulation runs are whole
/// experiments, so keep the sample count low.
#[macro_export]
macro_rules! bench_config {
    () => {
        criterion::Criterion::default()
            .sample_size(10)
            .measurement_time(std::time::Duration::from_secs(3))
            .warm_up_time(std::time::Duration::from_millis(500))
    };
}
