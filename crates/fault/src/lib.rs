#![warn(missing_docs)]

//! Deterministic, seed-driven fault injection for the tnt simulation.
//!
//! Every modelled device in the reproduction is perfect by default: the
//! disk never errors, the wire never drops a frame, and the NFS recovery
//! machinery (retransmission, the duplicate-request cache) runs only on
//! the happy path. This crate supplies the *fault plane*: a
//! [`FaultProfile`] of per-event probabilities and a per-simulation
//! [`FaultPlan`] that rolls them from its own seeded RNG stream.
//!
//! # Determinism guarantee
//!
//! A [`FaultPlan`] draws from a private xoshiro256** stream seeded from
//! the simulation seed (salted so it never collides with the engine's
//! jitter stream). Because the engine is baton-passing — exactly one
//! simulated process runs at a time — fault rolls occur in a fixed order
//! for a fixed seed, so two runs with the same seed and profile inject
//! *identical* fault sequences, byte for byte, regardless of `--jobs`.
//!
//! When a probability is zero its roll consumes **no** randomness and
//! takes no lock, so a run with [`FaultProfile::off`] is bit-identical to
//! a build without the fault plane at all.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt XORed into the simulation seed so the fault stream never aliases
/// the engine's jitter stream (which is seeded from the raw seed).
const FAULT_STREAM_SALT: u64 = 0x5EED_FA17_1A7E_57A1;

/// Per-event fault probabilities, all in `[0, 1]`.
///
/// A probability of exactly zero disables that fault class with no RNG
/// cost. Profiles are plain values: copy them around, tweak fields for
/// ablation sweeps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Per disk command: transient failure (the driver retries; the
    /// caller sees `EIO` only if every retry also faults).
    pub disk_transient: f64,
    /// Per disk command: sector remap — the command succeeds but pays a
    /// latency spike (extra arm travel plus a lost revolution).
    pub disk_remap: f64,
    /// Per cross-host frame: dropped on the wire (after consuming wire
    /// time, like a collision-mangled Ethernet frame).
    pub net_drop: f64,
    /// Per cross-host frame: delivered twice.
    pub net_dup: f64,
    /// Per cross-host frame: delivered late by one maximum-frame wire
    /// time (the queue-behind-a-burst reordering proxy).
    pub net_delay: f64,
    /// Per RPC request: dropped at the server before processing (socket
    /// buffer overflow on a busy nfsd).
    pub rpc_request_drop: f64,
    /// Per RPC reply: executed and cached but never sent — the case the
    /// duplicate-request cache exists for.
    pub rpc_reply_drop: f64,
}

impl FaultProfile {
    /// No faults. Rolls consume no randomness; behaviour is bit-identical
    /// to a simulation without the fault plane.
    pub const fn off() -> FaultProfile {
        FaultProfile {
            disk_transient: 0.0,
            disk_remap: 0.0,
            net_drop: 0.0,
            net_dup: 0.0,
            net_delay: 0.0,
            rpc_request_drop: 0.0,
            rpc_reply_drop: 0.0,
        }
    }

    /// Light faults for CI: rare enough that every workload still
    /// completes, frequent enough that recovery paths execute.
    pub const fn smoke() -> FaultProfile {
        FaultProfile {
            disk_transient: 0.002,
            disk_remap: 0.004,
            net_drop: 0.005,
            net_dup: 0.002,
            net_delay: 0.002,
            rpc_request_drop: 0.002,
            rpc_reply_drop: 0.002,
        }
    }

    /// Heavy faults: a genuinely bad LAN and an ageing disk. Workloads
    /// still terminate (retry bounds see to that) but degrade visibly.
    pub const fn lossy() -> FaultProfile {
        FaultProfile {
            disk_transient: 0.01,
            disk_remap: 0.01,
            net_drop: 0.05,
            net_dup: 0.02,
            net_delay: 0.02,
            rpc_request_drop: 0.02,
            rpc_reply_drop: 0.02,
        }
    }

    /// Parses a profile name as accepted by `reproduce --faults`.
    pub fn parse(name: &str) -> Option<FaultProfile> {
        match name {
            "off" => Some(FaultProfile::off()),
            "smoke" => Some(FaultProfile::smoke()),
            "lossy" => Some(FaultProfile::lossy()),
            _ => None,
        }
    }

    /// The preset's name as accepted by [`FaultProfile::parse`], or
    /// `"custom"` for a hand-built profile.
    pub fn name(&self) -> &'static str {
        if *self == FaultProfile::off() {
            "off"
        } else if *self == FaultProfile::smoke() {
            "smoke"
        } else if *self == FaultProfile::lossy() {
            "lossy"
        } else {
            "custom"
        }
    }

    /// True when every probability is zero (the default).
    pub fn is_off(&self) -> bool {
        let FaultProfile {
            disk_transient,
            disk_remap,
            net_drop,
            net_dup,
            net_delay,
            rpc_request_drop,
            rpc_reply_drop,
        } = *self;
        disk_transient <= 0.0
            && disk_remap <= 0.0
            && net_drop <= 0.0
            && net_dup <= 0.0
            && net_delay <= 0.0
            && rpc_request_drop <= 0.0
            && rpc_reply_drop <= 0.0
    }
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::off()
    }
}

/// Counts of faults actually injected, for tests and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient disk command failures injected.
    pub disk_transients: u64,
    /// Sector-remap latency spikes injected.
    pub disk_remaps: u64,
    /// Frames dropped by the fault plane (beyond any modelled loss rate).
    pub net_drops: u64,
    /// Frames duplicated.
    pub net_dups: u64,
    /// Frames delayed.
    pub net_delays: u64,
    /// RPC requests dropped at the server.
    pub rpc_request_drops: u64,
    /// RPC replies executed but never sent.
    pub rpc_reply_drops: u64,
}

/// One simulation's fault state: the profile plus a private seeded RNG.
///
/// Roll methods are cheap (`p == 0.0` short-circuits without locking) and
/// deterministic under the baton-passing engine — see the crate docs.
pub struct FaultPlan {
    profile: FaultProfile,
    rng: Mutex<StdRng>,
    stats: Mutex<FaultStats>,
}

impl FaultPlan {
    /// Builds the plan for a simulation booted with `seed`.
    pub fn new(profile: FaultProfile, seed: u64) -> FaultPlan {
        FaultPlan {
            profile,
            rng: Mutex::new(StdRng::seed_from_u64(seed ^ FAULT_STREAM_SALT)),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// The profile this plan injects.
    pub fn profile(&self) -> FaultProfile {
        self.profile
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock()
    }

    /// One Bernoulli roll. Zero probability consumes no randomness so an
    /// `off` profile leaves the simulation bit-identical.
    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let r: f64 = self.rng.lock().gen_range(0.0..1.0);
        r < p
    }

    /// Should this disk command fail transiently?
    pub fn disk_transient(&self) -> bool {
        let hit = self.roll(self.profile.disk_transient);
        if hit {
            self.stats.lock().disk_transients += 1;
        }
        hit
    }

    /// Should this disk command pay a sector-remap latency spike?
    pub fn disk_remap(&self) -> bool {
        let hit = self.roll(self.profile.disk_remap);
        if hit {
            self.stats.lock().disk_remaps += 1;
        }
        hit
    }

    /// Should this frame be dropped?
    pub fn net_drop(&self) -> bool {
        let hit = self.roll(self.profile.net_drop);
        if hit {
            self.stats.lock().net_drops += 1;
        }
        hit
    }

    /// Should this frame be duplicated?
    pub fn net_dup(&self) -> bool {
        let hit = self.roll(self.profile.net_dup);
        if hit {
            self.stats.lock().net_dups += 1;
        }
        hit
    }

    /// Should this frame arrive late?
    pub fn net_delay(&self) -> bool {
        let hit = self.roll(self.profile.net_delay);
        if hit {
            self.stats.lock().net_delays += 1;
        }
        hit
    }

    /// Should the server drop this RPC request unprocessed?
    pub fn rpc_request_drop(&self) -> bool {
        let hit = self.roll(self.profile.rpc_request_drop);
        if hit {
            self.stats.lock().rpc_request_drops += 1;
        }
        hit
    }

    /// Should the server swallow this RPC reply after executing it?
    pub fn rpc_reply_drop(&self) -> bool {
        let hit = self.roll(self.profile.rpc_reply_drop);
        if hit {
            self.stats.lock().rpc_reply_drops += 1;
        }
        hit
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("profile", &self.profile)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The process-wide profile newly booted simulations inherit.
///
/// `reproduce` sets this once from `--faults` before any experiment runs;
/// because it is written before worker threads exist and only read at
/// simulation boot, parallel execution stays deterministic.
static AMBIENT: Mutex<FaultProfile> = Mutex::new(FaultProfile::off());

/// Sets the profile future simulations boot with (see [`ambient`]).
pub fn set_ambient(profile: FaultProfile) {
    *AMBIENT.lock() = profile;
}

/// The profile simulations boot with unless given an explicit one.
pub fn ambient() -> FaultProfile {
    *AMBIENT.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_off_is_off() {
        assert!(FaultProfile::parse("off").unwrap().is_off());
        assert!(!FaultProfile::parse("smoke").unwrap().is_off());
        assert!(!FaultProfile::parse("lossy").unwrap().is_off());
        assert_eq!(FaultProfile::parse("bogus"), None);
        assert!(FaultProfile::default().is_off());
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let a = FaultPlan::new(FaultProfile::lossy(), 42);
        let b = FaultPlan::new(FaultProfile::lossy(), 42);
        let sa: Vec<bool> = (0..256).map(|_| a.net_drop()).collect();
        let sb: Vec<bool> = (0..256).map(|_| b.net_drop()).collect();
        assert_eq!(sa, sb);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().net_drops > 0, "5% of 256 rolls should hit");
    }

    #[test]
    fn off_profile_never_fires_and_never_draws() {
        let p = FaultPlan::new(FaultProfile::off(), 7);
        for _ in 0..64 {
            assert!(!p.disk_transient());
            assert!(!p.net_drop());
            assert!(!p.rpc_reply_drop());
        }
        assert_eq!(p.stats(), FaultStats::default());
        // The RNG was never advanced: a fresh plan with the same seed and
        // a live probability draws the same first value either way.
        let live = FaultPlan::new(FaultProfile::lossy(), 7);
        let first = live.net_drop();
        let reference = FaultPlan::new(FaultProfile::lossy(), 7);
        assert_eq!(first, reference.net_drop());
    }

    #[test]
    fn distinct_fault_classes_share_one_stream() {
        // Interleaving rolls across classes still replays identically.
        let a = FaultPlan::new(FaultProfile::smoke(), 9);
        let b = FaultPlan::new(FaultProfile::smoke(), 9);
        for _ in 0..128 {
            assert_eq!(a.disk_transient(), b.disk_transient());
            assert_eq!(a.net_dup(), b.net_dup());
            assert_eq!(a.rpc_request_drop(), b.rpc_request_drop());
        }
    }

    #[test]
    fn ambient_round_trips() {
        // Serial with other tests touching the global: use a throwaway
        // value and restore.
        let prev = ambient();
        set_ambient(FaultProfile::lossy());
        assert!(!ambient().is_off());
        set_ambient(prev);
    }
}
