//! Argument parsing for the `reproduce` binary.
//!
//! Lives in the library (rather than the binary) so the parser is unit
//! testable: unknown `--flags` must be rejected up front with a usage
//! error instead of falling through to the experiment-id list and
//! dying later as a confusing "unknown experiment id".

use std::path::PathBuf;

use crate::{all_ids, extra_ids};
use tnt_sim::fault::FaultProfile;

/// What `reproduce` has been asked to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Run the experiments and print tables/figures (the default).
    Run,
    /// Run the suite and write `baselines.json` into the output dir.
    Bless,
    /// Run the suite and gate it against the blessed `baselines.json`.
    Check,
    /// Time the suite serially and in parallel; write `BENCH_runner.json`.
    Bench,
    /// Benchmark the threaded vs lite process models; write
    /// `BENCH_engine.json`.
    BenchEngine,
    /// Run the full internet-server rate sweep (TCP + NFS grids over
    /// every OS); write `BENCH_farm.json` and per-workload CSVs.
    Farm,
    /// Exhaustively explore the schedules of the canned concurrency
    /// scenarios; write `EXPLORE.json`.
    Explore,
    /// Replay `.tntrace` workload traces (named fixtures or paths)
    /// through the disk model on every OS; write `REPLAY.json`.
    Replay,
    /// Print every experiment id (including ablations) and exit.
    List,
    /// Print usage and exit.
    Help,
}

/// Which scale constructor to use (kept as a tag so parsing stays
/// cheap and comparable in tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleKind {
    /// `Scale::quick()` — the default.
    Quick,
    /// `Scale::full()` — the paper's methodology.
    Full,
}

/// A parsed command line.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Subcommand.
    pub mode: Mode,
    /// Experiment scale.
    pub scale: ScaleKind,
    /// Worker threads for the experiment pool; 0 means "one per host
    /// core".
    pub jobs: usize,
    /// Regression-gate tolerance in percent (see `BaselineStore::compare`).
    pub tolerance_pct: f64,
    /// Attach cycle-attribution profiles to each experiment.
    pub profile: bool,
    /// Ambient fault-injection profile (`--faults off|smoke|lossy`).
    pub faults: FaultProfile,
    /// Run the cycle-conservation audit after the suite, and arm the
    /// ambient happens-before race detector for every simulation.
    pub audit: bool,
    /// `--record <id>`: capture the named experiment's disk/namespace
    /// activity to `.tntrace` files instead of (or before) replaying.
    /// Only meaningful with the `replay` subcommand.
    pub record: Option<String>,
    /// `explore --all`: run every canned scenario (equivalent to naming
    /// none, spelled out for scripts).
    pub explore_all: bool,
    /// Output directory for CSVs, baselines and bench artifacts.
    pub out_dir: PathBuf,
    /// Optional markdown report path.
    pub markdown: Option<PathBuf>,
    /// Requested experiment ids; empty (or containing "all") means the
    /// whole suite including ablations.
    pub ids: Vec<String>,
}

/// The usage string printed by `--help` and prefixed to parse errors.
pub fn usage() -> String {
    format!(
        "usage: reproduce [bless|check|bench|bench-engine|farm|explore|replay] \
         [--quick|--full] [--jobs N] [--tolerance PCT] [--profile] [--audit] [--all] \
         [--faults off|smoke|lossy] [--record ID] [--out DIR] [--markdown FILE] \
         [ids...|all]\n\
         \n\
         subcommands:\n\
         \x20 (none)   run the experiments and print each table/figure\n\
         \x20 bless    run, then write results/baselines.json (the golden baselines)\n\
         \x20 check    run, then fail loudly if any statistic drifted past --tolerance\n\
         \x20 bench    time the suite serially vs --jobs N; write BENCH_runner.json\n\
         \x20 bench-engine  compare the threaded baton engine against the lite\n\
         \x20          cooperative scheduler on one workload (events/s, handoffs/s,\n\
         \x20          simulated Mcycles/s); write BENCH_engine.json\n\
         \x20 farm     sweep offered request rates over every OS on the tnt-farm\n\
         \x20          internet-server rig (open-loop load, per-request latency\n\
         \x20          histograms): per-OS p50/p95/p99/p999 and saturation\n\
         \x20          throughput curves; write BENCH_farm.json + farm_*.csv.\n\
         \x20          Composes with --faults lossy for degraded-mode curves\n\
         \x20 explore  replay the canned concurrency scenarios under *every*\n\
         \x20          interleaving of contended dispatches (sleep-set pruned)\n\
         \x20          and fail unless each scenario's outcome is identical on\n\
         \x20          every schedule, with no deadlocks or lost wakeups; write\n\
         \x20          EXPLORE.json. Name scenarios or pass --all\n\
         \x20 replay   drive recorded workload traces (docs/TRACE_FORMAT.md)\n\
         \x20          through the disk model on every OS: name vendored\n\
         \x20          fixtures ({}) or paths to .tntrace/.txt/blkparse files;\n\
         \x20          prints per-OS disk busy/elapsed totals, writes\n\
         \x20          REPLAY.json. With --record ID, first captures that\n\
         \x20          experiment's runs to OUT/traces/*.tntrace and replays\n\
         \x20          them. Composes with --faults for degraded replays\n\
         \n\
         --audit runs the cycle-conservation audit after the suite: every\n\
         profileable experiment is re-sampled under tracing and charged\n\
         cycles must equal attributed cycles exactly. It also arms the\n\
         happens-before race detector in every simulation — any unordered\n\
         same-location access pair fails the run with both stacks.\n\
         \n\
         --faults injects deterministic seed-driven faults (disk transients\n\
         and remaps, frame drop/duplicate/delay, RPC request/reply loss):\n\
         off (default) injects nothing and is byte-identical to a build\n\
         without the fault plane; smoke is a light sanity dose; lossy is a\n\
         degraded network and an ageing disk.\n\
         \n\
         experiments: {}\n\
         ablations:   {}\n\
         scenarios:   {}",
        crate::replay_fixture_ids().join(" "),
        all_ids().join(" "),
        extra_ids().join(" "),
        crate::explore_ids().join(" ")
    )
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value\n{}", usage()))?;
    raw.parse()
        .map_err(|_| format!("{flag} got a non-numeric value {raw:?}\n{}", usage()))
}

/// Parses the argument list (without the program name).
///
/// Unrecognised `--`-prefixed arguments are an error — they must never
/// be swallowed into the experiment-id list.
pub fn parse(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli {
        mode: Mode::Run,
        scale: ScaleKind::Quick,
        jobs: 1,
        tolerance_pct: 2.0,
        profile: false,
        faults: FaultProfile::off(),
        audit: false,
        record: None,
        explore_all: false,
        out_dir: PathBuf::from("results"),
        markdown: None,
        ids: Vec::new(),
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "bless" => cli.mode = Mode::Bless,
            "check" => cli.mode = Mode::Check,
            "bench" => cli.mode = Mode::Bench,
            "bench-engine" => cli.mode = Mode::BenchEngine,
            "farm" => cli.mode = Mode::Farm,
            "explore" => cli.mode = Mode::Explore,
            "replay" => cli.mode = Mode::Replay,
            "--all" => cli.explore_all = true,
            "--list" => cli.mode = Mode::List,
            "--help" | "-h" => cli.mode = Mode::Help,
            "--quick" => cli.scale = ScaleKind::Quick,
            "--full" => cli.scale = ScaleKind::Full,
            "--profile" => cli.profile = true,
            "--audit" => cli.audit = true,
            "--faults" => {
                let raw = iter
                    .next()
                    .ok_or_else(|| format!("--faults needs a profile name\n{}", usage()))?;
                cli.faults = FaultProfile::parse(&raw).ok_or_else(|| {
                    format!("--faults got {raw:?}, want off|smoke|lossy\n{}", usage())
                })?;
            }
            "--record" => {
                cli.record = Some(iter.next().ok_or_else(|| {
                    format!("--record needs an experiment id\n{}", usage())
                })?);
            }
            "--jobs" | "-j" => cli.jobs = parse_number("--jobs", iter.next())?,
            "--tolerance" => cli.tolerance_pct = parse_number("--tolerance", iter.next())?,
            "--out" => {
                cli.out_dir =
                    PathBuf::from(iter.next().ok_or_else(|| {
                        format!("--out needs a directory\n{}", usage())
                    })?);
            }
            "--markdown" => {
                cli.markdown = Some(PathBuf::from(iter.next().ok_or_else(|| {
                    format!("--markdown needs a file\n{}", usage())
                })?));
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n{}", usage()));
            }
            other => cli.ids.push(other.to_string()),
        }
    }
    if cli.tolerance_pct < 0.0 {
        return Err(format!("--tolerance must be >= 0\n{}", usage()));
    }
    if cli.record.is_some() && cli.mode != Mode::Replay {
        return Err(format!(
            "--record only makes sense with the replay subcommand\n{}",
            usage()
        ));
    }
    Ok(cli)
}

impl Cli {
    /// The effective worker count: `--jobs 0` means one per host core.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }

    /// The ids to run: the explicit list, or the whole suite
    /// (experiments then ablations) when empty or "all".
    pub fn resolved_ids(&self) -> Vec<String> {
        if self.ids.is_empty() || self.ids.iter().any(|i| i == "all") {
            all_ids()
                .iter()
                .chain(extra_ids().iter())
                .map(|s| s.to_string())
                .collect()
        } else {
            self.ids.clone()
        }
    }

    /// Builds the scale.
    pub fn scale(&self) -> crate::Scale {
        match self.scale {
            ScaleKind::Quick => crate::Scale::quick(),
            ScaleKind::Full => crate::Scale::full(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let cli = parse(vec![]).unwrap();
        assert_eq!(cli.mode, Mode::Run);
        assert_eq!(cli.scale, ScaleKind::Quick);
        assert_eq!(cli.jobs, 1);
        assert!(!cli.profile);
        assert_eq!(cli.out_dir, PathBuf::from("results"));
        // Empty ids resolve to the full suite, ablations included.
        let ids = cli.resolved_ids();
        assert!(ids.iter().any(|i| i == "t2"));
        assert!(ids.iter().any(|i| i == "x7"));
    }

    #[test]
    fn unknown_flags_are_rejected_up_front() {
        for bad in ["--paralel", "--jbos", "-z", "--bless"] {
            let err = parse(args(&[bad, "t2"])).unwrap_err();
            assert!(err.contains(bad), "error names the flag: {err}");
            assert!(err.contains("usage:"), "error shows usage: {err}");
        }
    }

    #[test]
    fn subcommands_and_flags_parse() {
        let cli = parse(args(&[
            "check",
            "--full",
            "--jobs",
            "8",
            "--tolerance",
            "1.5",
            "--audit",
            "t2",
            "t5",
        ]))
        .unwrap();
        assert_eq!(cli.mode, Mode::Check);
        assert_eq!(cli.scale, ScaleKind::Full);
        assert_eq!(cli.jobs, 8);
        assert_eq!(cli.tolerance_pct, 1.5);
        assert!(cli.audit);
        assert_eq!(cli.ids, vec!["t2", "t5"]);
        assert_eq!(cli.resolved_ids(), vec!["t2", "t5"]);
    }

    #[test]
    fn bench_engine_parses() {
        let cli = parse(args(&["bench-engine"])).unwrap();
        assert_eq!(cli.mode, Mode::BenchEngine);
        let cli = parse(args(&["bench-engine", "--out", "elsewhere"])).unwrap();
        assert_eq!(cli.out_dir, PathBuf::from("elsewhere"));
    }

    #[test]
    fn farm_parses_with_flags() {
        let cli = parse(args(&["farm"])).unwrap();
        assert_eq!(cli.mode, Mode::Farm);
        let cli = parse(args(&["farm", "--full", "--jobs", "4", "--faults", "lossy"])).unwrap();
        assert_eq!(cli.mode, Mode::Farm);
        assert_eq!(cli.scale, ScaleKind::Full);
        assert_eq!(cli.jobs, 4);
        assert_eq!(cli.faults, FaultProfile::lossy());
        // The usage text sells the sweep.
        assert!(usage().contains("farm"));
        assert!(usage().contains("BENCH_farm.json"));
    }

    #[test]
    fn numeric_flags_validate() {
        assert!(parse(args(&["--jobs"])).is_err());
        assert!(parse(args(&["--jobs", "many"])).is_err());
        assert!(parse(args(&["--tolerance", "-3"])).is_err());
    }

    #[test]
    fn faults_flag_parses_profiles() {
        assert!(parse(vec![]).unwrap().faults.is_off());
        let cli = parse(args(&["--faults", "smoke"])).unwrap();
        assert_eq!(cli.faults, FaultProfile::smoke());
        let cli = parse(args(&["--faults", "lossy", "t6"])).unwrap();
        assert_eq!(cli.faults, FaultProfile::lossy());
        assert_eq!(cli.ids, vec!["t6"]);
        let err = parse(args(&["--faults", "chaos"])).unwrap_err();
        assert!(err.contains("chaos") && err.contains("usage:"));
        assert!(parse(args(&["--faults"])).is_err());
    }

    #[test]
    fn jobs_zero_means_auto() {
        let cli = parse(args(&["--jobs", "0"])).unwrap();
        assert!(cli.effective_jobs() >= 1);
    }

    #[test]
    fn usage_names_every_ablation() {
        let u = usage();
        for id in crate::extra_ids() {
            assert!(u.contains(id), "{id} missing from usage");
        }
    }

    #[test]
    fn explore_parses_with_all_flag_and_named_scenarios() {
        let cli = parse(args(&["explore", "--all"])).unwrap();
        assert_eq!(cli.mode, Mode::Explore);
        assert!(cli.explore_all);
        assert!(cli.ids.is_empty());
        let cli = parse(args(&["explore", "mutex-contention", "timer-race"])).unwrap();
        assert_eq!(cli.mode, Mode::Explore);
        assert!(!cli.explore_all);
        assert_eq!(cli.ids, vec!["mutex-contention", "timer-race"]);
        // The scenario namespace is advertised alongside the experiments.
        let u = usage();
        assert!(u.contains("explore"));
        for id in crate::explore_ids() {
            assert!(u.contains(id), "{id} missing from usage");
        }
    }

    #[test]
    fn replay_parses_with_fixtures_and_record() {
        let cli = parse(args(&["replay", "desktop_boot"])).unwrap();
        assert_eq!(cli.mode, Mode::Replay);
        assert_eq!(cli.ids, vec!["desktop_boot"]);
        assert!(cli.record.is_none());
        let cli = parse(args(&["replay", "--record", "f9", "--faults", "lossy"])).unwrap();
        assert_eq!(cli.mode, Mode::Replay);
        assert_eq!(cli.record.as_deref(), Some("f9"));
        assert_eq!(cli.faults, FaultProfile::lossy());
        // The usage text documents the subcommand and every fixture.
        let u = usage();
        assert!(u.contains("replay") && u.contains("REPLAY.json"));
        for id in crate::replay_fixture_ids() {
            assert!(u.contains(id), "{id} missing from usage");
        }
    }

    #[test]
    fn record_needs_replay_mode_and_a_value() {
        assert!(parse(args(&["replay", "--record"])).is_err());
        let err = parse(args(&["--record", "f9", "t2"])).unwrap_err();
        assert!(err.contains("replay subcommand"), "{err}");
        let err = parse(args(&["check", "--record", "f9"])).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
    }

    #[test]
    fn replay_still_rejects_unknown_flags() {
        // Strictness survives the new subcommand: a typo'd subflag next
        // to `replay` is an error, never a trace name.
        for bad in ["--recrod", "--asap", "-t"] {
            let err = parse(args(&["replay", bad, "desktop_boot"])).unwrap_err();
            assert!(err.contains(bad), "error names the flag: {err}");
            assert!(err.contains("usage:"), "error shows usage: {err}");
        }
    }

    #[test]
    fn explore_still_rejects_unknown_flags() {
        // Strictness survives the new subcommand: a typo'd flag next to
        // `explore` is an error, never a silently ignored scenario name.
        for bad in ["--al", "--explore-all", "-a"] {
            let err = parse(args(&["explore", bad])).unwrap_err();
            assert!(err.contains(bad), "error names the flag: {err}");
            assert!(err.contains("usage:"), "error shows usage: {err}");
        }
    }
}
