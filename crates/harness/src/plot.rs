//! ASCII renderings of the paper's figures, plus CSV export.

use tnt_runner::StatLine;
use tnt_sim::{Series, Summary};

/// Axis scaling for the plot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XScale {
    /// Linear x axis (process counts).
    Linear,
    /// Log2 x axis (buffer and file sizes).
    Log2,
}

/// A figure: several labelled series over a common x axis.
#[derive(Clone, Debug)]
pub struct Figure {
    /// e.g. "FIGURE 1. Context Switch".
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// X axis scaling.
    pub x_scale: XScale,
    /// The curves.
    pub series: Vec<Series>,
}

const WIDTH: usize = 68;
const HEIGHT: usize = 18;

impl Figure {
    fn x_pos(&self, x: f64, xmin: f64, xmax: f64) -> usize {
        let (a, b, v) = match self.x_scale {
            XScale::Linear => (xmin, xmax, x),
            XScale::Log2 => (xmin.log2(), xmax.log2(), x.log2()),
        };
        if b <= a {
            return 0;
        }
        (((v - a) / (b - a)) * (WIDTH - 1) as f64).round() as usize
    }

    /// Renders the figure as an ASCII chart with one glyph per series.
    pub fn render(&self) -> String {
        let glyphs = ['*', 'o', '+', 'x', '#', '@'];
        let mut out = format!("{}\n", self.title);
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if all.is_empty() {
            out.push_str("  (no data)\n");
            return out;
        }
        let xmin = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let xmax = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let ymax = all
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(1e-12);
        let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
        for (si, s) in self.series.iter().enumerate() {
            let g = glyphs[si % glyphs.len()];
            for &(x, y) in &s.points {
                let col = self.x_pos(x, xmin, xmax).min(WIDTH - 1);
                let row = ((y / ymax) * (HEIGHT - 1) as f64).round() as usize;
                let row = HEIGHT - 1 - row.min(HEIGHT - 1);
                grid[row][col] = g;
            }
        }
        out.push_str(&format!("  {} (max {:.4})\n", self.y_label, ymax));
        for row in grid {
            out.push_str("  |");
            out.extend(row);
            out.push('\n');
        }
        out.push_str(&format!("  +{}\n", "-".repeat(WIDTH)));
        out.push_str(&format!(
            "   {:<30} [{} .. {}]\n",
            self.x_label,
            human(xmin),
            human(xmax)
        ));
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("   {} = {}\n", glyphs[si % glyphs.len()], s.label));
        }
        out
    }

    /// Extracts the machine-readable statistics: one [`StatLine`] per
    /// series, in legend order. `mean` is the mean y value over the
    /// curve, `sd_pct` its spread across the x sweep (how strongly the
    /// curve varies, not run-to-run noise), and `norm` the ratio of
    /// this curve's mean to the best (largest) one — a shape
    /// fingerprint for the regression gate rather than a judgement of
    /// which system wins.
    pub fn stat_lines(&self) -> Vec<StatLine> {
        let means: Vec<f64> = self
            .series
            .iter()
            .map(|s| {
                let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
                if ys.is_empty() {
                    0.0
                } else {
                    Summary::of(&ys).mean
                }
            })
            .collect();
        let best = means.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        self.series
            .iter()
            .zip(&means)
            .map(|(s, &mean)| {
                let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
                let sd_pct = if ys.is_empty() {
                    0.0
                } else {
                    Summary::of(&ys).sd_pct()
                };
                StatLine {
                    label: s.label.clone(),
                    mean,
                    sd_pct,
                    norm: mean / best,
                }
            })
            .collect()
    }

    /// Serialises all series as CSV: `x,label1,label2,...` per x value.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        let mut out = String::from("x");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!(",{y}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn human(v: f64) -> String {
    // audit:allow(float-eq) axis labels: exact power-of-two multiples get the K/M suffix, near-misses intentionally fall through
    if v >= 1024.0 * 1024.0 && v % (1024.0 * 1024.0) == 0.0 {
        format!("{}M", v / 1024.0 / 1024.0)
    // audit:allow(float-eq) same: exact-multiple check for the K suffix
    } else if v >= 1024.0 && v % 1024.0 == 0.0 {
        format!("{}K", v / 1024.0)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        let mut a = Series::new("Linux");
        a.push(2.0, 55.0);
        a.push(64.0, 140.0);
        let mut b = Series::new("FreeBSD");
        b.push(2.0, 80.0);
        b.push(64.0, 80.0);
        Figure {
            title: "FIGURE 1. Context Switch".into(),
            x_label: "processes".into(),
            y_label: "µs/switch".into(),
            x_scale: XScale::Linear,
            series: vec![a, b],
        }
    }

    #[test]
    fn render_contains_legend_and_title() {
        let s = fig().render();
        assert!(s.contains("FIGURE 1"));
        assert!(s.contains("* = Linux"));
        assert!(s.contains("o = FreeBSD"));
        assert!(s.lines().count() > 15);
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = fig().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "x,Linux,FreeBSD");
        assert_eq!(lines.next().unwrap(), "2,55,80");
        assert_eq!(lines.next().unwrap(), "64,140,80");
    }

    #[test]
    fn log_scale_positions_spread() {
        let f = Figure {
            x_scale: XScale::Log2,
            ..fig()
        };
        // 2 -> col 0; 64 -> last col.
        assert_eq!(f.x_pos(2.0, 2.0, 64.0), 0);
        assert_eq!(f.x_pos(64.0, 2.0, 64.0), WIDTH - 1);
        // Geometric midpoint lands mid-plot under log scaling.
        let mid = f.x_pos(11.3, 2.0, 64.0);
        assert!((mid as i64 - (WIDTH / 2) as i64).abs() < 3);
    }

    #[test]
    fn stat_lines_fingerprint_the_curves() {
        let stats = fig().stat_lines();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].label, "Linux");
        assert!((stats[0].mean - 97.5).abs() < 1e-9);
        assert!((stats[0].norm - 1.0).abs() < 1e-9, "Linux curve is best");
        assert!((stats[1].mean - 80.0).abs() < 1e-9);
        assert_eq!(stats[1].sd_pct, 0.0, "flat curve has no spread");
    }

    #[test]
    fn empty_figure_renders_gracefully() {
        let f = Figure {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            x_scale: XScale::Linear,
            series: vec![],
        };
        assert!(f.render().contains("no data"));
    }
}
