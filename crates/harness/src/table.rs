//! Paper-style table rendering: Time / Std Dev / Norm. columns, with the
//! paper's own values alongside for comparison.

use tnt_runner::StatLine;
use tnt_sim::{normalize_higher_better, normalize_lower_better, Summary};

/// Whether smaller or larger measured values are better (controls the
/// "Norm." column, as in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Times: smaller is better; Norm. = best/value.
    LowerBetter,
    /// Bandwidths: larger is better; Norm. = value/best.
    HigherBetter,
}

/// One system's row of a table.
#[derive(Clone, Debug)]
pub struct Row {
    /// System label as the paper prints it.
    pub label: String,
    /// Mean and standard deviation over the runs.
    pub summary: Summary,
    /// The paper's reported value, for side-by-side comparison.
    pub paper: f64,
}

/// A rendered table of the paper.
#[derive(Clone, Debug)]
pub struct Table {
    /// e.g. "TABLE 2. System Call".
    pub title: String,
    /// Unit of the value column, e.g. "µs" or "Mb/s".
    pub unit: &'static str,
    /// Normalisation direction.
    pub direction: Direction,
    /// One row per system, in the order measured.
    pub rows: Vec<Row>,
}

impl Table {
    /// Rows sorted best-first (the paper's presentation order) with
    /// their normalised ratios — the single source both [`render`] and
    /// [`stat_lines`] draw from, so the record always matches the text.
    ///
    /// [`render`]: Table::render
    /// [`stat_lines`]: Table::stat_lines
    fn ranked(&self) -> (Vec<Row>, Vec<f64>) {
        let mut rows = self.rows.clone();
        match self.direction {
            Direction::LowerBetter => {
                rows.sort_by(|a, b| a.summary.mean.total_cmp(&b.summary.mean))
            }
            Direction::HigherBetter => {
                rows.sort_by(|a, b| b.summary.mean.total_cmp(&a.summary.mean))
            }
        }
        let means: Vec<f64> = rows.iter().map(|r| r.summary.mean).collect();
        let norms = match self.direction {
            Direction::LowerBetter => normalize_lower_better(&means),
            Direction::HigherBetter => normalize_higher_better(&means),
        };
        (rows, norms)
    }

    /// Extracts the machine-readable statistics: one [`StatLine`] per
    /// row, in rendered (best-first) order.
    pub fn stat_lines(&self) -> Vec<StatLine> {
        let (rows, norms) = self.ranked();
        rows.iter()
            .zip(norms)
            .map(|(row, norm)| StatLine {
                label: row.label.clone(),
                mean: row.summary.mean,
                sd_pct: row.summary.sd_pct(),
                norm,
            })
            .collect()
    }

    /// Renders the table as aligned ASCII, rows sorted best-first like
    /// the paper's tables.
    pub fn render(&self) -> String {
        let (rows, norms) = self.ranked();
        let paper: Vec<f64> = rows.iter().map(|r| r.paper).collect();
        let paper_norms = match self.direction {
            Direction::LowerBetter => normalize_lower_better(&paper),
            Direction::HigherBetter => normalize_higher_better(&paper),
        };
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!(
            "  {:<12} {:>12} {:>8} {:>6} | {:>12} {:>6}\n",
            "OS",
            format!("Meas. ({})", self.unit),
            "Std Dev",
            "Norm.",
            format!("Paper ({})", self.unit),
            "Norm."
        ));
        out.push_str(&format!("  {}\n", "-".repeat(66)));
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!(
                "  {:<12} {:>12.2} {:>7.2}% {:>6.2} | {:>12.2} {:>6.2}\n",
                row.label,
                row.summary.mean,
                row.summary.sd_pct(),
                norms[i],
                row.paper,
                paper_norms[i],
            ));
        }
        out
    }

    /// The measured mean for a given label, if present.
    pub fn mean_of(&self, label: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.summary.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mean: f64) -> Summary {
        Summary::of(&[mean * 0.99, mean, mean * 1.01])
    }

    #[test]
    fn renders_sorted_with_norms() {
        let t = Table {
            title: "TABLE 2. System Call".into(),
            unit: "µs",
            direction: Direction::LowerBetter,
            rows: vec![
                Row {
                    label: "Solaris 2.4".into(),
                    summary: summary(3.52),
                    paper: 3.52,
                },
                Row {
                    label: "Linux".into(),
                    summary: summary(2.31),
                    paper: 2.31,
                },
                Row {
                    label: "FreeBSD".into(),
                    summary: summary(2.62),
                    paper: 2.62,
                },
            ],
        };
        let s = t.render();
        let linux_pos = s.find("Linux").unwrap();
        let freebsd_pos = s.find("FreeBSD").unwrap();
        let solaris_pos = s.find("Solaris").unwrap();
        assert!(
            linux_pos < freebsd_pos && freebsd_pos < solaris_pos,
            "best first:\n{s}"
        );
        assert!(s.contains("1.00"), "best row normalises to 1.00:\n{s}");
        assert!(
            s.contains("0.66"),
            "Solaris norm 0.66 as in the paper:\n{s}"
        );
    }

    #[test]
    fn higher_better_sorts_descending() {
        let t = Table {
            title: "TABLE 4. Pipe Bandwidth".into(),
            unit: "Mb/s",
            direction: Direction::HigherBetter,
            rows: vec![
                Row {
                    label: "Solaris 2.4".into(),
                    summary: summary(65.38),
                    paper: 65.38,
                },
                Row {
                    label: "Linux".into(),
                    summary: summary(119.36),
                    paper: 119.36,
                },
            ],
        };
        let s = t.render();
        assert!(s.find("Linux").unwrap() < s.find("Solaris").unwrap());
        assert!(s.contains("0.55"), "Solaris norm per Table 4:\n{s}");
    }

    #[test]
    fn stat_lines_match_the_rendered_order_and_norms() {
        let t = Table {
            title: "TABLE 2. System Call".into(),
            unit: "µs",
            direction: Direction::LowerBetter,
            rows: vec![
                Row {
                    label: "Solaris 2.4".into(),
                    summary: summary(3.52),
                    paper: 3.52,
                },
                Row {
                    label: "Linux".into(),
                    summary: summary(2.31),
                    paper: 2.31,
                },
            ],
        };
        let stats = t.stat_lines();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].label, "Linux");
        assert!((stats[0].norm - 1.0).abs() < 1e-9);
        assert!((stats[1].norm - 2.31 / 3.52).abs() < 0.02);
        assert!(stats[1].sd_pct > 0.0);
        // The record and the text agree.
        assert!(t.render().contains("Linux"));
    }

    #[test]
    fn mean_lookup() {
        let t = Table {
            title: "t".into(),
            unit: "µs",
            direction: Direction::LowerBetter,
            rows: vec![Row {
                label: "Linux".into(),
                summary: summary(2.0),
                paper: 2.0,
            }],
        };
        assert!((t.mean_of("Linux").unwrap() - 2.0).abs() < 0.01);
        assert!(t.mean_of("Plan9").is_none());
    }
}
