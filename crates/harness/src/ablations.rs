//! Ablation and projection experiments beyond the paper's own tables:
//!
//! - `x1`: TCP window sweep — how much of Table 5's Linux deficit is the
//!   one-packet window alone;
//! - `x2`: metadata-policy swap — Figure 12 with each filesystem's
//!   sync/async policy toggled;
//! - `x3`: the Solaris dispatch table — Figure 1's 32-process cliff with
//!   the modelled table removed;
//! - `x4`: Section 13's next releases — the Figure 1 and Figure 12
//!   numbers the authors preview for Linux 1.3.40, FreeBSD 2.1 and
//!   Solaris 2.5;
//! - `x8`: NFS degradation under deterministic fault injection — MAB
//!   time against a SunOS server as the RPC drop rate rises.

use crate::experiments::ExperimentOutput;
use crate::plan::{ExperimentPlan, PlanBody};
use crate::plot::{Figure, XScale};
use crate::scale::Scale;
use tnt_core::{
    crtdel_ms, crtdel_ms_with, ctx_us_with, mab_over_nfs_faulty, tcp_bandwidth_mbit,
    tcp_bandwidth_with_window, CtxPattern, Os,
};
use tnt_fs::FsParams;
use tnt_os::future::{freebsd_2_1, linux_1_3_40, solaris_2_5};
use tnt_os::{DispatchCosts, OsCosts};
use tnt_runner::ExperimentRecord;
use tnt_sim::Series;

/// The extra experiment ids, in presentation order.
pub fn extra_ids() -> Vec<&'static str> {
    vec![
        "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "x11", "x12",
    ]
}

/// Runs one extra experiment.
pub fn run_extra(id: &str, scale: &Scale) -> ExperimentOutput {
    match id {
        "x1" => x1_tcp_window(scale),
        "x2" => x2_metadata_policy(scale),
        "x3" => x3_dispatch_table(scale),
        "x4" => x4_future_releases(scale),
        "x5" => x5_crash_consistency(scale),
        "x6" => x6_event_counters(scale),
        "x7" => x7_latencies(scale),
        "x8" => x8_nfs_degradation(scale),
        // The farm and replay experiments are planned shards; run them
        // through the serial reference pipeline.
        "x9" | "x10" | "x11" | "x12" => crate::experiments::run_one(id, scale)
            .into_iter()
            .next()
            .expect("planned shard renders one output"),
        other => panic!("unknown ablation id {other:?}"),
    }
}

/// Plans one extra experiment as a single parallel-runner shard (the
/// ablations are cheap single-seed studies; the whole-experiment
/// granularity is enough to overlap them with the big sweeps).
pub(crate) fn plan_extra(id: &str, scale: &Scale) -> ExperimentPlan {
    let (id, title, cost): (&'static str, &'static str, u64) = match id {
        "x1" => ("x1", "ABLATION x1. TCP window sweep", 20_000),
        "x2" => ("x2", "ABLATION x2. Metadata policy", 5_000),
        "x3" => ("x3", "ABLATION x3. Solaris dispatch table", 40_000),
        "x4" => ("x4", "PROJECTION x4. Next releases", 10_000),
        "x5" => ("x5", "ABLATION x5. Crash consistency", 3_000),
        "x6" => ("x6", "PROJECTION x6. Event counters", 3_000),
        "x7" => ("x7", "COMPANION x7. Latencies", 30_000),
        "x8" => ("x8", "ABLATION x8. NFS degradation under loss", 60_000),
        other => panic!("unknown ablation id {other:?}"),
    };
    let scale = scale.clone();
    ExperimentPlan {
        id,
        title,
        body: PlanBody::Whole {
            cost,
            run: Box::new(move || vec![run_extra(id, &scale)]),
        },
    }
}

fn x1_tcp_window(scale: &Scale) -> ExperimentOutput {
    let mut s = Series::new("Linux 1.2.8 stack");
    for window in [1u64, 2, 3, 4, 6, 8, 12] {
        let bw = tcp_bandwidth_with_window(Os::Linux, window, scale.tcp_total, 48 * 1024, 1);
        s.push(window as f64, bw);
    }
    let stock = tcp_bandwidth_mbit(Os::Linux, scale.tcp_total, 48 * 1024, 1);
    let freebsd = tcp_bandwidth_mbit(Os::FreeBsd, scale.tcp_total, 48 * 1024, 1);
    let fig = Figure {
        title: "ABLATION x1. Linux TCP bandwidth vs send window".into(),
        x_label: "window (packets)".into(),
        y_label: "Mb/s".into(),
        x_scale: XScale::Linear,
        series: vec![s],
    };
    let text = format!(
        "{}  stock Linux (window=1): {stock:.1} Mb/s; FreeBSD for reference: {freebsd:.1} Mb/s\n\
         \x20 Section 9.3's claim holds: the one-packet window is the binding\n\
         \x20 constraint; a few packets of window recover most of the gap.\n",
        fig.render()
    );
    let record =
        ExperimentRecord::new("x1", "ABLATION x1. TCP window sweep", 1).with_stats(fig.stat_lines());
    ExperimentOutput {
        id: "x1",
        title: "ABLATION x1. TCP window sweep",
        text,
        csv: vec![("x1_tcp_window.csv".into(), fig.to_csv())],
        record: Some(record),
    }
}

fn x2_metadata_policy(scale: &Scale) -> ExperimentOutput {
    let iters = scale.crtdel_iters;
    let rows = [
        (
            "Linux/ext2 (async, stock)",
            crtdel_ms(Os::Linux, 1024, iters, 1),
        ),
        (
            "Linux/ext2 forced sync",
            crtdel_ms_with(
                OsCosts::for_os(Os::Linux),
                FsParams::ext2_linux().with_sync_metadata(true),
                1024,
                iters,
                1,
            ),
        ),
        (
            "FreeBSD/FFS (sync, stock)",
            crtdel_ms(Os::FreeBsd, 1024, iters, 1),
        ),
        (
            "FreeBSD/FFS forced async",
            crtdel_ms_with(
                OsCosts::for_os(Os::FreeBsd),
                FsParams::ffs_freebsd().with_sync_metadata(false),
                1024,
                iters,
                1,
            ),
        ),
    ];
    let mut text = String::from(
        "ABLATION x2. Figure 12 with the metadata update policy swapped (1 KB files)\n",
    );
    for (label, ms) in rows {
        text.push_str(&format!("  {label:<28} {ms:>8.2} ms per create/delete\n"));
    }
    text.push_str(
        "  The whole order-of-magnitude Figure 12 gap is the update policy:\n\
         \x20 ext2 with forced-sync metadata behaves like FFS, and FFS with\n\
         \x20 async metadata behaves like ext2.\n",
    );
    ExperimentOutput {
        id: "x2",
        title: "ABLATION x2. Metadata policy",
        text,
        csv: vec![],
        record: Some(ExperimentRecord::new("x2", "ABLATION x2. Metadata policy", 1)),
    }
}

fn x3_dispatch_table(scale: &Scale) -> ExperimentOutput {
    let stock = OsCosts::for_os(Os::Solaris);
    let no_table = OsCosts {
        dispatch: DispatchCosts {
            table_slots: 0,
            table_miss_cy: 0,
            ..stock.dispatch
        },
        ..stock
    };
    let mut with_table = Series::new("Solaris (32-entry table)");
    let mut without = Series::new("Solaris (table removed)");
    for &n in &scale.ctx_procs {
        with_table.push(
            n as f64,
            ctx_us_with(stock, n, scale.ctx_switches, CtxPattern::Ring, 1),
        );
        without.push(
            n as f64,
            ctx_us_with(no_table, n, scale.ctx_switches, CtxPattern::Ring, 1),
        );
    }
    let fig = Figure {
        title: "ABLATION x3. The Solaris dispatch-table hypothesis".into(),
        x_label: "active processes".into(),
        y_label: "µs/switch".into(),
        x_scale: XScale::Linear,
        series: vec![with_table, without],
    };
    let text = format!(
        "{}  Removing the modelled 32-entry dispatch structure removes the\n\
         \x20 Figure 1 jump entirely — the mechanism the authors hypothesised\n\
         \x20 (and could not verify without Solaris source).\n",
        fig.render()
    );
    let record = ExperimentRecord::new("x3", "ABLATION x3. Solaris dispatch table", 1)
        .with_stats(fig.stat_lines());
    ExperimentOutput {
        id: "x3",
        title: "ABLATION x3. Solaris dispatch table",
        text,
        csv: vec![("x3_dispatch_table.csv".into(), fig.to_csv())],
        record: Some(record),
    }
}

fn x4_future_releases(scale: &Scale) -> ExperimentOutput {
    let switches = scale.ctx_switches;
    let mut text = String::from("PROJECTION x4. Section 13: the next releases\n");
    text.push_str("  ctx (ring, µs/switch):          2 procs   32 procs   96 procs\n");
    let rows: [(&str, OsCosts); 4] = [
        ("Linux 1.2.8", OsCosts::for_os(Os::Linux)),
        ("Linux 1.3.40 (dev)", linux_1_3_40()),
        ("Solaris 2.4", OsCosts::for_os(Os::Solaris)),
        ("Solaris 2.5", solaris_2_5()),
    ];
    for (label, costs) in rows {
        let a = ctx_us_with(costs, 2, switches, CtxPattern::Ring, 1);
        let b = ctx_us_with(costs, 32, switches, CtxPattern::Ring, 1);
        let c = ctx_us_with(costs, 96, switches, CtxPattern::Ring, 1);
        text.push_str(&format!("  {label:<28} {a:>9.1} {b:>10.1} {c:>10.1}\n"));
    }
    text.push_str("\n  crtdel (1 KB files, ms/iteration):\n");
    let fs_rows: [(&str, OsCosts, FsParams); 2] = [
        (
            "FreeBSD 2.0.5R (sync FFS)",
            OsCosts::for_os(Os::FreeBsd),
            FsParams::ffs_freebsd(),
        ),
        (
            "FreeBSD 2.1 (ordered async)",
            freebsd_2_1(),
            FsParams::ffs_freebsd_21(),
        ),
    ];
    for (label, costs, fs) in fs_rows {
        let ms = crtdel_ms_with(costs, fs, 1024, scale.crtdel_iters, 1);
        text.push_str(&format!("  {label:<28} {ms:>9.2}\n"));
    }
    text.push_str(
        "\n  As the authors preview: 1.3.40's rewritten scheduler context\n\
         \x20 switches in ~10 µs nearly flat; FreeBSD 2.1's ordered async\n\
         \x20 metadata recovers the Figure 12 order of magnitude while\n\
         \x20 keeping crash ordering.\n",
    );
    ExperimentOutput {
        id: "x4",
        title: "PROJECTION x4. Next releases",
        text,
        csv: vec![],
        record: Some(ExperimentRecord::new("x4", "PROJECTION x4. Next releases", 1)),
    }
}

fn x5_crash_consistency(scale: &Scale) -> ExperimentOutput {
    use tnt_fs::SimFs;

    // Price (crtdel ms) and payoff (durability after a simulated crash)
    // of each metadata policy: the Section 7.2 trade-off, quantified.
    let survey = |os: Os| {
        let (sim, kernel) = tnt_os::boot(os, 1);
        let fs = SimFs::fresh_for_os(os);
        kernel.mount(fs.clone());
        kernel.spawn_user("creator", |p| {
            for i in 0..25 {
                let fd = p.creat(&format!("/doc{i}")).unwrap();
                p.write(fd, 4096).unwrap();
                p.close(fd).unwrap();
            }
        });
        sim.run().expect("crash survey run");
        fs.crash_report()
    };
    let mut text = String::new();
    text.push_str(
        "ABLATION x5. Crash consistency: the price and payoff of sync metadata
",
    );
    text.push_str(
        "  Workload: create and write 25 files, then lose power.

",
    );
    text.push_str(
        "  OS            crtdel (1KB)   files durable   data blocks durable
",
    );
    for os in Os::benchmarked() {
        let r = survey(os);
        let ms = crtdel_ms(os, 1024, scale.crtdel_iters, 1);
        text.push_str(&format!(
            "  {:<12} {:>9.2} ms {:>10}/{:<4} {:>12}/{:<5}
",
            os.label(),
            ms,
            r.durable_entries,
            r.entries,
            r.durable_data_blocks,
            r.data_blocks
        ));
    }
    text.push_str(
        "
  ext2 buys its Figure 12 order of magnitude by risking every
",
    );
    text.push_str(
        "  metadata update since the last sync; the FFS family commits each
",
    );
    text.push_str(
        "  create before returning — 'intended to help preserve file system
",
    );
    text.push_str(
        "  consistency in the event of such failures' (Section 7.2).
",
    );
    ExperimentOutput {
        id: "x5",
        title: "ABLATION x5. Crash consistency",
        text,
        csv: vec![],
        record: Some(ExperimentRecord::new("x5", "ABLATION x5. Crash consistency", 1)),
    }
}

fn x6_event_counters(scale: &Scale) -> ExperimentOutput {
    use tnt_fs::SimFs;

    // Section 13: "architectural support for counting operating system
    // events can reveal more about the workings of an operating system
    // than using timers alone. We plan to apply some of those
    // techniques." The simulation makes every counter visible; here is
    // crtdel, white-boxed.
    let iters = scale.crtdel_iters as u64;
    let mut text = String::new();
    text.push_str(
        "PROJECTION x6. Event counters (Section 13 / [Chen 95]) for crtdel
",
    );
    text.push_str(&format!(
        "  Workload: {iters} crtdel iterations on 1 KB files.

"
    ));
    text.push_str(
        "  OS            syscalls/iter  disk reads/iter  disk writes/iter  dispatches
",
    );
    for os in Os::benchmarked() {
        let (sim, kernel) = tnt_os::boot(os, 1);
        let fs = SimFs::fresh_for_os(os);
        kernel.mount(fs.clone());
        let k2 = kernel.clone();
        kernel.spawn_user("crtdel", move |p| {
            for _ in 0..iters {
                tnt_core::crtdel_once(&p, 1024);
            }
            let _ = k2;
        });
        sim.run().expect("counter run");
        let ks = kernel.stats();
        let (dreads, dwrites, _) = fs.cache().disk_stats();
        text.push_str(&format!(
            "  {:<12} {:>13.1} {:>16.1} {:>17.1} {:>11}
",
            os.label(),
            ks.syscalls as f64 / iters as f64,
            dreads as f64 / iters as f64,
            dwrites as f64 / iters as f64,
            sim.dispatch_count(),
        ));
    }
    text.push_str(
        "
  The timer-only study could infer Linux 'clearly is not accessing
",
    );
    text.push_str(
        "  the disk'; the counters prove it: zero disk writes per iteration
",
    );
    text.push_str(
        "  on ext2, exactly four synchronous writes on FreeBSD's FFS and two
",
    );
    text.push_str(
        "  on Solaris UFS — the whole Figure 12 story in integers.
",
    );
    ExperimentOutput {
        id: "x6",
        title: "PROJECTION x6. Event counters",
        text,
        csv: vec![],
        record: Some(ExperimentRecord::new("x6", "PROJECTION x6. Event counters", 1)),
    }
}

fn x7_latencies(scale: &Scale) -> ExperimentOutput {
    use tnt_core::{lat_pipe_us, lat_rpc_us, lat_tcp_us, lat_udp_us};

    // lmbench-style latency companions to the paper's bandwidth tables:
    // one-byte round trips over each path, plus a null RPC to each NFS
    // server across the Ethernet.
    let rt = (scale.ctx_switches / 10).max(50) as u32;
    let mut text = String::new();
    text.push_str(
        "COMPANION x7. Round-trip latencies (lmbench-style), microseconds
",
    );
    text.push_str(
        "  OS            lat_pipe    lat_udp    lat_tcp   null RPC->Linux  ->SunOS
",
    );
    for os in Os::benchmarked() {
        let pipe = lat_pipe_us(os, rt, 1);
        let udp = lat_udp_us(os, rt, 1);
        let tcp = lat_tcp_us(os, rt, 1);
        let rpc_l = lat_rpc_us(os, Os::Linux, rt.min(100), 1);
        let rpc_s = lat_rpc_us(os, Os::SunOs, rt.min(100), 1);
        text.push_str(&format!(
            "  {:<12} {:>9.0} {:>10.0} {:>10.0} {:>16.0} {:>8.0}
",
            os.label(),
            pipe,
            udp,
            tcp,
            rpc_l,
            rpc_s
        ));
    }
    text.push_str(
        "
  Latency reorders the bandwidth laggards: Solaris's dispatcher
",
    );
    text.push_str(
        "  dominates one-byte round trips even where its bulk bandwidth
",
    );
    text.push_str(
        "  beats Linux; FreeBSD leads both games, which is why it carries
",
    );
    text.push_str(
        "  NFS (Tables 6-7) so well.
",
    );
    ExperimentOutput {
        id: "x7",
        title: "COMPANION x7. Latencies",
        text,
        csv: vec![],
        record: Some(ExperimentRecord::new("x7", "COMPANION x7. Latencies", 1)),
    }
}

fn x8_nfs_degradation(_scale: &Scale) -> ExperimentOutput {
    use tnt_sim::fault::FaultProfile;

    // Tables 6-7's hardest cell (FreeBSD client, SunOS server) rerun
    // under rising deterministic RPC loss: each rate drops frames on
    // the wire and RPC requests/replies at the server with the same
    // probability. Every dropped call costs the client at least one
    // 700 ms retransmission timeout, so MAB time must rise
    // monotonically with the rate — the degradation curve the fault
    // plane exists to measure. One fixed seed per point: the curve is
    // a property of the loss rate, not of seed averaging.
    let rates = [0.0_f64, 0.01, 0.05];
    let mut s = Series::new("FreeBSD client, SunOS server");
    for &rate in &rates {
        let profile = FaultProfile {
            net_drop: rate,
            rpc_request_drop: rate,
            rpc_reply_drop: rate,
            ..FaultProfile::off()
        };
        let report = mab_over_nfs_faulty(Os::FreeBsd, Os::SunOs, 0, profile);
        s.push(rate * 100.0, report.total_s);
    }
    let fig = Figure {
        title: "ABLATION x8. MAB over NFS under deterministic RPC loss".into(),
        x_label: "drop rate (%)".into(),
        y_label: "MAB total (s)".into(),
        x_scale: XScale::Linear,
        series: vec![s],
    };
    let text = format!(
        "{}  Each dropped request or reply stalls the client for a full RPC\n\
         \x20 timeout (700 ms, doubling per retry), so even 1% loss is visible\n\
         \x20 and 5% dominates the run. The server's duplicate-request cache\n\
         \x20 absorbs the retransmissions: non-idempotent operations still\n\
         \x20 execute exactly once, the run only gets slower, never wrong.\n",
        fig.render()
    );
    let record = ExperimentRecord::new("x8", "ABLATION x8. NFS degradation under loss", 1)
        .with_stats(fig.stat_lines());
    ExperimentOutput {
        id: "x8",
        title: "ABLATION x8. NFS degradation under loss",
        text,
        csv: vec![("x8_nfs_degradation.csv".into(), fig.to_csv())],
        record: Some(record),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_render_at_smoke_scale() {
        let scale = Scale::smoke();
        for id in extra_ids() {
            let out = run_extra(id, &scale);
            assert!(!out.text.is_empty(), "{id} rendered empty");
        }
    }

    #[test]
    fn x2_policy_swap_inverts_the_gap() {
        let scale = Scale::smoke();
        let out = run_extra("x2", &scale);
        assert!(out.text.contains("forced sync"));
        assert!(out.text.contains("forced async"));
    }

    #[test]
    fn x5_shows_the_tradeoff() {
        let out = run_extra("x5", &Scale::smoke());
        assert!(
            out.text.contains("25"),
            "entry counts present:
{}",
            out.text
        );
        assert!(out.text.contains("Linux") && out.text.contains("FreeBSD"));
    }

    #[test]
    fn x6_counts_the_figure_12_mechanism() {
        let out = run_extra("x6", &Scale::smoke());
        assert!(out.text.contains("syscalls/iter"));
        // FreeBSD: exactly 4 sync disk writes per iteration.
        let freebsd_line = out
            .text
            .lines()
            .find(|l| l.trim_start().starts_with("FreeBSD"))
            .expect("FreeBSD row");
        assert!(
            freebsd_line.contains("4.0"),
            "4 sync writes/iter: {freebsd_line}"
        );
        let linux_line = out
            .text
            .lines()
            .find(|l| l.trim_start().starts_with("Linux"))
            .expect("Linux row");
        assert!(
            linux_line.contains("0.0"),
            "no disk writes on ext2: {linux_line}"
        );
    }

    #[test]
    fn x7_reports_all_paths() {
        let out = run_extra("x7", &Scale::smoke());
        for col in ["lat_pipe", "lat_udp", "lat_tcp", "null RPC"] {
            assert!(out.text.contains(col), "{col} missing:\n{}", out.text);
        }
    }

    #[test]
    fn x8_degradation_is_monotone_in_the_drop_rate() {
        let out = run_extra("x8", &Scale::smoke());
        let csv = &out.csv[0].1;
        let times: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(times.len(), 3, "three drop rates:\n{csv}");
        assert!(
            times.windows(2).all(|w| w[1] >= w[0]),
            "MAB time must not improve as loss rises: {times:?}"
        );
        // 5% loss must actually hurt: each drop costs >= one 700 ms
        // retransmission timeout, so the curve is visibly degraded,
        // not flat within noise.
        assert!(
            times[2] > times[0] * 1.05,
            "5% loss barely moved the needle: {times:?}"
        );
    }

    #[test]
    fn x4_mentions_both_release_lines() {
        let out = run_extra("x4", &Scale::smoke());
        assert!(out.text.contains("Linux 1.3.40"));
        assert!(out.text.contains("FreeBSD 2.1"));
        assert!(out.text.contains("Solaris 2.5"));
    }
}
