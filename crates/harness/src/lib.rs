#![warn(missing_docs)]

//! The experiment harness: regenerates every table and figure of the
//! paper from the simulation models.
//!
//! Each experiment is identified by its paper label (`"t2"` for Table 2,
//! `"f9"` for Figure 9, ...). [`run_many`] executes a set of them at a
//! chosen [`Scale`] — `Scale::full()` is the paper's methodology (twenty
//! runs of everything), `Scale::quick()` a fast variant with the same
//! shapes — and returns rendered tables/ASCII figures plus CSV series.
//!
//! Execution is a plan → execute → render pipeline: [`plan`] shards
//! the experiment matrix into independent `Send` jobs, [`execute`]
//! runs them — serially, or across host cores via the `tnt-runner`
//! work-stealing pool (`--jobs N`) — and rendering happens on the main
//! thread in canonical order, so parallel output is byte-identical to
//! the serial path. Every experiment also emits a structured
//! [`tnt_runner::ExperimentRecord`] for the golden-baseline store
//! (`reproduce bless` / `reproduce check`).
//!
//! The `reproduce` binary drives this end to end:
//!
//! ```text
//! cargo run --release -p tnt-harness --bin reproduce -- --quick --jobs 8 all
//! ```

mod ablations;
mod audit;
pub mod cli;
mod engine_bench;
mod experiments;
mod explore;
mod farm;
mod plan;
mod plot;
mod profile;
mod replay;
mod scale;
mod table;

pub use ablations::{extra_ids, run_extra};
pub use audit::{conservation_audit, AuditFinding, AuditReport};
pub use engine_bench::{
    lite_ring, threaded_ring, threaded_ring_hb, RingResult, RING_CHARGE, RING_SLEEP,
};
pub use explore::{
    explore_ids, explore_json, render_explore, run_explore, ExploreOutcome, ExploreScenario,
};
pub use farm::{farm_sweep, FarmSweep};
pub use experiments::{all_ids, bonnie_figures, run_many, run_one, ExperimentOutput};
pub use plan::{execute, plan, Cell, ExperimentPlan, ExperimentResult, PlanBody};
pub use plot::{Figure, XScale};
pub use profile::{
    profile_experiment, profile_ids, profile_one, ProfileOutput, ProfiledSample,
    PROFILE_RING_CAPACITY,
};
pub use replay::{
    capture_experiment, desktop_boot_trace, replay_fixture_ids, replay_trace, ReplayMode,
    ReplayOptions, ReplayReport,
};
pub use scale::Scale;
pub use table::{Direction, Row, Table};
