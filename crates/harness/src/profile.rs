//! Profiled experiment runs (`reproduce --profile`).
//!
//! A profile re-runs **one representative sample** of each leg of an
//! experiment inside a `tnt-trace` session and renders the aggregated
//! cycle breakdown: which subsystem the simulated Pentium spent its time
//! in, per OS personality. This is the reproduction's answer to the
//! paper's "why" questions — Table 5's profile shows Linux's TCP loss is
//! delayed-ACK window stall, Figure 1's shows the O(n) run-queue scan,
//! Figure 12's shows FreeBSD's synchronous metadata writes.

use tnt_core::{
    bonnie, crtdel_ms, ctx_us, mab_local, mab_over_nfs, mab_over_nfs_faulty, mem_bandwidth,
    packet_sizes, pipe_bandwidth_mbit, syscall_us, tcp_bandwidth_mbit, udp_bandwidth_mbit,
    CtxPattern, LibcVariant, MemRoutine, Os,
};
use tnt_sim::fault::FaultProfile;
use tnt_sim::trace::{session, SessionReport};

use crate::scale::Scale;

/// Seed for profiled samples. A profile is one representative run (the
/// first measurement seed), not a sweep: attribution shares are stable
/// across seeds because the jitter scales every cost class together.
const PROFILE_SEED: u64 = 1;

/// Event-ring capacity for profiled runs. Attribution is online, so a
/// ring overflow only truncates the raw event dump; drops are counted
/// and called out in the rendered block, never silent.
pub const PROFILE_RING_CAPACITY: usize = 1 << 20;

/// One profiled sample: its label and aggregated session report.
#[derive(Clone, Debug)]
pub struct ProfiledSample {
    /// Human label ("Linux", "Linux n=96", "FreeBSD client", ...).
    pub label: String,
    /// The trace session aggregated over every sim the sample booted.
    pub report: SessionReport,
}

/// The rendered profile of one experiment: a text block to print under
/// the experiment's table/figure plus folded-stack files to write.
#[derive(Clone, Debug)]
pub struct ProfileOutput {
    /// Experiment id the profile belongs to.
    pub id: String,
    /// Rendered breakdown tables, one per sample.
    pub text: String,
    /// Folded-stack exports: (file name, contents), flame-graph ready.
    pub files: Vec<(String, String)>,
}

/// Experiment ids [`profile_experiment`] understands (t1 is static
/// configuration — there is nothing to trace).
pub fn profile_ids() -> Vec<&'static str> {
    vec![
        "t2", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11", "f12", "t3",
        "t4", "f13", "t5", "t6", "t7", "x8",
    ]
}

fn sample(label: &str, f: impl FnOnce()) -> ProfiledSample {
    let ((), report) = session::run(PROFILE_RING_CAPACITY, f);
    ProfiledSample {
        label: label.to_string(),
        report,
    }
}

fn mem_profile_curves(id: &str) -> Option<Vec<(&'static str, MemRoutine)>> {
    let libc = |make: fn(LibcVariant) -> MemRoutine| {
        vec![
            ("Linux libc", make(LibcVariant::Linux)),
            ("FreeBSD libc", make(LibcVariant::FreeBsd)),
            ("Solaris libc", make(LibcVariant::Solaris)),
        ]
    };
    Some(match id {
        "f2" => vec![("custom read", MemRoutine::CustomRead)],
        "f3" => libc(MemRoutine::LibcMemset),
        "f4" => vec![("naive write", MemRoutine::CustomWriteNaive)],
        "f5" => vec![("prefetch write", MemRoutine::CustomWritePrefetch)],
        "f6" => libc(MemRoutine::LibcMemcpy),
        "f7" => vec![("naive copy", MemRoutine::CustomCopyNaive)],
        "f8" => vec![("prefetch copy", MemRoutine::CustomCopyPrefetch)],
        _ => return None,
    })
}

/// Runs one representative sample of each leg of experiment `id` under a
/// trace session. Returns `None` for ids with nothing to profile.
pub fn profile_experiment(id: &str, scale: &Scale) -> Option<Vec<ProfiledSample>> {
    let mut out = Vec::new();
    match id {
        "t2" => {
            for os in Os::benchmarked() {
                out.push(sample(os.label(), || {
                    syscall_us(os, scale.syscall_iters, PROFILE_SEED);
                }));
            }
        }
        "f1" => {
            // Profile both ends of the sweep: the scheduler-scan share
            // growing with nprocs IS the figure's story.
            let lo = *scale.ctx_procs.first()?;
            let hi = *scale.ctx_procs.last()?;
            for os in Os::benchmarked() {
                for n in [lo, hi] {
                    out.push(sample(&format!("{} n={n}", os.label()), || {
                        ctx_us(os, n, scale.ctx_switches, CtxPattern::Ring, PROFILE_SEED);
                    }));
                }
            }
        }
        "f2" | "f3" | "f4" | "f5" | "f6" | "f7" | "f8" => {
            // The memory benchmarks run outside simulated time; their
            // profile is the counter bank (miss totals, stall cycles).
            let buf = 64 * 1024;
            for (label, routine) in mem_profile_curves(id)? {
                out.push(sample(label, || {
                    mem_bandwidth(routine, buf, scale.mem_total, PROFILE_SEED);
                }));
            }
        }
        "f9" | "f10" | "f11" => {
            let mb = *scale.bonnie_sizes_mb.first()?;
            for os in Os::benchmarked() {
                out.push(sample(os.label(), || {
                    bonnie(os, mb, scale.bonnie_seeks, PROFILE_SEED);
                }));
            }
        }
        "f12" => {
            let size = *scale.crtdel_sizes.first()?;
            for os in Os::benchmarked() {
                out.push(sample(os.label(), || {
                    crtdel_ms(os, size, scale.crtdel_iters, PROFILE_SEED);
                }));
            }
        }
        "t3" => {
            for os in Os::benchmarked() {
                out.push(sample(os.label(), || {
                    mab_local(os, PROFILE_SEED);
                }));
            }
        }
        "t4" => {
            for os in Os::benchmarked() {
                out.push(sample(os.label(), || {
                    pipe_bandwidth_mbit(
                        os,
                        scale.pipe_total,
                        tnt_core::BW_PIPE_CHUNK,
                        PROFILE_SEED,
                    );
                }));
            }
        }
        "f13" => {
            let packet = *packet_sizes().last()?;
            for os in Os::benchmarked() {
                out.push(sample(os.label(), || {
                    udp_bandwidth_mbit(os, packet, scale.udp_total, PROFILE_SEED);
                }));
            }
        }
        "t5" => {
            for os in Os::benchmarked() {
                out.push(sample(os.label(), || {
                    tcp_bandwidth_mbit(os, scale.tcp_total, tnt_core::BW_TCP_CHUNK, PROFILE_SEED);
                }));
            }
        }
        "t6" | "t7" => {
            let server = if id == "t6" { Os::Linux } else { Os::SunOs };
            for client in Os::benchmarked() {
                out.push(sample(&format!("{} client", client.label()), || {
                    mab_over_nfs(client, server, PROFILE_SEED);
                }));
            }
        }
        "x8" => {
            // The degraded-but-working regime: the x8 curve's hardest
            // point (5% loss), where RpcRetransmits and the frame-drop
            // counters show up next to the normal RPC traffic.
            let lossy = FaultProfile {
                net_drop: 0.05,
                rpc_request_drop: 0.05,
                rpc_reply_drop: 0.05,
                ..FaultProfile::off()
            };
            out.push(sample("FreeBSD client, 5% RPC loss", move || {
                mab_over_nfs_faulty(Os::FreeBsd, Os::SunOs, PROFILE_SEED, lossy);
            }));
            // Retry exhaustion: every reply is dropped, so the client's
            // first (lazy) root LOOKUP burns all its retries — backoff
            // doubling from 700 ms toward the 60 s cap — and fails with
            // ETIMEDOUT. RpcMajorTimeouts must be visible here: this is
            // the only place the suite exercises a *failed* RPC.
            out.push(sample("retry exhaustion, 100% reply loss", || {
                let dead = FaultProfile {
                    rpc_reply_drop: 1.0,
                    ..FaultProfile::off()
                };
                let (sim, kernels) =
                    tnt_os::boot_cluster_with_faults(&[Os::FreeBsd, Os::SunOs], PROFILE_SEED, dead);
                let client_k = kernels[0].clone();
                let server_k = kernels[1].clone();
                let net = tnt_net::Net::ethernet_10mbit();
                let client_host = net.register_host(&client_k);
                let server_host = net.register_host(&server_k);
                let server_fs = tnt_fs::SimFs::fresh_for_os(Os::SunOs);
                server_k.mount(server_fs.clone());
                let server = tnt_nfs::serve(
                    &net,
                    &server_k,
                    server_host,
                    server_fs,
                    tnt_nfs::NfsServerConfig::for_os(Os::SunOs),
                )
                .expect("nfsd start");
                let mount =
                    tnt_nfs::NfsClient::mount(&net, &client_k, client_host, server.addr())
                        .expect("mount");
                client_k.mount(mount);
                client_k.spawn_user("stat-timeout", |p| {
                    // The stat drives the mount's first RPC; with every
                    // reply lost it must come back ETIMEDOUT.
                    let _ = p.stat("/");
                    p.sim().stop();
                });
                sim.run().expect("timeout sim failed");
            }));
        }
        _ => return None,
    }
    Some(out)
}

fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Profiles experiment `id` and renders the result: breakdown tables for
/// printing plus `.folded` flame-graph exports.
pub fn profile_one(id: &str, scale: &Scale) -> Option<ProfileOutput> {
    let samples = profile_experiment(id, scale)?;
    let mut text = String::new();
    let mut files = Vec::new();
    for s in &samples {
        text.push_str(&s.report.render(&s.label));
        let folded = s.report.folded_text();
        if !folded.is_empty() {
            files.push((format!("{id}_{}.folded", slug(&s.label)), folded));
        }
    }
    Some(ProfileOutput {
        id: id.to_string(),
        text,
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnt_sim::trace::{Class, Counter};

    #[test]
    fn t2_profile_attributes_trap_time() {
        let samples = profile_experiment("t2", &Scale::smoke()).unwrap();
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert!(s.report.sims > 0, "{}: no sims published", s.label);
            assert!(
                s.report.class_total(Class::TrapEntry) > 0,
                "{}: getpid must spend cycles in trap entry",
                s.label
            );
            assert!(s.report.counter(Counter::Syscalls) > 0);
            assert!(
                s.report.coverage() > 0.9,
                "{}: coverage {:.3}",
                s.label,
                s.report.coverage()
            );
        }
    }

    #[test]
    fn mem_profile_is_counters_only() {
        let samples = profile_experiment("f2", &Scale::smoke()).unwrap();
        let r = &samples[0].report;
        assert_eq!(r.sims, 0, "bandwidth loops boot no sim");
        assert!(r.counter(Counter::L1Misses) > 0);
        assert!(r.counter(Counter::MemStallCycles) > 0);
    }

    #[test]
    fn profile_one_renders_and_exports() {
        let out = profile_one("t4", &Scale::smoke()).unwrap();
        assert!(out.text.contains("profile: Linux"), "{}", out.text);
        assert!(out.text.contains("data copy"), "{}", out.text);
        assert!(!out.files.is_empty());
        assert!(out.files.iter().all(|(name, _)| name.ends_with(".folded")));
    }

    #[test]
    fn x8_profile_surfaces_the_fault_counters() {
        let samples = profile_experiment("x8", &Scale::smoke()).unwrap();
        assert_eq!(samples.len(), 2);
        let lossy = &samples[0].report;
        assert!(
            lossy.counter(Counter::RpcRetransmits) > 0,
            "5% loss must force retransmissions"
        );
        let dead = &samples[1].report;
        assert!(
            dead.counter(Counter::RpcMajorTimeouts) > 0,
            "total reply loss must exhaust the retries"
        );
        // The rendered block only prints non-zero counters, so the
        // major-timeout line must survive into --profile output.
        let text = dead.render("retry exhaustion, 100% reply loss");
        assert!(
            text.contains("rpc major timeouts") || text.contains("RpcMajorTimeouts"),
            "major timeouts missing from render:\n{text}"
        );
    }

    #[test]
    fn unknown_or_static_ids_yield_no_profile() {
        assert!(profile_one("t1", &Scale::smoke()).is_none());
        assert!(profile_one("zzz", &Scale::smoke()).is_none());
    }

    #[test]
    fn profile_ids_all_resolve() {
        // Every advertised id must produce samples (cheap check on the
        // dispatch only: smoke scale keeps this a few seconds).
        for id in ["t2", "f2", "f12"] {
            assert!(profile_ids().contains(&id));
            assert!(profile_experiment(id, &Scale::smoke()).is_some());
        }
    }
}
