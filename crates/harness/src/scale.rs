//! Experiment scale: the paper's full methodology, or a quick variant
//! for CI and iteration.

/// How big to run each experiment.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Name of this scale ("full", "quick", "smoke") — recorded in
    /// `baselines.json` so `reproduce check` refuses to compare runs
    /// made at different scales.
    pub label: &'static str,
    /// Repetitions per measurement (the paper uses twenty).
    pub runs: u64,
    /// `getpid` iterations per run (paper: 100 000).
    pub syscall_iters: u32,
    /// Context switches per `ctx` run (paper: 50 000).
    pub ctx_switches: u64,
    /// Process counts for Figure 1.
    pub ctx_procs: Vec<usize>,
    /// Bytes of traffic per memory measurement (paper: 8 MB).
    pub mem_total: u64,
    /// Buffer sizes for Figures 2-8.
    pub mem_sizes: Vec<u64>,
    /// Bonnie file sizes in MB (paper: 2-100 MB).
    pub bonnie_sizes_mb: Vec<u64>,
    /// Random operations in bonnie's seek phase.
    pub bonnie_seeks: u32,
    /// crtdel file sizes (paper: 1 KB - 1 MB).
    pub crtdel_sizes: Vec<u64>,
    /// crtdel iterations per run.
    pub crtdel_iters: u32,
    /// bw_pipe bytes (paper: 50 MB).
    pub pipe_total: u64,
    /// ttcp bytes per run (paper: 4 MB).
    pub udp_total: u64,
    /// bw_tcp bytes (paper: 3 MB).
    pub tcp_total: u64,
    /// MAB repetitions (each is a whole benchmark run).
    pub mab_runs: u64,
    /// Offered TCP request rates (req/s) for the farm sweep — must
    /// straddle every OS's knee so the tails diverge.
    pub farm_rates: Vec<f64>,
    /// Offered NFS write-RPC rates for the farm sweep.
    pub farm_nfs_rates: Vec<f64>,
    /// Requests per farm point.
    pub farm_requests: usize,
    /// Client crowd size for the x10 crowd-service experiment.
    pub farm_crowd: usize,
    /// Frames captured by the x11 video record-and-replay experiment.
    pub replay_video_frames: u32,
    /// Compilation units captured by the x12 compile-burst replay.
    pub replay_compile_files: u32,
}

impl Scale {
    /// The paper's methodology (twenty runs of everything). Slow.
    ///
    /// One concession: `ctx` uses 20 000 switches per run instead of the
    /// paper's 50 000 — the per-switch mean is identical (the simulation
    /// is deterministic) and it keeps the full sweep under five minutes.
    pub fn full() -> Scale {
        Scale {
            label: "full",
            runs: 20,
            syscall_iters: 100_000,
            ctx_switches: 20_000,
            ctx_procs: vec![2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 48, 64, 80, 96],
            mem_total: 8 * 1024 * 1024,
            mem_sizes: tnt_core::standard_buffer_sizes(),
            bonnie_sizes_mb: vec![2, 4, 8, 12, 16, 20, 24, 32, 48, 64, 100],
            bonnie_seeks: 200,
            crtdel_sizes: vec![1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20],
            crtdel_iters: 20,
            pipe_total: 50 * 1024 * 1024,
            udp_total: 4 * 1024 * 1024,
            tcp_total: 3 * 1024 * 1024,
            mab_runs: 5,
            farm_rates: vec![200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0],
            farm_nfs_rates: vec![60.0, 110.0, 160.0, 210.0],
            farm_requests: 800,
            farm_crowd: 4_000,
            replay_video_frames: 90,
            replay_compile_files: 40,
        }
    }

    /// A fast variant with the same shapes (fewer runs, less traffic).
    pub fn quick() -> Scale {
        Scale {
            label: "quick",
            runs: 5,
            syscall_iters: 10_000,
            ctx_switches: 2_500,
            ctx_procs: vec![2, 4, 8, 16, 24, 32, 40, 48, 64, 96],
            mem_total: 2 * 1024 * 1024,
            mem_sizes: tnt_core::standard_buffer_sizes(),
            bonnie_sizes_mb: vec![2, 4, 8, 16, 20, 32, 64, 100],
            bonnie_seeks: 60,
            crtdel_sizes: vec![1 << 10, 16 << 10, 256 << 10, 1 << 20],
            crtdel_iters: 8,
            pipe_total: 8 * 1024 * 1024,
            udp_total: 1 << 20,
            tcp_total: 1 << 20,
            mab_runs: 2,
            farm_rates: vec![300.0, 600.0, 900.0, 1200.0],
            farm_nfs_rates: vec![80.0, 160.0],
            farm_requests: 300,
            farm_crowd: 1_500,
            replay_video_frames: 30,
            replay_compile_files: 16,
        }
    }

    /// A tiny smoke-test variant for unit tests.
    pub fn smoke() -> Scale {
        Scale {
            label: "smoke",
            runs: 2,
            syscall_iters: 1_000,
            ctx_switches: 400,
            ctx_procs: vec![2, 8, 40],
            mem_total: 256 * 1024,
            mem_sizes: vec![1024, 4096, 65536, 1 << 20],
            bonnie_sizes_mb: vec![2, 32],
            bonnie_seeks: 20,
            crtdel_sizes: vec![1 << 10],
            crtdel_iters: 3,
            pipe_total: 1 << 20,
            udp_total: 256 * 1024,
            tcp_total: 256 * 1024,
            mab_runs: 1,
            farm_rates: vec![250.0, 900.0],
            farm_nfs_rates: vec![120.0],
            farm_requests: 120,
            farm_crowd: 400,
            replay_video_frames: 6,
            replay_compile_files: 4,
        }
    }

    /// Seeds used for the runs (1-based so seed 0 stays for debugging).
    pub fn seeds(&self) -> Vec<u64> {
        (1..=self.runs).collect()
    }

    /// Seeds for MAB-sized experiments.
    pub fn mab_seeds(&self) -> Vec<u64> {
        (1..=self.mab_runs).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_methodology() {
        let s = Scale::full();
        assert_eq!(s.runs, 20);
        assert_eq!(s.syscall_iters, 100_000);
        assert_eq!(s.pipe_total, 50 * 1024 * 1024);
        assert_eq!(s.tcp_total, 3 * 1024 * 1024);
        assert_eq!(s.udp_total, 4 * 1024 * 1024);
        assert!(s.bonnie_sizes_mb.contains(&2) && s.bonnie_sizes_mb.contains(&100));
    }

    #[test]
    fn seeds_are_distinct_and_nonzero() {
        let s = Scale::quick();
        let seeds = s.seeds();
        assert_eq!(seeds.len(), 5);
        assert!(seeds.iter().all(|&x| x > 0));
    }
}
