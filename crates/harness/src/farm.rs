//! Harness wiring for the tnt-farm internet-server subsystem:
//!
//! - `x9`: the quick-grid farm ablation — per-OS TCP capacity/tail
//!   points over the scale's rate grid, blessed into `baselines.json`;
//! - `x10`: the crowd-service experiment — `examples/internet_server.rs`'s
//!   crowd mode promoted to a first-class experiment backed by tnt-farm;
//! - [`farm_sweep`]: the full `reproduce farm` rate sweep — TCP and NFS
//!   grids over every OS on the tnt-runner pool, rendered as capacity
//!   and latency curves plus `BENCH_farm.json` / CSV artifacts. The
//!   sweep composes with `--faults lossy` (the ambient profile reaches
//!   every `boot_cluster` inside `run_farm`) for degraded-mode curves.

use crate::experiments::ExperimentOutput;
use crate::plan::{Cell, ExperimentPlan, PlanBody};
use crate::scale::Scale;
use tnt_farm::{run_farm, FarmConfig, FarmReport, Workload};
use tnt_os::Os;
use tnt_runner::json::Value;
use tnt_runner::{run_ordered, ExperimentRecord, Job, StatLine};

/// Fixed farm seed: one seed per point — the curves are properties of
/// the rate, not of seed averaging (sim runs are deterministic).
const FARM_SEED: u64 = 1996;

/// Flattened per-point metric vector (the shard payload): quantiles in
/// microseconds, then throughput and loss accounting.
const METRICS: [&str; 9] = [
    "p50_us",
    "p95_us",
    "p99_us",
    "p999_us",
    "achieved_rps",
    "completed",
    "retries",
    "drops",
    "failed",
];

fn metrics_of(r: &FarmReport) -> Vec<f64> {
    // 100 cycles per microsecond at the simulated 100 MHz.
    vec![
        r.hist.p50() as f64 / 100.0,
        r.hist.p95() as f64 / 100.0,
        r.hist.p99() as f64 / 100.0,
        r.hist.p999() as f64 / 100.0,
        r.achieved_rps,
        r.completed as f64,
        r.retries as f64,
        (r.backlog_drops + r.queue_drops + r.fault_drops) as f64,
        r.failed as f64,
    ]
}

fn point_config(workload: Workload, os: Os, rate: f64, requests: usize) -> FarmConfig {
    match workload {
        Workload::Tcp => FarmConfig::tcp(os, rate, requests, FARM_SEED),
        Workload::Nfs => FarmConfig::nfs(os, rate, requests, FARM_SEED),
    }
}

fn ms(us: f64) -> f64 {
    us / 1_000.0
}

fn curve_header() -> String {
    format!(
        "  {:<12} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6} {:>5}\n",
        "OS", "rate", "p50 ms", "p95 ms", "p99 ms", "p999 ms", "ach rps", "retry", "drop", "fail"
    )
}

fn curve_row(os: Os, rate: f64, m: &[f64]) -> String {
    format!(
        "  {:<12} {:>6.0} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.1} {:>6.0} {:>6.0} {:>5.0}\n",
        os.label(),
        rate,
        ms(m[0]),
        ms(m[1]),
        ms(m[2]),
        ms(m[3]),
        m[4],
        m[6],
        m[7],
        m[8]
    )
}

fn curve_csv(points: &[(Os, f64, Vec<f64>)]) -> String {
    let mut csv = String::from("os,rate_rps,");
    csv.push_str(&METRICS.join(","));
    csv.push('\n');
    for (os, rate, m) in points {
        csv.push_str(&format!("{},{rate}", os.label()));
        for v in m {
            csv.push_str(&format!(",{v}"));
        }
        csv.push('\n');
    }
    csv
}

/// Per-OS saturation throughput: the best achieved rate anywhere on the
/// grid (the farm's capacity estimate for that OS).
fn saturation(points: &[(Os, f64, Vec<f64>)], os: Os) -> f64 {
    points
        .iter()
        .filter(|(o, _, _)| *o == os)
        .map(|(_, _, m)| m[4])
        .fold(0.0, f64::max)
}

// ---------------------------------------------------------------------
// x9: the quick-grid TCP farm ablation (runs inside the normal suite).
// ---------------------------------------------------------------------

/// Plans the x9 farm grid: one cell per OS × offered rate.
pub(crate) fn plan_x9(scale: &Scale) -> ExperimentPlan {
    let oses = Os::benchmarked();
    let rates = scale.farm_rates.clone();
    let requests = scale.farm_requests;
    let mut cells = Vec::new();
    for &os in &oses {
        for &rate in &rates {
            cells.push(Cell {
                label: format!("x9/{}/{}rps", os.label(), rate),
                cost: 15_000,
                work: Box::new(move || {
                    metrics_of(&run_farm(&point_config(Workload::Tcp, os, rate, requests)))
                }),
            });
        }
    }
    let render_oses = oses;
    ExperimentPlan {
        id: "x9",
        title: "ABLATION x9. Farm capacity and tails (TCP)",
        body: PlanBody::Cells {
            cells,
            render: Box::new(move |samples| {
                let mut points = Vec::new();
                let mut it = samples.into_iter();
                for &os in &render_oses {
                    for &rate in &rates {
                        points.push((os, rate, it.next().expect("one sample per cell")));
                    }
                }
                vec![render_x9(&render_oses, &points)]
            }),
        },
    }
}

fn render_x9(oses: &[Os], points: &[(Os, f64, Vec<f64>)]) -> ExperimentOutput {
    let mut text = String::from(
        "ABLATION x9. Farm capacity and tails: open-loop TCP request/reply\n\
         \x20 8 client hosts -> 1 server through a 100 Mb/s switch; Poisson\n\
         \x20 arrivals, 512 B requests, 4 KB replies; sojourn measured from\n\
         \x20 the scheduled arrival instant (coordinated omission excluded).\n\n",
    );
    text.push_str(&curve_header());
    let mut stats = Vec::new();
    for &os in oses {
        for (o, rate, m) in points.iter().filter(|(o, _, _)| *o == os) {
            text.push_str(&curve_row(*o, *rate, m));
            stats.push(StatLine {
                label: format!("{}@{} p99 ms", os.label(), rate),
                mean: ms(m[2]),
                sd_pct: 0.0,
                norm: 1.0,
            });
            stats.push(StatLine {
                label: format!("{}@{} rps", os.label(), rate),
                mean: m[4],
                sd_pct: 0.0,
                norm: 1.0,
            });
        }
        text.push_str(&format!(
            "  {:<12} saturation throughput ~{:.0} req/s\n",
            os.label(),
            saturation(points, os)
        ));
    }
    text.push_str(
        "\n  Below the knee the three systems are near-identical; past it,\n\
         \x20 Linux 1.2.8's one-packet TCP window (a delayed-ack stall per\n\
         \x20 reply segment) and O(n) scheduler blow the p99 tail out an\n\
         \x20 order of magnitude before FreeBSD or Solaris even notice.\n",
    );
    let record = ExperimentRecord::new("x9", "ABLATION x9. Farm capacity and tails (TCP)", 1)
        .with_stats(stats);
    ExperimentOutput {
        id: "x9",
        title: "ABLATION x9. Farm capacity and tails (TCP)",
        text,
        csv: vec![("x9_farm_tcp.csv".into(), curve_csv(points))],
        record: Some(record),
    }
}

// ---------------------------------------------------------------------
// x10: the crowd, promoted from examples/internet_server.rs.
// ---------------------------------------------------------------------

/// Plans the x10 crowd-service experiment: the example's lite-process
/// crowd, rebuilt on the full farm (real topology, open-loop arrivals,
/// latency plane) — one cell per OS.
pub(crate) fn plan_x10(scale: &Scale) -> ExperimentPlan {
    let oses = Os::benchmarked();
    let crowd = scale.farm_crowd;
    let mut cells = Vec::new();
    for &os in &oses {
        cells.push(Cell {
            label: format!("x10/{}/crowd{}", os.label(), crowd),
            cost: 25_000,
            work: Box::new(move || {
                let cfg = FarmConfig::tcp(os, 600.0, crowd, FARM_SEED);
                let r = run_farm(&cfg);
                let mut m = metrics_of(&r);
                m.push(r.lite_polls as f64);
                m
            }),
        });
    }
    let render_oses = oses;
    ExperimentPlan {
        id: "x10",
        title: "COMPANION x10. Crowd service on the farm",
        body: PlanBody::Cells {
            cells,
            render: Box::new(move |samples| vec![render_x10(&render_oses, crowd, samples)]),
        },
    }
}

fn render_x10(oses: &[Os], crowd: usize, samples: Vec<Vec<f64>>) -> ExperimentOutput {
    let mut text = format!(
        "COMPANION x10. Crowd service: {crowd} lite clients vs 8 workers, 600 req/s offered\n\
         \x20 The internet_server example's crowd mode as a measured\n\
         \x20 experiment: every client is a cooperative state machine in one\n\
         \x20 engine slot, driving the full farm topology.\n\n",
    );
    text.push_str(&format!(
        "  {:<12} {:>9} {:>9} {:>9} {:>7} {:>6} {:>11}\n",
        "OS", "ach rps", "p50 ms", "p99 ms", "retry", "fail", "lite polls"
    ));
    let mut stats = Vec::new();
    for (&os, m) in oses.iter().zip(&samples) {
        text.push_str(&format!(
            "  {:<12} {:>9.1} {:>9.2} {:>9.2} {:>7.0} {:>6.0} {:>11.0}\n",
            os.label(),
            m[4],
            ms(m[0]),
            ms(m[2]),
            m[6],
            m[8],
            m[9]
        ));
        stats.push(StatLine {
            label: format!("{} req/s", os.label()),
            mean: m[4],
            sd_pct: 0.0,
            norm: 1.0,
        });
        stats.push(StatLine {
            label: format!("{} p99 ms", os.label()),
            mean: ms(m[2]),
            sd_pct: 0.0,
            norm: 1.0,
        });
    }
    text.push_str(
        "\n  The crowd costs the engine almost nothing (polls, not threads);\n\
         \x20 what separates the rows is the server OS: scheduler dispatch\n\
         \x20 and TCP window behaviour, same as x9's knee.\n",
    );
    let record = ExperimentRecord::new("x10", "COMPANION x10. Crowd service on the farm", 1)
        .with_stats(stats);
    ExperimentOutput {
        id: "x10",
        title: "COMPANION x10. Crowd service on the farm",
        text,
        csv: vec![],
        record: Some(record),
    }
}

// ---------------------------------------------------------------------
// The full `reproduce farm` sweep.
// ---------------------------------------------------------------------

/// Rendered output of the full farm sweep.
pub struct FarmSweep {
    /// Capacity/latency curves as text.
    pub text: String,
    /// CSV artifacts (`farm_tcp.csv`, `farm_nfs.csv`).
    pub csv: Vec<(String, String)>,
    /// The `BENCH_farm.json` document.
    pub doc: Value,
}

/// Runs the full TCP + NFS rate sweep over every OS on the tnt-runner
/// pool. Deterministic: the job list and merge order are fixed, so the
/// output is byte-identical across `jobs` values.
pub fn farm_sweep(scale: &Scale, faults_name: &str, jobs: usize) -> FarmSweep {
    let oses = Os::benchmarked();
    let grids: [(Workload, &[f64]); 2] = [
        (Workload::Tcp, &scale.farm_rates),
        (Workload::Nfs, &scale.farm_nfs_rates),
    ];
    let requests = scale.farm_requests;
    let mut keys = Vec::new();
    let mut pool_jobs: Vec<Job<Vec<f64>>> = Vec::new();
    for (workload, rates) in grids {
        for &os in &oses {
            for &rate in rates {
                keys.push((workload, os, rate));
                pool_jobs.push(Job::new(15_000, move || {
                    metrics_of(&run_farm(&point_config(workload, os, rate, requests)))
                }));
            }
        }
    }
    let outcomes = run_ordered(pool_jobs, jobs);
    let mut points: Vec<(Workload, Os, f64, Vec<f64>)> = Vec::new();
    for ((workload, os, rate), outcome) in keys.into_iter().zip(outcomes) {
        let m = match outcome.result {
            Ok(m) => m,
            Err(p) => panic!("farm point {}/{}@{rate} panicked: {}", workload.label(), os.label(), p.message),
        };
        points.push((workload, os, rate, m));
    }

    let mut text = format!(
        "tnt farm — internet-server capacity and tail latency per OS\n\
         requests/point: {requests}; faults: {faults_name}\n\n"
    );
    let mut csv = Vec::new();
    let mut workload_docs = Vec::new();
    for (workload, _) in grids {
        let wl_points: Vec<(Os, f64, Vec<f64>)> = points
            .iter()
            .filter(|(w, _, _, _)| *w == workload)
            .map(|(_, os, rate, m)| (*os, *rate, m.clone()))
            .collect();
        text.push_str(match workload {
            Workload::Tcp => {
                "== TCP request/reply (512 B -> 4 KB replies, open-loop Poisson) ==\n"
            }
            Workload::Nfs => "== NFS write RPC (8 KB writes over UDP, sync metadata) ==\n",
        });
        text.push_str(&curve_header());
        let mut row_docs = Vec::new();
        for &os in &oses {
            for (o, rate, m) in wl_points.iter().filter(|(o, _, _)| *o == os) {
                text.push_str(&curve_row(*o, *rate, m));
                let mut fields: Vec<(String, Value)> = vec![
                    ("os".into(), Value::Str(os.label().to_string())),
                    ("rate_rps".into(), Value::Num(*rate)),
                ];
                for (name, v) in METRICS.iter().zip(m) {
                    fields.push(((*name).to_string(), Value::Num(*v)));
                }
                row_docs.push(Value::Obj(fields));
            }
            text.push_str(&format!(
                "  {:<12} saturation throughput ~{:.0} req/s\n",
                os.label(),
                saturation(&wl_points, os)
            ));
        }
        text.push('\n');
        csv.push((
            format!("farm_{}.csv", workload.label()),
            curve_csv(&wl_points),
        ));
        workload_docs.push((
            workload.label().to_string(),
            Value::Obj(vec![
                (
                    "saturation_rps".into(),
                    Value::Obj(
                        oses.iter()
                            .map(|&os| {
                                (
                                    os.label().to_string(),
                                    Value::Num(saturation(&wl_points, os)),
                                )
                            })
                            .collect(),
                    ),
                ),
                ("points".into(), Value::Arr(row_docs)),
            ]),
        ));
    }
    text.push_str(
        "reading the curves: TCP capacity ranks FreeBSD ~ Solaris > Linux\n\
         (one-packet window + O(n) scheduler); NFS writes invert it — sync\n\
         FFS metadata serialises on the disk while ext2's async metadata\n\
         keeps Linux's only weakness its UDP path. Run with --faults lossy\n\
         for the degraded-mode curves (capacity shifts down monotonically).\n",
    );
    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("farm".into())),
        ("scale".into(), Value::Str(scale.label.to_string())),
        ("faults".into(), Value::Str(faults_name.to_string())),
        ("seed".into(), Value::Num(FARM_SEED as f64)),
        ("requests_per_point".into(), Value::Num(requests as f64)),
        ("workloads".into(), Value::Obj(workload_docs)),
    ]);
    FarmSweep { text, csv, doc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::execute;

    #[test]
    fn x9_renders_every_os_and_rate() {
        let scale = Scale::smoke();
        let results = execute(vec![plan_x9(&scale)], 1);
        assert!(results[0].error.is_none(), "{:?}", results[0].error);
        let out = &results[0].outputs[0];
        for os in Os::benchmarked() {
            assert!(out.text.contains(os.label()), "{} missing", os.label());
        }
        assert!(out.text.contains("saturation throughput"));
        let record = out.record.as_ref().expect("x9 must carry a record");
        assert_eq!(
            record.stats.len(),
            Os::benchmarked().len() * scale.farm_rates.len() * 2
        );
        assert!(out.csv[0].0 == "x9_farm_tcp.csv");
    }

    #[test]
    fn x9_is_byte_identical_across_jobs() {
        let scale = Scale::smoke();
        let a = execute(vec![plan_x9(&scale)], 1);
        let b = execute(vec![plan_x9(&scale)], 8);
        assert_eq!(a[0].outputs[0].text, b[0].outputs[0].text);
        assert_eq!(a[0].outputs[0].csv, b[0].outputs[0].csv);
    }

    #[test]
    fn x10_reports_the_crowd() {
        let scale = Scale::smoke();
        let results = execute(vec![plan_x10(&scale)], 2);
        assert!(results[0].error.is_none(), "{:?}", results[0].error);
        let out = &results[0].outputs[0];
        assert!(out.text.contains("lite polls"));
        let record = out.record.as_ref().expect("x10 must carry a record");
        assert_eq!(record.stats.len(), Os::benchmarked().len() * 2);
        for s in &record.stats {
            assert!(s.mean.is_finite());
        }
    }

    #[test]
    fn farm_sweep_is_byte_identical_across_jobs() {
        let scale = Scale::smoke();
        let a = farm_sweep(&scale, "off", 1);
        let b = farm_sweep(&scale, "off", 8);
        assert_eq!(a.text, b.text);
        assert_eq!(a.csv, b.csv);
        assert_eq!(a.doc.render(), b.doc.render());
    }

    #[test]
    fn farm_sweep_covers_both_workloads() {
        let scale = Scale::smoke();
        let s = farm_sweep(&scale, "off", 4);
        assert!(s.text.contains("TCP request/reply"));
        assert!(s.text.contains("NFS write RPC"));
        assert_eq!(s.csv.len(), 2);
        assert!(s.csv[0].0 == "farm_tcp.csv" && s.csv[1].0 == "farm_nfs.csv");
        let rendered = s.doc.render();
        assert!(rendered.contains("\"saturation_rps\""));
        assert!(rendered.contains("\"p999_us\""));
    }
}
