//! The cycle-conservation audit (`reproduce --audit`).
//!
//! The profiler's claim — every simulated cycle is attributed to a
//! modelled mechanism — is what lets the reproduction argue *why* the
//! paper's numbers differ across kernels, not just that they do. This
//! audit makes the claim checkable on demand: it re-runs one
//! representative sample of every profileable experiment under a trace
//! session and verifies [`SessionReport::conservation`] on each —
//! charged cycles must equal elapsed cycles exactly, and the per-class
//! breakdown must sum back to the charged total.
//!
//! [`SessionReport::conservation`]: tnt_sim::trace::SessionReport::conservation

use crate::profile::{profile_experiment, profile_ids};
use crate::scale::Scale;

/// One sample that failed conservation.
#[derive(Clone, Debug)]
pub struct AuditFinding {
    /// Experiment id ("t2", "f9", ...).
    pub id: String,
    /// Sample label within the experiment ("Linux", "FreeBSD client").
    pub label: String,
    /// The drift message from [`tnt_sim::trace::SessionReport::conservation`].
    pub error: String,
}

/// Outcome of a conservation audit over the experiment matrix.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Experiments audited.
    pub experiments: usize,
    /// Profiled samples checked.
    pub samples: usize,
    /// Samples whose attribution drifted from the simulated clock.
    pub failures: Vec<AuditFinding>,
    /// Whether the ambient happens-before race detector was armed while
    /// the audited samples ran. When true, a detected race would have
    /// failed the sample outright — so a passing audit also certifies
    /// the engine raced on nothing it touched.
    pub race_armed: bool,
}

impl AuditReport {
    /// Did every sample conserve cycles?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the audit block printed by `reproduce --audit`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "cycle-conservation audit: {} experiment(s), {} sample(s)",
            self.experiments, self.samples
        );
        if self.passed() {
            out.push_str(": every cycle attributed, breakdown sums exact\n");
        } else {
            out.push_str(&format!(": {} FAILURE(S)\n", self.failures.len()));
            for f in &self.failures {
                out.push_str(&format!("  {} [{}]: {}\n", f.id, f.label, f.error));
            }
        }
        if self.race_armed {
            out.push_str(
                "happens-before race detection: armed on every sample, no unordered access pairs\n",
            );
        }
        out
    }
}

/// Audits cycle conservation across every profileable experiment at the
/// given scale.
pub fn conservation_audit(scale: &Scale) -> AuditReport {
    let mut report = AuditReport {
        race_armed: tnt_sim::race::ambient(),
        ..AuditReport::default()
    };
    for id in profile_ids() {
        let Some(samples) = profile_experiment(id, scale) else {
            continue;
        };
        report.experiments += 1;
        for s in &samples {
            report.samples += 1;
            if let Err(error) = s.report.conservation() {
                report.failures.push(AuditFinding {
                    id: id.to_string(),
                    label: s.label.clone(),
                    error,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_conserves_cycles() {
        let report = conservation_audit(&Scale::smoke());
        assert!(report.experiments >= 10, "matrix shrank: {report:?}");
        assert!(report.samples > report.experiments);
        assert!(
            report.passed(),
            "conservation drift:\n{}",
            report.render()
        );
        assert!(report.render().contains("every cycle attributed"));
    }

    #[test]
    fn failures_render_with_context() {
        let mut r = AuditReport {
            experiments: 1,
            samples: 1,
            ..AuditReport::default()
        };
        r.failures.push(AuditFinding {
            id: "t5".into(),
            label: "Linux".into(),
            error: "attributed 9 cycles != elapsed 10".into(),
        });
        let text = r.render();
        assert!(text.contains("1 FAILURE"), "{text}");
        assert!(text.contains("t5 [Linux]"), "{text}");
    }

    #[test]
    fn race_armed_status_is_reported() {
        let r = AuditReport {
            race_armed: true,
            ..AuditReport::default()
        };
        assert!(r.render().contains("happens-before race detection: armed"));
        assert!(!AuditReport::default()
            .render()
            .contains("happens-before"));
    }
}
