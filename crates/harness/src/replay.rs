//! Trace-driven workload replay: capture a run at the fs/disk boundary,
//! then drive the recorded `.tntrace` stream back through a fresh disk
//! model (DESIGN.md §15, docs/TRACE_FORMAT.md).
//!
//! Two experiments ride on this plane:
//!
//! - `x11`: the Section 7 video+database workload captured per OS and
//!   replayed verbatim — the replay's disk busy time must equal the
//!   recorded run's exactly (the capture/replay equality guarantee);
//! - `x12`: a compile burst (create/read/compile/write/unlink per unit)
//!   captured and replayed the same way.
//!
//! The equality argument: [`ReplayMode::Asap`] replays the *global
//! recorded order* through one lite process, so a fresh disk (head at
//! block 0, exactly like the captured run's fresh disk) sees the same
//! command sequence and computes the same seek/rotation/transfer time
//! for every command. [`ReplayMode::Timed`] instead re-creates the
//! recorded concurrency — one open-loop stream per recorded pid, each
//! command issued at its recorded timestamp — which preserves the
//! recorded interleaving only while the replay disk keeps up, so busy
//! equality is guaranteed for `Asap` and merely typical for `Timed`.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use tnt_core::Os;
use tnt_fs::{Disk, DiskParams, IoKind, SimFs, DISK_RETRIES};
use tnt_os::{boot, KEnv, OpenFlags};
use tnt_runner::{ExperimentRecord, StatLine};
use tnt_sim::proc::{LiteProc, LiteScheduler, ProcCtx, Step, WaitReason};
use tnt_sim::replay::{Op, Trace, TraceEvent};
use tnt_sim::{normalize_lower_better, Cycles, CPU_HZ};

use crate::experiments::ExperimentOutput;
use crate::plan::{ExperimentPlan, PlanBody};
use crate::scale::Scale;

/// How replayed events are paced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// One lite process issues every event in the global recorded order,
    /// back to back. This is the mode with the busy-time equality
    /// guarantee: same fresh disk, same command sequence, same service
    /// times.
    Asap,
    /// One open-loop lite process per recorded pid, each blocking until
    /// an event's recorded timestamp (rebased to t=0) before issuing it
    /// — the replay analogue of the original concurrency.
    Timed,
}

/// Knobs for one replay run.
#[derive(Clone, Copy, Debug)]
pub struct ReplayOptions {
    /// Pacing mode.
    pub mode: ReplayMode,
    /// Event sampling: keep every `stride`-th event of the trace
    /// (1 = replay everything). Sampling trades fidelity for speed on
    /// very large imported traces; a sampled replay no longer carries
    /// the equality guarantee.
    pub stride: u64,
}

impl ReplayOptions {
    /// As-fast-as-possible replay of the full trace.
    pub fn asap() -> ReplayOptions {
        ReplayOptions {
            mode: ReplayMode::Asap,
            stride: 1,
        }
    }

    /// Open-loop replay of the full trace at recorded timestamps.
    pub fn timed() -> ReplayOptions {
        ReplayOptions {
            mode: ReplayMode::Timed,
            stride: 1,
        }
    }
}

/// What one replay run did — all integers, so reports are byte-stable
/// and directly comparable across runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Events replayed (after sampling).
    pub events: u64,
    /// Open/unlink events (counted, not issued to the disk).
    pub file_events: u64,
    /// Disk commands issued, including fault-plane retries.
    pub commands: u64,
    /// Disk read commands completed.
    pub reads: u64,
    /// Disk write commands completed.
    pub writes: u64,
    /// 1 KB blocks transferred.
    pub blocks_moved: u64,
    /// Cycles the replay disk spent busy (seek + rotation + transfer).
    pub busy_cy: u64,
    /// Simulated cycles the whole replay took.
    pub elapsed_cy: u64,
    /// Recorded span of the (sampled) trace: last timestamp - first.
    pub recorded_span_cy: u64,
    /// Transient disk faults hit (nonzero only under `--faults`).
    pub faults: u64,
    /// Commands abandoned with EIO after exhausting the retry budget.
    pub eio: u64,
    /// Replay streams (1 for `Asap`, one per recorded pid for `Timed`).
    pub streams: u64,
    /// Lite dispatches the replay cost.
    pub polls: u64,
}

/// Counters shared by every replay stream of one run.
#[derive(Default)]
struct Totals {
    file_events: u64,
    commands: u64,
    faults: u64,
    eio: u64,
}

/// A lite process that replays one stream of trace events against the
/// disk. Block events issue [`Disk::command`] and then block for the
/// returned service time; file events are counted and skipped (the
/// replay plane drives the disk, not the namespace). A failed command
/// is retried up to [`DISK_RETRIES`] times, then abandoned as EIO —
/// the same policy the driver applies in [`Disk::io`].
struct ReplayProc {
    events: Vec<TraceEvent>,
    idx: usize,
    /// First timestamp of the whole trace; `Timed` waits rebase to it.
    base: u64,
    timed: bool,
    disk: Arc<Disk>,
    env: KEnv,
    attempts: u32,
    totals: Arc<Mutex<Totals>>,
}

impl LiteProc<ProcCtx> for ReplayProc {
    fn poll(&mut self, _ctx: &mut ProcCtx) -> Step {
        loop {
            let Some(ev) = self.events.get(self.idx).copied() else {
                return Step::Done;
            };
            if self.timed {
                let due = ev.t - self.base;
                if self.env.sim.now().0 < due {
                    return Step::Block(WaitReason::Until(due));
                }
            }
            match ev.op {
                Op::FileOpen | Op::FileUnlink => {
                    self.totals.lock().file_events += 1;
                    self.idx += 1;
                }
                Op::BlockRead | Op::BlockWrite => {
                    let kind = if ev.op == Op::BlockWrite {
                        IoKind::Write
                    } else {
                        IoKind::Read
                    };
                    let (phases, ok) = self.disk.command(&self.env, kind, ev.arg, ev.size.max(1));
                    {
                        let mut t = self.totals.lock();
                        t.commands += 1;
                        if ok {
                            self.idx += 1;
                            self.attempts = 0;
                        } else {
                            t.faults += 1;
                            self.attempts += 1;
                            if self.attempts >= DISK_RETRIES {
                                t.eio += 1;
                                self.idx += 1;
                                self.attempts = 0;
                            }
                        }
                    }
                    let pay = phases[0] + phases[1] + phases[2];
                    if pay.0 > 0 {
                        return Step::Block(WaitReason::Sleep(pay.0));
                    }
                }
            }
        }
    }
}

/// Replays `trace` against a fresh machine and disk, returning what the
/// replay did. Deterministic: the same trace, OS, seed and options give
/// a byte-identical [`ReplayReport`].
pub fn replay_trace(trace: &Trace, os: Os, seed: u64, opts: ReplayOptions) -> ReplayReport {
    let (sim, kernel) = boot(os, seed);
    // A replay must never capture itself, even under ambient --record.
    sim.recorder().disable();
    let env = kernel.env().clone();
    let disk = Arc::new(Disk::new(DiskParams::hp3725()));

    let stride = opts.stride.max(1) as usize;
    let events: Vec<TraceEvent> = trace.events.iter().copied().step_by(stride).collect();
    let base = events.iter().map(|e| e.t).min().unwrap_or(0);
    let recorded_span_cy = events.iter().map(|e| e.t).max().unwrap_or(0) - base;

    let totals = Arc::new(Mutex::new(Totals::default()));
    let mut streams: Vec<(String, Vec<TraceEvent>)> = Vec::new();
    match opts.mode {
        ReplayMode::Asap => streams.push(("replay".into(), events.clone())),
        ReplayMode::Timed => {
            let mut by_pid: BTreeMap<u32, Vec<TraceEvent>> = BTreeMap::new();
            for ev in &events {
                by_pid.entry(ev.pid).or_default().push(*ev);
            }
            for (pid, evs) in by_pid {
                streams.push((format!("replay-p{pid}"), evs));
            }
        }
    }
    let nstreams = streams.len() as u64;

    let mut sched = LiteScheduler::new(&sim);
    for (name, evs) in streams {
        sched.spawn(
            &name,
            Box::new(ReplayProc {
                events: evs,
                idx: 0,
                base,
                timed: opts.mode == ReplayMode::Timed,
                disk: disk.clone(),
                env: env.clone(),
                attempts: 0,
                totals: totals.clone(),
            }),
        );
    }
    let handle = sched.start("replayer");
    let elapsed = sim.run().expect("replay run");

    let (reads, writes, blocks_moved) = disk.stats();
    let t = totals.lock();
    ReplayReport {
        events: events.len() as u64,
        file_events: t.file_events,
        commands: t.commands,
        reads,
        writes,
        blocks_moved,
        busy_cy: disk.busy_cycles().0,
        elapsed_cy: elapsed.0,
        recorded_span_cy,
        faults: t.faults,
        eio: t.eio,
        streams: nstreams,
        polls: handle.stats().polls,
    }
}

/// Arms the ambient capture flag and guarantees it is disarmed again on
/// every exit path — panic included — so a crashing sample can never
/// leave the sink armed for the next pool job.
struct AmbientCapture;

impl AmbientCapture {
    fn arm() -> AmbientCapture {
        // Drop captures a previous (possibly panicked) caller left behind.
        let _ = tnt_sim::replay::drain();
        tnt_sim::replay::set_ambient(true);
        AmbientCapture
    }
}

impl Drop for AmbientCapture {
    fn drop(&mut self) {
        tnt_sim::replay::set_ambient(false);
    }
}

/// Runs experiment `id` with ambient capture armed and returns every
/// trace the runs published — one per booted machine that saw disk or
/// namespace activity. This is `reproduce --record <id>`.
pub fn capture_experiment(id: &str, scale: &Scale) -> Vec<Trace> {
    let armed = AmbientCapture::arm();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::experiments::run_one(id, scale)
    }));
    drop(armed);
    let traces = tnt_sim::replay::drain();
    match out {
        Ok(_) => traces,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

/// The vendored fixture traces under `results/traces/`, by stem.
pub fn replay_fixture_ids() -> Vec<&'static str> {
    vec!["desktop_boot", "compile_burst", "blkparse_sample"]
}

/// Builds the `desktop_boot` fixture: a hand-written morning-boot
/// story (init reads `/etc/rc`, pages in the shell, takes a lock; the
/// shell pages itself and appends to the boot log; init drops the
/// lock). The vendored `results/traces/desktop_boot.tntrace` is exactly
/// `desktop_boot_trace().to_bytes()` — a golden test keeps them equal —
/// and the same bytes are the worked example in docs/TRACE_FORMAT.md.
pub fn desktop_boot_trace() -> Trace {
    let ms = |m: u64| m * (CPU_HZ / 1_000);
    let ev = |t: u64, pid: u32, op: Op, arg: u64, size: u64| TraceEvent {
        t,
        pid,
        op,
        arg,
        size,
    };
    Trace {
        paths: vec![
            "/etc/rc".to_string(),
            "/bin/sh".to_string(),
            "/var/log/boot".to_string(),
            "/tmp/boot.lock".to_string(),
        ],
        events: vec![
            ev(ms(0), 1, Op::FileOpen, 0, 0),
            ev(ms(1), 1, Op::BlockRead, 2_048, 2),
            ev(ms(4), 1, Op::FileOpen, 1, 0),
            ev(ms(5), 1, Op::BlockRead, 409_600, 8),
            ev(ms(9), 1, Op::BlockRead, 409_608, 8),
            ev(ms(14), 1, Op::FileOpen, 3, 0),
            ev(ms(15), 1, Op::BlockWrite, 1_048_576, 1),
            ev(ms(22), 2, Op::BlockRead, 409_616, 8),
            ev(ms(27), 2, Op::FileOpen, 2, 0),
            ev(ms(28), 2, Op::BlockWrite, 786_432, 2),
            ev(ms(33), 2, Op::BlockWrite, 786_434, 2),
            ev(ms(36), 1, Op::FileUnlink, 3, 0),
            ev(ms(37), 1, Op::BlockWrite, 1_048_576, 1),
        ],
    }
}

// ---------------------------------------------------------------------
// Capture workloads: the Section 7 stories, scaled, run to a trace.
// ---------------------------------------------------------------------

/// Captures the x11 video+database workload on `os`: the capture-armed
/// machine runs the workload; returns the recorded trace and the
/// recorded disk busy time to compare a replay against.
pub(crate) fn capture_video(os: Os, scale: &Scale, seed: u64) -> (Trace, Cycles) {
    let (sim, kernel) = boot(os, seed);
    let fs = SimFs::fresh_for_os(os);
    kernel.mount(fs.clone());
    sim.recorder().enable();
    let frames = scale.replay_video_frames as u64;
    kernel.spawn_user("playback", move |p| {
        let fd = p.creat("/movie.raw").expect("creat movie");
        for _ in 0..frames {
            p.write(fd, 64 * 1024).expect("write frame");
        }
        p.close(fd).expect("close movie");
        let fd = p.open("/movie.raw", OpenFlags::rdonly()).expect("reopen movie");
        for _ in 0..frames {
            let mut left: u64 = 64 * 1024;
            while left > 0 {
                let n = p.read(fd, left.min(8_192)).expect("read frame");
                assert!(n > 0, "movie ends early");
                left -= n;
            }
            p.compute(Cycles::from_micros(500.0)); // decode
        }
        p.close(fd).expect("close movie");
    });
    let pages = (frames * 2).max(8);
    kernel.spawn_user("database", move |p| {
        let fd = p.creat("/table.db").expect("creat table");
        for _ in 0..pages {
            p.write(fd, 8_192).expect("write page");
        }
        p.close(fd).expect("close table");
        let fd = p.open("/table.db", OpenFlags::rdwr()).expect("reopen table");
        for i in 0..pages {
            // Deterministic pseudo-random page walk (bonnie's seek
            // pattern without consuming engine randomness).
            let off = (i * 7_919 % pages) * 8_192;
            p.lseek(fd, off).expect("seek");
            p.read(fd, 8_192).expect("read page");
            p.lseek(fd, off).expect("seek back");
            p.write(fd, 8_192).expect("write page");
        }
        p.close(fd).expect("close table");
        p.unlink("/table.db").expect("drop table");
    });
    sim.run().expect("video capture run");
    let busy = fs.cache().disk().busy_cycles();
    (sim.recorder().take(), busy)
}

/// Captures the x12 compile burst on `os`: per unit, create and read a
/// source file, "compile", write the object through a synced temp file.
pub(crate) fn capture_compile(os: Os, scale: &Scale, seed: u64) -> (Trace, Cycles) {
    let (sim, kernel) = boot(os, seed);
    let fs = SimFs::fresh_for_os(os);
    kernel.mount(fs.clone());
    sim.recorder().enable();
    let units = scale.replay_compile_files as u64;
    kernel.spawn_user("cc", move |p| {
        p.mkdir("/src").expect("mkdir src");
        p.mkdir("/obj").expect("mkdir obj");
        for i in 0..units {
            let src = format!("/src/u{i}.c");
            let fd = p.creat(&src).expect("creat source");
            p.write(fd, 12 * 1024).expect("write source");
            p.close(fd).expect("close source");
            let fd = p.open(&src, OpenFlags::rdonly()).expect("open source");
            p.read(fd, 12 * 1024).expect("read source");
            p.close(fd).expect("close source");
            p.compute(Cycles::from_micros(2_000.0)); // the compile itself
            let tmp = format!("/obj/u{i}.tmp");
            let fd = p.creat(&tmp).expect("creat temp object");
            p.write(fd, 20 * 1024).expect("write object");
            p.fsync(fd).expect("sync object");
            p.close(fd).expect("close temp");
            p.unlink(&tmp).expect("unlink temp");
            let fd = p.creat(&format!("/obj/u{i}.o")).expect("creat object");
            p.write(fd, 20 * 1024).expect("write object");
            p.close(fd).expect("close object");
        }
    });
    sim.run().expect("compile capture run");
    let busy = fs.cache().disk().busy_cycles();
    (sim.recorder().take(), busy)
}

// ---------------------------------------------------------------------
// x11 / x12: record-and-replay experiments.
// ---------------------------------------------------------------------

/// One capture/replay comparison row.
struct ReplayRow {
    os: Os,
    events: u64,
    recorded_busy: Cycles,
    asap: ReplayReport,
    timed: ReplayReport,
}

fn replay_rows(
    capture: impl Fn(Os, &Scale, u64) -> (Trace, Cycles),
    scale: &Scale,
) -> Vec<ReplayRow> {
    Os::benchmarked()
        .into_iter()
        .map(|os| {
            let (trace, recorded_busy) = capture(os, scale, 1);
            let asap = replay_trace(&trace, os, 1, ReplayOptions::asap());
            let timed = replay_trace(&trace, os, 1, ReplayOptions::timed());
            // The equality guarantee (see the module docs) holds when the
            // fault plane is quiet; under --faults the replay re-rolls its
            // own transients and the totals may legitimately drift.
            if tnt_sim::fault::ambient().is_off() {
                assert_eq!(
                    asap.busy_cy,
                    recorded_busy.0,
                    "{}: asap replay disk busy must equal the capture's",
                    os.label()
                );
            }
            ReplayRow {
                os,
                events: trace.len() as u64,
                recorded_busy,
                asap,
                timed,
            }
        })
        .collect()
}

fn render_replay(
    id: &'static str,
    title: &'static str,
    workload_line: &str,
    rows: Vec<ReplayRow>,
) -> ExperimentOutput {
    let ms = |cy: u64| cy as f64 * 1_000.0 / CPU_HZ as f64;
    let mut text = format!("{title}\n  {workload_line}\n\n");
    text.push_str(
        "  OS            events  cmds   recorded busy   replay busy  match   timed elapsed\n",
    );
    for r in &rows {
        let eq = if r.asap.busy_cy == r.recorded_busy.0 {
            "yes"
        } else {
            "DRIFT"
        };
        text.push_str(&format!(
            "  {:<12} {:>7} {:>5} {:>12.2} ms {:>10.2} ms {:>6} {:>12.2} ms\n",
            r.os.label(),
            r.events,
            r.asap.commands,
            ms(r.recorded_busy.0),
            ms(r.asap.busy_cy),
            eq,
            ms(r.timed.elapsed_cy),
        ));
    }
    text.push_str(
        "\n  Replaying each capture in recorded order against a fresh disk\n\
         \x20 reproduces the recorded disk busy time exactly; the timed replay\n\
         \x20 re-creates the original concurrency open-loop, so its elapsed\n\
         \x20 time tracks the recorded span plus trailing disk service.\n",
    );
    let means: Vec<f64> = rows.iter().map(|r| ms(r.asap.busy_cy)).collect();
    let norms = normalize_lower_better(&means);
    let stats = rows
        .iter()
        .zip(means.iter().zip(norms))
        .map(|(r, (&mean, norm))| StatLine {
            label: r.os.label().to_string(),
            mean,
            sd_pct: 0.0,
            norm,
        })
        .collect();
    let record = ExperimentRecord::new(id, title, 1).with_stats(stats);
    ExperimentOutput {
        id,
        title,
        text,
        csv: vec![],
        record: Some(record),
    }
}

fn x11_video_replay(scale: &Scale) -> ExperimentOutput {
    let rows = replay_rows(capture_video, scale);
    let line = format!(
        "Workload: {} frames of 64 KB streamed and re-read, plus a\n\
         \x20 {}-page database walk; captured at the disk boundary, then\n\
         \x20 replayed verbatim (asap) and at recorded timestamps (timed).",
        scale.replay_video_frames,
        (scale.replay_video_frames as u64 * 2).max(8),
    );
    render_replay(
        "x11",
        "ABLATION x11. Video workload record-and-replay",
        &line,
        rows,
    )
}

fn x12_compile_replay(scale: &Scale) -> ExperimentOutput {
    let rows = replay_rows(capture_compile, scale);
    let line = format!(
        "Workload: {} compilation units (create+read source, compile,\n\
         \x20 write object via a synced temp file); captured, then replayed.",
        scale.replay_compile_files,
    );
    render_replay(
        "x12",
        "ABLATION x12. Compile burst record-and-replay",
        &line,
        rows,
    )
}

/// Runs one replay experiment by id.
pub(crate) fn run_replay_experiment(id: &str, scale: &Scale) -> ExperimentOutput {
    match id {
        "x11" => x11_video_replay(scale),
        "x12" => x12_compile_replay(scale),
        other => panic!("unknown replay experiment id {other:?}"),
    }
}

/// Plans x11 as a single shard (a capture plus two replays per OS).
pub(crate) fn plan_x11(scale: &Scale) -> ExperimentPlan {
    plan_replay("x11", "ABLATION x11. Video workload record-and-replay", 25_000, scale)
}

/// Plans x12 as a single shard.
pub(crate) fn plan_x12(scale: &Scale) -> ExperimentPlan {
    plan_replay("x12", "ABLATION x12. Compile burst record-and-replay", 20_000, scale)
}

fn plan_replay(
    id: &'static str,
    title: &'static str,
    cost: u64,
    scale: &Scale,
) -> ExperimentPlan {
    let scale = scale.clone();
    ExperimentPlan {
        id,
        title,
        body: PlanBody::Whole {
            cost,
            run: Box::new(move || vec![run_replay_experiment(id, &scale)]),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten seconds of blktrace output as `blkparse` renders it, for the
    /// importer path: queue/dispatch/complete rows, reads and writes.
    const BLKPARSE_SAMPLE: &str = "\
  8,0    1        1     0.000000000  4162  Q   R 2097152 + 8 [cc1]
  8,0    1        2     0.000041200  4162  D   R 2097152 + 8 [cc1]
  8,0    1        3     0.009122900     0  C   R 2097152 + 8 [0]
  8,0    1        4     0.051000000  4162  Q  WS 4194304 + 16 [cc1]
  8,0    1        5     0.051038000  4162  D  WS 4194304 + 16 [cc1]
  8,0    1        6     0.068220000     0  C  WS 4194304 + 16 [0]
  8,0    0        7     0.120000000  4170  Q   R 2097160 + 8 [make]
  8,0    0        8     0.120033000  4170  D   R 2097160 + 8 [make]
  8,0    0        9     0.128400000     0  C   R 2097160 + 8 [0]
  8,0    0       10     0.900000000  4170  D   W 6291456 + 32 [make]
  8,0    0       11     0.931000000     0  C   W 6291456 + 32 [0]
  8,0    1       12     2.400000000  4162  D   R 2097168 + 8 [cc1]
  8,0    1       13     9.700000000  4162  D  WM 4194320 + 8 [cc1]
";

    fn fixture_dir() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/traces")
    }

    /// Rebuilds the vendored fixtures under `results/traces/`. Run it
    /// explicitly after changing a builder, then re-vendor the output:
    /// `cargo test -p tnt-harness regenerate_vendored_fixtures -- --ignored`
    #[test]
    #[ignore = "writes the vendored fixtures under results/traces/"]
    fn regenerate_vendored_fixtures() {
        let dir = fixture_dir();
        std::fs::create_dir_all(&dir).expect("fixture dir");
        std::fs::write(
            dir.join("desktop_boot.tntrace"),
            desktop_boot_trace().to_bytes(),
        )
        .expect("write desktop_boot");
        let (trace, _) = capture_compile(Os::FreeBsd, &Scale::smoke(), 1);
        std::fs::write(dir.join("compile_burst.txt"), trace.to_text())
            .expect("write compile_burst");
        std::fs::write(dir.join("blkparse_sample.txt"), BLKPARSE_SAMPLE)
            .expect("write blkparse_sample");
    }

    #[test]
    fn vendored_desktop_boot_matches_the_builder() {
        let bytes =
            std::fs::read(fixture_dir().join("desktop_boot.tntrace")).expect("vendored fixture");
        assert_eq!(
            bytes,
            desktop_boot_trace().to_bytes(),
            "the vendored bytes are the docs/TRACE_FORMAT.md worked example; \
             regenerate_vendored_fixtures and update the doc together"
        );
    }

    #[test]
    fn vendored_text_fixtures_load_and_replay() {
        for name in ["compile_burst.txt", "blkparse_sample.txt"] {
            let bytes = std::fs::read(fixture_dir().join(name)).expect(name);
            let trace = Trace::load(&bytes).expect(name);
            assert!(!trace.is_empty(), "{name} parsed empty");
            let rep = replay_trace(&trace, Os::Solaris, 1, ReplayOptions::asap());
            assert!(rep.commands > 0, "{name} replayed no disk commands");
        }
    }

    #[test]
    fn desktop_boot_fixture_round_trips_both_encodings() {
        let t = desktop_boot_trace();
        assert_eq!(
            Trace::from_bytes(&t.to_bytes()).expect("binary round trip"),
            t
        );
        assert_eq!(Trace::from_text(&t.to_text()).expect("text round trip"), t);
    }

    #[test]
    fn asap_replay_reproduces_the_captured_busy_time() {
        let scale = Scale::smoke();
        for os in [Os::Linux, Os::FreeBsd] {
            let (trace, busy) = capture_video(os, &scale, 1);
            assert!(!trace.is_empty(), "capture recorded nothing");
            let rep = replay_trace(&trace, os, 1, ReplayOptions::asap());
            assert_eq!(rep.busy_cy, busy.0, "{}: busy must match", os.label());
            assert_eq!(rep.streams, 1);
            assert_eq!(rep.reads + rep.writes, rep.commands);
        }
    }

    #[test]
    fn compile_capture_records_namespace_events() {
        let (trace, _) = capture_compile(Os::FreeBsd, &Scale::smoke(), 1);
        let opens = trace.events.iter().filter(|e| e.op == Op::FileOpen).count();
        let unlinks = trace
            .events
            .iter()
            .filter(|e| e.op == Op::FileUnlink)
            .count();
        // Three creats/opens and one unlink per unit, plus noise.
        assert!(opens >= 3 * Scale::smoke().replay_compile_files as usize);
        assert_eq!(unlinks, Scale::smoke().replay_compile_files as usize);
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = desktop_boot_trace();
        let a = replay_trace(&trace, Os::Linux, 7, ReplayOptions::timed());
        let b = replay_trace(&trace, Os::Linux, 7, ReplayOptions::timed());
        assert_eq!(a, b);
        assert_eq!(a.streams, 2, "two recorded pids, two timed streams");
        assert!(a.elapsed_cy >= a.recorded_span_cy, "open-loop replay");
        assert_eq!(a.file_events, 5);
    }

    #[test]
    fn panicking_capture_disarms_the_ambient_sink() {
        // Poison: an unknown id makes the captured experiment panic
        // inside the capture's own catch_unwind.
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            capture_experiment("no-such-experiment", &Scale::smoke())
        }));
        assert!(poisoned.is_err(), "unknown id must panic through");
        assert!(
            !tnt_sim::replay::ambient(),
            "a panicking capture must disarm the ambient sink"
        );
        // Recover: a fresh unrelated run right after must not be captured.
        let (sim, kernel) = boot(Os::Linux, 0);
        kernel.spawn_user("innocent", |p| p.compute(Cycles(1_000)));
        sim.run().expect("post-panic run");
        assert!(
            tnt_sim::replay::drain().is_empty(),
            "no capture may leak into the next pool job"
        );
    }

    #[test]
    fn sampling_stride_thins_the_replay() {
        let trace = desktop_boot_trace();
        let full = replay_trace(&trace, Os::Linux, 1, ReplayOptions::asap());
        let thin = replay_trace(
            &trace,
            Os::Linux,
            1,
            ReplayOptions {
                mode: ReplayMode::Asap,
                stride: 3,
            },
        );
        assert_eq!(full.events, trace.len() as u64);
        assert_eq!(thin.events, trace.len().div_ceil(3) as u64);
        assert!(thin.commands < full.commands);
    }
}
