//! The canned schedule-exploration scenarios behind `reproduce explore`.
//!
//! Each scenario is a small (2–4 process) simulation exercising one of
//! the engine's synchronization mechanisms; `tnt_race::explore`
//! replays it under every interleaving of contended dispatches (with
//! sleep-set pruning fed by the happens-before detector's footprints)
//! and asserts the outcome never changes, no schedule deadlocks, and no
//! wakeup is lost. A pass here is the engine's determinism claim made
//! schedule-quantified: *N schedules, one outcome*.

use std::sync::Arc;

use parking_lot::Mutex;
use tnt_runner::json::Value;
use tnt_sim::proc::{block_any, block_on, LiteScheduler, ProcCtx, Step, WaitReason};
use tnt_sim::race::{explore, run_scripted, Collector, ExploreReport};
use tnt_sim::{Cycles, Sim, SimChannel, SimMutex};

/// A named exploration scenario.
pub struct ExploreScenario {
    /// Stable id used on the command line and in `EXPLORE.json`.
    pub name: &'static str,
    /// One-line description for `--list` and the report.
    pub about: &'static str,
    build: fn(&Sim) -> Collector,
}

/// Three processes increment a shared counter under a `SimMutex`; the
/// final count and simulated time must not depend on who wins the lock.
/// One critical section each keeps the interleaving space closed under
/// a few hundred schedules while still contending every lock handoff.
fn mutex_contention(s: &Sim) -> Collector {
    let m = Arc::new(SimMutex::new(s));
    let counter = Arc::new(Mutex::new(0u64));
    for name in ["a", "b", "c"] {
        let m = m.clone();
        let counter = counter.clone();
        s.spawn(name, move |s| {
            m.lock(s);
            s.race_write("explore.counter", 0);
            let v = *counter.lock();
            s.advance(Cycles(10));
            *counter.lock() = v + 1;
            m.unlock(s);
            s.yield_now();
        });
    }
    let sim = s.clone();
    Box::new(move || {
        vec![
            ("counter".to_string(), *counter.lock()),
            ("now".to_string(), sim.now().0),
        ]
    })
}

/// Two producers and one consumer rendezvous over a capacity-1
/// `SimChannel`; the received multiset (checked as sum and count) must
/// be schedule-invariant even though arrival order is contended.
fn channel_rendezvous(s: &Sim) -> Collector {
    let ch = Arc::new(SimChannel::new(s, 1));
    for (name, base) in [("p0", 10u64), ("p1", 20u64)] {
        let tx = ch.clone();
        s.spawn(name, move |s| {
            for i in 1..=2 {
                tx.send(s, base + i);
            }
        });
    }
    let sum = Arc::new(Mutex::new((0u64, 0u64)));
    let out = sum.clone();
    let rx = ch.clone();
    s.spawn("consumer", move |s| {
        for _ in 0..4 {
            let v: u64 = rx.recv(s);
            s.advance(Cycles(25));
            let mut g = out.lock();
            g.0 += v;
            g.1 += 1;
        }
    });
    let sim = s.clone();
    Box::new(move || {
        let (total, count) = *sum.lock();
        vec![
            ("sum".to_string(), total),
            ("count".to_string(), count),
            ("now".to_string(), sim.now().0),
        ]
    })
}

/// A lite process parked on a wait queue is woken by a threaded waker:
/// the mailbox-token plus doorbell path that mixes the two process
/// models in one wakeup.
fn lite_mix(s: &Sim) -> Collector {
    let q = s.new_queue();
    let woken_at = Arc::new(Mutex::new(0u64));
    let out = woken_at.clone();
    let mut sched = LiteScheduler::new(s);
    let mut waited = false;
    sched.spawn(
        "waiter",
        Box::new(move |ctx: &mut ProcCtx| {
            if !waited {
                waited = true;
                return block_on(q, "await signal");
            }
            *out.lock() = ctx.sim().now().0;
            Step::Done
        }),
    );
    sched.start("sched");
    s.spawn("waker", move |s| {
        s.sleep(Cycles(1_000));
        s.wakeup_one(q);
    });
    Box::new(move || vec![("woken_at".to_string(), *woken_at.lock())])
}

/// A host-armed queue wakeup ties with a wait timeout at the same
/// simulated instant; the engine's `(at, seq)` FIFO tie-break must
/// deliver the wakeup (armed first) on every schedule.
fn timer_race(s: &Sim) -> Collector {
    let q = s.new_queue();
    s.wakeup_one_at(q, Cycles(1_000));
    let woken = Arc::new(Mutex::new(0u64));
    let out = woken.clone();
    s.spawn("waiter", move |s| {
        let signalled = s.wait_on_timeout(q, Cycles(1_000), "tie wait");
        *out.lock() = u64::from(signalled);
    });
    Box::new(move || vec![("signalled".to_string(), *woken.lock())])
}

/// The fault-plane's RTO shape: the first reply misses the client's
/// retransmit timeout, the retransmitted wait catches it. Retry count
/// and completion time must be schedule-invariant.
fn retransmit(s: &Sim) -> Collector {
    let reply_q = s.new_queue();
    let done = Arc::new(Mutex::new((0u64, 0u64)));
    let out = done.clone();
    s.spawn("client", move |s| {
        let mut retries = 0u64;
        while !s.wait_on_timeout(reply_q, Cycles(500), "await reply") {
            retries += 1;
            assert!(retries < 8, "reply never arrived");
        }
        *out.lock() = (retries, s.now().0);
    });
    s.spawn("server", move |s| {
        s.sleep(Cycles(800));
        s.wakeup_one(reply_q);
    });
    let sim = s.clone();
    Box::new(move || {
        let (retries, at) = *done.lock();
        vec![
            ("retries".to_string(), retries),
            ("done_at".to_string(), at),
            ("now".to_string(), sim.now().0),
        ]
    })
}

/// A lite `select(2)`: reply-or-timeout where the reply wins, then a
/// sleep across the dead deadline — the cancelled-timeout path of
/// `WaitReason::Any`.
fn any_select(s: &Sim) -> Collector {
    let q = s.new_queue();
    let log = Arc::new(Mutex::new(Vec::new()));
    let out = log.clone();
    let mut sched = LiteScheduler::new(s);
    let mut phase = 0;
    sched.spawn(
        "client",
        Box::new(move |ctx: &mut ProcCtx| {
            phase += 1;
            match phase {
                1 => block_any(ctx, &[q], Some(Cycles(10_000)), "reply or rto"),
                2 => {
                    out.lock().push(ctx.sim().now().0);
                    Step::Block(WaitReason::Until(25_000))
                }
                _ => {
                    out.lock().push(ctx.sim().now().0);
                    Step::Done
                }
            }
        }),
    );
    sched.start("sched");
    s.spawn("server", move |s| {
        s.sleep(Cycles(4_000));
        s.wakeup_one(q);
    });
    Box::new(move || {
        log.lock()
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("wake{i}"), *t))
            .collect()
    })
}

/// The scenario registry, in report order.
pub fn explore_scenarios() -> Vec<ExploreScenario> {
    vec![
        ExploreScenario {
            name: "mutex-contention",
            about: "three procs race a SimMutex-guarded counter",
            build: mutex_contention,
        },
        ExploreScenario {
            name: "channel-rendezvous",
            about: "two producers, one consumer over a capacity-1 SimChannel",
            build: channel_rendezvous,
        },
        ExploreScenario {
            name: "lite-mix",
            about: "threaded waker wakes a lite proc (mailbox token + doorbell)",
            build: lite_mix,
        },
        ExploreScenario {
            name: "timer-race",
            about: "queue wakeup ties a wait timeout at the same instant",
            build: timer_race,
        },
        ExploreScenario {
            name: "retransmit",
            about: "RTO fires before the late reply; the retry catches it",
            build: retransmit,
        },
        ExploreScenario {
            name: "any-select",
            about: "lite select(2): reply beats timeout, deadline is cancelled",
            build: any_select,
        },
    ]
}

/// Names of every canned scenario, in report order.
pub fn explore_ids() -> Vec<&'static str> {
    explore_scenarios().iter().map(|s| s.name).collect()
}

/// Outcome of exploring one scenario.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Scenario description.
    pub about: &'static str,
    /// The explorer's report.
    pub report: ExploreReport,
}

/// Schedule-explores the named scenarios (every canned one when `names`
/// is empty or contains `"all"`). `max_runs` caps the runs per scenario;
/// hitting the cap is reported as a failure, never a silent truncation.
/// Unknown names are an error listing the valid ids.
pub fn run_explore(names: &[String], max_runs: usize) -> Result<Vec<ExploreOutcome>, String> {
    let scenarios = explore_scenarios();
    let all = names.is_empty() || names.iter().any(|n| n == "all");
    if !all {
        for n in names {
            if !scenarios.iter().any(|s| s.name == n) {
                return Err(format!(
                    "unknown explore scenario {n:?}; valid: {}",
                    explore_ids().join(" ")
                ));
            }
        }
    }
    Ok(scenarios
        .into_iter()
        .filter(|s| all || names.iter().any(|n| n == s.name))
        .map(|s| {
            let build = s.build;
            let report = explore(|script| run_scripted(script, build), max_runs, None);
            ExploreOutcome {
                name: s.name,
                about: s.about,
                report,
            }
        })
        .collect())
}

/// Renders the human-readable block for one scenario.
pub fn render_explore(o: &ExploreOutcome) -> String {
    let r = &o.report;
    let verdict = if r.passed() { "PASS" } else { "FAIL" };
    let mut out = format!(
        "  {:<20} {:>5} schedule(s)  {:>5} pruned  {:>5} run(s)  {} outcome(s)  {}\n",
        o.name, r.schedules, r.pruned, r.runs, r.distinct_outcomes, verdict
    );
    for f in &r.failures {
        out.push_str(&format!("    FAIL: {f}\n"));
    }
    out
}

/// The `EXPLORE.json` artifact: per-scenario schedule counts and the
/// overall verdict, for the CI schedule-count upload.
pub fn explore_json(outcomes: &[ExploreOutcome]) -> Value {
    let passed = outcomes.iter().all(|o| o.report.passed());
    Value::Obj(vec![
        ("artifact".into(), Value::Str("explore".into())),
        ("passed".into(), Value::Bool(passed)),
        (
            "scenarios".into(),
            Value::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        Value::Obj(vec![
                            ("name".into(), Value::Str(o.name.into())),
                            ("about".into(), Value::Str(o.about.into())),
                            ("schedules".into(), Value::Num(o.report.schedules as f64)),
                            ("pruned".into(), Value::Num(o.report.pruned as f64)),
                            ("runs".into(), Value::Num(o.report.runs as f64)),
                            (
                                "distinct_outcomes".into(),
                                Value::Num(o.report.distinct_outcomes as f64),
                            ),
                            ("passed".into(), Value::Bool(o.report.passed())),
                            (
                                "failures".into(),
                                Value::Arr(
                                    o.report
                                        .failures
                                        .iter()
                                        .map(|f| Value::Str(f.clone()))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole acceptance check: every canned scenario passes —
    /// one outcome across every explored schedule, no deadlocks.
    #[test]
    fn every_canned_scenario_is_schedule_invariant() {
        let outcomes = run_explore(&[], 512).unwrap();
        assert_eq!(outcomes.len(), explore_ids().len());
        for o in &outcomes {
            assert!(
                o.report.passed(),
                "{}: {:?}",
                o.name,
                o.report.failures
            );
            assert_eq!(o.report.distinct_outcomes, 1, "{}", o.name);
            assert!(o.report.schedules >= 1, "{}", o.name);
        }
        // Contended scenarios genuinely branch: at least one explores
        // more than one schedule.
        assert!(
            outcomes.iter().any(|o| o.report.schedules > 1),
            "no scenario had any scheduling freedom"
        );
    }

    #[test]
    fn unknown_scenarios_are_rejected() {
        let err = run_explore(&["mutex-contention".into(), "nope".into()], 16).unwrap_err();
        assert!(err.contains("nope") && err.contains("mutex-contention"));
    }

    #[test]
    fn selected_scenarios_run_alone() {
        let outcomes = run_explore(&["timer-race".into()], 64).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].name, "timer-race");
        assert!(outcomes[0].report.passed(), "{:?}", outcomes[0].report.failures);
    }

    #[test]
    fn explore_json_carries_schedule_counts() {
        let outcomes = run_explore(&["lite-mix".into()], 64).unwrap();
        let text = explore_json(&outcomes).render();
        assert!(text.contains("\"lite-mix\""));
        assert!(text.contains("\"schedules\""));
        assert!(text.contains("\"passed\": true"), "{text}");
    }
}
