//! The two-process-model micro-benchmark behind `reproduce bench-engine`.
//!
//! Both backends run the *same simulated workload* — a ring of processes
//! that each charge 37 cycles per round, sleep 1,000 cycles every eighth
//! round, and yield — once on the threaded baton engine and once as lite
//! processes inside a single [`LiteScheduler`] slot. The simulated
//! outcome (final time, total charged CPU) is byte-identical; only the
//! host cost differs, which is exactly what the benchmark measures:
//! events/sec, handoffs/sec and simulated Mcycles/sec per backend.

use tnt_sim::proc::{LiteScheduler, ProcCtx, Step, WaitReason};
use tnt_sim::{Cycles, FifoPolicy, Sim, SimConfig};

/// Cycles charged per ring round.
pub const RING_CHARGE: u64 = 37;
/// Sleep length on every eighth round.
pub const RING_SLEEP: u64 = 1_000;

/// Outcome of one ring run on either backend.
#[derive(Clone, Debug)]
pub struct RingResult {
    /// Final simulated time.
    pub elapsed: Cycles,
    /// Total CPU cycles charged across all ring members.
    pub total_cpu: u64,
    /// Scheduling handoffs: engine dispatches (threaded) or lite polls.
    pub handoffs: u64,
    /// Charges issued (`procs * rounds`, same on both backends).
    pub charges: u64,
    /// Host seconds for the run.
    pub wall_s: f64,
}

fn ring_sim(seed: u64) -> Sim {
    Sim::new(
        Box::new(FifoPolicy::new()),
        SimConfig {
            seed,
            jitter: 0.02, // exercise the scaled-charge path in both backends
            ..SimConfig::default()
        },
    )
}

/// Runs the ring with one host thread per simulated process.
pub fn threaded_ring(procs: u32, rounds: u32, seed: u64) -> RingResult {
    // audit:allow(wallclock) bench mode measures host time by definition
    let t0 = std::time::Instant::now();
    let sim = ring_sim(seed);
    let mut tids = Vec::new();
    for p in 0..procs {
        tids.push(sim.spawn(format!("ring{p}"), move |s| {
            for r in 0..rounds {
                s.charge(Cycles(RING_CHARGE));
                if r % 8 == 3 {
                    s.sleep(Cycles(RING_SLEEP));
                }
                s.yield_now();
            }
        }));
    }
    let elapsed = sim.run().expect("threaded ring failed");
    let total_cpu = tids.iter().map(|t| sim.proc_cpu(*t).0).sum();
    RingResult {
        elapsed,
        total_cpu,
        handoffs: sim.dispatch_count(),
        charges: u64::from(procs) * u64::from(rounds),
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// The threaded ring with the happens-before race detector armed: the
/// overhead-gate variant behind `reproduce bench-engine`. Disarmed cost
/// is zero by construction — without the `audit` feature the detector
/// is compiled out of the engine entirely — so the gate only needs to
/// bound the *armed* slowdown (see `hb_overhead_ratio` in
/// `BENCH_engine.json`).
pub fn threaded_ring_hb(procs: u32, rounds: u32, seed: u64) -> RingResult {
    // audit:allow(wallclock) bench mode measures host time by definition
    let t0 = std::time::Instant::now();
    let sim = ring_sim(seed);
    sim.arm_race_detector();
    let mut tids = Vec::new();
    for p in 0..procs {
        tids.push(sim.spawn(format!("ring{p}"), move |s| {
            for r in 0..rounds {
                s.charge(Cycles(RING_CHARGE));
                if r % 8 == 3 {
                    s.sleep(Cycles(RING_SLEEP));
                }
                s.yield_now();
            }
        }));
    }
    let elapsed = sim.run().expect("hb-armed ring failed");
    let total_cpu = tids.iter().map(|t| sim.proc_cpu(*t).0).sum();
    RingResult {
        elapsed,
        total_cpu,
        handoffs: sim.dispatch_count(),
        charges: u64::from(procs) * u64::from(rounds),
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// Runs the same ring as lite processes in one engine slot.
pub fn lite_ring(procs: u32, rounds: u32, seed: u64) -> RingResult {
    // audit:allow(wallclock) bench mode measures host time by definition
    let t0 = std::time::Instant::now();
    let sim = ring_sim(seed);
    let mut sched = LiteScheduler::new(&sim);
    for p in 0..procs {
        let mut r = 0u32;
        let mut phase = 0u8;
        sched.spawn(
            &format!("ring{p}"),
            Box::new(move |_: &mut ProcCtx| {
                if r == rounds {
                    return Step::Done;
                }
                phase += 1;
                match phase {
                    1 => Step::Charge(RING_CHARGE),
                    2 if r % 8 == 3 => Step::Block(WaitReason::Sleep(RING_SLEEP)),
                    _ => {
                        phase = 0;
                        r += 1;
                        Step::Yield
                    }
                }
            }),
        );
    }
    let handle = sched.start("ring-sched");
    let elapsed = sim.run().expect("lite ring failed");
    let stats = handle.stats();
    RingResult {
        elapsed,
        total_cpu: stats.cpu_by_pid.iter().map(|(_, cpu)| cpu).sum(),
        handoffs: stats.polls,
        charges: u64::from(procs) * u64::from(rounds),
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

impl RingResult {
    /// Scheduling handoffs per host second.
    pub fn handoffs_per_s(&self) -> f64 {
        self.handoffs as f64 / self.wall_s.max(1e-9)
    }

    /// Simulation events (handoffs + charges) per host second.
    pub fn events_per_s(&self) -> f64 {
        (self.handoffs + self.charges) as f64 / self.wall_s.max(1e-9)
    }

    /// Simulated megacycles retired per host second.
    pub fn sim_mcycles_per_s(&self) -> f64 {
        self.elapsed.0 as f64 / 1e6 / self.wall_s.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole's byte-identity claim: the threaded ring and its
    /// lite twin produce the same simulated outcome from the same seed —
    /// final clock and total charged CPU — even with jitter on. Only the
    /// handoff accounting differs (dispatches vs polls), by design.
    #[test]
    fn threaded_and_lite_rings_are_byte_identical() {
        for seed in [0, 7, 1996] {
            let threaded = threaded_ring(24, 40, seed);
            let lite = lite_ring(24, 40, seed);
            assert_eq!(
                threaded.elapsed, lite.elapsed,
                "seed {seed}: simulated clock diverged"
            );
            assert_eq!(
                threaded.total_cpu, lite.total_cpu,
                "seed {seed}: charged CPU diverged"
            );
            assert_eq!(threaded.charges, lite.charges);
        }
    }

    /// Detection is pure metadata: arming the happens-before checker
    /// must not move the simulated clock, the charged CPU, or the
    /// dispatch count by a single cycle.
    #[test]
    fn hb_armed_ring_is_simulation_identical() {
        let plain = threaded_ring(24, 40, 1996);
        let armed = threaded_ring_hb(24, 40, 1996);
        assert_eq!(plain.elapsed, armed.elapsed);
        assert_eq!(plain.total_cpu, armed.total_cpu);
        assert_eq!(plain.handoffs, armed.handoffs);
    }

    #[test]
    fn lite_ring_is_deterministic() {
        let a = lite_ring(16, 24, 3);
        let b = lite_ring(16, 24, 3);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.total_cpu, b.total_cpu);
        assert_eq!(a.handoffs, b.handoffs);
    }
}
