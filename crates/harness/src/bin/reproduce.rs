//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! reproduce [bless|check|bench] [--quick|--full] [--jobs N] [--tolerance PCT]
//!           [--profile] [--out DIR] [--markdown FILE] [ids...|all]
//! reproduce --list
//! ```
//!
//! With no ids, every experiment (ablations included) runs. CSV series
//! are written to the output directory (default `results/`). With
//! `--jobs N` the experiment matrix is sharded across N workers on the
//! `tnt-runner` work-stealing pool; output is byte-identical to the
//! serial run. `bless` persists the structured per-experiment records
//! to `results/baselines.json`; `check` reruns the suite and fails
//! loudly on any statistic drifting past `--tolerance` percent.
//! `bench` times serial vs parallel and writes `BENCH_runner.json`.
//! With `--profile`, each experiment is followed by its
//! cycle-attribution breakdown and folded-stack exports land next to
//! the CSVs.

use std::fs;
use std::process::ExitCode;

use tnt_harness::cli::{self, Cli, Mode};
use tnt_harness::{
    all_ids, capture_experiment, conservation_audit, execute, explore_ids, explore_json,
    extra_ids, farm_sweep, lite_ring, plan, profile_one, render_explore, replay_fixture_ids,
    replay_trace, run_explore, threaded_ring, threaded_ring_hb, ExperimentResult, RingResult,
    ReplayOptions, ReplayReport, Scale,
};
use tnt_runner::{json::Value, BaselineStore, ExperimentRecord};
use tnt_sim::replay::Trace;
use tnt_sim::CPU_HZ;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match cli::parse(args) {
        Ok(cli) => cli,
        Err(err) => {
            eprintln!("reproduce: {err}");
            return ExitCode::from(2);
        }
    };
    // Arm the ambient fault profile before any experiment (and before the
    // worker pool spawns): every `boot`/`boot_cluster` in this process
    // picks it up. The default `off` is the byte-identical no-op.
    tnt_sim::fault::set_ambient(cli.faults);
    // --audit also arms the ambient happens-before race detector: every
    // Sim built from here on carries vector clocks and panics (failing
    // the run) on the first unordered same-location access pair.
    if cli.audit {
        tnt_sim::race::set_ambient(true);
    }
    match cli.mode {
        Mode::Help => {
            println!("{}", cli::usage());
            ExitCode::SUCCESS
        }
        Mode::List => {
            // Both paper experiments and ablation ids: --help names the
            // ablations, so --list must not silently omit them.
            for id in all_ids().iter().chain(extra_ids().iter()) {
                println!("{id}");
            }
            // Explore scenarios are a separate namespace (they are
            // schedules, not experiments) but scripts still need to
            // enumerate them.
            for id in explore_ids() {
                println!("explore/{id}");
            }
            // So are the vendored replay fixtures (they are traces).
            for id in replay_fixture_ids() {
                println!("replay/{id}");
            }
            ExitCode::SUCCESS
        }
        Mode::Run => run(&cli),
        Mode::Bless => bless(&cli),
        Mode::Check => check(&cli),
        Mode::Bench => bench(&cli),
        Mode::BenchEngine => bench_engine(&cli),
        Mode::Farm => farm(&cli),
        Mode::Explore => explore_cmd(&cli),
        Mode::Replay => replay_cmd(&cli),
    }
}

/// Resolves one `replay` operand to a trace: a literal file path, or a
/// trace stem under `OUT/traces/` (fixture names like `desktop_boot`
/// resolve there because the vendored fixtures live in
/// `results/traces/` and `results` is the default output dir).
fn load_trace_arg(arg: &str, cli: &Cli) -> Result<(String, Trace), String> {
    let mut candidates = vec![std::path::PathBuf::from(arg)];
    let stem = cli.out_dir.join("traces").join(arg);
    candidates.push(stem.with_extension("tntrace"));
    candidates.push(stem.with_extension("txt"));
    candidates.push(stem);
    for path in candidates {
        if !path.is_file() {
            continue;
        }
        let bytes = fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let trace = Trace::load(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| arg.to_string());
        return Ok((name, trace));
    }
    Err(format!(
        "no trace named {arg:?}: not a file, and not a fixture under {} (have: {})",
        cli.out_dir.join("traces").display(),
        replay_fixture_ids().join(" ")
    ))
}

fn replay_json(r: &ReplayReport) -> Value {
    Value::Obj(vec![
        ("events".into(), Value::Num(r.events as f64)),
        ("file_events".into(), Value::Num(r.file_events as f64)),
        ("commands".into(), Value::Num(r.commands as f64)),
        ("reads".into(), Value::Num(r.reads as f64)),
        ("writes".into(), Value::Num(r.writes as f64)),
        ("blocks_moved".into(), Value::Num(r.blocks_moved as f64)),
        ("busy_cy".into(), Value::Num(r.busy_cy as f64)),
        ("elapsed_cy".into(), Value::Num(r.elapsed_cy as f64)),
        ("faults".into(), Value::Num(r.faults as f64)),
        ("eio".into(), Value::Num(r.eio as f64)),
        ("streams".into(), Value::Num(r.streams as f64)),
    ])
}

/// Replays traces (vendored fixtures, files, or fresh `--record`
/// captures) through the disk model on every benchmarked OS.
fn replay_cmd(cli: &Cli) -> ExitCode {
    let scale = cli.scale();
    println!("tnt replay — trace-driven workload replay (docs/TRACE_FORMAT.md)\n");
    if !cli.faults.is_off() {
        println!("faults: {} (deterministic, seed-driven)\n", cli.faults.name());
    }
    fs::create_dir_all(&cli.out_dir).expect("create output directory");

    let mut targets: Vec<(String, Trace)> = Vec::new();
    if let Some(id) = &cli.record {
        // Capture first: every machine the experiment boots publishes
        // its recorded trace; each lands next to the vendored fixtures.
        let traces = capture_experiment(id, &scale);
        if traces.is_empty() {
            eprintln!("reproduce replay: --record {id} captured no disk or namespace activity");
            return ExitCode::FAILURE;
        }
        let dir = cli.out_dir.join("traces");
        fs::create_dir_all(&dir).expect("create trace directory");
        for (k, trace) in traces.iter().enumerate() {
            let name = format!("{id}_{k}");
            let path = dir.join(format!("{name}.tntrace"));
            fs::write(&path, trace.to_bytes()).expect("write capture");
            println!(
                "  [captured {} event(s) -> {}]",
                trace.len(),
                path.display()
            );
            targets.push((name, trace.clone()));
        }
        println!();
    }
    for arg in &cli.ids {
        match load_trace_arg(arg, cli) {
            Ok(target) => targets.push(target),
            Err(err) => {
                eprintln!("reproduce replay: {err}");
                return ExitCode::from(2);
            }
        }
    }
    if targets.is_empty() {
        eprintln!(
            "reproduce replay: name a fixture or trace file, or pass --record ID\n{}",
            cli::usage()
        );
        return ExitCode::from(2);
    }

    let ms = |cy: u64| cy as f64 * 1_000.0 / CPU_HZ as f64;
    let mut docs: Vec<Value> = Vec::new();
    for (name, trace) in &targets {
        println!(
            "== replay {name}: {} event(s), {} path(s), recorded span {:.2} ms ==",
            trace.len(),
            trace.paths.len(),
            ms(trace.span())
        );
        println!(
            "  {:<12} {:>6} {:>6} {:>7} {:>8} {:>11} {:>11} {:>5}",
            "OS", "cmds", "reads", "writes", "blocks", "busy ms", "timed ms", "eio"
        );
        let mut os_docs: Vec<(String, Value)> = Vec::new();
        for os in tnt_core::Os::benchmarked() {
            let asap = replay_trace(trace, os, 1, ReplayOptions::asap());
            let timed = replay_trace(trace, os, 1, ReplayOptions::timed());
            println!(
                "  {:<12} {:>6} {:>6} {:>7} {:>8} {:>11.2} {:>11.2} {:>5}",
                os.label(),
                asap.commands,
                asap.reads,
                asap.writes,
                asap.blocks_moved,
                ms(asap.busy_cy),
                ms(timed.elapsed_cy),
                asap.eio,
            );
            os_docs.push((
                os.label().to_string(),
                Value::Obj(vec![
                    ("asap".into(), replay_json(&asap)),
                    ("timed".into(), replay_json(&timed)),
                ]),
            ));
        }
        println!();
        docs.push(Value::Obj(vec![
            ("trace".into(), Value::Str(name.clone())),
            ("events".into(), Value::Num(trace.len() as f64)),
            ("span_cy".into(), Value::Num(trace.span() as f64)),
            ("os".into(), Value::Obj(os_docs)),
        ]));
    }
    let doc = Value::Obj(vec![
        ("mode".into(), Value::Str("replay".into())),
        ("scale".into(), Value::Str(scale.label.to_string())),
        ("faults".into(), Value::Str(cli.faults.name().to_string())),
        ("replays".into(), Value::Arr(docs)),
    ]);
    let path = cli.out_dir.join("REPLAY.json");
    fs::write(&path, doc.render()).expect("write replay artifact");
    println!("replay artifact written to {}", path.display());
    ExitCode::SUCCESS
}

/// Exhaustive schedule exploration of the canned concurrency scenarios:
/// every interleaving of contended dispatches (sleep-set pruned) must
/// produce the identical outcome, with no deadlocks or lost wakeups.
fn explore_cmd(cli: &Cli) -> ExitCode {
    println!("tnt explore — exhaustive schedule exploration (happens-before armed)\n");
    fs::create_dir_all(&cli.out_dir).expect("create output directory");
    // `--all` and an empty selection both mean "every canned scenario";
    // the flag exists so CI invocations read as intent, not omission.
    let names = if cli.explore_all {
        Vec::new()
    } else {
        cli.ids.clone()
    };
    // Generous per-scenario cap: the canned scenarios close out in tens
    // to hundreds of schedules; hitting this means state-space blowup,
    // which run_explore reports as a failure rather than truncating.
    let outcomes = match run_explore(&names, 4096) {
        Ok(o) => o,
        Err(err) => {
            eprintln!("reproduce explore: {err}");
            return ExitCode::from(2);
        }
    };
    for o in &outcomes {
        print!("{}", render_explore(o));
    }
    let doc = explore_json(&outcomes);
    let path = cli.out_dir.join("EXPLORE.json");
    fs::write(&path, doc.render()).expect("write explore artifact");
    println!("explore artifact written to {}", path.display());
    let failed: Vec<&str> = outcomes
        .iter()
        .filter(|o| !o.report.passed())
        .map(|o| o.name)
        .collect();
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "reproduce explore: {} scenario(s) FAILED: {}",
            failed.len(),
            failed.join(", ")
        );
        ExitCode::FAILURE
    }
}

/// The full internet-server rate sweep: per-OS capacity and tail-latency
/// curves for the TCP and NFS workloads, on the worker pool.
fn farm(cli: &Cli) -> ExitCode {
    let scale = cli.scale();
    let jobs = cli.effective_jobs();
    banner(cli, &scale, jobs);
    fs::create_dir_all(&cli.out_dir).expect("create output directory");
    let sweep = farm_sweep(&scale, cli.faults.name(), jobs);
    println!("{}", sweep.text);
    for (name, contents) in &sweep.csv {
        let path = cli.out_dir.join(name);
        fs::write(&path, contents).expect("write farm CSV");
        println!("  [series written to {}]", path.display());
    }
    let path = cli.out_dir.join("BENCH_farm.json");
    fs::write(&path, sweep.doc.render()).expect("write farm artifact");
    println!("farm artifact written to {}", path.display());
    ExitCode::SUCCESS
}

/// Runs the suite and returns the per-experiment results.
fn run_suite(cli: &Cli, scale: &Scale, jobs: usize) -> Vec<ExperimentResult> {
    let ids = cli.resolved_ids();
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    execute(plan(&id_refs, scale), jobs)
}

/// Collects the structured records of a run, in suite order.
fn records_of(results: &[ExperimentResult]) -> Vec<ExperimentRecord> {
    results
        .iter()
        .flat_map(|r| r.outputs.iter().filter_map(|o| o.record.clone()))
        .collect()
}

fn banner(cli: &Cli, scale: &Scale, jobs: usize) {
    println!(
        "tnt reproduce — 'A Performance Comparison of UNIX Operating Systems on the Pentium'"
    );
    println!(
        "scale: {} ({} run(s) per measurement), {} worker(s)",
        scale.label, scale.runs, jobs
    );
    // Only a non-default profile prints: with --faults off the output
    // stays byte-identical to builds that predate the fault plane.
    if !cli.faults.is_off() {
        println!("faults: {} (deterministic, seed-driven)", cli.faults.name());
    }
    println!();
}

fn run(cli: &Cli) -> ExitCode {
    let scale = cli.scale();
    let jobs = cli.effective_jobs();
    banner(cli, &scale, jobs);
    fs::create_dir_all(&cli.out_dir).expect("create output directory");
    // audit:allow(wallclock) host-side progress timing, never simulated state audit:allow(nondet-taint) prints "done in N s" only; no recorded statistic reads it
    let t0 = std::time::Instant::now();
    let results = run_suite(cli, &scale, jobs);
    let mut md = String::from(
        "# Reproduction record\n\nGenerated by `reproduce`; every block below is one paper \
         table/figure (or an ablation) rendered from the simulation.\n",
    );
    let mut failures = Vec::new();
    for result in &results {
        if let Some(err) = &result.error {
            failures.push(format!("{}: {err}", result.id));
        }
        for output in &result.outputs {
            println!("{}", output.text);
            md.push_str(&format!(
                "\n## {}\n\n```text\n{}```\n",
                output.title, output.text
            ));
            for (name, contents) in &output.csv {
                let path = cli.out_dir.join(name);
                fs::write(&path, contents).expect("write CSV");
                println!("  [series written to {}]\n", path.display());
                md.push_str(&format!("\nSeries: [`{}`]({})\n", name, path.display()));
            }
            if cli.profile {
                if let Some(p) = profile_one(output.id, &scale) {
                    println!("{}", p.text);
                    md.push_str(&format!("\n```text\n{}```\n", p.text));
                    for (name, contents) in &p.files {
                        let path = cli.out_dir.join(name);
                        fs::write(&path, contents).expect("write folded stacks");
                        println!("  [folded stacks written to {}]\n", path.display());
                    }
                }
            }
        }
    }
    if let Some(path) = &cli.markdown {
        fs::write(path, md).expect("write markdown report");
        println!("markdown report written to {}", path.display());
    }
    if cli.audit {
        let audit = conservation_audit(&scale);
        println!("{}", audit.render());
        if !audit.passed() {
            failures.push(format!(
                "cycle-conservation audit: {} sample(s) drifted",
                audit.failures.len()
            ));
        }
    }
    println!("done in {:.1}s (host time)", t0.elapsed().as_secs_f64());
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("\n{} experiment(s) FAILED:", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}

fn baselines_path(cli: &Cli) -> std::path::PathBuf {
    cli.out_dir.join("baselines.json")
}

fn bless(cli: &Cli) -> ExitCode {
    let scale = cli.scale();
    let jobs = cli.effective_jobs();
    banner(cli, &scale, jobs);
    fs::create_dir_all(&cli.out_dir).expect("create output directory");
    let results = run_suite(cli, &scale, jobs);
    for result in &results {
        if let Some(err) = &result.error {
            eprintln!("reproduce bless: {}: {err}", result.id);
            eprintln!("refusing to bless a run with failed experiments");
            return ExitCode::FAILURE;
        }
    }
    let store = BaselineStore {
        scale: scale.label.to_string(),
        records: records_of(&results),
    };
    let path = baselines_path(cli);
    fs::write(&path, store.to_json()).expect("write baselines");
    println!(
        "blessed {} experiment record(s) -> {}",
        store.records.len(),
        path.display()
    );
    for rec in &store.records {
        println!(
            "  {:<4} {:<40} {:>2} stat(s)  {:>8.1} ms",
            rec.id,
            rec.title,
            rec.stats.len(),
            rec.wall_ms
        );
    }
    ExitCode::SUCCESS
}

fn check(cli: &Cli) -> ExitCode {
    let path = baselines_path(cli);
    let blessed = match fs::read_to_string(&path) {
        Ok(text) => match BaselineStore::from_json(&text) {
            Ok(store) => store,
            Err(err) => {
                eprintln!("reproduce check: {} is corrupt: {err}", path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(err) => {
            eprintln!(
                "reproduce check: cannot read {} ({err}); run `reproduce bless` first",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let scale = cli.scale();
    let jobs = cli.effective_jobs();
    banner(cli, &scale, jobs);
    let results = run_suite(cli, &scale, jobs);
    let mut failed = false;
    for result in &results {
        if let Some(err) = &result.error {
            eprintln!("reproduce check: {}: {err}", result.id);
            failed = true;
        }
    }
    let fresh = BaselineStore {
        scale: scale.label.to_string(),
        records: records_of(&results),
    };
    let drifts = blessed.compare(&fresh, cli.tolerance_pct);
    println!(
        "checked {} fresh record(s) against {} blessed ({}, tolerance {}%)",
        fresh.records.len(),
        blessed.records.len(),
        path.display(),
        cli.tolerance_pct
    );
    if cli.audit {
        let audit = conservation_audit(&scale);
        println!("{}", audit.render());
        if !audit.passed() {
            eprintln!("reproduce check: cycle-conservation audit failed");
            failed = true;
        }
    }
    if drifts.is_empty() && !failed {
        println!("regression gate PASSED: no statistic drifted past tolerance");
        ExitCode::SUCCESS
    } else {
        eprintln!("regression gate FAILED: {} drift(s)", drifts.len());
        for d in &drifts {
            eprintln!("  {d}");
        }
        ExitCode::FAILURE
    }
}

fn bench(cli: &Cli) -> ExitCode {
    let scale = cli.scale();
    let jobs = cli.effective_jobs();
    banner(cli, &scale, jobs);
    fs::create_dir_all(&cli.out_dir).expect("create output directory");

    // audit:allow(wallclock) bench mode measures host time by definition
    let t0 = std::time::Instant::now();
    let serial = run_suite(cli, &scale, 1);
    let serial_s = t0.elapsed().as_secs_f64();

    // audit:allow(wallclock) bench mode measures host time by definition
    let t1 = std::time::Instant::now();
    let parallel = run_suite(cli, &scale, jobs);
    let parallel_s = t1.elapsed().as_secs_f64();

    // The whole point of the parallel runner is that this comparison
    // is apples to apples: identical bytes, different wall clock.
    let serial_text: String = serial
        .iter()
        .flat_map(|r| r.outputs.iter().map(|o| o.text.as_str()))
        .collect();
    let parallel_text: String = parallel
        .iter()
        .flat_map(|r| r.outputs.iter().map(|o| o.text.as_str()))
        .collect();
    let identical = serial_text == parallel_text;
    let speedup = serial_s / parallel_s.max(1e-9);

    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("runner".into())),
        ("scale".into(), Value::Str(scale.label.to_string())),
        (
            "experiments".into(),
            Value::Num(serial.len() as f64),
        ),
        ("jobs".into(), Value::Num(jobs as f64)),
        ("serial_s".into(), Value::Num(serial_s)),
        ("parallel_s".into(), Value::Num(parallel_s)),
        ("speedup".into(), Value::Num(speedup)),
        ("byte_identical".into(), Value::Bool(identical)),
    ]);
    let path = cli.out_dir.join("BENCH_runner.json");
    fs::write(&path, doc.render()).expect("write bench artifact");
    println!(
        "serial {serial_s:.2}s, parallel ({jobs} worker(s)) {parallel_s:.2}s -> {speedup:.2}x; \
         outputs byte-identical: {identical}"
    );
    println!("bench artifact written to {}", path.display());
    if identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("reproduce bench: parallel output DIVERGED from serial output");
        ExitCode::FAILURE
    }
}

fn ring_json(r: &RingResult) -> Value {
    Value::Obj(vec![
        ("wall_s".into(), Value::Num(r.wall_s)),
        ("handoffs".into(), Value::Num(r.handoffs as f64)),
        ("handoffs_per_s".into(), Value::Num(r.handoffs_per_s())),
        ("events_per_s".into(), Value::Num(r.events_per_s())),
        (
            "sim_mcycles_per_s".into(),
            Value::Num(r.sim_mcycles_per_s()),
        ),
    ])
}

fn bench_engine(cli: &Cli) -> ExitCode {
    fs::create_dir_all(&cli.out_dir).expect("create output directory");
    println!("tnt bench-engine — threaded baton engine vs lite cooperative scheduler\n");

    // Head-to-head at a size the threaded engine can still host (one OS
    // thread per process): both backends run the identical simulated
    // ring and must agree on the simulated outcome to the byte.
    let (procs, rounds, seed) = (192u32, 200u32, 1996u64);
    let threaded = threaded_ring(procs, rounds, seed);
    let lite = lite_ring(procs, rounds, seed);
    let identical =
        threaded.elapsed == lite.elapsed && threaded.total_cpu == lite.total_cpu;
    println!(
        "ring {procs} procs x {rounds} rounds (seed {seed}):\n\
         \x20 threaded: {:>9.0} handoffs/s  {:>9.0} events/s  {:>7.1} sim-Mcy/s  ({:.3}s)\n\
         \x20 lite:     {:>9.0} handoffs/s  {:>9.0} events/s  {:>7.1} sim-Mcy/s  ({:.3}s)\n\
         \x20 simulated outcome byte-identical: {identical}",
        threaded.handoffs_per_s(),
        threaded.events_per_s(),
        threaded.sim_mcycles_per_s(),
        threaded.wall_s,
        lite.handoffs_per_s(),
        lite.events_per_s(),
        lite.sim_mcycles_per_s(),
        lite.wall_s,
    );

    // Crowd scale: far past where per-process threads stop being an
    // option (10k x 512 KB stacks would be ~5 GB).
    let crowd = lite_ring(10_000, 50, seed);
    println!(
        "\nlite crowd 10000 procs x 50 rounds: {:>9.0} handoffs/s  ({:.3}s)",
        crowd.handoffs_per_s(),
        crowd.wall_s,
    );

    let ratio = lite.handoffs_per_s() / threaded.handoffs_per_s().max(1e-9);
    println!("\nlite/threaded handoff throughput: {ratio:.1}x");

    // Happens-before overhead gate: the same threaded ring with the race
    // detector armed. Disarmed cost is zero by construction (the hooks
    // are compiled out without the `audit` feature), so the artifact
    // records and bounds only the *armed* slowdown.
    let hb = threaded_ring_hb(procs, rounds, seed);
    let hb_identical = hb.elapsed == threaded.elapsed && hb.total_cpu == threaded.total_cpu;
    let hb_ratio = threaded.handoffs_per_s() / hb.handoffs_per_s().max(1e-9);
    println!(
        "\nhb-armed ring: {:>9.0} handoffs/s  ({:.3}s) -> {hb_ratio:.2}x slowdown \
         (gate < {HB_OVERHEAD_GATE:.1}x); simulation identical: {hb_identical}",
        hb.handoffs_per_s(),
        hb.wall_s,
    );

    // Wall-clock regression gate: the whole --quick suite, timed end to
    // end against the recorded pre-overhaul baseline
    // (results/BENCH_engine_before.json). The hot-path work — timer
    // wheel, batched charging, arena trace ring, parker fast path,
    // stream extrapolation — is a throughput claim, and ring
    // micro-benches alone would not notice a regression that only bites
    // the full figure suite. The gate trips when the suite stops
    // finishing within QUICK_GATE_FRACTION of the baseline wall clock;
    // the fraction leaves ~1.7x of the measured ~3x speedup as headroom
    // for slower CI hosts.
    println!("\ntiming the --quick figure suite (serial)...");
    let ids = all_ids();
    // audit:allow(wallclock) bench mode measures host time by definition
    let t0 = std::time::Instant::now();
    let quick_results = execute(plan(&ids, &Scale::quick()), 1);
    let quick_wall = t0.elapsed().as_secs_f64();
    let quick_errors: Vec<String> = quick_results
        .iter()
        .filter_map(|r| r.error.as_ref().map(|e| format!("{}: {e}", r.id)))
        .collect();
    let baseline = quick_baseline_s();
    let quick_gate_ok = match baseline {
        // A missing baseline file (running outside the repo root) skips
        // the gate rather than failing a build that never claimed one.
        None => true,
        Some(base) => quick_wall <= base * QUICK_GATE_FRACTION,
    };
    match baseline {
        Some(base) => println!(
            "quick suite: {quick_wall:.2}s vs {base:.2}s pre-overhaul baseline \
             ({:.2}x speedup; gate <= {:.2}s)",
            base / quick_wall.max(1e-9),
            base * QUICK_GATE_FRACTION,
        ),
        None => println!(
            "quick suite: {quick_wall:.2}s (no recorded baseline at \
             {QUICK_BASELINE_PATH}; wall-clock gate skipped)"
        ),
    }

    let doc = Value::Obj(vec![
        ("bench".into(), Value::Str("engine".into())),
        ("procs".into(), Value::Num(f64::from(procs))),
        ("rounds".into(), Value::Num(f64::from(rounds))),
        ("seed".into(), Value::Num(seed as f64)),
        ("threaded".into(), ring_json(&threaded)),
        ("lite".into(), ring_json(&lite)),
        ("lite_crowd_10k".into(), ring_json(&crowd)),
        ("threaded_hb".into(), ring_json(&hb)),
        ("handoff_ratio".into(), Value::Num(ratio)),
        ("hb_overhead_ratio".into(), Value::Num(hb_ratio)),
        ("hb_identical".into(), Value::Bool(hb_identical)),
        ("byte_identical".into(), Value::Bool(identical)),
        (
            "quick_suite".into(),
            Value::Obj(vec![
                ("wall_s".into(), Value::Num(quick_wall)),
                (
                    "baseline_wall_s".into(),
                    baseline.map_or(Value::Null, Value::Num),
                ),
                (
                    "speedup".into(),
                    baseline.map_or(Value::Null, |b| Value::Num(b / quick_wall.max(1e-9))),
                ),
                ("gate_fraction".into(), Value::Num(QUICK_GATE_FRACTION)),
                ("gate_passed".into(), Value::Bool(quick_gate_ok)),
            ]),
        ),
    ]);
    let path = cli.out_dir.join("BENCH_engine.json");
    fs::write(&path, doc.render()).expect("write bench artifact");
    println!("bench artifact written to {}", path.display());
    let mut ok = true;
    if !identical {
        eprintln!("reproduce bench-engine: lite outcome DIVERGED from threaded outcome");
        ok = false;
    }
    if !hb_identical {
        eprintln!("reproduce bench-engine: hb-armed outcome DIVERGED from plain outcome");
        ok = false;
    }
    if hb_ratio >= HB_OVERHEAD_GATE {
        eprintln!(
            "reproduce bench-engine: hb overhead {hb_ratio:.2}x breaches the \
             {HB_OVERHEAD_GATE:.1}x gate"
        );
        ok = false;
    }
    for err in &quick_errors {
        eprintln!("reproduce bench-engine: quick suite failed: {err}");
        ok = false;
    }
    if !quick_gate_ok {
        let base = baseline.unwrap_or(f64::NAN);
        eprintln!(
            "reproduce bench-engine: quick suite took {quick_wall:.2}s, over the \
             {:.2}s wall-clock gate ({QUICK_GATE_FRACTION:.2} x {base:.2}s baseline)",
            base * QUICK_GATE_FRACTION,
        );
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Where the pre-overhaul suite timing is recorded (committed to the
/// repo, so CI can upload the before/after pair side by side).
const QUICK_BASELINE_PATH: &str = "results/BENCH_engine_before.json";

/// The baseline `--quick` suite wall clock, if the recorded artifact is
/// readable from the working directory.
fn quick_baseline_s() -> Option<f64> {
    let text = fs::read_to_string(QUICK_BASELINE_PATH).ok()?;
    Value::parse(&text)
        .ok()?
        .get("quick_suite")?
        .get("wall_s")?
        .as_f64()
        .filter(|s| s.is_finite() && *s > 0.0)
}

/// Ceiling on the armed happens-before slowdown of the threaded ring.
/// Vector-clock joins and footprint appends are O(live tasks) per hook,
/// which the ring keeps small. The ratio is armed/disarmed, and the
/// hot-path overhaul made the *disarmed* denominator cheaper (parker
/// fast path, batched charging), so the same armed cost now reads as a
/// larger ratio — single-core hosts measure ~2.7-3.1x where the old
/// engine read ~2.5x. 4x keeps that headroom while still catching an
/// accidentally quadratic hook, which blows past 10x.
const HB_OVERHEAD_GATE: f64 = 4.0;

/// The `--quick` suite must finish within this fraction of the recorded
/// pre-overhaul baseline wall clock. The overhaul measured ~3x on the
/// recording host; gating at 0.6x asserts a durable >= 1.67x while
/// absorbing host-speed variance between the recording machine and CI.
const QUICK_GATE_FRACTION: f64 = 0.6;
