//! One entry per table and figure of the paper.
//!
//! Each experiment is described as an [`ExperimentPlan`]: a set of
//! independent `Send` shards — legs of the id × OS personality ×
//! seeded-run matrix — plus a render closure that turns the shard
//! samples into the paper's format (tables with Std Dev and Norm.
//! columns, figures as ASCII plots plus CSV series). The shards carry
//! cost hints so the parallel runner can balance them across cores;
//! rendering uses nothing but the shard results, which is what makes
//! `--jobs N` output byte-identical to a serial run.
//!
//! Every experiment also emits a structured [`ExperimentRecord`]
//! (extracted from the same `Table`/`Figure` the text is rendered
//! from) for the golden-baseline store.

use std::sync::Arc;

use crate::plan::{execute, plan, Cell, ExperimentPlan, PlanBody};
use crate::plot::{Figure, XScale};
use crate::scale::Scale;
use crate::table::{Direction, Row, Table};
use tnt_core::{
    bonnie, crtdel_ms, ctx_us, mab_local, mab_over_nfs, mem_bandwidth, packet_sizes,
    pipe_bandwidth_mbit, syscall_us, tcp_bandwidth_mbit, udp_bandwidth_mbit, CtxPattern,
    LibcVariant, MemRoutine, Os,
};
use tnt_runner::ExperimentRecord;
use tnt_sim::{Series, Summary};

/// The rendered result of one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Short id: "t2", "f1", ...
    pub id: &'static str,
    /// Paper title of the table/figure.
    pub title: &'static str,
    /// Rendered text (table or ASCII figure).
    pub text: String,
    /// CSV files to write: (file name, contents).
    pub csv: Vec<(String, String)>,
    /// Machine-readable statistics for the baselines store. `None`
    /// only for failure reports.
    pub record: Option<ExperimentRecord>,
}

/// Every experiment id, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "t1", "t2", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11", "f12",
        "t3", "t4", "f13", "t5", "t6", "t7",
    ]
}

/// Runs one experiment by id, serially. Some ids share computation
/// (f9-f11 all run bonnie), so prefer [`run_many`] for several ids.
pub fn run_one(id: &str, scale: &Scale) -> Vec<ExperimentOutput> {
    let outputs: Vec<ExperimentOutput> = execute(plan(&[id], scale), 1)
        .into_iter()
        .flat_map(|r| r.outputs)
        .collect();
    if matches!(id, "f9" | "f10" | "f11") {
        // The shared sweep renders all three figures; keep only the
        // requested one.
        outputs.into_iter().filter(|o| o.id == id).collect()
    } else {
        outputs
    }
}

/// Runs a set of experiments serially, sharing work where possible.
/// The parallel path is `execute(plan(ids, scale), jobs)`; this is its
/// single-worker reference, byte-identical by construction.
pub fn run_many(ids: &[&str], scale: &Scale) -> Vec<ExperimentOutput> {
    execute(plan(ids, scale), 1)
        .into_iter()
        .flat_map(|r| r.outputs)
        .collect()
}

/// Plans one experiment by id (bonnie legs are planned together via
/// [`plan_bonnie`]; `plan` handles that grouping).
pub(crate) fn plan_one(id: &str, scale: &Scale) -> ExperimentPlan {
    match id {
        "t1" => plan_t1(),
        "t2" => plan_t2(scale),
        "f1" => plan_f1(scale),
        "f2" => plan_mem(
            "f2",
            "FIGURE 2. Custom Read",
            vec![("custom read", MemRoutine::CustomRead)],
            scale,
        ),
        "f3" => plan_mem(
            "f3",
            "FIGURE 3. Memset",
            libc_curves(MemRoutine::LibcMemset),
            scale,
        ),
        "f4" => plan_mem(
            "f4",
            "FIGURE 4. Naive Custom Write",
            vec![("naive write", MemRoutine::CustomWriteNaive)],
            scale,
        ),
        "f5" => plan_mem(
            "f5",
            "FIGURE 5. Prefetching Custom Write",
            vec![("prefetch write", MemRoutine::CustomWritePrefetch)],
            scale,
        ),
        "f6" => plan_mem(
            "f6",
            "FIGURE 6. Memcpy",
            libc_curves(MemRoutine::LibcMemcpy),
            scale,
        ),
        "f7" => plan_mem(
            "f7",
            "FIGURE 7. Naive Custom Copy",
            vec![("naive copy", MemRoutine::CustomCopyNaive)],
            scale,
        ),
        "f8" => plan_mem(
            "f8",
            "FIGURE 8. Prefetching Custom Copy",
            vec![("prefetch copy", MemRoutine::CustomCopyPrefetch)],
            scale,
        ),
        "f9" | "f10" | "f11" => plan_bonnie(scale),
        "f12" => plan_f12(scale),
        "t3" => plan_t3(scale),
        "t4" => plan_t4(scale),
        "f13" => plan_f13(scale),
        "t5" => plan_t5(scale),
        "t6" => plan_nfs("t6", Os::Linux, scale),
        "t7" => plan_nfs("t7", Os::SunOs, scale),
        "x1" | "x2" | "x3" | "x4" | "x5" | "x6" | "x7" | "x8" => {
            crate::ablations::plan_extra(id, scale)
        }
        "x9" => crate::farm::plan_x9(scale),
        "x10" => crate::farm::plan_x10(scale),
        "x11" => crate::replay::plan_x11(scale),
        "x12" => crate::replay::plan_x12(scale),
        other => panic!("unknown experiment id {other:?}"),
    }
}

fn os_label(os: Os) -> String {
    os.label().to_string()
}

// ---------------------------------------------------------------------
// Generic builders: table plans and figure plans.
// ---------------------------------------------------------------------

/// Per-seed sampler for one table row.
type RowSampler = Arc<dyn Fn(u64) -> f64 + Send + Sync>;
/// Per-(x, seed) sampler for one figure curve.
type CurveSampler = Arc<dyn Fn(f64, u64) -> f64 + Send + Sync>;

/// A table experiment: one cell per (row × seed), rendered into a
/// paper-style table with an extracted record.
#[allow(clippy::too_many_arguments)]
fn table_plan(
    id: &'static str,
    title: &'static str,
    table_title: String,
    unit: &'static str,
    direction: Direction,
    rows: Vec<(String, f64, RowSampler)>,
    seeds: Vec<u64>,
    cell_cost: u64,
) -> ExperimentPlan {
    let mut cells = Vec::new();
    for (label, _, sampler) in &rows {
        for &seed in &seeds {
            let sampler = sampler.clone();
            cells.push(Cell {
                label: format!("{id}/{label}/run{seed}"),
                cost: cell_cost,
                work: Box::new(move || vec![sampler(seed)]),
            });
        }
    }
    let n_seeds = seeds.len();
    let meta: Vec<(String, f64)> = rows.into_iter().map(|(l, p, _)| (l, p)).collect();
    let render = Box::new(move |shards: Vec<Vec<f64>>| {
        let rows = meta
            .into_iter()
            .enumerate()
            .map(|(i, (label, paper))| {
                let samples: Vec<f64> = shards[i * n_seeds..(i + 1) * n_seeds]
                    .iter()
                    .flat_map(|v| v.iter().copied())
                    .collect();
                Row {
                    label,
                    summary: Summary::of(&samples),
                    paper,
                }
            })
            .collect();
        let table = Table {
            title: table_title,
            unit,
            direction,
            rows,
        };
        let record =
            ExperimentRecord::new(id, title, n_seeds as u64).with_stats(table.stat_lines());
        vec![ExperimentOutput {
            id,
            title,
            text: table.render(),
            csv: vec![],
            record: Some(record),
        }]
    });
    ExperimentPlan {
        id,
        title,
        body: PlanBody::Cells { cells, render },
    }
}

/// A figure experiment: one cell per (curve × x), each covering all
/// seeds, rendered into an ASCII figure + CSV with an extracted
/// record.
#[allow(clippy::too_many_arguments)]
fn figure_plan(
    id: &'static str,
    title: &'static str,
    fig_title: String,
    x_label: String,
    y_label: String,
    x_scale: XScale,
    curves: Vec<(String, CurveSampler)>,
    xs: Vec<f64>,
    seeds: Vec<u64>,
    cost_of_x: impl Fn(f64) -> u64,
    csv_name: String,
) -> ExperimentPlan {
    let mut cells = Vec::new();
    for (label, sampler) in &curves {
        for &x in &xs {
            let sampler = sampler.clone();
            let seeds = seeds.clone();
            cells.push(Cell {
                label: format!("{id}/{label}/x={x}"),
                cost: cost_of_x(x),
                work: Box::new(move || seeds.iter().map(|&seed| sampler(x, seed)).collect()),
            });
        }
    }
    let n_xs = xs.len();
    let runs = seeds.len() as u64;
    let labels: Vec<String> = curves.into_iter().map(|(l, _)| l).collect();
    let render = Box::new(move |shards: Vec<Vec<f64>>| {
        let mut series = Vec::new();
        for (ci, label) in labels.into_iter().enumerate() {
            let mut s = Series::new(label);
            for (xi, &x) in xs.iter().enumerate() {
                let samples = &shards[ci * n_xs + xi];
                s.push(x, Summary::of(samples).mean);
            }
            series.push(s);
        }
        let fig = Figure {
            title: fig_title,
            x_label,
            y_label,
            x_scale,
            series,
        };
        let record = ExperimentRecord::new(id, title, runs).with_stats(fig.stat_lines());
        vec![ExperimentOutput {
            id,
            title,
            text: fig.render(),
            csv: vec![(csv_name, fig.to_csv())],
            record: Some(record),
        }]
    });
    ExperimentPlan {
        id,
        title,
        body: PlanBody::Cells { cells, render },
    }
}

// ---------------------------------------------------------------------
// Table 1: static configuration.
// ---------------------------------------------------------------------

fn plan_t1() -> ExperimentPlan {
    ExperimentPlan {
        id: "t1",
        title: "TABLE 1. Disk Partitioning",
        body: PlanBody::Whole {
            cost: 1,
            run: Box::new(|| {
                let text = "\
TABLE 1. Disk Partitioning (configuration, reproduced verbatim)
  OS            Version   Size (MB)
  ---------------------------------
  DOS/Windows   6.2/3.1   250
  Solaris       2.4       700
  FreeBSD       2.0.5R    400
  Linux         1.2.8     600
  Benchmark disk: HP 3725 (fresh 200 MB filesystem per experiment)
  System disk:    Quantum Empire 2100S
"
                .to_string();
                vec![ExperimentOutput {
                    id: "t1",
                    title: "TABLE 1. Disk Partitioning",
                    text,
                    csv: vec![],
                    record: Some(ExperimentRecord::new(
                        "t1",
                        "TABLE 1. Disk Partitioning",
                        1,
                    )),
                }]
            }),
        },
    }
}

// ---------------------------------------------------------------------
// Table 2: system call.
// ---------------------------------------------------------------------

fn plan_t2(scale: &Scale) -> ExperimentPlan {
    let paper = [(Os::Linux, 2.31), (Os::FreeBsd, 2.62), (Os::Solaris, 3.52)];
    let iters = scale.syscall_iters;
    let rows = paper
        .iter()
        .map(|&(os, paper_us)| {
            let sampler: RowSampler = Arc::new(move |seed| syscall_us(os, iters, seed));
            (os_label(os), paper_us, sampler)
        })
        .collect();
    table_plan(
        "t2",
        "TABLE 2. System Call",
        "TABLE 2. System Call (getpid)".into(),
        "µs",
        Direction::LowerBetter,
        rows,
        scale.seeds(),
        (scale.syscall_iters as u64) / 10,
    )
}

// ---------------------------------------------------------------------
// Figure 1: context switching.
// ---------------------------------------------------------------------

fn plan_f1(scale: &Scale) -> ExperimentPlan {
    let specs: Vec<(String, Os, CtxPattern)> = vec![
        ("Linux".into(), Os::Linux, CtxPattern::Ring),
        ("FreeBSD".into(), Os::FreeBsd, CtxPattern::Ring),
        ("Solaris".into(), Os::Solaris, CtxPattern::Ring),
        ("Solaris-LIFO".into(), Os::Solaris, CtxPattern::LifoChain),
    ];
    let switches = scale.ctx_switches;
    let curves = specs
        .into_iter()
        .map(|(label, os, pattern)| {
            let sampler: CurveSampler =
                Arc::new(move |x, seed| ctx_us(os, x as usize, switches, pattern, seed));
            (label, sampler)
        })
        .collect();
    figure_plan(
        "f1",
        "FIGURE 1. Context Switch",
        "FIGURE 1. Context Switch (µs per switch incl. pipe overhead)".into(),
        "active processes".into(),
        "µs/switch".into(),
        XScale::Linear,
        curves,
        scale.ctx_procs.iter().map(|&n| n as f64).collect(),
        scale.seeds(),
        move |x| switches * (x as u64) / 2,
        "f1_ctx.csv".into(),
    )
}

// ---------------------------------------------------------------------
// Figures 2-8: memory bandwidth.
// ---------------------------------------------------------------------

fn libc_curves(make: fn(LibcVariant) -> MemRoutine) -> Vec<(&'static str, MemRoutine)> {
    vec![
        ("Linux libc", make(LibcVariant::Linux)),
        ("FreeBSD libc", make(LibcVariant::FreeBsd)),
        ("Solaris libc", make(LibcVariant::Solaris)),
    ]
}

fn plan_mem(
    id: &'static str,
    title: &'static str,
    curves: Vec<(&'static str, MemRoutine)>,
    scale: &Scale,
) -> ExperimentPlan {
    let total = scale.mem_total;
    let curves = curves
        .into_iter()
        .map(|(label, routine)| {
            let sampler: CurveSampler =
                Arc::new(move |x, seed| mem_bandwidth(routine, x as u64, total, seed));
            (label.to_string(), sampler)
        })
        .collect();
    figure_plan(
        id,
        title,
        format!("{title} (MB/s vs buffer size)"),
        "buffer size (bytes, log2)".into(),
        "MB/s".into(),
        XScale::Log2,
        curves,
        scale.mem_sizes.iter().map(|&b| b as f64).collect(),
        scale.seeds(),
        move |_| total / 300,
        format!("{id}_mem.csv"),
    )
}

// ---------------------------------------------------------------------
// Figures 9-11: bonnie (one sweep, three figures).
// ---------------------------------------------------------------------

/// Plans the shared bonnie sweep: one cell per (OS × file size), each
/// returning `[write, read, seeks]` per seed; the render emits Figures
/// 9, 10 and 11 from the one sweep.
pub(crate) fn plan_bonnie(scale: &Scale) -> ExperimentPlan {
    let oses = Os::benchmarked();
    let sizes = scale.bonnie_sizes_mb.clone();
    let seeks = scale.bonnie_seeks;
    let seeds = scale.mab_seeds();
    let mut cells = Vec::new();
    for &os in &oses {
        for &mb in &sizes {
            let seeds = seeds.clone();
            cells.push(Cell {
                label: format!("bonnie/{}/{}MB", os.label(), mb),
                cost: mb * 1500,
                work: Box::new(move || {
                    let mut out = Vec::with_capacity(seeds.len() * 3);
                    for &seed in &seeds {
                        let b = bonnie(os, mb, seeks, seed);
                        out.push(b.write_mb_s);
                        out.push(b.read_mb_s);
                        out.push(b.seeks_per_s);
                    }
                    out
                }),
            });
        }
    }
    let runs = seeds.len() as u64;
    let n_sizes = sizes.len();
    let render = Box::new(move |shards: Vec<Vec<f64>>| {
        let mut write: Vec<Series> = Vec::new();
        let mut read: Vec<Series> = Vec::new();
        let mut seeks: Vec<Series> = Vec::new();
        for (oi, os) in oses.iter().enumerate() {
            let mut ws = Series::new(os.label());
            let mut rs = Series::new(os.label());
            let mut ss = Series::new(os.label());
            for (si, &mb) in sizes.iter().enumerate() {
                let shard = &shards[oi * n_sizes + si];
                let w: Vec<f64> = shard.iter().step_by(3).copied().collect();
                let r: Vec<f64> = shard.iter().skip(1).step_by(3).copied().collect();
                let s: Vec<f64> = shard.iter().skip(2).step_by(3).copied().collect();
                ws.push(mb as f64, Summary::of(&w).mean);
                rs.push(mb as f64, Summary::of(&r).mean);
                ss.push(mb as f64, Summary::of(&s).mean);
            }
            write.push(ws);
            read.push(rs);
            seeks.push(ss);
        }
        let make = |id: &'static str, title: &'static str, y: &str, series: Vec<Series>| {
            let fig = Figure {
                title: format!("{title} vs file size (MB, log2)"),
                x_label: "file size (MB, log2)".into(),
                y_label: y.into(),
                x_scale: XScale::Log2,
                series,
            };
            let record = ExperimentRecord::new(id, title, runs).with_stats(fig.stat_lines());
            ExperimentOutput {
                id,
                title,
                text: fig.render(),
                csv: vec![(format!("{id}_bonnie.csv"), fig.to_csv())],
                record: Some(record),
            }
        };
        vec![
            make("f9", "FIGURE 9. Bonnie Read", "MB/s", read),
            make("f10", "FIGURE 10. Bonnie Write", "MB/s", write),
            make("f11", "FIGURE 11. Bonnie Seek", "seeks/s", seeks),
        ]
    });
    ExperimentPlan {
        id: "f9+f10+f11",
        title: "FIGURES 9-11. Bonnie",
        body: PlanBody::Cells { cells, render },
    }
}

/// Runs the bonnie sweep once (serially) and renders Figures 9-11.
pub fn bonnie_figures(scale: &Scale) -> Vec<ExperimentOutput> {
    execute(vec![plan_bonnie(scale)], 1)
        .into_iter()
        .flat_map(|r| r.outputs)
        .collect()
}

// ---------------------------------------------------------------------
// Figure 12: crtdel.
// ---------------------------------------------------------------------

fn plan_f12(scale: &Scale) -> ExperimentPlan {
    let iters = scale.crtdel_iters;
    let curves = Os::benchmarked()
        .into_iter()
        .map(|os| {
            let sampler: CurveSampler =
                Arc::new(move |x, seed| crtdel_ms(os, x as u64, iters, seed));
            (os_label(os), sampler)
        })
        .collect();
    figure_plan(
        "f12",
        "FIGURE 12. File Create/Delete",
        "FIGURE 12. File Create/Delete (ms per iteration)".into(),
        "file size (bytes, log2)".into(),
        "ms".into(),
        XScale::Log2,
        curves,
        scale.crtdel_sizes.iter().map(|&s| s as f64).collect(),
        scale.seeds(),
        |_| 3_000,
        "f12_crtdel.csv".into(),
    )
}

// ---------------------------------------------------------------------
// Table 3: MAB local.
// ---------------------------------------------------------------------

fn plan_t3(scale: &Scale) -> ExperimentPlan {
    let paper = [
        (Os::Linux, 43.12),
        (Os::FreeBsd, 47.45),
        (Os::Solaris, 54.31),
    ];
    let seeds = scale.mab_seeds();
    let n_seeds = seeds.len();
    // Per OS: one cell per seeded run (total_s), then one cell for the
    // phase breakdown at the reference seed.
    let mut cells = Vec::new();
    for &(os, _) in &paper {
        for &seed in &seeds {
            cells.push(Cell {
                label: format!("t3/{}/run{seed}", os.label()),
                cost: 3_000,
                work: Box::new(move || vec![mab_local(os, seed).total_s]),
            });
        }
        cells.push(Cell {
            label: format!("t3/{}/phases", os.label()),
            cost: 3_000,
            work: Box::new(move || mab_local(os, 1).phase_s.to_vec()),
        });
    }
    let render = Box::new(move |shards: Vec<Vec<f64>>| {
        let mut rows = Vec::new();
        let mut phases_text = String::new();
        let stride = n_seeds + 1;
        for (i, &(os, paper_s)) in paper.iter().enumerate() {
            let samples: Vec<f64> = shards[i * stride..i * stride + n_seeds]
                .iter()
                .flat_map(|v| v.iter().copied())
                .collect();
            let phases = &shards[i * stride + n_seeds];
            phases_text.push_str(&format!(
                "  {:<12} phases (s): mkdir {:.2}  copy {:.2}  stat {:.2}  read {:.2}  compile {:.2}\n",
                os.label(),
                phases[0],
                phases[1],
                phases[2],
                phases[3],
                phases[4]
            ));
            rows.push(Row {
                label: os_label(os),
                summary: Summary::of(&samples),
                paper: paper_s,
            });
        }
        let table = Table {
            title: "TABLE 3. MAB Local (seconds)".into(),
            unit: "s",
            direction: Direction::LowerBetter,
            rows,
        };
        let record = ExperimentRecord::new("t3", "TABLE 3. MAB Local", n_seeds as u64)
            .with_stats(table.stat_lines());
        vec![ExperimentOutput {
            id: "t3",
            title: "TABLE 3. MAB Local",
            text: format!("{}{}", table.render(), phases_text),
            csv: vec![],
            record: Some(record),
        }]
    });
    ExperimentPlan {
        id: "t3",
        title: "TABLE 3. MAB Local",
        body: PlanBody::Cells { cells, render },
    }
}

// ---------------------------------------------------------------------
// Table 4: pipe bandwidth.
// ---------------------------------------------------------------------

fn plan_t4(scale: &Scale) -> ExperimentPlan {
    let paper = [
        (Os::Linux, 119.36),
        (Os::FreeBsd, 98.03),
        (Os::Solaris, 65.38),
    ];
    let total = scale.pipe_total;
    let rows = paper
        .iter()
        .map(|&(os, p)| {
            let sampler: RowSampler =
                Arc::new(move |seed| pipe_bandwidth_mbit(os, total, tnt_core::BW_PIPE_CHUNK, seed));
            (os_label(os), p, sampler)
        })
        .collect();
    table_plan(
        "t4",
        "TABLE 4. Pipe Bandwidth",
        "TABLE 4. Pipe Bandwidth (bw_pipe, 64 KB chunks)".into(),
        "Mb/s",
        Direction::HigherBetter,
        rows,
        scale.seeds(),
        scale.pipe_total / 400,
    )
}

// ---------------------------------------------------------------------
// Figure 13: UDP bandwidth vs packet size.
// ---------------------------------------------------------------------

fn plan_f13(scale: &Scale) -> ExperimentPlan {
    let total = scale.udp_total;
    let curves = Os::benchmarked()
        .into_iter()
        .map(|os| {
            let sampler: CurveSampler =
                Arc::new(move |x, seed| udp_bandwidth_mbit(os, x as u64, total, seed));
            (os_label(os), sampler)
        })
        .collect();
    figure_plan(
        "f13",
        "FIGURE 13. UDP",
        "FIGURE 13. UDP Bandwidth (ttcp, loopback)".into(),
        "packet size (bytes, log2)".into(),
        "Mb/s".into(),
        XScale::Log2,
        curves,
        packet_sizes().into_iter().map(|p| p as f64).collect(),
        scale.seeds(),
        move |_| total / 500,
        "f13_udp.csv".into(),
    )
}

// ---------------------------------------------------------------------
// Table 5: TCP bandwidth.
// ---------------------------------------------------------------------

fn plan_t5(scale: &Scale) -> ExperimentPlan {
    let paper = [
        (Os::FreeBsd, 65.95),
        (Os::Solaris, 60.11),
        (Os::Linux, 25.03),
    ];
    let total = scale.tcp_total;
    let rows = paper
        .iter()
        .map(|&(os, p)| {
            let sampler: RowSampler =
                Arc::new(move |seed| tcp_bandwidth_mbit(os, total, tnt_core::BW_TCP_CHUNK, seed));
            (os_label(os), p, sampler)
        })
        .collect();
    table_plan(
        "t5",
        "TABLE 5. TCP Bandwidth",
        "TABLE 5. TCP Bandwidth (bw_tcp, 48 KB buffer, loopback)".into(),
        "Mb/s",
        Direction::HigherBetter,
        rows,
        scale.seeds(),
        scale.tcp_total / 400,
    )
}

// ---------------------------------------------------------------------
// Tables 6-7: MAB over NFS.
// ---------------------------------------------------------------------

fn plan_nfs(id: &'static str, server: Os, scale: &Scale) -> ExperimentPlan {
    let (title, table_title, paper): (&'static str, &'static str, [(Os, f64); 3]) = match server {
        Os::Linux => (
            "TABLE 6. MAB NFS with Linux Server",
            "TABLE 6. MAB NFS with Linux Server (seconds)",
            [
                (Os::FreeBsd, 53.24),
                (Os::Linux, 57.73),
                (Os::Solaris, 58.38),
            ],
        ),
        Os::SunOs => (
            "TABLE 7. MAB NFS with SunOS Server",
            "TABLE 7. MAB NFS with SunOS Server (seconds)",
            [
                (Os::FreeBsd, 67.60),
                (Os::Solaris, 87.94),
                (Os::Linux, 115.06),
            ],
        ),
        other => panic!("no NFS table for server {other:?}"),
    };
    let rows = paper
        .iter()
        .map(|&(client, p)| {
            let sampler: RowSampler =
                Arc::new(move |seed| mab_over_nfs(client, server, seed).total_s);
            (os_label(client), p, sampler)
        })
        .collect();
    table_plan(
        id,
        title,
        table_title.to_string(),
        "s",
        Direction::LowerBetter,
        rows,
        scale.mab_seeds(),
        35_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_covered_by_run_one() {
        // Every id must dispatch without panicking (smoke scale, cheap
        // ids only; the heavyweight ones are covered by integration
        // tests and the reproduce binary).
        let scale = Scale::smoke();
        for id in ["t1", "t2", "f12", "t4"] {
            let outs = run_one(id, &scale);
            assert!(!outs.is_empty());
            assert!(outs.iter().all(|o| !o.text.is_empty()));
        }
    }

    #[test]
    fn t2_table_contains_all_systems_and_paper_values() {
        let out = &run_one("t2", &Scale::smoke())[0];
        assert!(out.text.contains("Linux"));
        assert!(out.text.contains("FreeBSD"));
        assert!(out.text.contains("Solaris 2.4"));
        assert!(
            out.text.contains("2.31"),
            "paper column present:\n{}",
            out.text
        );
    }

    #[test]
    fn mem_figure_produces_csv() {
        let out = run_one("f2", &Scale::smoke());
        assert_eq!(out[0].csv.len(), 1);
        assert!(out[0].csv[0].1.lines().count() > 3);
    }

    #[test]
    fn bonnie_figures_share_one_sweep() {
        let outs = bonnie_figures(&Scale::smoke());
        assert_eq!(outs.len(), 3);
        let ids: Vec<_> = outs.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec!["f9", "f10", "f11"]);
    }

    #[test]
    fn run_many_deduplicates_bonnie() {
        let outs = run_many(&["f9", "f10", "f11"], &Scale::smoke());
        assert_eq!(outs.len(), 3, "one sweep, three figures");
    }

    #[test]
    fn every_experiment_carries_a_record() {
        let scale = Scale::smoke();
        for id in ["t1", "t2", "f2", "t4"] {
            for out in run_one(id, &scale) {
                let rec = out.record.as_ref().unwrap_or_else(|| {
                    panic!("{id} has no record");
                });
                assert_eq!(rec.id, out.id);
            }
        }
        // Table records carry one stat line per OS with the best at
        // norm 1.0.
        let t2 = &run_one("t2", &scale)[0];
        let rec = t2.record.as_ref().unwrap();
        assert_eq!(rec.stats.len(), 3);
        assert!((rec.stats[0].norm - 1.0).abs() < 1e-9);
        assert_eq!(rec.runs, scale.runs);
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        run_one("f99", &Scale::smoke());
    }
}
