//! One entry per table and figure of the paper.
//!
//! Each experiment runs the corresponding `tnt-core` benchmark over the
//! configured number of seeded runs and renders the result in the
//! paper's format (tables with Std Dev and Norm. columns, figures as
//! ASCII plots plus CSV series).

use crate::plot::{Figure, XScale};
use crate::scale::Scale;
use crate::table::{Direction, Row, Table};
use tnt_core::{
    bonnie, crtdel_ms, ctx_us, mab_local, mab_over_nfs, mem_bandwidth, packet_sizes,
    pipe_bandwidth_mbit, syscall_us, tcp_bandwidth_mbit, udp_bandwidth_mbit, CtxPattern,
    LibcVariant, MemRoutine, Os,
};
use tnt_sim::{Series, Summary};

/// The rendered result of one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Short id: "t2", "f1", ...
    pub id: &'static str,
    /// Paper title of the table/figure.
    pub title: &'static str,
    /// Rendered text (table or ASCII figure).
    pub text: String,
    /// CSV files to write: (file name, contents).
    pub csv: Vec<(String, String)>,
}

/// Every experiment id, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "t1", "t2", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11", "f12",
        "t3", "t4", "f13", "t5", "t6", "t7",
    ]
}

/// Runs one experiment by id. Some ids share computation (f9-f11 all run
/// bonnie), so prefer [`run_many`] for several ids.
pub fn run_one(id: &str, scale: &Scale) -> Vec<ExperimentOutput> {
    match id {
        "t1" => vec![t1_config()],
        "t2" => vec![t2_syscall(scale)],
        "f1" => vec![f1_ctx(scale)],
        "f2" => vec![mem_figure(
            "f2",
            "FIGURE 2. Custom Read",
            vec![("custom read", MemRoutine::CustomRead)],
            scale,
        )],
        "f3" => vec![mem_figure(
            "f3",
            "FIGURE 3. Memset",
            libc_curves(MemRoutine::LibcMemset),
            scale,
        )],
        "f4" => vec![mem_figure(
            "f4",
            "FIGURE 4. Naive Custom Write",
            vec![("naive write", MemRoutine::CustomWriteNaive)],
            scale,
        )],
        "f5" => vec![mem_figure(
            "f5",
            "FIGURE 5. Prefetching Custom Write",
            vec![("prefetch write", MemRoutine::CustomWritePrefetch)],
            scale,
        )],
        "f6" => vec![mem_figure(
            "f6",
            "FIGURE 6. Memcpy",
            libc_curves(MemRoutine::LibcMemcpy),
            scale,
        )],
        "f7" => vec![mem_figure(
            "f7",
            "FIGURE 7. Naive Custom Copy",
            vec![("naive copy", MemRoutine::CustomCopyNaive)],
            scale,
        )],
        "f8" => vec![mem_figure(
            "f8",
            "FIGURE 8. Prefetching Custom Copy",
            vec![("prefetch copy", MemRoutine::CustomCopyPrefetch)],
            scale,
        )],
        "f9" | "f10" | "f11" => bonnie_figures(scale)
            .into_iter()
            .filter(|o| o.id == id)
            .collect(),
        "f12" => vec![f12_crtdel(scale)],
        "t3" => vec![t3_mab(scale)],
        "t4" => vec![t4_pipe(scale)],
        "f13" => vec![f13_udp(scale)],
        "t5" => vec![t5_tcp(scale)],
        "t6" => vec![nfs_table("t6", Os::Linux, scale)],
        "t7" => vec![nfs_table("t7", Os::SunOs, scale)],
        "x1" | "x2" | "x3" | "x4" | "x5" | "x6" | "x7" => {
            vec![crate::ablations::run_extra(id, scale)]
        }
        other => panic!("unknown experiment id {other:?}"),
    }
}

/// Runs a set of experiments, sharing work where possible.
pub fn run_many(ids: &[&str], scale: &Scale) -> Vec<ExperimentOutput> {
    let mut out = Vec::new();
    let mut bonnie_done = false;
    for id in ids {
        match *id {
            "f9" | "f10" | "f11" => {
                if !bonnie_done {
                    out.extend(bonnie_figures(scale));
                    bonnie_done = true;
                }
            }
            other => out.extend(run_one(other, scale)),
        }
    }
    out
}

fn os_label(os: Os) -> String {
    os.label().to_string()
}

fn summarize(scale: &Scale, f: impl Fn(u64) -> f64) -> Summary {
    let samples: Vec<f64> = scale.seeds().into_iter().map(f).collect();
    Summary::of(&samples)
}

// ---------------------------------------------------------------------
// Table 1: static configuration.
// ---------------------------------------------------------------------

fn t1_config() -> ExperimentOutput {
    let text = "\
TABLE 1. Disk Partitioning (configuration, reproduced verbatim)
  OS            Version   Size (MB)
  ---------------------------------
  DOS/Windows   6.2/3.1   250
  Solaris       2.4       700
  FreeBSD       2.0.5R    400
  Linux         1.2.8     600
  Benchmark disk: HP 3725 (fresh 200 MB filesystem per experiment)
  System disk:    Quantum Empire 2100S
"
    .to_string();
    ExperimentOutput {
        id: "t1",
        title: "TABLE 1. Disk Partitioning",
        text,
        csv: vec![],
    }
}

// ---------------------------------------------------------------------
// Table 2: system call.
// ---------------------------------------------------------------------

fn t2_syscall(scale: &Scale) -> ExperimentOutput {
    let paper = [(Os::Linux, 2.31), (Os::FreeBsd, 2.62), (Os::Solaris, 3.52)];
    let rows = paper
        .iter()
        .map(|&(os, paper_us)| Row {
            label: os_label(os),
            summary: summarize(scale, |seed| syscall_us(os, scale.syscall_iters, seed)),
            paper: paper_us,
        })
        .collect();
    let table = Table {
        title: "TABLE 2. System Call (getpid)".into(),
        unit: "µs",
        direction: Direction::LowerBetter,
        rows,
    };
    ExperimentOutput {
        id: "t2",
        title: "TABLE 2. System Call",
        text: table.render(),
        csv: vec![],
    }
}

// ---------------------------------------------------------------------
// Figure 1: context switching.
// ---------------------------------------------------------------------

fn f1_ctx(scale: &Scale) -> ExperimentOutput {
    let curves: Vec<(String, Os, CtxPattern)> = vec![
        ("Linux".into(), Os::Linux, CtxPattern::Ring),
        ("FreeBSD".into(), Os::FreeBsd, CtxPattern::Ring),
        ("Solaris".into(), Os::Solaris, CtxPattern::Ring),
        ("Solaris-LIFO".into(), Os::Solaris, CtxPattern::LifoChain),
    ];
    let mut series = Vec::new();
    for (label, os, pattern) in curves {
        let mut s = Series::new(label);
        for &n in &scale.ctx_procs {
            let mean = summarize(scale, |seed| {
                ctx_us(os, n, scale.ctx_switches, pattern, seed)
            });
            s.push(n as f64, mean.mean);
        }
        series.push(s);
    }
    let fig = Figure {
        title: "FIGURE 1. Context Switch (µs per switch incl. pipe overhead)".into(),
        x_label: "active processes".into(),
        y_label: "µs/switch".into(),
        x_scale: XScale::Linear,
        series,
    };
    ExperimentOutput {
        id: "f1",
        title: "FIGURE 1. Context Switch",
        text: fig.render(),
        csv: vec![("f1_ctx.csv".into(), fig.to_csv())],
    }
}

// ---------------------------------------------------------------------
// Figures 2-8: memory bandwidth.
// ---------------------------------------------------------------------

fn libc_curves(make: fn(LibcVariant) -> MemRoutine) -> Vec<(&'static str, MemRoutine)> {
    vec![
        ("Linux libc", make(LibcVariant::Linux)),
        ("FreeBSD libc", make(LibcVariant::FreeBsd)),
        ("Solaris libc", make(LibcVariant::Solaris)),
    ]
}

fn mem_figure(
    id: &'static str,
    title: &'static str,
    curves: Vec<(&'static str, MemRoutine)>,
    scale: &Scale,
) -> ExperimentOutput {
    let mut series = Vec::new();
    for (label, routine) in curves {
        let mut s = Series::new(label);
        for &buf in &scale.mem_sizes {
            let mean = summarize(scale, |seed| {
                mem_bandwidth(routine, buf, scale.mem_total, seed)
            });
            s.push(buf as f64, mean.mean);
        }
        series.push(s);
    }
    let fig = Figure {
        title: format!("{title} (MB/s vs buffer size)"),
        x_label: "buffer size (bytes, log2)".into(),
        y_label: "MB/s".into(),
        x_scale: XScale::Log2,
        series,
    };
    ExperimentOutput {
        id,
        title,
        text: fig.render(),
        csv: vec![(format!("{id}_mem.csv"), fig.to_csv())],
    }
}

// ---------------------------------------------------------------------
// Figures 9-11: bonnie (one computation, three figures).
// ---------------------------------------------------------------------

/// Runs the bonnie sweep once and renders Figures 9, 10 and 11.
pub fn bonnie_figures(scale: &Scale) -> Vec<ExperimentOutput> {
    let oses = Os::benchmarked();
    // results[os][size] -> mean BonnieResult over seeds.
    let mut write: Vec<Series> = Vec::new();
    let mut read: Vec<Series> = Vec::new();
    let mut seeks: Vec<Series> = Vec::new();
    for os in oses {
        let mut ws = Series::new(os.label());
        let mut rs = Series::new(os.label());
        let mut ss = Series::new(os.label());
        for &mb in &scale.bonnie_sizes_mb {
            let mut w = Vec::new();
            let mut r = Vec::new();
            let mut s = Vec::new();
            for seed in scale.mab_seeds() {
                let b = bonnie(os, mb, scale.bonnie_seeks, seed);
                w.push(b.write_mb_s);
                r.push(b.read_mb_s);
                s.push(b.seeks_per_s);
            }
            ws.push(mb as f64, Summary::of(&w).mean);
            rs.push(mb as f64, Summary::of(&r).mean);
            ss.push(mb as f64, Summary::of(&s).mean);
        }
        write.push(ws);
        read.push(rs);
        seeks.push(ss);
    }
    let make = |id: &'static str, title: &'static str, y: &str, series: Vec<Series>| {
        let fig = Figure {
            title: format!("{title} vs file size (MB, log2)"),
            x_label: "file size (MB, log2)".into(),
            y_label: y.into(),
            x_scale: XScale::Log2,
            series,
        };
        ExperimentOutput {
            id,
            title,
            text: fig.render(),
            csv: vec![(format!("{id}_bonnie.csv"), fig.to_csv())],
        }
    };
    vec![
        make("f9", "FIGURE 9. Bonnie Read", "MB/s", read),
        make("f10", "FIGURE 10. Bonnie Write", "MB/s", write),
        make("f11", "FIGURE 11. Bonnie Seek", "seeks/s", seeks),
    ]
}

// ---------------------------------------------------------------------
// Figure 12: crtdel.
// ---------------------------------------------------------------------

fn f12_crtdel(scale: &Scale) -> ExperimentOutput {
    let mut series = Vec::new();
    for os in Os::benchmarked() {
        let mut s = Series::new(os.label());
        for &size in &scale.crtdel_sizes {
            let mean = summarize(scale, |seed| crtdel_ms(os, size, scale.crtdel_iters, seed));
            s.push(size as f64, mean.mean);
        }
        series.push(s);
    }
    let fig = Figure {
        title: "FIGURE 12. File Create/Delete (ms per iteration)".into(),
        x_label: "file size (bytes, log2)".into(),
        y_label: "ms".into(),
        x_scale: XScale::Log2,
        series,
    };
    ExperimentOutput {
        id: "f12",
        title: "FIGURE 12. File Create/Delete",
        text: fig.render(),
        csv: vec![("f12_crtdel.csv".into(), fig.to_csv())],
    }
}

// ---------------------------------------------------------------------
// Table 3: MAB local.
// ---------------------------------------------------------------------

fn t3_mab(scale: &Scale) -> ExperimentOutput {
    let paper = [
        (Os::Linux, 43.12),
        (Os::FreeBsd, 47.45),
        (Os::Solaris, 54.31),
    ];
    let mut rows = Vec::new();
    let mut phases_text = String::new();
    for &(os, paper_s) in &paper {
        let samples: Vec<f64> = scale
            .mab_seeds()
            .into_iter()
            .map(|seed| mab_local(os, seed).total_s)
            .collect();
        let phases = mab_local(os, 1).phase_s;
        phases_text.push_str(&format!(
            "  {:<12} phases (s): mkdir {:.2}  copy {:.2}  stat {:.2}  read {:.2}  compile {:.2}\n",
            os.label(),
            phases[0],
            phases[1],
            phases[2],
            phases[3],
            phases[4]
        ));
        rows.push(Row {
            label: os_label(os),
            summary: Summary::of(&samples),
            paper: paper_s,
        });
    }
    let table = Table {
        title: "TABLE 3. MAB Local (seconds)".into(),
        unit: "s",
        direction: Direction::LowerBetter,
        rows,
    };
    ExperimentOutput {
        id: "t3",
        title: "TABLE 3. MAB Local",
        text: format!("{}{}", table.render(), phases_text),
        csv: vec![],
    }
}

// ---------------------------------------------------------------------
// Table 4: pipe bandwidth.
// ---------------------------------------------------------------------

fn t4_pipe(scale: &Scale) -> ExperimentOutput {
    let paper = [
        (Os::Linux, 119.36),
        (Os::FreeBsd, 98.03),
        (Os::Solaris, 65.38),
    ];
    let rows = paper
        .iter()
        .map(|&(os, p)| Row {
            label: os_label(os),
            summary: summarize(scale, |seed| {
                pipe_bandwidth_mbit(os, scale.pipe_total, tnt_core::BW_PIPE_CHUNK, seed)
            }),
            paper: p,
        })
        .collect();
    let table = Table {
        title: "TABLE 4. Pipe Bandwidth (bw_pipe, 64 KB chunks)".into(),
        unit: "Mb/s",
        direction: Direction::HigherBetter,
        rows,
    };
    ExperimentOutput {
        id: "t4",
        title: "TABLE 4. Pipe Bandwidth",
        text: table.render(),
        csv: vec![],
    }
}

// ---------------------------------------------------------------------
// Figure 13: UDP bandwidth vs packet size.
// ---------------------------------------------------------------------

fn f13_udp(scale: &Scale) -> ExperimentOutput {
    let mut series = Vec::new();
    for os in Os::benchmarked() {
        let mut s = Series::new(os.label());
        for packet in packet_sizes() {
            let mean = summarize(scale, |seed| {
                udp_bandwidth_mbit(os, packet, scale.udp_total, seed)
            });
            s.push(packet as f64, mean.mean);
        }
        series.push(s);
    }
    let fig = Figure {
        title: "FIGURE 13. UDP Bandwidth (ttcp, loopback)".into(),
        x_label: "packet size (bytes, log2)".into(),
        y_label: "Mb/s".into(),
        x_scale: XScale::Log2,
        series,
    };
    ExperimentOutput {
        id: "f13",
        title: "FIGURE 13. UDP",
        text: fig.render(),
        csv: vec![("f13_udp.csv".into(), fig.to_csv())],
    }
}

// ---------------------------------------------------------------------
// Table 5: TCP bandwidth.
// ---------------------------------------------------------------------

fn t5_tcp(scale: &Scale) -> ExperimentOutput {
    let paper = [
        (Os::FreeBsd, 65.95),
        (Os::Solaris, 60.11),
        (Os::Linux, 25.03),
    ];
    let rows = paper
        .iter()
        .map(|&(os, p)| Row {
            label: os_label(os),
            summary: summarize(scale, |seed| {
                tcp_bandwidth_mbit(os, scale.tcp_total, tnt_core::BW_TCP_CHUNK, seed)
            }),
            paper: p,
        })
        .collect();
    let table = Table {
        title: "TABLE 5. TCP Bandwidth (bw_tcp, 48 KB buffer, loopback)".into(),
        unit: "Mb/s",
        direction: Direction::HigherBetter,
        rows,
    };
    ExperimentOutput {
        id: "t5",
        title: "TABLE 5. TCP Bandwidth",
        text: table.render(),
        csv: vec![],
    }
}

// ---------------------------------------------------------------------
// Tables 6-7: MAB over NFS.
// ---------------------------------------------------------------------

fn nfs_table(id: &'static str, server: Os, scale: &Scale) -> ExperimentOutput {
    let (title, paper): (&'static str, [(Os, f64); 3]) = match server {
        Os::Linux => (
            "TABLE 6. MAB NFS with Linux Server",
            [
                (Os::FreeBsd, 53.24),
                (Os::Linux, 57.73),
                (Os::Solaris, 58.38),
            ],
        ),
        Os::SunOs => (
            "TABLE 7. MAB NFS with SunOS Server",
            [
                (Os::FreeBsd, 67.60),
                (Os::Solaris, 87.94),
                (Os::Linux, 115.06),
            ],
        ),
        other => panic!("no NFS table for server {other:?}"),
    };
    let rows = paper
        .iter()
        .map(|&(client, p)| {
            let samples: Vec<f64> = scale
                .mab_seeds()
                .into_iter()
                .map(|seed| mab_over_nfs(client, server, seed).total_s)
                .collect();
            Row {
                label: os_label(client),
                summary: Summary::of(&samples),
                paper: p,
            }
        })
        .collect();
    let table = Table {
        title: format!("{title} (seconds)"),
        unit: "s",
        direction: Direction::LowerBetter,
        rows,
    };
    ExperimentOutput {
        id,
        title,
        text: table.render(),
        csv: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_covered_by_run_one() {
        // Every id must dispatch without panicking (smoke scale, cheap
        // ids only; the heavyweight ones are covered by integration
        // tests and the reproduce binary).
        let scale = Scale::smoke();
        for id in ["t1", "t2", "f12", "t4"] {
            let outs = run_one(id, &scale);
            assert!(!outs.is_empty());
            assert!(outs.iter().all(|o| !o.text.is_empty()));
        }
    }

    #[test]
    fn t2_table_contains_all_systems_and_paper_values() {
        let out = t2_syscall(&Scale::smoke());
        assert!(out.text.contains("Linux"));
        assert!(out.text.contains("FreeBSD"));
        assert!(out.text.contains("Solaris 2.4"));
        assert!(
            out.text.contains("2.31"),
            "paper column present:\n{}",
            out.text
        );
    }

    #[test]
    fn mem_figure_produces_csv() {
        let out = run_one("f2", &Scale::smoke());
        assert_eq!(out[0].csv.len(), 1);
        assert!(out[0].csv[0].1.lines().count() > 3);
    }

    #[test]
    fn bonnie_figures_share_one_sweep() {
        let outs = bonnie_figures(&Scale::smoke());
        assert_eq!(outs.len(), 3);
        let ids: Vec<_> = outs.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec!["f9", "f10", "f11"]);
    }

    #[test]
    fn run_many_deduplicates_bonnie() {
        let outs = run_many(&["f9", "f10", "f11"], &Scale::smoke());
        assert_eq!(outs.len(), 3, "one sweep, three figures");
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        run_one("f99", &Scale::smoke());
    }
}
