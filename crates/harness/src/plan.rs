//! The plan → execute → render pipeline.
//!
//! [`plan`] turns a list of experiment ids into [`ExperimentPlan`]s:
//! descriptions of the work as independent, `Send` shards of the
//! experiment-id × OS-leg × seeded-run matrix, each with a cost hint
//! for the [`tnt_runner`] shard planner. [`execute`] runs the shards —
//! serially for `jobs <= 1`, on the work-stealing pool otherwise — and
//! then renders each experiment **on the main thread, in canonical
//! order**, from nothing but the shard results. Because rendering
//! never looks at anything schedule-dependent, `--jobs 8` output is
//! byte-identical to `--jobs 1` output; the integration tests assert
//! this for text, CSV and `baselines.json` alike.
//!
//! A shard that panics fails only its own experiment: the run carries
//! on, and the experiment renders as a loud failure report instead of
//! its table ([`ExperimentResult::error`]).

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::experiments::ExperimentOutput;
use crate::scale::Scale;
use tnt_runner::{run_ordered, Job};

/// One independent shard of an experiment: a leg of the
/// id × OS × seeded-run matrix.
pub struct Cell {
    /// Human-readable shard name for failure reports,
    /// e.g. `"f1/Solaris/n=32"`.
    pub label: String,
    /// Relative cost hint for the shard planner.
    pub cost: u64,
    /// The measurement. Returns raw samples; all interpretation
    /// happens at render time.
    pub work: Box<dyn FnOnce() -> Vec<f64> + Send>,
}

/// How an experiment's outputs are produced.
pub enum PlanBody {
    /// Fine-grained: independent cells measured (possibly in
    /// parallel), then a render closure that combines their sample
    /// vectors — presented in cell submission order — into outputs.
    Cells {
        /// The shards, in canonical order.
        cells: Vec<Cell>,
        /// Combines the cell results (same order as `cells`).
        render: Box<dyn FnOnce(Vec<Vec<f64>>) -> Vec<ExperimentOutput> + Send>,
    },
    /// Coarse-grained: the experiment runs as a single shard that
    /// produces its outputs directly (cheap ablations, static tables).
    Whole {
        /// Relative cost hint for the shard planner.
        cost: u64,
        /// The whole experiment.
        run: Box<dyn FnOnce() -> Vec<ExperimentOutput> + Send>,
    },
}

/// A planned experiment: the unit of failure isolation and of the
/// results store.
pub struct ExperimentPlan {
    /// Plan id — the experiment id, or `"f9+f10+f11"` for the shared
    /// bonnie sweep.
    pub id: &'static str,
    /// Title for failure reports.
    pub title: &'static str,
    /// The work.
    pub body: PlanBody,
}

impl ExperimentPlan {
    fn cell_count(&self) -> usize {
        match &self.body {
            PlanBody::Cells { cells, .. } => cells.len(),
            PlanBody::Whole { .. } => 1,
        }
    }
}

/// The outcome of one executed plan.
pub struct ExperimentResult {
    /// The plan's id.
    pub id: &'static str,
    /// Rendered outputs — the experiment's tables/figures, or a single
    /// failure report if a shard panicked.
    pub outputs: Vec<ExperimentOutput>,
    /// The first shard panic, if any.
    pub error: Option<String>,
    /// Wall-clock compute time summed over this experiment's shards,
    /// in milliseconds. Summing (rather than elapsed span) keeps the
    /// number comparable between serial and parallel runs.
    pub wall_ms: f64,
}

/// Expands experiment ids into plans, sharing work where possible
/// (f9/f10/f11 are one bonnie sweep).
///
/// # Panics
///
/// Panics on an unknown experiment id, like `run_one`.
pub fn plan(ids: &[&str], scale: &Scale) -> Vec<ExperimentPlan> {
    let mut plans = Vec::new();
    let mut bonnie_done = false;
    for id in ids {
        match *id {
            "f9" | "f10" | "f11" => {
                if !bonnie_done {
                    plans.push(crate::experiments::plan_bonnie(scale));
                    bonnie_done = true;
                }
            }
            other => plans.push(crate::experiments::plan_one(other, scale)),
        }
    }
    plans
}

enum ShardValue {
    Samples(Vec<f64>),
    Outputs(Vec<ExperimentOutput>),
}

/// Runs the plans on `jobs` workers and renders every experiment, in
/// canonical order. `jobs <= 1` is the serial reference path; any
/// other value must produce byte-identical outputs.
pub fn execute(plans: Vec<ExperimentPlan>, jobs: usize) -> Vec<ExperimentResult> {
    let cell_counts: Vec<usize> = plans.iter().map(ExperimentPlan::cell_count).collect();
    let mut shard_labels: Vec<String> = Vec::new();
    let mut pool_jobs: Vec<Job<ShardValue>> = Vec::new();
    let mut renders = Vec::new();
    for plan in plans {
        match plan.body {
            PlanBody::Cells { cells, render } => {
                for cell in cells {
                    shard_labels.push(cell.label);
                    let work = cell.work;
                    pool_jobs.push(Job::new(cell.cost, move || ShardValue::Samples(work())));
                }
                renders.push((plan.id, plan.title, Some(render)));
            }
            PlanBody::Whole { cost, run } => {
                shard_labels.push(plan.id.to_string());
                pool_jobs.push(Job::new(cost, move || ShardValue::Outputs(run())));
                renders.push((plan.id, plan.title, None));
            }
        }
    }

    let mut outcomes = run_ordered(pool_jobs, jobs).into_iter();

    // Ordered merge: walk the outcomes in submission order, experiment
    // by experiment, rendering on this (the main) thread.
    let mut results = Vec::new();
    for ((id, title, render), count) in renders.into_iter().zip(cell_counts) {
        let mut wall_ms = 0.0;
        let mut error: Option<String> = None;
        let mut samples: Vec<Vec<f64>> = Vec::with_capacity(count);
        let mut whole_outputs: Option<Vec<ExperimentOutput>> = None;
        for outcome in outcomes.by_ref().take(count) {
            wall_ms += outcome.elapsed.as_secs_f64() * 1e3;
            match outcome.result {
                Ok(ShardValue::Samples(v)) => samples.push(v),
                Ok(ShardValue::Outputs(o)) => whole_outputs = Some(o),
                Err(p) => {
                    if error.is_none() {
                        error = Some(format!(
                            "shard '{}' panicked: {}",
                            shard_labels[p.index], p.message
                        ));
                    }
                }
            }
        }
        let (outputs, error) = if let Some(err) = error {
            (vec![failure_output(id, title, &err)], Some(err))
        } else if let Some(outputs) = whole_outputs {
            (outputs, None)
        } else {
            let render = render.expect("cells plan must carry a render closure");
            match catch_unwind(AssertUnwindSafe(move || render(samples))) {
                Ok(outputs) => (outputs, None),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "opaque panic payload".into());
                    let err = format!("render panicked: {msg}");
                    (vec![failure_output(id, title, &err)], Some(err))
                }
            }
        };
        let mut outputs = outputs;
        for output in &mut outputs {
            if let Some(record) = &mut output.record {
                record.wall_ms = wall_ms;
            }
        }
        results.push(ExperimentResult {
            id,
            outputs,
            error,
            wall_ms,
        });
    }
    results
}

fn failure_output(id: &'static str, title: &'static str, error: &str) -> ExperimentOutput {
    ExperimentOutput {
        id,
        title,
        text: format!(
            "{title}\n  EXPERIMENT {id} FAILED — no table/figure produced.\n  {error}\n  \
             (other experiments in this run are unaffected)\n"
        ),
        csv: vec![],
        record: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan(id: &'static str, fail: bool) -> ExperimentPlan {
        let cells = (0..3)
            .map(|i| Cell {
                label: format!("{id}/cell{i}"),
                cost: 1,
                work: Box::new(move || {
                    if fail && i == 1 {
                        panic!("cell {i} of {id} went sideways");
                    }
                    vec![i as f64]
                }),
            })
            .collect();
        ExperimentPlan {
            id,
            title: "TEST PLAN",
            body: PlanBody::Cells {
                cells,
                render: Box::new(move |samples| {
                    let total: f64 = samples.iter().flatten().sum();
                    vec![ExperimentOutput {
                        id,
                        title: "TEST PLAN",
                        text: format!("total {total}\n"),
                        csv: vec![],
                        record: None,
                    }]
                }),
            },
        }
    }

    #[test]
    fn execute_renders_in_canonical_order() {
        for jobs in [1, 4] {
            let results = execute(vec![tiny_plan("a", false), tiny_plan("b", false)], jobs);
            assert_eq!(results.len(), 2);
            assert_eq!(results[0].id, "a");
            assert_eq!(results[1].id, "b");
            assert_eq!(results[0].outputs[0].text, "total 3\n");
            assert!(results[0].error.is_none());
        }
    }

    #[test]
    fn a_panicking_shard_fails_only_its_experiment() {
        let results = execute(vec![tiny_plan("good", false), tiny_plan("bad", true)], 4);
        assert!(results[0].error.is_none());
        assert_eq!(results[0].outputs[0].text, "total 3\n");
        let err = results[1].error.as_ref().expect("bad plan must error");
        assert!(err.contains("bad/cell1"), "names the shard: {err}");
        assert!(err.contains("went sideways"), "carries the panic: {err}");
        assert!(results[1].outputs[0].text.contains("FAILED"));
    }

    #[test]
    fn wall_ms_accumulates_over_shards() {
        let results = execute(vec![tiny_plan("a", false)], 1);
        assert!(results[0].wall_ms >= 0.0);
    }
}
