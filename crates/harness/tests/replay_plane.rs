//! Cross-cutting guarantees of the capture/replay plane:
//!
//! - recording is inert: arming ambient capture changes no experiment
//!   output byte (and with it off, the recorder never even allocates);
//! - `capture_experiment` harvests one trace per booted machine, and a
//!   captured trace replays deterministically;
//! - the blkparse importer's timebase is the engine clock.
//!
//! Ambient capture is process-global state, so every test touching it
//! serialises on one mutex (the test harness runs tests concurrently in
//! this binary).

use parking_lot::Mutex;
use tnt_core::Os;
use tnt_harness::{replay_trace, run_one, ReplayOptions, Scale};
use tnt_sim::replay::{Op, Trace};

static AMBIENT: Mutex<()> = Mutex::new(());

fn render(id: &str, scale: &Scale) -> String {
    run_one(id, scale)
        .into_iter()
        .map(|o| o.text)
        .collect::<String>()
}

#[test]
fn ambient_capture_changes_no_output_byte() {
    let _serial = AMBIENT.lock();
    let scale = Scale::smoke();
    // f12 (crtdel) is the most disk-bound paper experiment: if capture
    // perturbed timing anywhere, it would show here first.
    let off = render("f12", &scale);
    let _ = tnt_sim::replay::drain();
    tnt_sim::replay::set_ambient(true);
    let on = render("f12", &scale);
    tnt_sim::replay::set_ambient(false);
    let traces = tnt_sim::replay::drain();
    assert_eq!(off, on, "recording must not perturb the simulation");
    assert!(!traces.is_empty(), "a disk experiment must capture traces");
    assert!(traces.iter().any(|t| !t.is_empty()), "captures have events");
}

#[test]
fn recording_is_off_by_default() {
    let _serial = AMBIENT.lock();
    let _ = tnt_sim::replay::drain();
    let (sim, kernel) = tnt_os::boot(Os::Linux, 1);
    kernel.mount(tnt_fs::SimFs::fresh_for_os(Os::Linux));
    kernel.spawn_user("writer", |p| {
        let fd = p.creat("/f").expect("creat");
        p.write(fd, 64 * 1024).expect("write");
        p.close(fd).expect("close");
    });
    sim.run().expect("run");
    assert!(!sim.recorder().is_enabled(), "recorder armed without --record");
    assert!(sim.recorder().is_empty(), "events recorded while disabled");
    assert!(tnt_sim::replay::drain().is_empty(), "published while disabled");
}

#[test]
fn captured_experiment_traces_replay_deterministically() {
    let _serial = AMBIENT.lock();
    let traces = tnt_harness::capture_experiment("f12", &Scale::smoke());
    let trace = traces
        .iter()
        .max_by_key(|t| t.len())
        .expect("f12 boots at least one machine");
    let a = replay_trace(trace, Os::FreeBsd, 3, ReplayOptions::asap());
    let b = replay_trace(trace, Os::FreeBsd, 3, ReplayOptions::asap());
    assert_eq!(a, b, "same trace, same seed, same report");
    assert!(a.commands > 0, "crtdel replays disk commands");
}

#[test]
fn importer_timebase_is_the_engine_clock() {
    // One blkparse row at t=0.5s must land at CPU_HZ/2 cycles: the
    // trace timebase and the engine clock are the same 100 MHz.
    let row = b"8,0 1 1 0.500000000 7 D R 2048 + 8 [cc1]";
    let trace = Trace::load(row).expect("blkparse row imports");
    assert_eq!(trace.len(), 1);
    assert_eq!(trace.events[0].t, tnt_sim::CPU_HZ / 2);
    assert_eq!(trace.events[0].op, Op::BlockRead);
    assert_eq!(trace.events[0].arg, 1_024, "sector 2048 is 1 KB block 1024");
    assert_eq!(trace.events[0].size, 4, "8 sectors are 4 blocks");
}
